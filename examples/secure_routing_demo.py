#!/usr/bin/env python3
"""Secure MANET routing: AODV vs McCLS-AODV on the paper's scenario.

Run:  python examples/secure_routing_demo.py [--speed 10] [--time 60]

Builds the paper's Section 6 setup (20 nodes, 1500 m x 300 m random
waypoint field, CBR traffic), runs plain AODV and the McCLS-authenticated
variant on identical mobility/traffic, and prints the four evaluation
metrics side by side - a single data point of Figures 1-3.
"""

import argparse

from repro.netsim import ScenarioConfig, run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--speed", type=float, default=10.0, help="max node speed m/s")
    parser.add_argument("--time", type=float, default=60.0, help="simulated seconds")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    base = ScenarioConfig(
        max_speed=args.speed, sim_time_s=args.time, seed=args.seed
    )
    print(
        f"scenario: {base.n_nodes} nodes, "
        f"{base.area_width:.0f}x{base.area_height:.0f} m, "
        f"speed 0..{args.speed} m/s, {base.n_flows} CBR flows, "
        f"{args.time:.0f}s simulated"
    )

    reports = {}
    for protocol in ("aodv", "mccls"):
        result = run_scenario(base.with_(protocol=protocol))
        reports[protocol] = result.report()
        print(f"  {protocol}: {result.events_executed} events")

    rows = [
        ("packet delivery ratio", "packet_delivery_ratio", "{:.3f}"),
        ("RREQ ratio", "rreq_ratio", "{:.3f}"),
        ("end-to-end delay (s)", "end_to_end_delay", "{:.4f}"),
        ("data packets sent", "data_sent", "{:.0f}"),
        ("data packets delivered", "data_received", "{:.0f}"),
        ("RREQs initiated", "rreq_initiated", "{:.0f}"),
    ]
    print(f"\n{'metric':28s} {'AODV':>10s} {'McCLS':>10s}")
    for label, key, fmt in rows:
        print(
            f"{label:28s} {fmt.format(reports['aodv'][key]):>10s} "
            f"{fmt.format(reports['mccls'][key]):>10s}"
        )

    pdr_gap = abs(
        reports["aodv"]["packet_delivery_ratio"]
        - reports["mccls"]["packet_delivery_ratio"]
    )
    print(
        f"\nMcCLS delivers within {pdr_gap:.1%} of plain AODV while "
        "authenticating every routing message"
    )
    print(
        "its delay premium is "
        f"{reports['mccls']['end_to_end_delay'] - reports['aodv']['end_to_end_delay']:+.4f}s "
        "(signature/verification processing, cf. paper Fig. 3)"
    )


if __name__ == "__main__":
    main()
