#!/usr/bin/env python3
"""Attack resilience: black hole and rushing attacks vs AODV and McCLS.

Run:  python examples/attack_resilience.py [--speed 10] [--time 60]

Reproduces a single speed point of the paper's Figures 4 and 5: two
attacker nodes mount each attack against plain AODV and against
McCLS-AODV.  With authentication the attackers - who hold no KGC-issued
keys - cannot inject forged route replies (black hole) or get their rushed
flood copies accepted (rushing), so the packet drop ratio goes to zero.

Pass ``--cryptanalyst`` to add the ablation attacker that exploits the
universal-forgery weakness of the published scheme (see repro.core.games):
against it the protection collapses, quantifying the gap between the
paper's claimed and actual security.
"""

import argparse

from repro.netsim import ScenarioConfig, run_scenario


def run_cell(base: ScenarioConfig, protocol: str, attack):
    return run_scenario(base.with_(protocol=protocol, attack=attack)).report()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--speed", type=float, default=10.0)
    parser.add_argument("--time", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--cryptanalyst", action="store_true")
    args = parser.parse_args()

    base = ScenarioConfig(max_speed=args.speed, sim_time_s=args.time, seed=args.seed)
    attacks = [None, "blackhole", "rushing"]
    if args.cryptanalyst:
        attacks.append("blackhole-cryptanalyst")

    print(
        f"{'attack':26s} {'protocol':9s} {'PDR':>7s} {'drop ratio':>11s} "
        f"{'auth rejects':>13s}"
    )
    for attack in attacks:
        for protocol in ("aodv", "mccls"):
            report = run_cell(base, protocol, attack)
            print(
                f"{str(attack or 'none'):26s} {protocol:9s} "
                f"{report['packet_delivery_ratio']:7.3f} "
                f"{report['packet_drop_ratio']:11.3f} "
                f"{report['auth_rejected']:13.0f}"
            )

    print(
        "\nreading: under both protocol-level attacks McCLS keeps the drop "
        "ratio at exactly 0 - unenrolled attackers cannot produce the "
        "hop-by-hop McCLS signatures, so no honest node routes through them "
        "(paper Figs. 4-5)."
    )
    if args.cryptanalyst:
        print(
            "the cryptanalyst black hole forges *valid* signatures using the "
            "algebraic break documented in repro/core/games.py, and the "
            "protection collapses - the published Theorems 1/2 do not hold."
        )


if __name__ == "__main__":
    main()
