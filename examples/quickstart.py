#!/usr/bin/env python3
"""Quickstart: certificateless signatures with McCLS in five steps.

Run:  python examples/quickstart.py [--bn254]

Walks through the paper's five stages (Setup, Extract-Partial-Private-Key,
Generate-Key-Pair, CL-Sign, CL-Verify) using the public API, then shows
what verification rejects.  Uses a fast test curve by default; pass
``--bn254`` for the production 254-bit curve (a few seconds per pairing
in pure Python).
"""

import argparse
import time

from repro.core import KeyGenerationCenter, McCLS
from repro.core.serialization import (
    decode_mccls_signature,
    encode_mccls_signature,
    mccls_signature_size,
)
from repro.pairing.bn import bn254, default_test_curve


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bn254", action="store_true", help="use the production BN254 curve"
    )
    args = parser.parse_args()
    curve = bn254() if args.bn254 else default_test_curve()
    print(f"curve: {curve.name} (p has {curve.p.bit_length()} bits)")

    # Stage 1 - Setup: the KGC picks the master key and public parameters.
    kgc = KeyGenerationCenter(McCLS, curve=curve, seed=42)
    params = kgc.public_params()
    print(f"setup done; P_pub in G1, group order ~2^{params.order.bit_length()}")

    # Stages 2+3 - enroll a user: the KGC supplies the partial private key
    # D_ID = s*H1(ID); the user picks the secret value x and publishes
    # P_ID = x*P_pub.  The KGC never learns x: no key escrow.
    alice = kgc.enroll("alice@manet")
    print(f"enrolled {alice.identity!r}; public key is one G1 point")

    # Stage 4 - CL-Sign: two scalar multiplications, zero pairings.
    message = b"route-reply: node 7 reachable, seq 41"
    start = time.perf_counter()
    signature = kgc.scheme.sign(message, alice)
    print(f"signed in {time.perf_counter() - start:.4f}s (no pairings)")

    # Stage 5 - CL-Verify: one pairing plus the cached constant
    # e(P_pub, Q_ID).
    start = time.perf_counter()
    ok = kgc.scheme.verify(message, signature, alice.identity, alice.public_key)
    print(f"verified={ok} in {time.perf_counter() - start:.4f}s (cold)")
    start = time.perf_counter()
    kgc.scheme.verify(message, signature, alice.identity, alice.public_key)
    print(f"re-verified in {time.perf_counter() - start:.4f}s (warm cache)")

    # Signatures are compact, fixed-size byte strings on the wire.
    blob = encode_mccls_signature(curve, signature)
    assert decode_mccls_signature(curve, blob) == signature
    print(
        f"wire size: {len(blob)} bytes "
        f"(= {mccls_signature_size(curve)} for this curve)"
    )

    # What verification rejects:
    tampered = kgc.scheme.verify(
        b"route-reply: node 7 reachable, seq 99", signature,
        alice.identity, alice.public_key,
    )
    wrong_identity = kgc.scheme.verify(
        message, signature, "mallory@manet", alice.public_key
    )
    print(f"tampered message accepted? {tampered}")
    print(f"transplanted identity accepted? {wrong_identity}")
    assert not tampered and not wrong_identity
    print("quickstart OK")


if __name__ == "__main__":
    main()
