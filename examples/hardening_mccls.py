#!/usr/bin/env python3
"""Breaking and (partially) fixing McCLS: the security-game battery.

Run:  python examples/hardening_mccls.py

The reproduction found that the published scheme is universally forgeable
(repro/core/games.py derives the attack; EXPERIMENTS.md documents it).
This example runs the full adversary battery against the published McCLS
and against McCLS+ - our hardened variant that publishes T_pub = s^2*P and
pins the signature's S component to the signer via
e(P_ID, S) == e(T_pub, Q_ID) - and prints the forgery-rate matrix,
including the residual Type II attack that survives the fix.
"""

from repro.core.hardened import demo_hardening
from repro.pairing.bn import default_test_curve

DESCRIPTIONS = {
    "random": "random signature components",
    "tamper": "claim a signed message says something else",
    "transplant": "replay another identity's signature",
    "key-replacement": "replace the public key, sign without D_ID",
    "universal": "ALGEBRAIC: forge from public values only",
    "malicious-kgc": "ALGEBRAIC: forge with the master key, no x",
    "kgc-signature-replay": "KGC + one observed signature",
}


def main() -> None:
    curve = default_test_curve()
    print(f"curve: {curve.name}; 3 trials per cell\n")
    results = demo_hardening(curve)
    header = f"{'adversary':22s} {'vs McCLS':>9s} {'vs McCLS+':>10s}  strategy"
    print(header)
    print("-" * len(header))
    for name, (against_mccls, against_plus) in results.items():
        print(
            f"{name:22s} {against_mccls:>9.0%} {against_plus:>10.0%}  "
            f"{DESCRIPTIONS.get(name, '')}"
        )
    print(
        "\nreading: the protocol-level rows (what MANET attacker nodes can\n"
        "do) fail against both schemes - that is why the paper's Figures\n"
        "4-5 work.  The algebraic rows break the published scheme outright;\n"
        "McCLS+ repairs them.  The last row is the honest limit: a KGC that\n"
        "observed one signature still forges, so full Type II security\n"
        "needs a message-bound S (YHG's construction), not a patch."
    )
    assert results["universal"] == (1.0, 0.0)
    assert results["kgc-signature-replay"] == (1.0, 1.0)


if __name__ == "__main__":
    main()
