#!/usr/bin/env python3
"""Batch verification: amortising pairings over bursts of signatures.

Run:  python examples/batch_verification.py [--batch 16]

A MANET node that just heard a burst of signed routing messages from one
neighbour can verify them together.  This extension carries the batch
trick of the paper's reference [15] (Yoon-Cheon-Kim, the IBS McCLS is
adapted from) into the certificateless setting: a same-signer batch of k
McCLS signatures verifies with ONE pairing instead of k.
"""

import argparse
import random
import time

from repro.core.batch import McCLSBatchVerifier
from repro.core.mccls import McCLS
from repro.pairing.bn import default_test_curve
from repro.pairing.groups import PairingContext


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch", type=int, default=16)
    args = parser.parse_args()

    curve = default_test_curve()
    ctx = PairingContext(curve, random.Random(7))
    scheme = McCLS(ctx, precompute_s=True)
    keys = scheme.generate_user_keys("neighbour-12")
    verifier = McCLSBatchVerifier(scheme)

    messages = [f"signed RREQ #{i}".encode() for i in range(args.batch)]
    items = verifier.sign_batch(messages, keys)
    # Warm the per-identity constant so both paths measure steady state.
    scheme.verify(messages[0], items[0][1], keys.identity, keys.public_key)

    with ctx.measure() as single:
        start = time.perf_counter()
        assert all(
            scheme.verify(m, s, keys.identity, keys.public_key) for m, s in items
        )
        single_time = time.perf_counter() - start

    with ctx.measure() as batched:
        start = time.perf_counter()
        assert verifier.verify_same_signer(items, keys.identity, keys.public_key)
        batch_time = time.perf_counter() - start

    print(f"batch of {args.batch} signatures from one signer ({curve.name}):")
    print(
        f"  one-by-one: {single.delta.pairings} pairings, {single_time:.3f}s"
    )
    print(f"  batched:    {batched.delta.pairings} pairing,  {batch_time:.3f}s")
    print(f"  speedup:    {single_time / batch_time:.1f}x")

    # Soundness: a single forged message poisons the whole batch.
    poisoned = list(items)
    poisoned[3] = (b"FORGED route update", poisoned[3][1])
    rejected = not verifier.verify_same_signer(
        poisoned, keys.identity, keys.public_key
    )
    print(f"  forged batch rejected: {rejected}")
    assert rejected


if __name__ == "__main__":
    main()
