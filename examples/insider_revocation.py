#!/usr/bin/env python3
"""Beyond the paper: insider attackers and the revocation response.

Run:  python examples/insider_revocation.py

The paper's attackers are outsiders - they hold no KGC-issued keys, so
McCLS authentication excludes them completely (Figures 4-5).  But what if
a *member* is compromised?  Its signatures verify by right, hop-by-hop
authentication is blind to it, and the black hole works again.

The deployable answer is revocation: the KGC signs a revocation list under
its reserved identity (repro.core.revocation), honest nodes reject listed
signers and purge routes through them.  This example sweeps the response
delay and prints how much traffic the insider destroys before each
response lands.
"""

from repro.netsim import ScenarioConfig, run_scenario


def main() -> None:
    base = ScenarioConfig(
        max_speed=10.0,
        sim_time_s=60.0,
        seed=3,
        protocol="mccls",
        attack="blackhole-insider",
        blackhole_fake_seq_boost=100,
    )
    print("insider black hole (2 compromised members) vs McCLS-AODV, 60s run\n")
    print(f"{'response':24s} {'PDR':>7s} {'drop ratio':>11s} {'auth rejects':>13s}")
    for revocation_time, label in (
        (None, "none (insider wins)"),
        (30.0, "revoke at t=30s"),
        (15.0, "revoke at t=15s"),
        (5.0, "revoke at t=5s"),
    ):
        report = run_scenario(
            base.with_(revocation_time_s=revocation_time)
        ).report()
        print(
            f"{label:24s} {report['packet_delivery_ratio']:7.3f} "
            f"{report['packet_drop_ratio']:11.3f} "
            f"{report['auth_rejected']:13.0f}"
        )
    print(
        "\nreading: every second of response delay is traffic lost to the\n"
        "insider; with a prompt signed revocation the network recovers to\n"
        "its no-attack delivery ratio.  Revocation is the one mechanism\n"
        "PKI gets for free and certificateless schemes must add explicitly\n"
        "- this reproduction adds it (repro/core/revocation.py)."
    )


if __name__ == "__main__":
    main()
