#!/usr/bin/env python3
"""Why certificateless? The paper's introduction, executed.

Run:  python examples/key_escrow_demo.py

Demonstrates the two problems the paper motivates McCLS with:

1. **Key escrow in ID-based crypto**: the PKG derives every user's private
   key from the master secret and can forge signatures for anyone.
2. **Certificate management in traditional PKI**: verifying one ECDSA
   signature drags in certificate-chain walks, expiry windows and
   revocation lists.

... and shows that the certificateless middle ground avoids both: the KGC
alone cannot sign for a user (it lacks the secret value x), and no
certificates exist at all.
"""

from repro.core import KeyGenerationCenter, McCLS
from repro.pairing.bn import default_test_curve
from repro.pki import CertificateAuthority, enroll_identity, verify_chain
from repro.schemes import PrivateKeyGenerator


def id_based_escrow(curve) -> None:
    print("=" * 64)
    print("1. Identity-based crypto: the key escrow problem")
    pkg = PrivateKeyGenerator(curve, seed=1)
    message = b"transfer all funds to account 0x1337"
    forged = pkg.escrow_forge(message, "alice@bank")
    accepted = pkg.scheme.verify(message, forged, "alice@bank")
    print(
        "   the PKG forged a signature for 'alice@bank' without her "
        f"participation; verifiers accept it: {accepted}"
    )
    assert accepted


def pki_certificates(curve) -> None:
    print("=" * 64)
    print("2. Traditional PKI: certificate management overhead")
    root = CertificateAuthority("root-ca", curve, seed=2)
    sub = CertificateAuthority("regional-ca", curve, parent=root, seed=3)
    alice = enroll_identity("alice@manet", sub, seed=4)
    authorities = {"root-ca": root, "regional-ca": sub}
    sig = sub.ecdsa.sign(b"hello", alice.keys)
    ok = sub.ecdsa.verify(b"hello", sig, None, alice.keys.public_key)
    verify_chain(alice.chain, authorities)
    print(
        f"   signature valid: {ok}; but trusting the key needed a "
        f"{len(alice.chain)}-certificate chain + CRL checks"
    )
    sub.revoke(alice.certificate.serial)
    try:
        verify_chain(alice.chain, authorities)
        revoked_detected = False
    except Exception:
        revoked_detected = True
    print(f"   after revocation the chain fails: {revoked_detected}")
    print("   (every verifier must track this state - the cost CLS removes)")


def certificateless(curve) -> None:
    print("=" * 64)
    print("3. Certificateless (McCLS): neither escrow nor certificates")
    kgc = KeyGenerationCenter(McCLS, curve=curve, seed=5)
    alice = kgc.enroll("alice@manet")
    sig = kgc.scheme.sign(b"hello", alice)
    ok = kgc.scheme.verify(b"hello", sig, alice.identity, alice.public_key)
    print(f"   signature valid with NO certificate: {ok}")
    # The KGC knows s (and thus D_ID) but not alice's secret value x.
    # Its best escrow-style attempt - using D_ID directly as the S
    # component - fails verification:
    from repro.core.mccls import McCLSSignature

    ctx = kgc.ctx
    r = ctx.random_scalar()
    big_r = ctx.g1 * r
    h = ctx.hash_scalar(b"H2/mccls", b"forged", big_r, alice.public_key)
    naive = McCLSSignature(v=(h * r) % ctx.order, s=alice.partial.d_id, r=big_r)
    forged_ok = kgc.scheme.verify(
        b"forged", naive, alice.identity, alice.public_key
    )
    print(f"   KGC's naive escrow forgery accepted: {forged_ok}")
    assert ok and not forged_ok
    print(
        "   (caveat: repro/core/games.py shows a non-naive algebraic forgery "
        "DOES exist against the published scheme - run the games tests)"
    )


def main() -> None:
    curve = default_test_curve()
    print(f"curve: {curve.name}")
    id_based_escrow(curve)
    pki_certificates(curve)
    certificateless(curve)
    print("=" * 64)
    print("demo OK")


if __name__ == "__main__":
    main()
