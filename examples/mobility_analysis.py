#!/usr/bin/env python3
"""Why the curves bend: topology dynamics behind Figures 1-5.

Run:  python examples/mobility_analysis.py

Samples the connectivity graph of the paper's scenario across the speed
sweep and prints the physical quantities that drive every figure: link
churn (-> route breaks -> RREQ overhead and delay), connectivity fraction
(-> the PDR ceiling) and flow path lengths (-> baseline delay).  Then runs
the matching simulations so the correlation is visible in one table.
"""

from repro.netsim.analysis import analyze_topology
from repro.netsim.scenario import ScenarioConfig, paper_speed_sweep, run_scenario


def main() -> None:
    print(
        f"{'speed':>6s} {'link chg/s':>11s} {'conn frac':>10s} "
        f"{'path len':>9s} {'AODV pdr':>9s} {'rreq ratio':>11s}"
    )
    for speed in paper_speed_sweep():
        config = ScenarioConfig(max_speed=speed, sim_time_s=40.0, seed=3)
        topology = analyze_topology(config)
        report = run_scenario(config).report()
        print(
            f"{speed:6.1f} {topology.link_changes_per_second:11.2f} "
            f"{topology.mean_largest_component_fraction:10.2f} "
            f"{topology.mean_flow_path_length:9.2f} "
            f"{report['packet_delivery_ratio']:9.3f} "
            f"{report['rreq_ratio']:11.3f}"
        )
    print(
        "\nreading: link churn rises roughly linearly with speed; each "
        "broken link is a potential route break, which is why the RREQ "
        "ratio (Fig. 2) climbs and why attackers - who strike during "
        "re-discovery - do more damage at speed (Figs. 4-5)."
    )


if __name__ == "__main__":
    main()
