"""Legacy setup shim so `pip install -e .` works offline (no `wheel` pkg).

Metadata lives in pyproject.toml; this file only mirrors what the legacy
editable-install path needs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "McCLS: certificateless signatures for mobile wireless "
        "cyber-physical systems (ICDCS 2008 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
