"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper - these quantify the load-bearing design
decisions of the reproduction:

1. **Pairing-constant caching** - the paper's core efficiency claim is
   that e(P_pub, Q_ID) is a constant; measure verify with cold vs warm
   caches.
2. **Batch verification** - the YCK-style same-signer batch from
   :mod:`repro.core.batch` vs verifying one-by-one.
3. **Curve-size scaling** - pairing cost vs BN field size (toy-48/64 vs
   BN254), the knob behind the crypto timing model.
4. **Aggressive vs tie-claim black hole** - the attacker-strength knob.
5. **Cryptanalyst black hole** - the attacker that exploits the
   universal-forgery break: McCLS's protection collapses, quantifying the
   gap between the paper's claimed and actual security.
"""

from __future__ import annotations

import random
import time

import pytest

from benchmarks.conftest import (
    averaged_report,
    bench_curve,
    bench_seeds,
    sim_time,
    write_series,
)
from repro.core.batch import McCLSBatchVerifier
from repro.core.mccls import McCLS
from repro.netsim.scenario import ScenarioConfig
from repro.pairing.bn import toy_curve
from repro.pairing.groups import PairingContext
from repro.pairing.pairing import pairing


def test_ablation_pairing_cache(benchmark, results_dir):
    """Cold vs warm verification: the e(P_pub, Q_ID) constant matters."""
    ctx = PairingContext(bench_curve(), random.Random(0xCAFE))
    scheme = McCLS(ctx)
    keys = scheme.generate_user_keys("cache@manet")
    sig = scheme.sign(b"cache ablation", keys)

    _, cold = scheme.measure_verify(b"cache ablation", sig, keys)
    _, warm = scheme.measure_verify(b"cache ablation", sig, keys)
    rows = [
        ("cold (first message from identity)", cold.pairings, cold.summary()),
        ("warm (constant pairing cached)", warm.pairings, warm.summary()),
    ]
    write_series(
        results_dir / "ablation_pairing_cache.txt",
        "Ablation - pairing-constant caching in CL-Verify",
        ["state", "pairings", "ops"],
        rows,
    )
    assert cold.pairings == 2
    assert warm.pairings == 1


def test_ablation_batch_verification(benchmark, results_dir):
    """Same-signer batches amortise verification to one pairing total."""
    ctx = PairingContext(bench_curve(), random.Random(0xD00D))
    scheme = McCLS(ctx, precompute_s=True)
    keys = scheme.generate_user_keys("batch@manet")
    verifier = McCLSBatchVerifier(scheme)
    messages = [f"routing update {i}".encode() for i in range(8)]
    items = verifier.sign_batch(messages, keys)
    # Warm the identity constant so both paths are steady-state.
    assert scheme.verify(
        messages[0], items[0][1], keys.identity, keys.public_key
    )

    with ctx.measure() as single:
        for message, sig in items:
            assert scheme.verify(message, sig, keys.identity, keys.public_key)
    with ctx.measure() as batched:
        assert verifier.verify_same_signer(items, keys.identity, keys.public_key)

    rows = [
        ("one-by-one", len(items), single.delta.pairings),
        ("batched", len(items), batched.delta.pairings),
    ]
    write_series(
        results_dir / "ablation_batch.txt",
        "Ablation - same-signer batch verification (8 signatures)",
        ["mode", "signatures", "pairings"],
        rows,
    )
    assert single.delta.pairings == len(items)
    assert batched.delta.pairings == 1


@pytest.mark.parametrize("bits", [32, 48, 64])
def test_ablation_curve_scaling_timing(benchmark, bits):
    """Pairing wall-clock vs BN curve size (pytest-benchmark)."""
    curve = toy_curve(bits)
    benchmark(pairing, curve, curve.g1, curve.g2)


def test_ablation_curve_scaling_table(benchmark, results_dir):
    """One-shot pairing timings across curve sizes, persisted as a table."""
    rows = []
    for bits in (32, 48, 64):
        curve = toy_curve(bits)
        start = time.perf_counter()
        pairing(curve, curve.g1, curve.g2)
        elapsed = time.perf_counter() - start
        rows.append((f"bn-toy{bits}", curve.p.bit_length(), elapsed))
    write_series(
        results_dir / "ablation_curve_scaling.txt",
        "Ablation - pairing cost vs BN curve size (pure Python)",
        ["curve", "p_bits", "pairing_seconds"],
        rows,
    )
    # Bigger fields must cost more.
    assert rows[0][2] < rows[-1][2]


def test_ablation_blackhole_aggressiveness(benchmark, results_dir):
    """Tie-claim vs unbeatable-seq black hole against plain AODV."""

    def sweep():
        seeds = bench_seeds()
        duration = sim_time()
        rows = []
        for boost, label in ((0, "tie-claim"), (100, "aggressive")):
            report = averaged_report(
                lambda seed: ScenarioConfig(
                    max_speed=10.0,
                    sim_time_s=duration,
                    seed=seed,
                    attack="blackhole",
                    blackhole_fake_seq_boost=boost,
                ),
                seeds,
            )
            rows.append(
                (
                    label,
                    report["packet_delivery_ratio"],
                    report["packet_drop_ratio"],
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_series(
        results_dir / "ablation_blackhole.txt",
        "Ablation - black hole sequence-number strategy vs AODV (10 m/s)",
        ["strategy", "aodv_pdr", "aodv_drop_ratio"],
        rows,
    )
    tie, aggressive = rows
    assert aggressive[2] > tie[2]  # unbounded freshness claim hurts more


def test_ablation_protocol_overhead(benchmark, results_dir):
    """AODV vs McCLS-AODV vs PKI-AODV: the cost of each trust model.

    Quantifies the paper-introduction claim that certificate management
    makes PKI expensive on MANETs: identical topology/traffic, three
    authentication designs, control-plane bytes and delay side by side.
    """

    def sweep():
        seeds = bench_seeds()
        duration = sim_time()
        rows = []
        for protocol in ("aodv", "mccls", "pki"):
            report = averaged_report(
                lambda seed: ScenarioConfig(
                    max_speed=10.0,
                    sim_time_s=duration,
                    seed=seed,
                    protocol=protocol,
                ),
                seeds,
            )
            rows.append(
                (
                    protocol,
                    report["packet_delivery_ratio"],
                    report["end_to_end_delay"],
                    report["control_bytes_sent"],
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_series(
        results_dir / "ablation_protocol_overhead.txt",
        "Ablation - authentication trust models (10 m/s, no attack)",
        ["protocol", "pdr", "delay_s", "control_bytes"],
        rows,
    )
    by_protocol = {row[0]: row for row in rows}
    # Delivery is comparable across all three ...
    assert all(row[1] > 0.85 for row in rows)
    # ... but certificates dominate the control plane.
    assert by_protocol["pki"][3] > by_protocol["mccls"][3] > by_protocol["aodv"][3]


def test_ablation_insider_revocation(benchmark, results_dir):
    """Insider black hole vs the revocation response.

    An enrolled attacker defeats hop-by-hop authentication outright; the
    KGC's signed revocation list (repro.core.revocation) restores the
    protection, with damage proportional to the response delay.
    """

    def sweep():
        seeds = bench_seeds()
        duration = sim_time()
        rows = []
        for revocation_time, label in (
            (None, "no revocation"),
            (duration / 3, "revoke at T/3"),
            (5.0, "revoke early"),
        ):
            report = averaged_report(
                lambda seed: ScenarioConfig(
                    max_speed=10.0,
                    sim_time_s=duration,
                    seed=seed,
                    protocol="mccls",
                    attack="blackhole-insider",
                    blackhole_fake_seq_boost=100,
                    revocation_time_s=revocation_time,
                ),
                seeds,
            )
            rows.append(
                (
                    label,
                    report["packet_delivery_ratio"],
                    report["packet_drop_ratio"],
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_series(
        results_dir / "ablation_insider_revocation.txt",
        "Ablation - insider black hole vs revocation response (10 m/s)",
        ["response", "mccls_pdr", "mccls_drop_ratio"],
        rows,
    )
    none, late, early = rows
    assert none[2] > late[2] > early[2]


def test_ablation_cryptanalyst_blackhole(benchmark, results_dir):
    """The universal-forgery black hole defeats McCLS-AODV."""

    def sweep():
        seeds = bench_seeds()
        duration = sim_time()
        rows = []
        for attack, label in (
            ("blackhole", "protocol-level black hole"),
            ("blackhole-cryptanalyst", "cryptanalyst black hole"),
        ):
            report = averaged_report(
                lambda seed: ScenarioConfig(
                    max_speed=10.0,
                    sim_time_s=duration,
                    seed=seed,
                    protocol="mccls",
                    attack=attack,
                ),
                seeds,
            )
            rows.append(
                (
                    label,
                    report["packet_delivery_ratio"],
                    report["packet_drop_ratio"],
                    report["auth_rejected"],
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_series(
        results_dir / "ablation_cryptanalyst.txt",
        "Ablation - McCLS-AODV vs a forging attacker (10 m/s)",
        ["attacker", "mccls_pdr", "mccls_drop_ratio", "auth_rejected"],
        rows,
    )
    protocol_level, cryptanalyst = rows
    assert protocol_level[2] == 0.0  # the paper's claim holds here ...
    assert cryptanalyst[2] > 0.02  # ... and collapses here (the break)
