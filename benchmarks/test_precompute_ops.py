"""Fixed-base precomputation: field-multiplication savings, measured.

The comb tables only pay off if the steady-state sign/verify path
executes strictly fewer base-field multiplications than the generic
ladder.  This bench counts ``fp_mul`` through the obs tally for McCLS
with precomputation on and off, asserts the strict reduction, and
persists the measured ratio next to the Table 1 outputs.
"""

from __future__ import annotations

import random

from benchmarks.conftest import bench_curve, write_series
from repro import obs
from repro.pairing.groups import PairingContext
from repro.schemes.registry import create_scheme

MESSAGE = b"precompute measurement"


def _steady_state(precompute: bool):
    """A scheme + keys + signature with every lazy cache already warm."""
    ctx = PairingContext(
        bench_curve(), random.Random(0xFEED), precompute=precompute
    )
    scheme = create_scheme("mccls", ctx)
    keys = scheme.generate_user_keys("bench@manet")
    sig = None
    for _ in range(3):  # past the comb build threshold + pairing cache
        sig = scheme.sign(MESSAGE, keys)
        assert scheme.verify(MESSAGE, sig, keys.identity, keys.public_key)
    return scheme, keys, sig


def _fp_muls(fn) -> int:
    with obs.collecting() as registry:
        fn()
    return registry.field_ops.fp_mul


def test_precomputed_sign_verify_beats_naive(benchmark, results_dir):
    fast_scheme, fast_keys, fast_sig = _steady_state(precompute=True)
    naive_scheme, naive_keys, naive_sig = _steady_state(precompute=False)

    fast_sign = _fp_muls(lambda: fast_scheme.sign(MESSAGE, fast_keys))
    naive_sign = _fp_muls(lambda: naive_scheme.sign(MESSAGE, naive_keys))
    fast_verify = _fp_muls(
        lambda: fast_scheme.verify(
            MESSAGE, fast_sig, fast_keys.identity, fast_keys.public_key
        )
    )
    naive_verify = _fp_muls(
        lambda: naive_scheme.verify(
            MESSAGE, naive_sig, naive_keys.identity, naive_keys.public_key
        )
    )

    rows = [
        ("sign", naive_sign, fast_sign, naive_sign / max(fast_sign, 1)),
        (
            "verify (warm)",
            naive_verify,
            fast_verify,
            naive_verify / max(fast_verify, 1),
        ),
    ]
    write_series(
        results_dir / "precompute_ops.txt",
        "McCLS fp_mul: generic ladder vs fixed-base comb",
        ["operation", "naive fp_mul", "precomp fp_mul", "speedup"],
        rows,
    )

    # The acceptance bar: strictly fewer base-field multiplications.
    assert fast_sign < naive_sign
    assert fast_verify < naive_verify

    benchmark(fast_scheme.sign, MESSAGE, fast_keys)
