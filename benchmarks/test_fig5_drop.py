"""Figure 5: packet drop ratio (packets discarded by attacker nodes).

Paper result: attackers discard a substantial fraction of AODV's data
packets (up to ~19% for black hole, ~57% for rushing), while "McCLS scheme
is able to detect all black hole attack and rushing attack and the packet
drop ratio is zero".  The zero is exact in this reproduction: unenrolled
attackers cannot produce the hop-by-hop signatures, so no honest node ever
routes data through them.
"""

from __future__ import annotations

from benchmarks.conftest import averaged_report, bench_seeds, sim_time, write_series
from repro.netsim.scenario import ScenarioConfig, paper_speed_sweep


def _sweep():
    seeds = bench_seeds()
    duration = sim_time()
    rows = []
    for speed in paper_speed_sweep():
        cells = [speed]
        for protocol in ("aodv", "mccls"):
            for attack in ("blackhole", "rushing"):
                report = averaged_report(
                    lambda seed: ScenarioConfig(
                        max_speed=speed,
                        sim_time_s=duration,
                        seed=seed,
                        protocol=protocol,
                        attack=attack,
                    ),
                    seeds,
                )
                cells.append(report["packet_drop_ratio"])
        rows.append(tuple(cells))
    return rows


def test_fig5_packet_drop_ratio(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_series(
        results_dir / "fig5_drop.txt",
        "Figure 5 - Packet Drop Ratio (dropped by attackers / sent)",
        [
            "speed_m_s",
            "aodv_blackhole",
            "aodv_rushing",
            "mccls_blackhole",
            "mccls_rushing",
        ],
        rows,
    )
    for row in rows:
        # The paper's exact claim: zero drops by attackers under McCLS.
        assert row[3] == 0.0, row
        assert row[4] == 0.0, row
    # AODV bleeds packets to the attackers once mobility forces fresh
    # discoveries; the damage grows with speed (the paper's Fig 5 trend,
    # which peaks at 19%/57% on their testbed).
    max_blackhole = max(row[1] for row in rows)
    max_rushing = max(row[2] for row in rows)
    assert max_blackhole > 0.08, max_blackhole
    assert max_rushing > 0.06, max_rushing
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][2] > rows[0][2]
