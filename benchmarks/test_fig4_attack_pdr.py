"""Figure 4: packet delivery ratio under black hole / rushing attacks.

Paper result: under 2-node black hole and 2-node rushing attacks the PDR of
plain AODV degrades badly (down to 43% at 5 m/s under rushing), while
McCLS-AODV stays near its no-attack delivery ratio under both attacks.
"""

from __future__ import annotations

from benchmarks.conftest import averaged_report, bench_seeds, sim_time, write_series
from repro.netsim.scenario import ScenarioConfig, paper_speed_sweep


def _sweep():
    seeds = bench_seeds()
    duration = sim_time()
    rows = []
    for speed in paper_speed_sweep():
        cells = [speed]
        for protocol in ("aodv", "mccls"):
            for attack in ("blackhole", "rushing"):
                report = averaged_report(
                    lambda seed: ScenarioConfig(
                        max_speed=speed,
                        sim_time_s=duration,
                        seed=seed,
                        protocol=protocol,
                        attack=attack,
                    ),
                    seeds,
                )
                cells.append(report["packet_delivery_ratio"])
        rows.append(tuple(cells))
    return rows


def test_fig4_pdr_under_attack(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_series(
        results_dir / "fig4_attack_pdr.txt",
        "Figure 4 - Packet Delivery Ratio under attack",
        [
            "speed_m_s",
            "aodv_blackhole",
            "aodv_rushing",
            "mccls_blackhole",
            "mccls_rushing",
        ],
        rows,
    )
    # The attacks bite through mobility-driven re-discoveries, so the gap
    # opens at the faster points (at low speed initially-good routes
    # persist and both protocols deliver).  Average the >= 10 m/s rows:
    # McCLS beats AODV under both attacks by a clear margin (the paper's
    # headline result).
    fast = rows[2:]

    def mean(index):
        return sum(row[index] for row in fast) / len(fast)

    aodv_bh, aodv_rush, mccls_bh, mccls_rush = (mean(i) for i in (1, 2, 3, 4))
    assert mccls_bh > aodv_bh + 0.05, (mccls_bh, aodv_bh)
    assert mccls_rush > aodv_rush + 0.05, (mccls_rush, aodv_rush)
    # AODV's delivery degrades as speed rises under attack (paper's Fig 4).
    assert rows[-1][1] < rows[0][1] - 0.05
    # McCLS under attack keeps delivering at every speed.
    assert all(row[3] > 0.85 and row[4] > 0.85 for row in rows)
