"""Table 1: operation counts and timings of the four CLS schemes.

Reproduces the paper's comparison:

    =========  =======  =========  ============
    scheme     Sign     Verify     PubKey Len
    =========  =======  =========  ============
    AP   [1]   1p+3s    4p+1e      2 points
    ZWXF [17]  4s       4p+3s      1 point
    YHG  [13]  2s       2p+3s      1 point
    McCLS      2s       1p+1s      1 point
    =========  =======  =========  ============

where p = pairing, s = scalar multiplication (the paper's accounting folds
MapToPoint hashes into "s" - the bench reports both raw and equivalent
counts), e = GT exponentiation.  Wall-clock sign/verify timings come from
pytest-benchmark on the real implementations.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import bench_curve, write_series
from repro.pairing.groups import PairingContext
from repro.schemes.registry import TABLE1_SCHEMES, scheme_class

PAPER_TABLE1 = {
    "ap": {"sign": "1p+3s", "verify": "4p+1e", "pubkey_points": 2},
    "zwxf": {"sign": "4s", "verify": "4p+3s", "pubkey_points": 1},
    "yhg": {"sign": "2s", "verify": "2p+3s", "pubkey_points": 1},
    "mccls": {"sign": "2s", "verify": "1p+1s", "pubkey_points": 1},
}

MESSAGE = b"table1 operation measurement"


def _scheme_setup(name: str):
    ctx = PairingContext(bench_curve(), random.Random(0xBEEF))
    scheme = scheme_class(name)(ctx)
    keys = scheme.generate_user_keys("bench@manet")
    return scheme, keys


def _equivalent(ops) -> str:
    """Paper-style op string with MapToPoint hashes folded into 's'."""
    parts = []
    if ops.pairings:
        parts.append(f"{ops.pairings}p")
    mults = ops.scalar_mults + ops.group_hashes
    if mults:
        parts.append(f"{mults}s")
    if ops.gt_exps:
        parts.append(f"{ops.gt_exps}e")
    return "+".join(parts) if parts else "0"


def test_table1_operation_counts(benchmark, results_dir):
    """Regenerate the operation-count rows and check them against Table 1.

    Two verify columns are reported because the paper's own accounting is
    asymmetric: McCLS's constant pairing e(P_pub, Q_ID) is counted as free
    (cached per identity), while the baselines' equally-cacheable constant
    pairings are charged.  "cold" charges everything; "warm" caches the
    per-identity constants for every scheme.
    """

    def measure():
        rows = []
        for name in TABLE1_SCHEMES:
            scheme, keys = _scheme_setup(name)
            scheme.sign(MESSAGE, keys)  # warm signer-side caches (AP, ZWXF)
            sig, sign_ops = scheme.measure_sign(MESSAGE, keys)
            ok_cold, cold_ops = scheme.measure_verify(MESSAGE, sig, keys)
            ok_warm, warm_ops = scheme.measure_verify(MESSAGE, sig, keys)
            assert ok_cold and ok_warm
            rows.append(
                (
                    name,
                    PAPER_TABLE1[name]["sign"],
                    _equivalent(sign_ops),
                    PAPER_TABLE1[name]["verify"],
                    _equivalent(cold_ops),
                    _equivalent(warm_ops),
                    PAPER_TABLE1[name]["pubkey_points"],
                    len(keys.public_key_points()),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    write_series(
        results_dir / "table1_ops.txt",
        "Table 1 - CLS scheme comparison (paper vs measured)",
        [
            "scheme",
            "paper sign",
            "meas sign",
            "paper verify",
            "meas verify cold",
            "meas verify warm",
            "paper pk pts",
            "meas pk pts",
        ],
        rows,
    )

    by_name = {row[0]: row for row in rows}

    def pairings(op_string: str) -> int:
        return int(op_string.split("p")[0]) if "p" in op_string else 0

    # Sign column reproduces the paper exactly (hashes folded into 's').
    for name in TABLE1_SCHEMES:
        assert by_name[name][2] == PAPER_TABLE1[name]["sign"], by_name[name]
    # Cold verify reproduces the paper's pairing counts for the baselines;
    # McCLS costs 2 cold (its constant included) and 1 warm - the paper
    # reports the warm number, which is the per-identity steady state.
    assert pairings(by_name["ap"][4]) == 4
    assert pairings(by_name["zwxf"][4]) == 4
    assert pairings(by_name["yhg"][4]) == 2
    assert pairings(by_name["mccls"][4]) == 2
    assert pairings(by_name["mccls"][5]) == 1
    # AP is the only scheme with a two-point public key.
    assert by_name["ap"][7] == 2
    assert all(by_name[n][7] == 1 for n in ("zwxf", "yhg", "mccls"))


@pytest.mark.parametrize("name", TABLE1_SCHEMES)
def test_sign_timing(benchmark, name):
    """Wall-clock signing cost per scheme (pytest-benchmark)."""
    scheme, keys = _scheme_setup(name)
    benchmark(scheme.sign, MESSAGE, keys)


@pytest.mark.parametrize("name", TABLE1_SCHEMES)
def test_verify_timing(benchmark, name):
    """Wall-clock warm verification cost per scheme."""
    scheme, keys = _scheme_setup(name)
    sig = scheme.sign(MESSAGE, keys)
    # Warm the per-identity caches so the steady state is measured.
    assert scheme.verify(
        MESSAGE, sig, keys.identity, keys.public_key, keys.public_key_extra
    )
    benchmark(
        scheme.verify,
        MESSAGE,
        sig,
        keys.identity,
        keys.public_key,
        keys.public_key_extra,
    )


def test_signature_sizes(benchmark, results_dir):
    """Wire sizes on BN254 (the sizes the simulator charges per packet)."""
    from repro.core.serialization import (
        g1_point_size,
        g2_point_size,
        mccls_signature_size,
        scalar_size,
    )
    from repro.pairing.bn import bn254

    curve = bn254()
    rows = [
        ("scalar (Zn)", scalar_size(curve)),
        ("G1 point", g1_point_size(curve)),
        ("G2 point", g2_point_size(curve)),
        ("McCLS signature (V,S,R)", mccls_signature_size(curve)),
    ]
    write_series(
        results_dir / "table1_sizes.txt",
        "Wire sizes on BN254 (bytes)",
        ["object", "bytes"],
        rows,
    )
    assert mccls_signature_size(curve) == (
        scalar_size(curve) + g1_point_size(curve) + g2_point_size(curve)
    )
