"""Figure 1: packet delivery ratio vs node speed (no attack).

Paper result: AODV and McCLS deliver essentially the same fraction of
packets at every speed ("without causing any substantial degradation of
the network performance"), and delivery degrades as nodes move faster.
"""

from __future__ import annotations

from benchmarks.conftest import averaged_report, bench_seeds, sim_time, write_series
from repro.netsim.scenario import ScenarioConfig, paper_speed_sweep


def _sweep():
    seeds = bench_seeds()
    duration = sim_time()
    rows = []
    for speed in paper_speed_sweep():
        aodv = averaged_report(
            lambda seed: ScenarioConfig(
                max_speed=speed, sim_time_s=duration, seed=seed
            ),
            seeds,
        )
        mccls = averaged_report(
            lambda seed: ScenarioConfig(
                max_speed=speed,
                sim_time_s=duration,
                seed=seed,
                protocol="mccls",
            ),
            seeds,
        )
        rows.append(
            (
                speed,
                aodv["packet_delivery_ratio"],
                mccls["packet_delivery_ratio"],
            )
        )
    return rows


def test_fig1_packet_delivery_ratio(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_series(
        results_dir / "fig1_pdr.txt",
        "Figure 1 - Packet Delivery Ratio vs speed (no attack)",
        ["speed_m_s", "aodv_pdr", "mccls_pdr"],
        rows,
    )
    for speed, aodv_pdr, mccls_pdr in rows:
        # Paper claim: McCLS tracks AODV closely (no substantial drop).
        assert abs(aodv_pdr - mccls_pdr) < 0.08, (speed, aodv_pdr, mccls_pdr)
        # At speed 0 delivery is topology luck (disconnected static pairs
        # never heal), so only the mobile points get the strict bound.
        floor = 0.55 if speed == 0 else 0.8
        assert aodv_pdr > floor, (speed, aodv_pdr)
        assert mccls_pdr > floor, (speed, mccls_pdr)
