"""Pairing-execution invariants, measured on the real pairing stack.

The Table 1 bench counts the operations the scheme implementations
*request* through :class:`~repro.pairing.groups.PairingContext` (OpCount).
These assertions instead count what the pairing stack *actually executes*
(Miller loops + final exponentiations reported by :mod:`repro.obs`), which
is the ground truth behind the paper's efficiency claim: in the warm
per-identity steady state a McCLS verifier runs exactly one pairing, while
the ZWXF and AP baselines run several.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import bench_curve, write_series
from repro import obs
from repro.pairing.groups import PairingContext
from repro.schemes.registry import TABLE1_SCHEMES, scheme_class

MESSAGE = b"obs pairing-execution invariants"


def _executed_pairings(name: str):
    """(sign, cold verify, warm verify) pairing executions for one scheme."""
    ctx = PairingContext(bench_curve(), random.Random(0x0B5))
    scheme = scheme_class(name)(ctx)
    keys = scheme.generate_user_keys("obs@bench")
    scheme.sign(MESSAGE, keys)  # warm signer-side caches (AP, ZWXF)
    with obs.collecting() as registry:
        ops = registry.field_ops

        before = ops.snapshot()
        sig = scheme.sign(MESSAGE, keys)
        sign_pairings = ops.diff(before)["pairings"]

        before = ops.snapshot()
        assert scheme.verify(
            MESSAGE, sig, keys.identity, keys.public_key, keys.public_key_extra
        )
        cold_pairings = ops.diff(before)["pairings"]

        before = ops.snapshot()
        assert scheme.verify(
            MESSAGE, sig, keys.identity, keys.public_key, keys.public_key_extra
        )
        warm_pairings = ops.diff(before)["pairings"]
    return sign_pairings, cold_pairings, warm_pairings


@pytest.fixture(scope="module")
def executed():
    return {name: _executed_pairings(name) for name in TABLE1_SCHEMES}


def test_pairing_execution_counts(benchmark, executed, results_dir):
    """Record the measured executions and pin the headline invariants."""
    rows = [
        (name, sign, cold, warm)
        for name, (sign, cold, warm) in executed.items()
    ]
    benchmark.pedantic(lambda: rows, rounds=1, iterations=1)
    write_series(
        results_dir / "obs_pairing_executions.txt",
        "Pairing executions measured by repro.obs (real pairing stack)",
        ["scheme", "sign", "verify cold", "verify warm"],
        rows,
    )
    # Only AP pairs while signing (its U = e(P, P)^r commitment).
    for name, (sign, _, _) in executed.items():
        if name != "ap":
            assert sign == 0, (name, sign)


def test_mccls_signs_without_pairing(executed):
    """McCLS signing is pairing-free (2 scalar multiplications only)."""
    sign, _, _ = executed["mccls"]
    assert sign == 0


def test_mccls_warm_verify_is_exactly_one_pairing(executed):
    """The steady-state verifier executes exactly one pairing."""
    _, _, warm = executed["mccls"]
    assert warm == 1


def test_baselines_execute_more_warm_pairings(executed):
    """ZWXF and AP genuinely pay multiple pairings even fully warm."""
    _, _, zwxf_warm = executed["zwxf"]
    _, _, ap_warm = executed["ap"]
    _, _, mccls_warm = executed["mccls"]
    assert zwxf_warm > mccls_warm
    assert ap_warm > mccls_warm
    assert zwxf_warm == 3  # one of its four pairings is a cached constant
    assert ap_warm == 4  # AP caches nothing


def test_cold_verify_includes_cache_fill(executed):
    """Cold verification pays the per-identity constant pairing once."""
    _, cold, warm = executed["mccls"]
    assert cold == warm + 1


def _executed_detail(name: str):
    """(cold, warm) full field-op diffs for one scheme's verify path."""
    ctx = PairingContext(bench_curve(), random.Random(0x0B5))
    scheme = scheme_class(name)(ctx)
    keys = scheme.generate_user_keys("obs@bench")
    with obs.collecting() as registry:
        ops = registry.field_ops
        sig = scheme.sign(MESSAGE, keys)

        before = ops.snapshot()
        assert scheme.verify(
            MESSAGE, sig, keys.identity, keys.public_key, keys.public_key_extra
        )
        cold = ops.diff(before)

        before = ops.snapshot()
        assert scheme.verify(
            MESSAGE, sig, keys.identity, keys.public_key, keys.public_key_extra
        )
        warm = ops.diff(before)
    return cold, warm


def test_mccls_cold_verify_shares_one_final_exponentiation():
    """The multi-pairing path: a COLD verify runs both Miller loops under a
    single shared final exponentiation (the tentpole acceptance check)."""
    cold, warm = _executed_detail("mccls")
    assert cold["miller_loops"] == 2
    assert cold["final_exps"] == 1
    assert warm["miller_loops"] == 1
    assert warm["final_exps"] == 1


def test_zwxf_warm_verify_shares_one_final_exponentiation():
    """ZWXF's three live pairings also collapse onto one final exp."""
    _, warm = _executed_detail("zwxf")
    assert warm["miller_loops"] == 3
    assert warm["final_exps"] == 1


def test_optimized_pairing_emits_fast_path_counters():
    """The sparse/cyclotomic kernels actually run inside a verify."""
    ctx = PairingContext(bench_curve(), random.Random(0x0B5))
    scheme = scheme_class("mccls")(ctx)
    keys = scheme.generate_user_keys("obs@bench")
    sig = scheme.sign(MESSAGE, keys)
    with obs.collecting() as registry:
        assert scheme.verify(MESSAGE, sig, keys.identity, keys.public_key)
    assert registry.counter_value("pairing.sparse_mults") > 0
    assert registry.counter_value("pairing.cyclo_squares") > 0
    assert registry.field_ops.fp12_sparse_mul > 0
    assert registry.field_ops.fp12_cyclo_sq > 0
