"""Figure 2: RREQ ratio vs node speed (no attack).

Paper result: the RREQ ratio (control overhead per data transmission) of
McCLS is similar to AODV, and both increase with node speed because faster
movement breaks routes and forces more discoveries.
"""

from __future__ import annotations

from benchmarks.conftest import averaged_report, bench_seeds, sim_time, write_series
from repro.netsim.scenario import ScenarioConfig, paper_speed_sweep


def _sweep():
    seeds = bench_seeds()
    duration = sim_time()
    rows = []
    for speed in paper_speed_sweep():
        aodv = averaged_report(
            lambda seed: ScenarioConfig(
                max_speed=speed, sim_time_s=duration, seed=seed
            ),
            seeds,
        )
        mccls = averaged_report(
            lambda seed: ScenarioConfig(
                max_speed=speed,
                sim_time_s=duration,
                seed=seed,
                protocol="mccls",
            ),
            seeds,
        )
        rows.append((speed, aodv["rreq_ratio"], mccls["rreq_ratio"]))
    return rows


def test_fig2_rreq_ratio(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_series(
        results_dir / "fig2_rreq.txt",
        "Figure 2 - RREQ Ratio vs speed (no attack)",
        ["speed_m_s", "aodv_rreq_ratio", "mccls_rreq_ratio"],
        rows,
    )
    # Paper shape: overhead grows with mobility for both protocols.
    static_aodv = rows[0][1]
    fastest_aodv = rows[-1][1]
    static_mccls = rows[0][2]
    fastest_mccls = rows[-1][2]
    assert fastest_aodv > static_aodv
    assert fastest_mccls > static_mccls
    # And the two protocols stay in the same overhead regime.
    for speed, aodv_ratio, mccls_ratio in rows:
        assert abs(aodv_ratio - mccls_ratio) < 0.15, (speed, aodv_ratio, mccls_ratio)
