"""Shared fixtures and helpers for the benchmark harness.

Environment knobs (all optional):

* ``REPRO_BENCH_SIMTIME``  - simulated seconds per scenario run (default 60;
  the paper-scale setting is 120+).
* ``REPRO_BENCH_SEEDS``    - comma-separated seeds to average over
  (default "3,11"; more seeds -> smoother curves).
* ``REPRO_BENCH_CURVE``    - "toy48" | "toy64" | "bn254" for crypto
  micro-benchmarks (default toy64).

Each figure bench writes its series to ``benchmarks/results/<name>.txt`` so
the regenerated paper rows survive the pytest run.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Sequence

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def sim_time() -> float:
    return float(os.environ.get("REPRO_BENCH_SIMTIME", "60"))


def bench_seeds() -> List[int]:
    raw = os.environ.get("REPRO_BENCH_SEEDS", "3,11")
    return [int(part) for part in raw.split(",") if part.strip()]


def bench_curve():
    from repro.pairing.bn import bn254, toy_curve

    name = os.environ.get("REPRO_BENCH_CURVE", "toy64")
    if name == "bn254":
        return bn254()
    if name == "toy48":
        return toy_curve(48)
    return toy_curve(64)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_series(
    path: Path,
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence],
) -> str:
    """Render an aligned text table, print it, and persist it."""
    lines = [title, ""]
    widths = [max(len(str(h)), 12) for h in header]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        rendered = [
            f"{value:.4f}" if isinstance(value, float) else str(value)
            for value in row
        ]
        lines.append("  ".join(v.ljust(w) for v, w in zip(rendered, widths)))
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    print("\n" + text)
    return text


def averaged_report(config_factory, seeds: Sequence[int]) -> Dict[str, float]:
    """Run one scenario per seed and average every reported metric."""
    from repro.netsim.scenario import run_scenario

    reports = [run_scenario(config_factory(seed)).report() for seed in seeds]
    keys = reports[0].keys()
    return {
        key: sum(report[key] for report in reports) / len(reports)
        for key in keys
    }
