#!/usr/bin/env python3
"""Pairing-core micro-benchmark: optimised pipeline vs the affine reference.

Run:  PYTHONPATH=src python benchmarks/bench_pairing.py [--curves toy48,bn254]

For each curve this measures, via the :mod:`repro.obs` field-op tally,

* a single ``pairing()`` through the optimised path (sparse projective
  Miller loop + cyclotomic final exponentiation) against the retained
  naive reference (:mod:`repro.pairing.naive`), in base-field
  multiplications and wall-clock seconds;
* a COLD McCLS verify routed through the shared-final-exponentiation
  co-DH check (asserting it executes exactly ONE final exponentiation);
* a warm ZWXF verify, whose three live pairings share one final
  exponentiation through ``multi_pair``.

Results land in ``benchmarks/results/BENCH_pairing.json``.  The script
exits non-zero unless the optimised single pairing costs at most half the
naive reference's base-field multiplications on every measured curve —
the PR's headline >=2x op-count reduction.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(SRC))

from repro import obs
from repro.core.mccls import McCLS
from repro.pairing.bn import bn254, toy_curve
from repro.pairing.groups import PairingContext
from repro.pairing.naive import pairing_naive
from repro.pairing.pairing import pairing
from repro.schemes.zwxf import ZWXFScheme

RESULTS = Path(__file__).parent / "results" / "BENCH_pairing.json"

CURVES = {
    "toy48": lambda: toy_curve(48),
    "toy64": lambda: toy_curve(64),
    "bn254": bn254,
}


def _measure(fn):
    """Run ``fn`` once under a fresh registry -> (field_ops, seconds, out)."""
    with obs.collecting() as registry:
        start = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - start
    return registry.field_ops, elapsed, out


def bench_curve(name: str, factory) -> dict:
    """All pairing-core measurements for one curve."""
    curve = factory()
    report: dict = {"curve": name, "bits": curve.p.bit_length()}

    fast_ops, fast_time, fast_val = _measure(
        lambda: pairing(curve, curve.g1, curve.g2)
    )
    naive_ops, naive_time, naive_val = _measure(
        lambda: pairing_naive(curve, curve.g1, curve.g2)
    )
    if fast_val != naive_val:
        raise SystemExit(f"{name}: optimised pairing != naive reference")
    report["single_pairing"] = {
        "optimized": {"fp_mul": fast_ops.fp_mul, "seconds": fast_time},
        "naive": {"fp_mul": naive_ops.fp_mul, "seconds": naive_time},
        "fp_mul_ratio": naive_ops.fp_mul / fast_ops.fp_mul,
        "speedup": naive_time / fast_time if fast_time else float("inf"),
    }

    ctx = PairingContext(curve, random.Random(0xBE7C4))
    scheme = McCLS(ctx)
    keys = scheme.generate_user_keys("bench@pairing")
    sig = scheme.sign(b"bench", keys)
    cold_ops, cold_time, ok = _measure(
        lambda: scheme.verify(b"bench", sig, keys.identity, keys.public_key)
    )
    assert ok, f"{name}: cold McCLS verify failed"
    if cold_ops.final_exps != 1:
        raise SystemExit(
            f"{name}: cold McCLS verify ran {cold_ops.final_exps} final "
            "exponentiations (expected exactly 1 shared one)"
        )
    report["mccls_cold_verify"] = {
        "fp_mul": cold_ops.fp_mul,
        "seconds": cold_time,
        "miller_loops": cold_ops.miller_loops,
        "final_exps": cold_ops.final_exps,
    }

    zwxf = ZWXFScheme(ctx)
    zkeys = zwxf.generate_user_keys("bench@pairing")
    zsig = zwxf.sign(b"bench", zkeys)
    assert zwxf.verify(b"bench", zsig, zkeys.identity, zkeys.public_key)
    multi_ops, multi_time, ok = _measure(
        lambda: zwxf.verify(b"bench", zsig, zkeys.identity, zkeys.public_key)
    )
    assert ok, f"{name}: warm ZWXF verify failed"
    report["zwxf_warm_multi_pairing_verify"] = {
        "fp_mul": multi_ops.fp_mul,
        "seconds": multi_time,
        "miller_loops": multi_ops.miller_loops,
        "final_exps": multi_ops.final_exps,
    }
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--curves",
        default="toy48,bn254",
        help="comma-separated subset of: " + ",".join(CURVES),
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=2.0,
        help="required naive/optimized fp_mul ratio for a single pairing",
    )
    args = parser.parse_args()

    reports = []
    failures = []
    for name in args.curves.split(","):
        name = name.strip()
        if name not in CURVES:
            raise SystemExit(f"unknown curve {name!r}")
        report = bench_curve(name, CURVES[name])
        reports.append(report)
        ratio = report["single_pairing"]["fp_mul_ratio"]
        status = "ok" if ratio >= args.min_ratio else "TOO SLOW"
        print(
            f"{name:>6}: pairing fp_mul "
            f"{report['single_pairing']['optimized']['fp_mul']} optimized vs "
            f"{report['single_pairing']['naive']['fp_mul']} naive "
            f"({ratio:.2f}x, need >={args.min_ratio:.1f}x) [{status}]"
        )
        print(
            f"        cold mccls verify: {report['mccls_cold_verify']['fp_mul']}"
            f" fp_mul, {report['mccls_cold_verify']['miller_loops']} Miller"
            f" loops, {report['mccls_cold_verify']['final_exps']} final exp"
        )
        if ratio < args.min_ratio:
            failures.append(name)

    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(json.dumps({"results": reports}, indent=2) + "\n")
    print(f"wrote {RESULTS}")
    if failures:
        print(f"FAIL: fp_mul reduction below threshold on: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
