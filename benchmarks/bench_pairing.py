#!/usr/bin/env python3
"""Pairing-core micro-benchmark: optimised pipeline vs the affine reference.

Run:  PYTHONPATH=src python benchmarks/bench_pairing.py \
          [--curves toy48,bn254] [--backends reference,native]

For each (curve, field backend) pair this measures, via the
:mod:`repro.obs` field-op tally,

* a single ``pairing()`` through the optimised path (sparse projective
  Miller loop + cyclotomic final exponentiation) against the retained
  naive reference (:mod:`repro.pairing.naive`), in base-field
  multiplications and wall-clock seconds;
* a COLD McCLS verify routed through the shared-final-exponentiation
  co-DH check (asserting it executes exactly ONE final exponentiation);
* a warm ZWXF verify, whose three live pairings share one final
  exponentiation through ``multi_pair``.

Backends are compared side by side: the pairing values must be
bit-identical across every backend (the native backend is only allowed
to be *faster*, never *different*), the deterministic op counts must
match exactly, and on bn254 the native backend's compiled kernel must
beat the reference backend's single pairing by ``--min-native-speedup``
(default 5x) whenever the kernel compiled.

Since schema v3 each row also measures

* G1 scalar multiplication: the plain wNAF ladder against the GLV
  endomorphism decomposition (and, on the native backend, the compiled
  kernel MSM), gated on bn254 at >=2x fewer fp_mul for GLV and >=8x
  wall-clock for the kernel;
* a warm 64-signer cross-signer batch fold against per-item verifies,
  gated at <=35% of the per-item fp_mul cost.

Results land in ``benchmarks/results/BENCH_pairing.json`` (schema v3:
one row per curve+backend, top-level ``backends`` list).  The script
exits non-zero unless the optimised single pairing costs at most half
the naive reference's base-field multiplications on every measured
curve+backend — the earlier PR's headline >=2x op-count reduction.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(SRC))

from repro import obs
from repro.core.batch import McCLSBatchVerifier
from repro.core.mccls import McCLS
from repro.pairing import backends as field_backends
from repro.pairing import curve as curve_points
from repro.pairing import glv
from repro.pairing.bn import bn254, toy_curve
from repro.pairing.groups import PairingContext
from repro.pairing.naive import pairing_naive
from repro.pairing.pairing import pairing
from repro.schemes.zwxf import ZWXFScheme

RESULTS = Path(__file__).parent / "results" / "BENCH_pairing.json"

#: BENCH_pairing.json document version; v2 added per-backend rows and
#: the top-level ``backends`` list (``repro benchdiff`` keys on it); v3
#: added the ``scalar_mult`` section (wNAF ladder vs GLV vs compiled
#: kernel MSM) and the ``batch_verify`` section (cross-signer randomized
#: fold vs warm per-item verifies)
BENCH_SCHEMA_VERSION = 3

CURVES = {
    "toy48": lambda backend: toy_curve(48, backend=backend),
    "toy64": lambda backend: toy_curve(64, backend=backend),
    "bn254": lambda backend: bn254(backend=backend),
}


def _measure(fn, repeats: int = 1):
    """Run ``fn`` under a fresh registry -> (field_ops, seconds, out).

    The op tally comes from the first (instrumented) run; with
    ``repeats > 1`` the reported seconds are the minimum over the extra
    repeats, which stabilises the cross-backend speedup figures.
    """
    with obs.collecting() as registry:
        start = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - start
    for _ in range(repeats - 1):
        start = time.perf_counter()
        fn()
        elapsed = min(elapsed, time.perf_counter() - start)
    return registry.field_ops, elapsed, out


def bench_curve(name: str, backend_name: str) -> dict:
    """All pairing-core measurements for one curve on one backend."""
    curve = CURVES[name](backend_name)
    backend = curve.spec.backend
    kernel_active = backend.pairing_kernel(curve) is not None
    report: dict = {
        "curve": name,
        "bits": curve.p.bit_length(),
        "backend": backend.name,
        "backend_detail": backend.describe(),
        "kernel_active": kernel_active,
    }

    # Warm the per-curve Frobenius tables outside the tally so every
    # backend's counts start from the same (warm) state — the memo is
    # keyed on (p, xi_a) and would otherwise charge table construction
    # to whichever backend happens to run first.
    pairing(curve, curve.g1, curve.g2)

    fast_ops, fast_time, fast_val = _measure(
        lambda: pairing(curve, curve.g1, curve.g2), repeats=3
    )
    naive_ops, naive_time, naive_val = _measure(
        lambda: pairing_naive(curve, curve.g1, curve.g2)
    )
    if fast_val != naive_val:
        raise SystemExit(
            f"{name}/{backend.name}: optimised pairing != naive reference"
        )
    report["single_pairing"] = {
        "optimized": {"fp_mul": fast_ops.fp_mul, "seconds": fast_time},
        "naive": {"fp_mul": naive_ops.fp_mul, "seconds": naive_time},
        "fp_mul_ratio": naive_ops.fp_mul / fast_ops.fp_mul,
        "speedup": naive_time / fast_time if fast_time else float("inf"),
    }
    report["_pairing_value"] = fast_val  # cross-backend identity check

    # Deterministic batch weights keep the gated fp_mul counts replayable
    # run to run; production gateways use the secrets-backed default.
    ctx = PairingContext(
        curve, random.Random(0xBE7C4), insecure_deterministic_batch=True
    )
    scheme = McCLS(ctx)
    keys = scheme.generate_user_keys("bench@pairing")
    sig = scheme.sign(b"bench", keys)
    report["_mccls_sig"] = (
        int(sig.v),
        int(sig.s.x.c0),
        int(sig.s.x.c1),
        int(sig.r.x.value),
        int(sig.r.y.value),
    )
    cold_ops, cold_time, ok = _measure(
        lambda: scheme.verify(b"bench", sig, keys.identity, keys.public_key)
    )
    assert ok, f"{name}/{backend.name}: cold McCLS verify failed"
    if cold_ops.final_exps != 1:
        raise SystemExit(
            f"{name}/{backend.name}: cold McCLS verify ran "
            f"{cold_ops.final_exps} final exponentiations (expected exactly "
            "1 shared one)"
        )
    report["mccls_cold_verify"] = {
        "fp_mul": cold_ops.fp_mul,
        "seconds": cold_time,
        "miller_loops": cold_ops.miller_loops,
        "final_exps": cold_ops.final_exps,
    }

    zwxf = ZWXFScheme(ctx)
    zkeys = zwxf.generate_user_keys("bench@pairing")
    zsig = zwxf.sign(b"bench", zkeys)
    assert zwxf.verify(b"bench", zsig, zkeys.identity, zkeys.public_key)
    multi_ops, multi_time, ok = _measure(
        lambda: zwxf.verify(b"bench", zsig, zkeys.identity, zkeys.public_key)
    )
    assert ok, f"{name}/{backend.name}: warm ZWXF verify failed"
    report["zwxf_warm_multi_pairing_verify"] = {
        "fp_mul": multi_ops.fp_mul,
        "seconds": multi_time,
        "miller_loops": multi_ops.miller_loops,
        "final_exps": multi_ops.final_exps,
    }

    report["scalar_mult"] = bench_scalar_mult(name, curve)
    report["batch_verify"] = bench_batch_verify(name, ctx, scheme)
    return report


def bench_scalar_mult(name: str, curve) -> dict:
    """G1 scalar multiplication: double-and-add vs wNAF vs GLV.

    The scalars are drawn from a seed fixed per curve (NOT per backend),
    so the deterministic op counts are directly comparable across
    backends; the kernel, when active, changes only the seconds column.
    ``fp_mul_ratio`` is GLV's advantage over the binary double-and-add
    ladder; ``speedup`` is GLV's wall-clock advantage over the wNAF
    production path it replaced (the honest like-for-like number).
    """
    rng = random.Random(f"bench/scalar_mult/{name}")
    point = curve.g1 * 0xB007C0DE
    scalars = [rng.randrange(1, curve.n) for _ in range(6)]
    params = glv.glv_params(curve)
    # Warm the GLV parameter/table caches outside the tally.
    glv.glv_mul(curve, point, scalars[0])

    def ladder() -> list:
        return [curve_points._jacobian_scalar_mult(point, k) for k in scalars]

    def wnaf() -> list:
        return [curve_points._wnaf_scalar_mult(point, k) for k in scalars]

    def decomposed() -> list:
        return [glv.glv_mul(curve, point, k) for k in scalars]

    ladder_ops, ladder_time, ladder_vals = _measure(ladder, repeats=3)
    wnaf_ops, wnaf_time, wnaf_vals = _measure(wnaf, repeats=3)
    glv_ops, glv_time, glv_vals = _measure(decomposed, repeats=3)
    if not (ladder_vals == wnaf_vals == glv_vals):
        raise SystemExit(f"{name}: scalar-mult strategies disagree on values")
    kernel = curve.spec.backend.point_kernel(curve)
    return {
        "scalars": len(scalars),
        "glv_available": params is not None,
        "kernel_msm": kernel is not None,
        "ladder": {"fp_mul": ladder_ops.fp_mul, "seconds": ladder_time},
        "wnaf": {"fp_mul": wnaf_ops.fp_mul, "seconds": wnaf_time},
        "glv": {"fp_mul": glv_ops.fp_mul, "seconds": glv_time},
        "fp_mul_ratio": (
            ladder_ops.fp_mul / glv_ops.fp_mul if glv_ops.fp_mul else 0.0
        ),
        "wnaf_fp_mul_ratio": (
            wnaf_ops.fp_mul / glv_ops.fp_mul if glv_ops.fp_mul else 0.0
        ),
        "speedup": wnaf_time / glv_time if glv_time else float("inf"),
    }


def bench_batch_verify(name: str, ctx, scheme) -> dict:
    """Cross-signer randomized fold vs warm per-item verifies.

    64 distinct signers sign one message each; after one admission
    window has anchored every signer, a fresh mixed window must settle
    pairing-free in a fraction of the per-item fp_mul cost.
    """
    verifier = McCLSBatchVerifier(scheme)
    signers = [
        (f"batch-{i:02d}", scheme.generate_user_keys(f"batch-{i:02d}"))
        for i in range(64)
    ]

    def window(tag: bytes) -> list:
        return [
            (
                tag + identity.encode(),
                scheme.sign(tag + identity.encode(), keys),
                identity,
                keys.public_key,
            )
            for identity, keys in signers
        ]

    # Admission window: anchors every signer (pays the one-time pairing).
    verdicts, _stats = verifier.verify_cross_signer(window(b"warm:"))
    assert all(verdicts), f"{name}: admission window rejected a valid item"

    steady = window(b"steady:")
    batch_ops, batch_time, (verdicts, stats) = _measure(
        lambda: verifier.verify_cross_signer(steady)
    )
    assert all(verdicts), f"{name}: steady window rejected a valid item"

    # Warm the per-item path, then measure it for the comparison.
    for message, signature, identity, public_key in steady:
        assert scheme.verify(message, signature, identity, public_key)
    individual_ops, individual_time, oks = _measure(
        lambda: [
            scheme.verify(message, signature, identity, public_key)
            for message, signature, identity, public_key in steady
        ]
    )
    assert all(oks), f"{name}: warm individual verify failed"
    return {
        "signers": len(signers),
        "items": len(steady),
        "folds": stats["folds"],
        "bisections": stats["bisections"],
        "pairings": stats["admission_pairings"],
        "batch": {"fp_mul": batch_ops.fp_mul, "seconds": batch_time},
        "individual": {
            "fp_mul": individual_ops.fp_mul,
            "seconds": individual_time,
        },
        "fp_mul_ratio": (
            batch_ops.fp_mul / individual_ops.fp_mul
            if individual_ops.fp_mul
            else 0.0
        ),
        "speedup": (
            individual_time / batch_time if batch_time else float("inf")
        ),
    }


def _check_cross_backend(name: str, rows: list) -> None:
    """Value- and count-identity across every backend for one curve."""
    reference = rows[0]
    for row in rows[1:]:
        if row["_pairing_value"] != reference["_pairing_value"]:
            raise SystemExit(
                f"{name}: pairing value differs between backends "
                f"{reference['backend']} and {row['backend']}"
            )
        if row["_mccls_sig"] != reference["_mccls_sig"]:
            raise SystemExit(
                f"{name}: McCLS signature differs between backends "
                f"{reference['backend']} and {row['backend']}"
            )
        for block, inner in (
            ("single_pairing", "optimized"),
            ("mccls_cold_verify", None),
            ("zwxf_warm_multi_pairing_verify", None),
            ("scalar_mult", "ladder"),
            ("scalar_mult", "wnaf"),
            ("scalar_mult", "glv"),
            ("batch_verify", "batch"),
            ("batch_verify", "individual"),
        ):
            if inner is not None:
                ref_ops = reference[block][inner]["fp_mul"]
                row_ops = row[block][inner]["fp_mul"]
                label = f"{block}.{inner}"
            else:
                ref_ops = reference[block]["fp_mul"]
                row_ops = row[block]["fp_mul"]
                label = block
            if ref_ops != row_ops:
                raise SystemExit(
                    f"{name}.{label}: fp_mul count differs between backends "
                    f"({reference['backend']}={ref_ops}, "
                    f"{row['backend']}={row_ops}); counters must be "
                    "backend-independent"
                )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--curves",
        default="toy48,bn254",
        help="comma-separated subset of: " + ",".join(CURVES),
    )
    parser.add_argument(
        "--backends",
        default="reference,native",
        help="comma-separated field backends to measure side by side "
        "(available: " + ",".join(field_backends.backend_names()) + ")",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=2.0,
        help="required naive/optimized fp_mul ratio for a single pairing",
    )
    parser.add_argument(
        "--min-native-speedup",
        type=float,
        default=5.0,
        help="required reference/native wall-clock speedup for a single "
        "bn254 pairing when the native kernel is active (0 disables)",
    )
    parser.add_argument(
        "--min-glv-ratio",
        type=float,
        default=2.0,
        help="required ladder/GLV fp_mul ratio for bn254 G1 scalar "
        "multiplication (0 disables)",
    )
    parser.add_argument(
        "--min-kernel-mul-speedup",
        type=float,
        default=8.0,
        help="required wNAF/GLV wall-clock speedup for bn254 G1 scalar "
        "multiplication on the native backend when the kernel MSM is "
        "active (0 disables)",
    )
    parser.add_argument(
        "--max-batch-ratio",
        type=float,
        default=0.35,
        help="max allowed batch/individual fp_mul ratio for the warm "
        "64-signer cross-signer fold (0 disables)",
    )
    args = parser.parse_args()

    backend_names = []
    for raw in args.backends.split(","):
        raw = raw.strip()
        backend = field_backends.get_backend(raw)
        ok, reason = backend.availability()
        if not ok:
            print(f"skipping backend {raw!r}: {reason}")
            continue
        backend_names.append(raw)
    if not backend_names:
        raise SystemExit("no requested backend is available")

    reports = []
    failures = []
    for name in args.curves.split(","):
        name = name.strip()
        if name not in CURVES:
            raise SystemExit(f"unknown curve {name!r}")
        rows = [bench_curve(name, backend) for backend in backend_names]
        _check_cross_backend(name, rows)
        baseline = rows[0]["single_pairing"]["optimized"]["seconds"]
        for row in rows:
            ratio = row["single_pairing"]["fp_mul_ratio"]
            status = "ok" if ratio >= args.min_ratio else "TOO SLOW"
            seconds = row["single_pairing"]["optimized"]["seconds"]
            vs_first = baseline / seconds if seconds else float("inf")
            row["vs_reference_speedup"] = round(vs_first, 2)
            kern = " kernel" if row["kernel_active"] else ""
            print(
                f"{name:>6} [{row['backend']}{kern}]: pairing fp_mul "
                f"{row['single_pairing']['optimized']['fp_mul']} optimized "
                f"vs {row['single_pairing']['naive']['fp_mul']} naive "
                f"({ratio:.2f}x, need >={args.min_ratio:.1f}x) [{status}]  "
                f"{seconds * 1e3:.2f} ms/pairing "
                f"({vs_first:.2f}x vs {rows[0]['backend']})"
            )
            if ratio < args.min_ratio:
                failures.append(f"{name}/{row['backend']}")
            if (
                name == "bn254"
                and args.min_native_speedup > 0
                and row["backend"] == "native"
                and row["kernel_active"]
                and rows[0]["backend"] == "reference"
                and vs_first < args.min_native_speedup
            ):
                failures.append(
                    f"{name}/native speedup {vs_first:.2f}x < "
                    f"{args.min_native_speedup:g}x"
                )
        cold = rows[0]["mccls_cold_verify"]
        print(
            f"        cold mccls verify: {cold['fp_mul']} fp_mul, "
            f"{cold['miller_loops']} Miller loops, "
            f"{cold['final_exps']} final exp "
            "(values and counts identical across backends)"
        )
        for row in rows:
            mul = row["scalar_mult"]
            kern = " kernel" if mul["kernel_msm"] else ""
            print(
                f"        scalar mult [{row['backend']}{kern}]: GLV "
                f"{mul['fp_mul_ratio']:.2f}x fewer fp_mul than double-"
                f"and-add ({mul['wnaf_fp_mul_ratio']:.2f}x vs wNAF), "
                f"{mul['speedup']:.2f}x wall-clock vs wNAF "
                f"({mul['glv']['seconds'] * 1e3 / mul['scalars']:.2f} "
                "ms/mult)"
            )
            if (
                name == "bn254"
                and args.min_glv_ratio > 0
                and mul["fp_mul_ratio"] < args.min_glv_ratio
            ):
                failures.append(
                    f"{name}/{row['backend']} GLV fp_mul ratio "
                    f"{mul['fp_mul_ratio']:.2f}x < {args.min_glv_ratio:g}x"
                )
            if (
                name == "bn254"
                and args.min_kernel_mul_speedup > 0
                and row["backend"] == "native"
                and mul["kernel_msm"]
                and mul["speedup"] < args.min_kernel_mul_speedup
            ):
                failures.append(
                    f"{name}/native kernel scalar-mult speedup "
                    f"{mul['speedup']:.2f}x < "
                    f"{args.min_kernel_mul_speedup:g}x"
                )
            batch = row["batch_verify"]
            print(
                f"        batch verify [{row['backend']}]: "
                f"{batch['items']}-item cross-signer fold at "
                f"{batch['fp_mul_ratio'] * 100:.1f}% of warm per-item "
                f"fp_mul ({batch['speedup']:.1f}x wall-clock, "
                f"{batch['pairings']} pairings)"
            )
            if (
                args.max_batch_ratio > 0
                and batch["fp_mul_ratio"] > args.max_batch_ratio
            ):
                failures.append(
                    f"{name}/{row['backend']} batch fp_mul ratio "
                    f"{batch['fp_mul_ratio']:.3f} > {args.max_batch_ratio:g}"
                )
        reports.extend(rows)

    for row in reports:  # identity scratch fields never hit the JSON
        row.pop("_pairing_value", None)
        row.pop("_mccls_sig", None)
    RESULTS.parent.mkdir(exist_ok=True)
    RESULTS.write_text(
        json.dumps(
            {
                "schema_version": BENCH_SCHEMA_VERSION,
                "backends": backend_names,
                "results": reports,
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {RESULTS}")
    if failures:
        print(f"FAIL: {failures}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
