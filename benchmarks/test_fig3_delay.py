"""Figure 3: end-to-end delay vs node speed (no attack).

Paper result: McCLS has somewhat higher delay than AODV because of the
signature/verification work on routing packets; the gap is small at low
speeds and grows once nodes move fast (more route breaks -> more signed
discovery traffic -> more crypto processing on the path).
"""

from __future__ import annotations

from benchmarks.conftest import averaged_report, bench_seeds, sim_time, write_series
from repro.netsim.scenario import ScenarioConfig, paper_speed_sweep


def _sweep():
    seeds = bench_seeds()
    duration = sim_time()
    rows = []
    for speed in paper_speed_sweep():
        aodv = averaged_report(
            lambda seed: ScenarioConfig(
                max_speed=speed, sim_time_s=duration, seed=seed
            ),
            seeds,
        )
        mccls = averaged_report(
            lambda seed: ScenarioConfig(
                max_speed=speed,
                sim_time_s=duration,
                seed=seed,
                protocol="mccls",
            ),
            seeds,
        )
        rows.append(
            (speed, aodv["end_to_end_delay"], mccls["end_to_end_delay"])
        )
    return rows


def test_fig3_end_to_end_delay(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    write_series(
        results_dir / "fig3_delay.txt",
        "Figure 3 - End-to-End Delay vs speed (seconds, no attack)",
        ["speed_m_s", "aodv_delay_s", "mccls_delay_s"],
        rows,
    )
    # Paper claims, on the mobile points (the static point measures a
    # single frozen topology): McCLS pays a visible crypto delay tax ...
    mobile = rows[1:]
    mean_aodv = sum(r[1] for r in mobile) / len(mobile)
    mean_mccls = sum(r[2] for r in mobile) / len(mobile)
    assert mean_mccls > mean_aodv * 1.2, (mean_aodv, mean_mccls)
    # ... but the tax stays within the same order of magnitude (the paper's
    # Figure 3 shows tens of percent, not multiples).
    assert mean_mccls < 8 * mean_aodv, (mean_aodv, mean_mccls)
    # And per mobile point the ordering holds.
    assert all(r[2] > r[1] for r in mobile), rows
