"""Batch verification for McCLS signatures.

The IBS McCLS descends from (paper reference [15], Yoon-Cheon-Kim) was
built for *batch verification*; this module carries the idea over to the
certificateless setting as the natural extension the paper leaves implicit.

A single McCLS signature verifies through

    e(V_i*P - h_i*R_i, S_i/h_i) == e(P_pub, Q_IDi).

k independent left pairings cannot be merged (the G2 arguments differ per
signature), but the **same-signer** case - the dominant one on a MANET
node that just received a burst of routing messages from one neighbour -
collapses, because S_i = x^{-1}*D_ID is constant per signer:

    prod_i e(V_i*P - h_i*R_i, S/h_i)
      = e( sum_i  c_i*(V_i*P - h_i*R_i) * (h_i^{-1} mod n), S )   [weights c_i]
      = e(P_pub, Q_ID)^(sum c_i)

so k signatures from one signer cost **one** pairing plus one cached
constant, independent of k.  Random small weights c_i guard against forged
batches whose errors cancel (standard small-exponent test).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.core.mccls import McCLS, McCLSSignature
from repro.pairing.groups import PairingContext
from repro.schemes.base import Message, UserKeyPair, normalize_message

#: (message, signature) pairs from a single signer
BatchItem = Tuple[Message, McCLSSignature]


class McCLSBatchVerifier:
    """Same-signer batch verification (one pairing per batch).

    Also conforms to :class:`repro.schemes.base.SchemeProtocol` by
    delegating the single-signature surface to the wrapped scheme, so the
    wrapper can stand anywhere a scheme is expected (the batching is an
    extra capability, not a different API).
    """

    name = "mccls-batch"

    def __init__(self, scheme: McCLS):
        self.scheme = scheme
        self.ctx: PairingContext = scheme.ctx

    # -- SchemeProtocol surface (delegated) -----------------------------------
    def generate_user_keys(self, identity) -> UserKeyPair:
        """Delegates to the wrapped scheme."""
        return self.scheme.generate_user_keys(identity)

    def sign(self, message: Message, keys: UserKeyPair) -> McCLSSignature:
        """Delegates to the wrapped scheme."""
        return self.scheme.sign(message, keys)

    def verify(
        self,
        message: Message,
        signature: McCLSSignature,
        identity,
        public_key=None,
        public_key_extra=None,
    ) -> bool:
        """Delegates single-signature verification to the wrapped scheme."""
        return self.scheme.verify(
            message, signature, identity, public_key, public_key_extra
        )

    def verify_same_signer(
        self,
        items: Sequence[BatchItem],
        identity: str,
        public_key,
    ) -> bool:
        """Verify a batch of signatures all made by ``identity``.

        Falls back to ``True`` for an empty batch.  All signatures in a
        valid batch share the same S component (it is message-independent
        for a fixed signer); mixed-S batches are verified per-item since
        the aggregation precondition fails.
        """
        if not items:
            return True
        first_s = items[0][1].s
        if any(sig.s != first_s for _, sig in items):
            return all(
                self.scheme.verify(msg, sig, identity, public_key)
                for msg, sig in items
            )

        curve = self.ctx.curve
        n = self.ctx.order
        if first_s.is_infinity() or not curve.g2_curve.contains(first_s):
            return False

        aggregate = curve.g1_curve.infinity()
        weight_sum = 0
        for message, sig in items:
            msg = normalize_message(message)
            if not (0 < sig.v < n) or not curve.g1_curve.contains(sig.r):
                return False
            h = self.ctx.hash_scalar(b"H2/mccls", msg, sig.r, public_key)
            weight = self.ctx.rng.randrange(1, 1 << 64)
            h_inv = self.ctx.scalar_inverse(h)
            left = self.ctx.g1_mul(self.ctx.g1, sig.v) - self.ctx.g1_mul(sig.r, h)
            aggregate = aggregate + self.ctx.g1_mul(
                left, (weight * h_inv) % n
            )
            weight_sum = (weight_sum + weight) % n

        q_id = self.scheme.q_of(identity)
        # e(aggregate, S) == e(P_pub, Q_ID)^weight_sum sharing the same
        # Miller-value cache as single verifies: warm batches cost exactly
        # one pairing regardless of k, cold batches two Miller loops and
        # one final exponentiation.
        return self.ctx.codh_check_cached(
            aggregate, first_s, self.scheme.p_pub_g1, q_id, weight=weight_sum
        )

    def sign_batch(
        self, messages: Sequence[Message], keys: UserKeyPair
    ) -> Sequence[BatchItem]:
        """Convenience: sign many messages with one key."""
        return [(msg, self.scheme.sign(msg, keys)) for msg in messages]


#: Unified-API name (the class predates the SchemeProtocol naming).
BatchVerifier = McCLSBatchVerifier
