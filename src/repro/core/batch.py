"""Batch verification for McCLS signatures.

The IBS McCLS descends from (paper reference [15], Yoon-Cheon-Kim) was
built for *batch verification*; this module carries the idea over to the
certificateless setting as the natural extension the paper leaves implicit.

A single McCLS signature verifies through

    e(V_i*P - h_i*R_i, S_i/h_i) == e(P_pub, Q_IDi).

k independent left pairings cannot be merged (the G2 arguments differ per
signature), but the **same-signer** case - the dominant one on a MANET
node that just received a burst of routing messages from one neighbour -
collapses, because S_i = x^{-1}*D_ID is constant per signer:

    prod_i e(V_i*P - h_i*R_i, S/h_i)
      = e( sum_i  c_i*(V_i*P - h_i*R_i) * (h_i^{-1} mod n), S )   [weights c_i]
      = e(P_pub, Q_ID)^(sum c_i)

so k signatures from one signer cost **one** pairing plus one cached
constant, independent of k.  Random small weights c_i guard against forged
batches whose errors cancel (standard small-exponent test).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.mccls import McCLS, McCLSSignature
from repro.errors import ReproError
from repro.obs.registry import get_registry
from repro.pairing.curve import CurvePoint, point_key
from repro.pairing.groups import PairingContext
from repro.pairing.lru import LRUCache
from repro.schemes.base import Message, UserKeyPair, normalize_message

#: (message, signature) pairs from a single signer
BatchItem = Tuple[Message, McCLSSignature]

#: (message, signature, identity, public_key) from arbitrary signers
CrossSignerItem = Tuple[Message, McCLSSignature, str, CurvePoint]

#: bit width of the random fold weights (the small-exponent test): a batch
#: of forged items survives a fold with probability ~ 2^-80
DELTA_BITS = 80

#: anchor-cache marker for signers whose S is on the twist but outside the
#: order-n subgroup: the kernel-of-the-pairing argument behind the G1
#: anchor test needs prime order, so these verify per-item forever
_UNANCHORABLE = object()


class _CrossStats:
    """Mutable counters for one verify_cross_signer call."""

    __slots__ = (
        "folds",
        "fold_sizes",
        "bisections",
        "exact_checks",
        "admission_pairings",
        "admitted_signers",
    )

    def __init__(self) -> None:
        self.folds = 0
        self.fold_sizes: List[int] = []
        self.bisections = 0
        self.exact_checks = 0
        self.admission_pairings = 0
        self.admitted_signers = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "folds": self.folds,
            "fold_sizes": list(self.fold_sizes),
            "bisections": self.bisections,
            "exact_checks": self.exact_checks,
            "admission_pairings": self.admission_pairings,
            "admitted_signers": self.admitted_signers,
        }


class _CrossItem:
    """One structurally-valid batch item with its fold data."""

    __slots__ = ("index", "key", "identity", "public_key", "sig", "h_inv", "delta")

    def __init__(self, index, key, identity, public_key, sig, h_inv, delta):
        self.index = index
        self.key = key
        self.identity = identity
        self.public_key = public_key
        self.sig = sig
        self.h_inv = h_inv
        self.delta = delta


class McCLSBatchVerifier:
    """Same-signer batch verification (one pairing per batch).

    Also conforms to :class:`repro.schemes.base.SchemeProtocol` by
    delegating the single-signature surface to the wrapped scheme, so the
    wrapper can stand anywhere a scheme is expected (the batching is an
    extra capability, not a different API).
    """

    name = "mccls-batch"

    #: bound on remembered signer anchors (see verify_cross_signer)
    ANCHOR_CACHE_SIZE = 4096

    def __init__(self, scheme: McCLS):
        self.scheme = scheme
        self.ctx: PairingContext = scheme.ctx
        # identity-bound anchors W = x*P for signers whose first signature
        # passed a pairing check; keyed by (identity, P_ID, S, P_pub) so a
        # key rotation or a replaced public key can never match a stale
        # anchor.  LRU-bounded: eviction only costs re-admission.
        self._signer_anchors: LRUCache = LRUCache(self.ANCHOR_CACHE_SIZE)

    # -- SchemeProtocol surface (delegated) -----------------------------------
    def generate_user_keys(self, identity) -> UserKeyPair:
        """Delegates to the wrapped scheme."""
        return self.scheme.generate_user_keys(identity)

    def sign(self, message: Message, keys: UserKeyPair) -> McCLSSignature:
        """Delegates to the wrapped scheme."""
        return self.scheme.sign(message, keys)

    def verify(
        self,
        message: Message,
        signature: McCLSSignature,
        identity,
        public_key=None,
        public_key_extra=None,
    ) -> bool:
        """Delegates single-signature verification to the wrapped scheme."""
        return self.scheme.verify(
            message, signature, identity, public_key, public_key_extra
        )

    def verify_same_signer(
        self,
        items: Sequence[BatchItem],
        identity: str,
        public_key,
    ) -> bool:
        """Verify a batch of signatures all made by ``identity``.

        Falls back to ``True`` for an empty batch.  All signatures in a
        valid batch share the same S component (it is message-independent
        for a fixed signer); mixed-S batches are verified per-item since
        the aggregation precondition fails.
        """
        if not items:
            return True
        first_s = items[0][1].s
        if any(sig.s != first_s for _, sig in items):
            return all(
                self.scheme.verify(msg, sig, identity, public_key)
                for msg, sig in items
            )

        curve = self.ctx.curve
        n = self.ctx.order
        if first_s.is_infinity() or not curve.g2_curve.contains(first_s):
            return False

        # sum_i w_i h_i^{-1} (v_i*P - h_i*R_i)
        #   = (sum_i w_i h_i^{-1} v_i) * P  -  sum_i w_i * R_i
        # — one shared-doubling MSM over k+1 terms instead of three
        # scalar multiplications per item (weights reduced mod n: G1 has
        # cofactor 1, so every on-curve R_i has order n).
        total = 0
        terms: List[Tuple[CurvePoint, int]] = []
        weight_sum = 0
        for message, sig in items:
            msg = normalize_message(message)
            if not (0 < sig.v < n) or not curve.g1_curve.contains(sig.r):
                return False
            h = self.ctx.hash_scalar(b"H2/mccls", msg, sig.r, public_key)
            weight = self.ctx.batch_randrange(1, 1 << 64)
            h_inv = self.ctx.scalar_inverse(h)
            total = (total + weight * h_inv * sig.v) % n
            terms.append((sig.r, -(weight % n)))
            weight_sum = (weight_sum + weight) % n
        aggregate = self.ctx.g1_msm([(self.ctx.g1, total)] + terms)

        q_id = self.scheme.q_of(identity)
        # e(aggregate, S) == e(P_pub, Q_ID)^weight_sum sharing the same
        # Miller-value cache as single verifies: warm batches cost exactly
        # one pairing regardless of k, cold batches two Miller loops and
        # one final exponentiation.
        return self.ctx.codh_check_cached(
            aggregate, first_s, self.scheme.p_pub_g1, q_id, weight=weight_sum
        )

    # -- cross-signer batching (gateway windows) ------------------------------
    #
    # A valid McCLS signature satisfies
    #
    #     e(v*P - h*R, h^{-1}*S) == e(P_pub, Q_ID)
    #  =  e(h^{-1}v*P - R, S)    == e(P_pub, Q_ID).
    #
    # For a fixed signer the point  W := h^{-1}v*P - R  is therefore the
    # *same* for every valid signature (it equals x*P), and once ONE
    # pairing check has established  e(W, S) == e(P_pub, Q_ID)  for an S of
    # prime order n, non-degeneracy of the pairing on the prime-order G1
    # makes the per-item check *equivalent* to the pure-G1 equation
    #
    #     h_i^{-1} v_i * P - R_i == W.
    #
    # A mixed-signer window then folds into ONE fixed-base multiplication
    # and ONE multi-scalar multiplication over random 80-bit weights d_i:
    #
    #     (sum_i d_i h_i^{-1} v_i) * P == sum_i d_i R_i + sum_s (sum d) W_s
    #
    # with zero pairings in the steady state.  Unknown signers are admitted
    # through one shared-final-exponentiation multi-pairing; failed folds
    # bisect (reusing each item's weight) down to exact per-item verifies.

    def verify_cross_signer(
        self, items: Sequence[CrossSignerItem]
    ) -> Tuple[List[bool], Dict[str, object]]:
        """Verify a mixed-signer window; returns (verdicts, fold stats).

        Each item is ``(message, signature, identity, public_key)``.
        Verdicts match per-item :meth:`McCLS.verify` (up to the standard
        small-exponent batch soundness bound of ~2^-80): structural
        rejects, failed folds located by bisection, and non-subgroup-S
        signers all land on exactly what the single verifier would say.
        """
        registry = get_registry()
        registry.counter("batch.cross_signer").inc()
        stats = _CrossStats()
        verdicts: List[bool] = [False] * len(items)
        if not items:
            return verdicts, stats.as_dict()
        ctx = self.ctx
        curve = ctx.curve
        n = ctx.order
        p_pub_key = point_key(self.scheme.p_pub_g1)

        known: List[_CrossItem] = []
        unknown: List[_CrossItem] = []
        for index, (message, sig, identity, public_key) in enumerate(items):
            try:
                msg = normalize_message(message)
                if not isinstance(sig, McCLSSignature):
                    continue
                if not (0 < sig.v < n):
                    continue
                if not curve.g1_curve.contains(sig.r):
                    continue
                if sig.s.is_infinity() or not curve.g2_curve.contains(sig.s):
                    continue
                h = ctx.hash_scalar(b"H2/mccls", msg, sig.r, public_key)
                h_inv = ctx.scalar_inverse(h)
            except (ReproError, ValueError, ZeroDivisionError, ArithmeticError):
                continue  # verdict stays False, like McCLS.verify
            item = _CrossItem(
                index=index,
                key=(identity, point_key(public_key), point_key(sig.s), p_pub_key),
                identity=identity,
                public_key=public_key,
                sig=sig,
                h_inv=h_inv,
                delta=ctx.batch_randrange(1, 1 << DELTA_BITS),
            )
            anchor = self._signer_anchors.get(item.key)
            if anchor is _UNANCHORABLE:
                # S outside the order-n subgroup: the anchor equivalence
                # does not apply, delegate to the exact verifier forever.
                stats.exact_checks += 1
                verdicts[index] = self.scheme.verify(
                    message, sig, identity, public_key
                )
            elif anchor is not None:
                known.append(item)
            else:
                unknown.append(item)

        if unknown:
            self._admit_signers(items, unknown, verdicts, stats)
        if known:
            self._fold_anchored(items, known, verdicts, stats)
        registry.counter("batch.bisections").inc(stats.bisections)
        return verdicts, stats.as_dict()

    # -- admission: signers without an anchor yet -----------------------------
    def _anchor_of(self, item: _CrossItem) -> CurvePoint:
        """W = h^{-1}v*P - R for one item (equals x*P when the item is valid)."""
        ctx = self.ctx
        return ctx.g1_msm(
            [(ctx.g1, (item.h_inv * item.sig.v) % ctx.order), (item.sig.r, -1)]
        )

    def _admit_signers(self, items, group: List[_CrossItem], verdicts, stats) -> None:
        """One multi-pairing over every new-signer item, then anchor them."""
        pairwise: List[_CrossItem] = []
        for item in group:
            if self._signer_anchors.get(item.key) is None:
                # Anchoring demands full subgroup membership of S (checked
                # once per signer); on-curve-but-wrong-order points fall
                # back to exact per-item verification permanently.
                if not self.ctx.curve.in_g2(item.sig.s):
                    self._signer_anchors[item.key] = _UNANCHORABLE
            anchor = self._signer_anchors.get(item.key)
            if anchor is _UNANCHORABLE:
                stats.exact_checks += 1
                verdicts[item.index] = self.scheme.verify(
                    items[item.index][0], item.sig, item.identity, item.public_key
                )
            elif anchor is not None:
                # an earlier bisection branch of this window admitted it
                self._fold_anchored(items, [item], verdicts, stats)
            else:
                pairwise.append(item)
        if pairwise:
            self._admission_round(items, pairwise, verdicts, stats)

    def _admission_round(self, items, group: List[_CrossItem], verdicts, stats) -> None:
        """multi_pair_check of a new-signer slice; bisect on failure."""
        ctx = self.ctx
        n = ctx.order
        try:
            q_sum = ctx.curve.g2_curve.infinity()
            q_weights: Dict[str, int] = {}
            # Items sharing one signer key also share S, so their G1 sides
            # add up into a single pairing slot (e(a,S)e(b,S) = e(a+b,S)):
            # the multi-pairing costs one Miller loop per *signer*, not
            # per item.
            p_coeff: Dict[tuple, int] = {}
            r_terms: Dict[tuple, List[Tuple[CurvePoint, int]]] = {}
            s_of: Dict[tuple, CurvePoint] = {}
            for item in group:
                coeff = (item.delta * item.h_inv) % n
                # delta*h^{-1}*(v*P - h*R) = (delta*h^{-1}*v)*P - delta*R
                # (delta reduced mod n first: G1 has cofactor 1, so every
                # on-curve R has order n and the reduction is exact)
                p_coeff[item.key] = (
                    p_coeff.get(item.key, 0) + coeff * item.sig.v
                ) % n
                r_terms.setdefault(item.key, []).append(
                    (item.sig.r, -(item.delta % n))
                )
                s_of[item.key] = item.sig.s
                q_weights[item.identity] = (
                    q_weights.get(item.identity, 0) + item.delta
                ) % n
            pairs = [
                (
                    ctx.g1_msm([(ctx.g1, p_coeff[key])] + terms),
                    s_of[key],
                )
                for key, terms in r_terms.items()
            ]
            for identity, weight in q_weights.items():
                q_id = self.scheme.q_of(identity)
                if weight:
                    q_sum = q_sum + ctx.g2_mul(q_id, weight, in_subgroup=True)
            pairs.append((-self.scheme.p_pub_g1, q_sum))
            stats.admission_pairings += 1
            ok = ctx.multi_pair_check(pairs)
        except (ReproError, ValueError, ZeroDivisionError, ArithmeticError):
            ok = False
        if ok:
            for item in group:
                verdicts[item.index] = True
                if self._signer_anchors.get(item.key) is None:
                    self._signer_anchors[item.key] = self._anchor_of(item)
                    stats.admitted_signers += 1
            return
        if len(group) == 1:
            item = group[0]
            stats.exact_checks += 1
            verdicts[item.index] = self.scheme.verify(
                items[item.index][0], item.sig, item.identity, item.public_key
            )
            if verdicts[item.index] and self._signer_anchors.get(item.key) is None:
                self._signer_anchors[item.key] = self._anchor_of(item)
                stats.admitted_signers += 1
            return
        stats.bisections += 1
        half = len(group) // 2
        self._admission_round(items, group[:half], verdicts, stats)
        self._admission_round(items, group[half:], verdicts, stats)

    # -- steady state: anchored signers, zero pairings ------------------------
    def _fold_anchored(self, items, group: List[_CrossItem], verdicts, stats) -> None:
        """Random-weight G1 fold of anchored items; bisect on mismatch."""
        ctx = self.ctx
        n = ctx.order
        total = 0
        terms: List[Tuple[CurvePoint, int]] = []
        anchor_weights: Dict[tuple, int] = {}
        anchors: Dict[tuple, CurvePoint] = {}
        stale: List[_CrossItem] = []
        live: List[_CrossItem] = []
        for item in group:
            if item.key not in anchors:
                anchors[item.key] = self._signer_anchors.get(item.key)
            anchor = anchors[item.key]
            if anchor is None or anchor is _UNANCHORABLE:
                # evicted (or demoted) between grouping and folding — a
                # giant window of distinct signers can do this; verify
                # exactly rather than fold against a missing anchor
                stale.append(item)
                continue
            live.append(item)
            total = (total + item.delta * item.h_inv * item.sig.v) % n
            # 80-bit fold weight reduced mod n before walking the wNAF
            # chain (exact: G1 cofactor is 1, so R has order n)
            terms.append((item.sig.r, item.delta % n))
            anchor_weights[item.key] = (
                anchor_weights.get(item.key, 0) + item.delta
            ) % n
        for item in stale:
            stats.exact_checks += 1
            verdicts[item.index] = self.scheme.verify(
                items[item.index][0], item.sig, item.identity, item.public_key
            )
        group = live
        if not group:
            return
        for key, weight in anchor_weights.items():
            terms.append((anchors[key], weight))
        stats.folds += 1
        stats.fold_sizes.append(len(group))
        # (sum d_i h_i^{-1} v_i)*P down the pinned comb table vs one MSM.
        if ctx.g1_mul(ctx.g1, total) == ctx.g1_msm(terms):
            for item in group:
                verdicts[item.index] = True
            return
        if len(group) == 1:
            item = group[0]
            stats.exact_checks += 1
            ok = self.scheme.verify(
                items[item.index][0], item.sig, item.identity, item.public_key
            )
            verdicts[item.index] = ok
            if ok:
                # exact pass but anchor fold miss: the cached anchor was
                # stale/corrupt — re-derive it from this verified item
                self._signer_anchors[item.key] = self._anchor_of(item)
            return
        stats.bisections += 1
        half = len(group) // 2
        self._fold_anchored(items, group[:half], verdicts, stats)
        self._fold_anchored(items, group[half:], verdicts, stats)

    def sign_batch(
        self, messages: Sequence[Message], keys: UserKeyPair
    ) -> Sequence[BatchItem]:
        """Convenience: sign many messages with one key."""
        return [(msg, self.scheme.sign(msg, keys)) for msg in messages]


#: Unified-API name (the class predates the SchemeProtocol naming).
BatchVerifier = McCLSBatchVerifier
