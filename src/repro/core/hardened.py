"""McCLS+ - a hardened variant repairing the universal forgery.

:mod:`repro.core.games` shows the published McCLS is universally forgeable
because nothing ties the signature's S component to the signer: ANY
multiple of Q_ID passes.  McCLS+ adds one public parameter and one
(cacheable) pairing check that pins S to the exact secret value behind the
claimed public key:

* **Setup** additionally publishes  T_pub = s^2 * P  (in G1).
* **Verify** additionally requires  e(P_ID, S) == e(T_pub, Q_ID).

Why this binds: a valid S = x^{-1} * D_ID gives
e(P_ID, S) = e(x*s*P, x^{-1}*s*Q_ID) = e(P, Q_ID)^(s^2) = e(T_pub, Q_ID),
and conversely with P_ID = x*s*P fixed, the relation forces
S = (s/x) * Q_ID exactly - the one honest value.  Both sides of the new
check are constant per (signer, identity), so a verifier caches them and
the warm verification cost stays at ONE fresh pairing, preserving the
paper's efficiency claim.

What it achieves, and honestly does not:

* The :class:`~repro.core.games.UniversalForgeryAttack` and the
  no-signature :class:`~repro.core.games.MaliciousKGCForger` both fail
  (tests assert this): outsiders and a curious KGC can no longer forge
  from public values alone.
* A **malicious KGC that has observed one legitimate signature** can still
  forge: S is signer-constant and public after one signature, and knowing
  s the KGC computes x*P = s^{-1}*P_ID and solves V*P - h*R = h*x*P (the
  :class:`KGCSignatureReplayForger` below demonstrates it).  Full Type II
  security needs a message-bound S, i.e. a structurally different scheme
  (YHG's (r + h*x)^{-1} binding is the canonical fix).

This is exactly the kind of "future work" delta the paper's Section 7
leaves open; EXPERIMENTS.md records the measured outcomes.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.games import Adversary, Challenger, ForgeryAttempt
from repro.core.mccls import McCLS, McCLSSignature
from repro.errors import SignatureError
from repro.pairing.curve import CurvePoint
from repro.pairing.groups import PairingContext
from repro.schemes.base import Identity, Message, normalize_message


class McCLSPlus(McCLS):
    """McCLS with the S-binding check (see module docstring)."""

    name = "mccls-plus"
    h1_compat_name = "mccls"  # identity hashes shared with plain McCLS
    paper_sign_profile = (0, 2, 0)
    paper_verify_profile = (1, 1, 0)  # warm, with both constants cached

    def __init__(
        self,
        ctx: PairingContext,
        master_secret: Optional[int] = None,
        precompute_s: bool = False,
    ):
        super().__init__(ctx, master_secret, precompute_s=precompute_s)
        s = self.master_secret
        self.t_pub = ctx.fixed_base(ctx.curve.g1 * ((s * s) % ctx.order))

    def verify(
        self,
        message: Message,
        signature: McCLSSignature,
        identity: Identity,
        public_key: CurvePoint,
        public_key_extra: Optional[CurvePoint] = None,
    ) -> bool:
        """McCLS verification plus the S-binding check (see class docs)."""
        msg = normalize_message(message)
        if not isinstance(signature, McCLSSignature):
            raise SignatureError("expected a McCLSSignature")
        # The binding check first: S must be the unique honest value for
        # this (public key, identity) pair.
        if signature.s.is_infinity():
            return False
        if public_key.is_infinity() or not self.ctx.curve.g1_curve.contains(
            public_key
        ):
            return False
        if not self.ctx.curve.g2_curve.contains(signature.s):
            return False
        q_id = self.q_of(identity)
        binding_lhs = self.ctx.pair_cached(public_key, signature.s)
        binding_rhs = self.ctx.pair_cached(self.t_pub, q_id)
        if binding_lhs != binding_rhs:
            return False
        return super().verify(
            msg, signature, identity, public_key, public_key_extra
        )


#: Unified-API name for the hardened variant (the class predates the
#: SchemeProtocol naming; both stay importable).
HardenedMcCLS = McCLSPlus


class KGCSignatureReplayForger(Adversary):
    """The residual Type II attack against McCLS+.

    Requires: the master key s (the adversary IS the KGC) and ONE observed
    legitimate signature of the target (to learn the signer-constant S).
    Then x*P = s^{-1} * P_ID is computable and (V, R) can be solved for any
    message:  pick v freely, set R = h^{-1} * (V*P - h*x*P)... concretely
    pick a, set R = a*P - x*P, h = H2(M, R, P_ID), V = h*a.
    Check: V*P - h*R = h*a*P - h*(a*P - x*P) = h*x*P.
    """

    name = "kgc-signature-replay"

    def attempt(self, challenger: Challenger) -> Optional[ForgeryAttempt]:
        """Forge using the master key plus one observed signature."""
        scheme = challenger.scheme
        if not isinstance(scheme, McCLS):
            return None
        ctx = scheme.ctx
        n = ctx.order
        target = challenger.target_identity
        public_key = challenger.public_key_oracle(target)
        # Step 1: observe one legitimate signature to learn S.
        observed = challenger.sign_oracle(target, b"any old routing message")
        s_component = observed.s
        # Step 2: use the master key to compute x*P = s^{-1} * P_ID.
        s_master = scheme.master_secret
        x_times_p = public_key * pow(s_master, -1, n)
        # Step 3: solve for (V, R) on a fresh message.
        message = b"forged by the KGC after one observation"
        a = self.rng.randrange(1, n)
        big_r = ctx.g1 * a - x_times_p
        h = ctx.hash_scalar(b"H2/mccls", message, big_r, public_key)
        v = (h * a) % n
        return ForgeryAttempt(
            message=message,
            signature=McCLSSignature(v=v, s=s_component, r=big_r),
            identity=target,
            public_key=public_key,
        )


def demo_hardening(curve=None, seed: int = 0x5AFE) -> dict:
    """Run the full adversary battery against McCLS and McCLS+.

    Returns {adversary_name: (rate_against_mccls, rate_against_plus)};
    used by tests and the hardening example.
    """
    from repro.core.games import (
        ALGEBRAIC_ADVERSARIES,
        PROTOCOL_ADVERSARIES,
        run_game,
    )
    from repro.pairing.bn import default_test_curve

    curve = curve if curve is not None else default_test_curve()
    results = {}
    battery = list(PROTOCOL_ADVERSARIES) + list(ALGEBRAIC_ADVERSARIES) + [
        KGCSignatureReplayForger
    ]
    for adversary_cls in battery:
        rates = []
        for scheme_cls in (McCLS, McCLSPlus):
            scheme = scheme_cls(PairingContext(curve, random.Random(seed)))
            outcome = run_game(
                scheme, adversary_cls(random.Random(seed + 1)), trials=3
            )
            rates.append(outcome.forgery_rate)
        results[adversary_cls.name] = tuple(rates)
    return results
