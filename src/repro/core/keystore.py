"""Persistence for KGC and user key material (JSON keystores).

A real deployment provisions nodes before the network exists (the paper
assumes out-of-band enrollment).  This module serialises a
:class:`~repro.core.params.KeyGenerationCenter` - curve identification,
scheme, master secret and every issued user key - to a JSON document and
restores it to a fully functional KGC, so provisioning and operation can
happen in different processes.

Point material is stored as hex of the canonical wire encoding from
:mod:`repro.core.serialization`, so a tampered keystore fails loudly (the
decoder validates curve membership).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.params import KeyGenerationCenter
from repro.core.serialization import (
    decode_g1,
    decode_g2,
    encode_g1,
    encode_g2,
)
from repro.errors import SerializationError
from repro.pairing.bn import BNCurve, bn254, derive_bn_curve
from repro.schemes.base import PartialPrivateKey, UserKeyPair
from repro.schemes.registry import scheme_class

FORMAT_VERSION = 1


def _point_hex_g1(curve: BNCurve, point) -> str:
    return encode_g1(curve, point).hex()


def _point_hex_g2(curve: BNCurve, point) -> str:
    return encode_g2(curve, point).hex()


def _g1_from_hex(curve: BNCurve, text: str):
    point, rest = decode_g1(curve, bytes.fromhex(text))
    if rest:
        raise SerializationError("trailing bytes in stored G1 point")
    return point


def _g2_from_hex(curve: BNCurve, text: str):
    point, rest = decode_g2(curve, bytes.fromhex(text))
    if rest:
        raise SerializationError("trailing bytes in stored G2 point")
    return point


def save_kgc(path: Union[str, Path], kgc: KeyGenerationCenter) -> None:
    """Write the KGC's full state (including secrets) to ``path``.

    The file contains the master secret and user secret values - protect
    it like a private key file.
    """
    curve = kgc.ctx.curve
    users = []
    for identity in kgc.issued_identities():
        keys = kgc.keys_for(identity)
        record = {
            "identity": keys.identity,
            "secret_value": hex(keys.secret_value),
            "public_key": _point_hex_g1(curve, keys.public_key),
            "q_id": _point_hex_g2(curve, keys.partial.q_id),
            "d_id": _point_hex_g2(curve, keys.partial.d_id),
        }
        if keys.public_key_extra is not None:
            record["public_key_extra"] = _point_hex_g1(curve, keys.public_key_extra)
        if keys.full_private_key is not None:
            record["full_private_key"] = _point_hex_g2(
                curve, keys.full_private_key
            )
        users.append(record)
    document = {
        "format_version": FORMAT_VERSION,
        "scheme": kgc.scheme.name,
        "curve": {"name": curve.name, "t": str(curve.t)},
        "master_secret": hex(kgc.scheme.master_secret),
        "users": users,
    }
    Path(path).write_text(json.dumps(document, indent=2))


def _curve_from_document(spec: dict) -> BNCurve:
    name = spec.get("name", "")
    if name == "bn254":
        return bn254()
    return derive_bn_curve(int(spec["t"]), name=name)


def load_kgc(path: Union[str, Path]) -> KeyGenerationCenter:
    """Restore a KGC (and its issued users) from a keystore file."""
    try:
        document = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read keystore {path}: {exc}") from exc
    if document.get("format_version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported keystore version {document.get('format_version')!r}"
        )
    curve = _curve_from_document(document["curve"])
    kgc = KeyGenerationCenter(
        scheme_class(document["scheme"]),
        curve=curve,
        master_secret=int(document["master_secret"], 16),
    )
    for record in document["users"]:
        partial = PartialPrivateKey(
            identity=record["identity"],
            q_id=_g2_from_hex(curve, record["q_id"]),
            d_id=_g2_from_hex(curve, record["d_id"]),
        )
        keys = UserKeyPair(
            identity=record["identity"],
            secret_value=int(record["secret_value"], 16),
            public_key=_g1_from_hex(curve, record["public_key"]),
            partial=partial,
            public_key_extra=(
                _g1_from_hex(curve, record["public_key_extra"])
                if "public_key_extra" in record
                else None
            ),
            full_private_key=(
                _g2_from_hex(curve, record["full_private_key"])
                if "full_private_key" in record
                else None
            ),
        )
        _validate_user(kgc, keys)
        kgc._issued[keys.identity] = keys
    return kgc


def _validate_user(kgc: KeyGenerationCenter, keys: UserKeyPair) -> None:
    """Cross-check restored material against the master secret."""
    expected_q = kgc.scheme.q_of(keys.identity)
    if keys.partial.q_id != expected_q:
        raise SerializationError(
            f"stored Q_ID for {keys.identity!r} does not match H1(ID)"
        )
    if keys.partial.d_id != expected_q * kgc.scheme.master_secret:
        raise SerializationError(
            f"stored D_ID for {keys.identity!r} fails the s*Q_ID check"
        )
