"""Certificateless authenticated key agreement for repeat traffic.

He & Chen (arXiv:1106.3898) show a certificateless AKA protocol without
bilinear pairings: both parties hold Schnorr-style certificateless keys
(user secret ``x`` plus KGC-issued partial scalar ``d``, as in
:mod:`repro.schemes.ecls`) and derive a shared key from one ephemeral
exchange — every operation a plain G1 multiplication.  This module
implements that two-message shape between a client and the verification
gateway, so steady-state traffic authenticates with an HMAC under the
session key instead of a pairing per request:

* **Hello** (client -> gateway): identity, the client's self-chosen
  public key ``P_C = x*P`` and ephemeral ``T_C = t_C*P``.  The *service*
  layer authenticates this message with the client's enrolled McCLS
  signature — bootstrapping trust in the pairing world exactly once.
* **Accept** (gateway -> client): the gateway's certificateless public
  key, its ephemeral ``T_G``, a freshly issued partial key
  ``(R_C, d_C)`` for the client (the KGC is co-located with the gateway;
  the toy trust model matches ENROLL, which already ships key material
  over the wire), and a key-confirmation tag.

Both sides then agree on

    Z_static    = (t + x + d) * (T_peer + PK_peer)     [= (a+sA)(b+sB)*P]
    Z_ephemeral = t * T_peer                           [= a*b*P]

with ``PK_peer = P_peer + R_peer + H1(ID_peer, R_peer, P_pub)*P_pub``
— the implicit certificateless public key, whose discrete log only a
party holding a KGC-issued partial key knows.  The session key is an
HKDF over both points and the transcript; ``Z_ephemeral`` gives forward
secrecy, ``Z_static`` gives (implicit) mutual authentication, and the
Accept's confirmation tag makes the gateway's authentication explicit.
The client's first MAC-authenticated request completes confirmation in
the other direction.

A master-secret rotation changes ``P_pub`` and therefore every issued
``d``: all derived session keys are dead and the service layer must
flush its session table (the PR 5 rekey invalidation chain).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ReproError
from repro.pairing.curve import CurvePoint
from repro.pairing.groups import PairingContext
from repro.pairing.hashing import hash_bytes
from repro.schemes.base import normalize_identity
from repro.schemes.ecls import ECLSScheme

#: bytes of the session identifier (transcript digest prefix)
SESSION_ID_BYTES = 16

#: bytes of session keys and confirmation tags
KEY_BYTES = 32
MAC_BYTES = 32


class SessionError(ReproError):
    """Handshake or MAC validation failure."""


@dataclass(frozen=True)
class SessionHello:
    """Message 1, client -> gateway."""

    identity: str
    client_pub: CurvePoint  # P_C = x*P
    ephemeral: CurvePoint  # T_C = t_C*P


@dataclass(frozen=True)
class SessionAccept:
    """Message 2, gateway -> client."""

    gateway_identity: str
    gateway_pub: CurvePoint  # P_G
    gateway_r_pub: CurvePoint  # R_G
    ephemeral: CurvePoint  # T_G = t_G*P
    client_r_pub: CurvePoint  # R_C, issued for the client
    client_d: int  # d_C, issued for the client
    confirm: bytes  # HMAC(confirm_key, transcript)


@dataclass(frozen=True)
class EstablishedSession:
    """The agreed key material both sides hold after the handshake."""

    session_id: bytes
    key: bytes
    client_identity: str
    gateway_identity: str

    def mac(self, *chunks: bytes) -> bytes:
        """Authentication tag over the framed chunks."""
        mac = _hmac.new(self.key, digestmod=hashlib.sha256)
        for chunk in chunks:
            mac.update(len(chunk).to_bytes(4, "big"))
            mac.update(chunk)
        return mac.digest()

    def mac_ok(self, tag: bytes, *chunks: bytes) -> bool:
        """Constant-time tag check."""
        return _hmac.compare_digest(self.mac(*chunks), tag)


def _kdf(
    z_static: CurvePoint,
    z_ephemeral: CurvePoint,
    transcript: bytes,
) -> Tuple[bytes, bytes, bytes]:
    """(session_id, session_key, confirm_key) from the shared points."""
    secret = hash_bytes(b"session/ecls-aka", [z_static, z_ephemeral])
    prk = _hmac.new(transcript, secret, hashlib.sha256).digest()
    session_key = _hmac.new(prk, b"key\x01", hashlib.sha256).digest()[:KEY_BYTES]
    confirm_key = _hmac.new(prk, b"confirm\x02", hashlib.sha256).digest()[:KEY_BYTES]
    session_id = hashlib.sha256(b"sid:" + transcript).digest()[:SESSION_ID_BYTES]
    return session_id, session_key, confirm_key


def _transcript(hello: SessionHello, accept_core: Tuple) -> bytes:
    gateway_identity, gateway_pub, gateway_r_pub, t_g, client_r_pub = accept_core
    return hash_bytes(
        b"session/transcript",
        [
            hello.identity,
            hello.client_pub,
            hello.ephemeral,
            gateway_identity,
            gateway_pub,
            gateway_r_pub,
            t_g,
            client_r_pub,
        ],
    )


def _implicit_public_key(
    scheme: ECLSScheme, identity: str, pub: CurvePoint, r_pub: CurvePoint
) -> CurvePoint:
    """PK = P_ID + R_ID + H1(ID, R_ID, P_pub)*P_pub (= (x+d)*P)."""
    return scheme.ctx.g1_msm(
        [(pub, 1), (r_pub, 1), (scheme.p_pub, scheme._h1(identity, r_pub))]
    )


class SessionInitiator:
    """Client side of the handshake.

    Holds only public parameters (curve + P_pub, e.g. from a verifier
    view); the certificateless partial key arrives in the Accept.
    Ephemeral scalars come from ``SystemRandom`` unless a seeded ``rng``
    is supplied for deterministic tests.
    """

    def __init__(
        self,
        ctx: PairingContext,
        p_pub: CurvePoint,
        identity: str,
        *,
        rng: Optional[random.Random] = None,
    ):
        self.ctx = ctx
        self.identity = normalize_identity(identity)
        self.rng = rng if rng is not None else random.SystemRandom()
        # a throwaway scheme bound to the authentic P_pub gives us the H1
        # arithmetic without a master secret (master_secret=1 is a
        # placeholder; the initiator never issues partial keys)
        self._view = ECLSScheme(ctx, master_secret=1)
        self._view.p_pub = p_pub
        self._x = self.rng.randrange(1, ctx.order)
        self._t = self.rng.randrange(1, ctx.order)
        self.client_pub = ctx.g1_mul(ctx.g1, self._x)
        self._t_pub = ctx.g1_mul(ctx.g1, self._t)

    def hello(self) -> SessionHello:
        """Message 1: identity plus the client's two public points."""
        return SessionHello(
            identity=self.identity,
            client_pub=self.client_pub,
            ephemeral=self._t_pub,
        )

    def finish(self, accept: SessionAccept) -> EstablishedSession:
        """Derive the session key and check the gateway's confirmation."""
        ctx = self.ctx
        n = ctx.order
        curve = ctx.curve
        for point in (
            accept.gateway_pub,
            accept.gateway_r_pub,
            accept.ephemeral,
            accept.client_r_pub,
        ):
            if point.is_infinity() or not curve.g1_curve.contains(point):
                raise SessionError("accept carries an invalid group element")
        if not (0 < accept.client_d < n):
            raise SessionError("issued partial key scalar out of range")
        # the issued partial key must actually bind our identity to P_pub
        expected = ctx.g1_msm(
            [
                (accept.client_r_pub, 1),
                (
                    self._view.p_pub,
                    self._view._h1(self.identity, accept.client_r_pub),
                ),
            ]
        )
        if ctx.g1_mul(ctx.g1, accept.client_d) != expected:
            raise SessionError("issued partial key fails validation")
        pk_gateway = _implicit_public_key(
            self._view,
            accept.gateway_identity,
            accept.gateway_pub,
            accept.gateway_r_pub,
        )
        secret = (self._t + self._x + accept.client_d) % n
        z_static = ctx.g1_mul(accept.ephemeral + pk_gateway, secret)
        z_ephemeral = ctx.g1_mul(accept.ephemeral, self._t)
        transcript = _transcript(
            self.hello(),
            (
                accept.gateway_identity,
                accept.gateway_pub,
                accept.gateway_r_pub,
                accept.ephemeral,
                accept.client_r_pub,
            ),
        )
        session_id, key, confirm_key = _kdf(z_static, z_ephemeral, transcript)
        tag = _hmac.new(confirm_key, b"gw:" + transcript, hashlib.sha256).digest()
        if not _hmac.compare_digest(tag, accept.confirm):
            raise SessionError("gateway key-confirmation tag mismatch")
        return EstablishedSession(
            session_id=session_id,
            key=key,
            client_identity=self.identity,
            gateway_identity=accept.gateway_identity,
        )


class SessionAuthority:
    """Gateway side: issues partial keys and answers Hellos.

    Shares the KGC master secret (and therefore P_pub) with the McCLS
    scheme the gateway verifies against, so one REKEY invalidates both
    worlds at once.
    """

    def __init__(
        self,
        ctx: PairingContext,
        master_secret: int,
        *,
        identity: str = "gateway@service",
        rng: Optional[random.Random] = None,
    ):
        self.ctx = ctx
        self.identity = normalize_identity(identity)
        self.rng = rng if rng is not None else random.SystemRandom()
        self.scheme = ECLSScheme(ctx, master_secret=master_secret)
        self._keys = self.scheme.generate_user_keys(self.identity)

    @property
    def p_pub(self) -> CurvePoint:
        return self.scheme.p_pub

    def rekey(self, new_master_secret: int) -> None:
        """Follow a KGC master-secret rotation: new P_pub, new keys.

        Every previously issued ``d`` (and every session key derived from
        one) is now worthless; callers must flush their session tables.
        """
        self.scheme.rotate_master_secret(new_master_secret)
        self._keys = self.scheme.generate_user_keys(self.identity)

    def respond(
        self, hello: SessionHello
    ) -> Tuple[SessionAccept, EstablishedSession]:
        """Issue the client a partial key, agree a key, confirm it."""
        ctx = self.ctx
        n = ctx.order
        curve = ctx.curve
        identity = normalize_identity(hello.identity)
        for point in (hello.client_pub, hello.ephemeral):
            if point.is_infinity() or not curve.g1_curve.contains(point):
                raise SessionError("hello carries an invalid group element")
        partial = self.scheme.extract_partial_key(identity)
        t = self.rng.randrange(1, n)
        t_pub = ctx.g1_mul(ctx.g1, t)
        pk_client = _implicit_public_key(
            self.scheme, identity, hello.client_pub, partial.r_pub
        )
        secret = (t + self._keys.full_private_key) % n
        z_static = ctx.g1_mul(hello.ephemeral + pk_client, secret)
        z_ephemeral = ctx.g1_mul(hello.ephemeral, t)
        transcript = _transcript(
            hello,
            (
                self.identity,
                self._keys.public_key,
                self._keys.partial.r_pub,
                t_pub,
                partial.r_pub,
            ),
        )
        session_id, key, confirm_key = _kdf(z_static, z_ephemeral, transcript)
        confirm = _hmac.new(
            confirm_key, b"gw:" + transcript, hashlib.sha256
        ).digest()
        accept = SessionAccept(
            gateway_identity=self.identity,
            gateway_pub=self._keys.public_key,
            gateway_r_pub=self._keys.partial.r_pub,
            ephemeral=t_pub,
            client_r_pub=partial.r_pub,
            client_d=partial.d,
            confirm=confirm,
        )
        session = EstablishedSession(
            session_id=session_id,
            key=key,
            client_identity=identity,
            gateway_identity=self.identity,
        )
        return accept, session
