"""McCLS - the paper's certificateless signature scheme (Section 4).

Stages (notation as in the paper, type-3 instantiation per DESIGN.md 4.1):

* Setup: master key s, P_pub = s*P (P in G1), hashes H1 -> G2, H2 -> Zp.
* Extract-Partial-Private-Key: Q_ID = H1(ID), D_ID = s*Q_ID       (G2).
* Generate-Key-Pair: secret x, public P_ID = x*P_pub              (G1).
* CL-Sign(M): r <- Zp*,  R = (r - x)*P,  h = H2(M, R, P_ID),
  V = h*r mod n,  S = x^{-1}*D_ID;  signature sigma = (V, S, R).
* CL-Verify: h = H2(M, R, P_ID); accept iff (P_pub, V*P - h*R, S/h, Q_ID)
  is a valid co-DH tuple, i.e. e(V*P - h*R, h^{-1}*S) == e(P_pub, Q_ID).

Correctness: V*P - h*R = h*r*P - h*(r-x)*P = h*x*P and
h^{-1}*S = (hx)^{-1} * s*Q_ID, so the left side pairs to e(P, Q_ID)^s.

Efficiency: signing needs two scalar multiplications and **no pairing**;
verification needs **one** pairing plus the constant e(P_pub, Q_ID), which
any verifier caches per identity - the property the paper's Table 1 and
Figure 3 build on.  (S = x^{-1}*D_ID is message-independent, so a signer
may additionally precompute it; pass ``precompute_s=True`` to count signing
as the paper's steady state of one fresh scalar multiplication.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError, SignatureError
from repro.pairing.curve import CurvePoint
from repro.pairing.groups import PairingContext
from repro.schemes.base import (
    CertificatelessScheme,
    Identity,
    Message,
    UserKeyPair,
    normalize_identity,
    normalize_message,
)


@dataclass(frozen=True)
class McCLSSignature:
    """sigma = (V, S, R): scalar V, G2 point S, G1 point R."""

    v: int
    s: CurvePoint
    r: CurvePoint

    def components(self):
        """Return (V, S, R) as a tuple."""
        return self.v, self.s, self.r


class McCLS(CertificatelessScheme):
    """The McCLS scheme (paper Section 4)."""

    name = "mccls"
    public_key_length_points = 1
    paper_sign_profile = (0, 2, 0)  # 2s
    paper_verify_profile = (1, 1, 0)  # 1p + 1s

    def __init__(
        self,
        ctx: PairingContext,
        master_secret: Optional[int] = None,
        precompute_s: bool = False,
    ):
        super().__init__(ctx, master_secret)
        self._precompute_s = precompute_s
        self._s_cache = {}

    def _on_rekey(self) -> None:
        """Master rekey invalidation: every cached S = x^{-1}*D_ID was
        derived from a partial key the old master secret issued, so a
        signer reusing it after re-enrolment would emit signatures that
        can never verify."""
        self._s_cache.clear()

    def generate_user_keys(self, identity: Identity) -> UserKeyPair:
        """Stage 3: pick the secret value x and derive P_ID = x*P_pub."""
        ident = normalize_identity(identity)
        x = self.ctx.random_scalar()
        p_id = self.ctx.g1_mul(self.p_pub_g1, x)
        partial = self.extract_partial_key(ident)
        return UserKeyPair(
            identity=ident, secret_value=x, public_key=p_id, partial=partial
        )

    def sign(self, message: Message, keys: UserKeyPair) -> McCLSSignature:
        """CL-Sign: two scalar multiplications, zero pairings."""
        msg = normalize_message(message)
        n = self.ctx.order
        x = keys.secret_value
        r = self.ctx.random_scalar()
        big_r = self.ctx.g1_mul(self.ctx.g1, (r - x) % n)
        h = self.ctx.hash_scalar(b"H2/mccls", msg, big_r, keys.public_key)
        v = (h * r) % n
        s_point = self._s_component(keys)
        return McCLSSignature(v=v, s=s_point, r=big_r)

    def _s_component(self, keys: UserKeyPair) -> CurvePoint:
        """S = x^{-1} * D_ID - message independent, optionally cached."""
        if self._precompute_s:
            cached = self._s_cache.get(keys.identity)
            if cached is not None:
                return cached
        x_inv = self.ctx.scalar_inverse(keys.secret_value)
        # D_ID = s*Q_ID is KGC-issued subgroup material: GLS split is safe.
        s_point = self.ctx.g2_mul(keys.partial.d_id, x_inv, in_subgroup=True)
        if self._precompute_s:
            self._s_cache[keys.identity] = s_point
        return s_point

    def verify(
        self,
        message: Message,
        signature: McCLSSignature,
        identity: Identity,
        public_key: CurvePoint,
        public_key_extra: Optional[CurvePoint] = None,
    ) -> bool:
        """CL-Verify: the co-DH tuple check with the cached constant pairing.

        Total over hostile input: a structurally wrong *type* still raises
        :class:`SignatureError` (a programming error at the call site), but
        any failure while *checking* a candidate signature - wrong curve,
        degenerate scalars, arithmetic blow-ups from mangled wire bytes -
        means the signature is invalid and returns a clean ``False``.
        """
        msg = normalize_message(message)
        if not isinstance(signature, McCLSSignature):
            raise SignatureError("expected a McCLSSignature")
        v, s_point, big_r = signature.components()
        curve = self.ctx.curve
        try:
            if not (0 < v < curve.n):
                return False
            if not curve.g1_curve.contains(big_r):
                return False
            if s_point.is_infinity() or not curve.g2_curve.contains(s_point):
                return False

            h = self.ctx.hash_scalar(b"H2/mccls", msg, big_r, public_key)
            left_g1 = self.ctx.g1_mul(self.ctx.g1, v) - self.ctx.g1_mul(big_r, h)
            right_g2 = self.ctx.g2_mul(s_point, self.ctx.scalar_inverse(h))
            q_id = self.q_of(identity)
            # e(left, right) == e(P_pub, Q_ID) with the constant side
            # cached as a Miller value: cold verifies share ONE final
            # exponentiation across both Miller loops, warm verifies run
            # exactly one pairing (the paper's headline claim).
            return self.ctx.codh_check_cached(
                left_g1, right_g2, self.p_pub_g1, q_id
            )
        except (ReproError, ValueError, ZeroDivisionError, ArithmeticError):
            return False
