"""Revocation for certificateless deployments.

The PKI baseline gets revocation "for free" (CRLs); certificateless
schemes famously do not - there is no certificate to revoke, and
`repro.netsim.routing.pki_aodv` calls this out as PKI's one structural
advantage.  This module closes the gap the way CLS deployments do it in
practice: the KGC acts as a *revocation authority*, signing revocation
lists under its own well-known identity ("kgc-revocation") with the same
certificateless scheme, and every node rejects messages from listed
identities.

Used by the simulator's insider-attack scenario: an *enrolled* attacker
holds valid keys, so hop-by-hop authentication alone cannot exclude it;
distributing a signed revocation list mid-run restores the protection
(tests and the ablation bench quantify the before/after).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.core.mccls import McCLS, McCLSSignature
from repro.schemes.base import UserKeyPair

#: the reserved identity the KGC signs revocation lists under
REVOCATION_AUTHORITY_IDENTITY = "kgc-revocation"


@dataclass(frozen=True)
class RevocationList:
    """A signed, versioned set of revoked identities."""

    version: int
    revoked: FrozenSet[str]
    signature: Optional[McCLSSignature] = None  # None in modelled mode

    def payload_bytes(self) -> bytes:
        """Canonical byte encoding covered by the KGC's signature."""
        return repr(("crl", self.version, tuple(sorted(self.revoked)))).encode()

    @property
    def size_bytes(self) -> int:
        return 8 + sum(len(ident) + 2 for ident in self.revoked) + 226


class RevocationAuthority:
    """The KGC role that issues signed revocation lists."""

    def __init__(self, scheme: McCLS):
        self.scheme = scheme
        self.keys: UserKeyPair = scheme.generate_user_keys(
            REVOCATION_AUTHORITY_IDENTITY
        )
        self._version = 0
        self._revoked: set = set()

    def revoke(self, *identities: str) -> RevocationList:
        """Add identities and issue a freshly signed list."""
        self._revoked.update(identities)
        self._version += 1
        crl = RevocationList(
            version=self._version, revoked=frozenset(self._revoked)
        )
        signature = self.scheme.sign(crl.payload_bytes(), self.keys)
        return RevocationList(
            version=crl.version, revoked=crl.revoked, signature=signature
        )

    def public_key(self):
        """The revocation authority's McCLS public key."""
        return self.keys.public_key


class RevocationChecker:
    """Verifier-side state: validates and applies revocation lists."""

    def __init__(self, scheme: Optional[McCLS] = None, authority_public_key=None):
        self.scheme = scheme
        self.authority_public_key = authority_public_key
        self.current_version = 0
        self.revoked: FrozenSet[str] = frozenset()

    def apply(self, crl: RevocationList) -> bool:
        """Validate and install a list; returns True if accepted.

        Stale versions are ignored (no rollback); in real-crypto mode the
        KGC's signature is checked, in modelled mode the list is trusted
        (the simulator only hands honest nodes authentic lists).
        """
        if crl.version <= self.current_version:
            return False
        if self.scheme is not None and self.authority_public_key is not None:
            if crl.signature is None:
                return False
            valid = self.scheme.verify(
                crl.payload_bytes(),
                crl.signature,
                REVOCATION_AUTHORITY_IDENTITY,
                self.authority_public_key,
            )
            if not valid:
                return False
        self.current_version = crl.version
        self.revoked = crl.revoked
        return True

    def is_revoked(self, identity: str) -> bool:
        """Whether ``identity`` appears on the installed list."""
        return identity in self.revoked


def forge_revocation(
    version: int, identities: Iterable[str]
) -> Tuple[RevocationList, str]:
    """A forged (unsigned) revocation list, for negative tests: an attacker
    trying to revoke honest nodes must be rejected by real-crypto checkers."""
    crl = RevocationList(version=version, revoked=frozenset(identities))
    return crl, "no valid signature attached"
