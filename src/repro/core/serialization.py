"""Canonical wire encoding for keys and signatures.

The network simulator charges packets by the byte, so the authentication
extension needs honest sizes: a McCLS signature is one scalar + one G1
point + one G2 point, and a public key is one G1 point.  Encoding is
fixed-width big-endian per coordinate with a one-byte tag, so sizes are
static per curve (a property the AODV header accounting relies on).
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.core.mccls import McCLSSignature
from repro.errors import SerializationError
from repro.pairing.bn import BNCurve
from repro.pairing.curve import CurvePoint
from repro.pairing.fields import Fp, Fp2

_TAG_INFINITY = 0
_TAG_G1 = 1
_TAG_G2 = 2


def _coord_width(curve: BNCurve) -> int:
    return (curve.p.bit_length() + 7) // 8


def scalar_size(curve: BNCurve) -> int:
    """Encoded size in bytes of one group-order scalar."""
    return (curve.n.bit_length() + 7) // 8


def g1_point_size(curve: BNCurve) -> int:
    """Encoded size in bytes of one G1 point (tag + 2 coords)."""
    return 1 + 2 * _coord_width(curve)


def g2_point_size(curve: BNCurve) -> int:
    """Encoded size in bytes of one G2 point (tag + 4 coords)."""
    return 1 + 4 * _coord_width(curve)


def mccls_signature_size(curve: BNCurve) -> int:
    """Bytes of an encoded McCLS signature (V, S, R)."""
    return scalar_size(curve) + g2_point_size(curve) + g1_point_size(curve)


def encode_g1(curve: BNCurve, point: CurvePoint) -> bytes:
    """Encode a G1 point as tag || x || y (fixed width)."""
    width = _coord_width(curve)
    if point.is_infinity():
        return bytes([_TAG_INFINITY]) + b"\x00" * (2 * width)
    if not isinstance(point.x, Fp):
        raise SerializationError("encode_g1 expects an Fp-coordinate point")
    return (
        bytes([_TAG_G1])
        + point.x.value.to_bytes(width, "big")
        + point.y.value.to_bytes(width, "big")
    )


def decode_g1(curve: BNCurve, data: bytes) -> Tuple[CurvePoint, bytes]:
    """Decode a G1 point; validates the curve equation."""
    width = _coord_width(curve)
    need = 1 + 2 * width
    if len(data) < need:
        raise SerializationError("truncated G1 point")
    tag, rest = data[0], data[1:need]
    if tag == _TAG_INFINITY:
        return curve.g1_curve.infinity(), data[need:]
    if tag != _TAG_G1:
        raise SerializationError(f"bad G1 tag {tag}")
    x = int.from_bytes(rest[:width], "big")
    y = int.from_bytes(rest[width:], "big")
    point = curve.g1_curve.unsafe_point(curve.spec.fp(x), curve.spec.fp(y))
    if not point.is_on_curve():
        raise SerializationError("decoded G1 point is not on the curve")
    return point, data[need:]


def encode_g2(curve: BNCurve, point: CurvePoint) -> bytes:
    """Encode a G2 point as tag || x0 || x1 || y0 || y1."""
    width = _coord_width(curve)
    if point.is_infinity():
        return bytes([_TAG_INFINITY]) + b"\x00" * (4 * width)
    if not isinstance(point.x, Fp2):
        raise SerializationError("encode_g2 expects an Fp2-coordinate point")
    coords = (point.x.c0, point.x.c1, point.y.c0, point.y.c1)
    return bytes([_TAG_G2]) + b"".join(c.to_bytes(width, "big") for c in coords)


def decode_g2(curve: BNCurve, data: bytes) -> Tuple[CurvePoint, bytes]:
    """Decode a G2 point; validates the twist equation."""
    width = _coord_width(curve)
    need = 1 + 4 * width
    if len(data) < need:
        raise SerializationError("truncated G2 point")
    tag = data[0]
    if tag == _TAG_INFINITY:
        return curve.g2_curve.infinity(), data[need:]
    if tag != _TAG_G2:
        raise SerializationError(f"bad G2 tag {tag}")
    vals = [
        int.from_bytes(data[1 + i * width : 1 + (i + 1) * width], "big")
        for i in range(4)
    ]
    point = curve.g2_curve.unsafe_point(
        curve.spec.fp2(vals[0], vals[1]), curve.spec.fp2(vals[2], vals[3])
    )
    if not point.is_on_curve():
        raise SerializationError("decoded G2 point is not on the curve")
    return point, data[need:]


def encode_scalar(curve: BNCurve, value: int) -> bytes:
    """Encode a scalar in [0, n) big-endian, fixed width."""
    if not 0 <= value < curve.n:
        raise SerializationError("scalar out of range")
    return value.to_bytes(scalar_size(curve), "big")


def decode_scalar(curve: BNCurve, data: bytes) -> Tuple[int, bytes]:
    """Decode a scalar; rejects values >= the group order."""
    size = scalar_size(curve)
    if len(data) < size:
        raise SerializationError("truncated scalar")
    value = int.from_bytes(data[:size], "big")
    if value >= curve.n:
        raise SerializationError("scalar out of range")
    return value, data[size:]


def encode_mccls_signature(curve: BNCurve, sig: McCLSSignature) -> bytes:
    """Encode sigma = (V, S, R) into its fixed wire size."""
    return (
        encode_scalar(curve, sig.v)
        + encode_g2(curve, sig.s)
        + encode_g1(curve, sig.r)
    )


def decode_mccls_signature(curve: BNCurve, data: bytes) -> McCLSSignature:
    """Decode a full signature; rejects trailing bytes."""
    v, rest = decode_scalar(curve, data)
    s, rest = decode_g2(curve, rest)
    r, rest = decode_g1(curve, rest)
    if rest:
        raise SerializationError(f"{len(rest)} trailing bytes after signature")
    return McCLSSignature(v=v, s=s, r=r)


def encode_identity(identity: str) -> bytes:
    """Length-prefixed UTF-8 identity encoding."""
    raw = identity.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise SerializationError("identity too long")
    return struct.pack(">H", len(raw)) + raw


def decode_identity(data: bytes) -> Tuple[str, bytes]:
    """Decode a length-prefixed identity, returning the remainder.

    Total over arbitrary bytes: every malformed input (truncation, bad
    UTF-8) raises :class:`SerializationError`, never a raw decoder error -
    corrupted frames must be rejected, not crash the receiver.
    """
    if len(data) < 2:
        raise SerializationError("truncated identity")
    try:
        (length,) = struct.unpack(">H", data[:2])
    except struct.error as exc:  # pragma: no cover - length check above
        raise SerializationError(f"bad identity length prefix: {exc}") from None
    if len(data) < 2 + length:
        raise SerializationError("truncated identity body")
    try:
        identity = data[2 : 2 + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SerializationError(f"identity is not valid UTF-8: {exc}") from None
    return identity, data[2 + length :]
