"""The paper's contribution: McCLS and its supporting machinery.

* :mod:`repro.core.mccls`         - the certificateless signature scheme.
* :mod:`repro.core.params`        - KGC / public-parameter roles.
* :mod:`repro.core.serialization` - wire encoding of keys and signatures.
* :mod:`repro.core.batch`         - batch verification extension.
* :mod:`repro.core.games`         - Type I / Type II security-game harness.
* :mod:`repro.core.hardened`      - McCLS+ (the repaired variant).
* :mod:`repro.core.revocation`    - KGC-signed revocation lists.
* :mod:`repro.core.keystore`      - key-material persistence.
"""

from repro.core.hardened import McCLSPlus
from repro.core.mccls import McCLS, McCLSSignature
from repro.core.params import KeyGenerationCenter, PublicParams

__all__ = [
    "McCLS",
    "McCLSPlus",
    "McCLSSignature",
    "KeyGenerationCenter",
    "PublicParams",
]
