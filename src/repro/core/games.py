"""Security-game harness for certificateless signatures.

The paper claims (Theorems 1 and 2) existential unforgeability against

* **Type I** adversaries: outsiders who may replace any user's public key
  but never learn partial private keys of the target identity, and
* **Type II** adversaries: a malicious/curious KGC that knows the master
  key s but never learns users' secret values x,

in the random-oracle model under CDH.  This module implements the games as
experiments: a challenger exposing the standard oracles, pluggable
adversaries, and a driver that reports the forgery rate.

Reproduction finding (recorded in EXPERIMENTS.md): the scheme **as
published does not satisfy either theorem**.  The verification equation

    e(V*P - h*R, h^{-1}*S) == e(P_pub, Q_ID)

never ties the signature to any secret: choosing

    R = alpha*P + beta*P_pub,   h = H2(M, R, P_ID),
    V = h*alpha mod n,          S = (-beta^{-1} mod n) * Q_ID

makes the left side e(-h*beta*P_pub, -(h*beta)^{-1}*Q_ID) =
e(P_pub, Q_ID) for ANY message and identity, using public values only.
:class:`UniversalForgeryAttack` implements this and the test suite asserts
that it succeeds - reproducing the scheme faithfully includes reproducing
its flaws.  The same adversary shaped against ZWXF (which carries a real
proof) fails, which the games below also demonstrate.

The generic adversaries (:class:`RandomForgeryAdversary`,
:class:`TamperAdversary`, :class:`TransplantAdversary`,
:class:`KeyReplacementAdversary`) model the attacks the *simulation* part
of the paper relies on - packet tampering and impersonation by nodes that
hold no key material - and those do fail against McCLS, which is what
makes the Figure 4/5 attack-resistance results work.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.mccls import McCLS, McCLSSignature
from repro.pairing.curve import CurvePoint
from repro.pairing.groups import PairingContext
from repro.schemes.base import CertificatelessScheme, UserKeyPair
from repro.schemes.ecls import ECLSScheme, ECLSSignature


@dataclass
class ForgeryAttempt:
    """What an adversary submits at the end of the game."""

    message: bytes
    signature: object
    identity: str
    public_key: CurvePoint
    public_key_extra: Optional[CurvePoint] = None


@dataclass
class GameResult:
    trials: int
    forgeries: int
    attempts: List[bool] = field(default_factory=list)

    @property
    def forgery_rate(self) -> float:
        return self.forgeries / self.trials if self.trials else 0.0


class Challenger:
    """Oracle provider for the EUF-CMA certificateless game.

    Tracks which (identity, message) pairs went through the signing oracle
    so a "forgery" that merely replays an oracle answer is rejected, and
    which partial keys were extracted so Type I restrictions are enforced.
    """

    def __init__(self, scheme: CertificatelessScheme, target_identity: str):
        self.scheme = scheme
        self.target_identity = target_identity
        self.keys: Dict[str, UserKeyPair] = {}
        self.replaced_keys: Dict[str, CurvePoint] = {}
        self.extracted_partials: set = set()
        self.signed_pairs: set = set()
        self._enroll(target_identity)

    def _enroll(self, identity: str) -> UserKeyPair:
        if identity not in self.keys:
            self.keys[identity] = self.scheme.generate_user_keys(identity)
        return self.keys[identity]

    # -- oracles ---------------------------------------------------------------
    def public_key_oracle(self, identity: str) -> CurvePoint:
        """Current public key of an identity (honours replacements)."""
        if identity in self.replaced_keys:
            return self.replaced_keys[identity]
        return self._enroll(identity).public_key

    def public_key_points_oracle(self, identity: str):
        """``(P_ID, extra)`` for two-point schemes (honours replacements).

        ECLS public keys are the pair ``(P_ID, R_ID)``; the second point
        is the KGC's commitment and is not subject to replacement - a
        Type I adversary swaps the user-chosen half only.
        """
        keys = self._enroll(identity)
        return (
            self.replaced_keys.get(identity, keys.public_key),
            getattr(keys, "public_key_extra", None),
        )

    def replace_public_key(self, identity: str, new_key: CurvePoint) -> None:
        """Type I capability: substitute an identity's public key."""
        self._enroll(identity)
        self.replaced_keys[identity] = new_key

    def extract_partial_key(self, identity: str):
        """Type I adversaries may not call this on the target identity."""
        if identity == self.target_identity:
            raise PermissionError("partial key of the target is off limits")
        self.extracted_partials.add(identity)
        return self._enroll(identity).partial

    def extract_secret_value(self, identity: str) -> int:
        """Reveal a user's secret value x (strong corruption query)."""
        return self._enroll(identity).secret_value

    def sign_oracle(self, identity: str, message: bytes):
        """Produce a legitimate signature; the pair is logged as non-fresh."""
        keys = self._enroll(identity)
        self.signed_pairs.add((identity, bytes(message)))
        return self.scheme.sign(message, keys)

    # -- final judgement --------------------------------------------------------
    def judge(self, attempt: ForgeryAttempt) -> bool:
        """True iff the attempt is a *fresh*, *valid* forgery on the target."""
        if attempt.identity != self.target_identity:
            return False
        if (attempt.identity, bytes(attempt.message)) in self.signed_pairs:
            return False  # replay of an oracle answer, not a forgery
        try:
            return self.scheme.verify(
                attempt.message,
                attempt.signature,
                attempt.identity,
                attempt.public_key,
                attempt.public_key_extra,
            )
        except Exception:
            return False


class Adversary(abc.ABC):
    """One forgery strategy; stateless across trials except for its RNG."""

    name = "adversary"

    def __init__(self, rng: Optional[random.Random] = None):
        self.rng = rng if rng is not None else random.Random(0xADE5)

    @abc.abstractmethod
    def attempt(self, challenger: Challenger) -> Optional[ForgeryAttempt]:
        """Produce one forgery attempt (None = concede)."""


def run_game(
    scheme: CertificatelessScheme,
    adversary: Adversary,
    trials: int = 10,
    target_identity: str = "target@manet",
) -> GameResult:
    """Run independent game instances and count successful forgeries."""
    result = GameResult(trials=trials, forgeries=0)
    for trial in range(trials):
        challenger = Challenger(scheme, target_identity)
        attempt = adversary.attempt(challenger)
        success = attempt is not None and challenger.judge(attempt)
        result.attempts.append(success)
        if success:
            result.forgeries += 1
    return result


# ---------------------------------------------------------------------------
# Generic adversaries (these model what MANET attacker nodes can do).
# ---------------------------------------------------------------------------


class RandomForgeryAdversary(Adversary):
    """Submits uniformly random signature components."""

    name = "random"

    def attempt(self, challenger: Challenger) -> Optional[ForgeryAttempt]:
        """Produce one forgery attempt against the challenger."""
        scheme = challenger.scheme
        if not isinstance(scheme, McCLS):
            return None
        ctx: PairingContext = scheme.ctx
        curve = ctx.curve
        sig = McCLSSignature(
            v=self.rng.randrange(1, curve.n),
            s=curve.g2 * self.rng.randrange(1, curve.n),
            r=curve.g1 * self.rng.randrange(1, curve.n),
        )
        return ForgeryAttempt(
            message=b"forged-payload",
            signature=sig,
            identity=challenger.target_identity,
            public_key=challenger.public_key_oracle(challenger.target_identity),
        )


class TamperAdversary(Adversary):
    """Queries the signing oracle, then claims the signature covers a
    different message (what a black-hole node mutating a signed RREP does)."""

    name = "tamper"

    def attempt(self, challenger: Challenger) -> Optional[ForgeryAttempt]:
        """Produce one forgery attempt against the challenger."""
        original = b"route-reply seq=41"
        sig = challenger.sign_oracle(challenger.target_identity, original)
        return ForgeryAttempt(
            message=b"route-reply seq=99",  # inflated freshness
            signature=sig,
            identity=challenger.target_identity,
            public_key=challenger.public_key_oracle(challenger.target_identity),
        )


class TransplantAdversary(Adversary):
    """Takes a valid signature by another identity and transplants it onto
    the target identity (impersonation with someone else's signature)."""

    name = "transplant"

    def attempt(self, challenger: Challenger) -> Optional[ForgeryAttempt]:
        """Produce one forgery attempt against the challenger."""
        message = b"route-request hop=1"
        sig = challenger.sign_oracle("mallory@manet", message)
        return ForgeryAttempt(
            message=message,
            signature=sig,
            identity=challenger.target_identity,
            public_key=challenger.public_key_oracle(challenger.target_identity),
        )


class KeyReplacementAdversary(Adversary):
    """Type I strategy: replace the target's public key with one whose
    secret value the adversary knows, then sign with that x alone (no
    partial key D_ID - which the game forbids extracting)."""

    name = "key-replacement"

    def attempt(self, challenger: Challenger) -> Optional[ForgeryAttempt]:
        """Produce one forgery attempt against the challenger."""
        scheme = challenger.scheme
        if not isinstance(scheme, McCLS):
            return None
        ctx: PairingContext = scheme.ctx
        curve = ctx.curve
        n = curve.n
        x_evil = self.rng.randrange(1, n)
        new_pk = scheme.p_pub_g1 * x_evil
        challenger.replace_public_key(challenger.target_identity, new_pk)
        # Without D_ID the adversary has no G2 element tied to s; the best
        # it can do for S is scale the public Q_ID by something known.
        message = b"blackhole RREP: fresh route!"
        r = self.rng.randrange(1, n)
        big_r = curve.g1 * ((r - x_evil) % n)
        h = ctx.hash_scalar(b"H2/mccls", message, big_r, new_pk)
        v = (h * r) % n
        q_id = scheme.q_of(challenger.target_identity)
        s_guess = q_id * pow(x_evil, -1, n)  # D_ID replaced by Q_ID: wrong
        sig = McCLSSignature(v=v, s=s_guess, r=big_r)
        return ForgeryAttempt(
            message=message,
            signature=sig,
            identity=challenger.target_identity,
            public_key=new_pk,
        )


# ---------------------------------------------------------------------------
# The attacks that actually break the published scheme.
# ---------------------------------------------------------------------------


class UniversalForgeryAttack(Adversary):
    """Public-values-only forgery against McCLS (see module docstring).

    Succeeds with probability 1 against the scheme as published.  Does not
    query a single oracle and does not replace the public key.
    """

    name = "universal"

    def attempt(self, challenger: Challenger) -> Optional[ForgeryAttempt]:
        """Produce one forgery attempt against the challenger."""
        scheme = challenger.scheme
        if not isinstance(scheme, McCLS):
            return None
        ctx: PairingContext = scheme.ctx
        curve = ctx.curve
        n = curve.n
        message = b"total break: no secret needed"
        alpha = self.rng.randrange(1, n)
        beta = self.rng.randrange(1, n)
        public_key = challenger.public_key_oracle(challenger.target_identity)
        big_r = curve.g1 * alpha + scheme.p_pub_g1 * beta
        h = ctx.hash_scalar(b"H2/mccls", message, big_r, public_key)
        v = (h * alpha) % n
        q_id = scheme.q_of(challenger.target_identity)
        s_point = q_id * ((-pow(beta, -1, n)) % n)
        sig = McCLSSignature(v=v, s=s_point, r=big_r)
        return ForgeryAttempt(
            message=message,
            signature=sig,
            identity=challenger.target_identity,
            public_key=public_key,
        )


class MaliciousKGCForger(Adversary):
    """Type II strategy: the KGC (knows s) forges without the user's x.

    With the master key the attack is even simpler than the universal one:
    pick rho, k; R = rho*P; h = H2(M, R, P_ID); V = (k + h*rho) mod n;
    S = h * k^{-1} * D_ID.  Then V*P - h*R = k*P and
    e(k*P, k^{-1}*D_ID) = e(P_pub, Q_ID).
    """

    name = "malicious-kgc"

    def attempt(self, challenger: Challenger) -> Optional[ForgeryAttempt]:
        """Produce one forgery attempt against the challenger."""
        scheme = challenger.scheme
        if not isinstance(scheme, McCLS):
            return None
        ctx: PairingContext = scheme.ctx
        curve = ctx.curve
        n = curve.n
        s_master = scheme.master_secret  # Type II: the adversary IS the KGC
        message = b"escrow-style forgery by the KGC"
        public_key = challenger.public_key_oracle(challenger.target_identity)
        rho = self.rng.randrange(1, n)
        k = self.rng.randrange(1, n)
        big_r = curve.g1 * rho
        h = ctx.hash_scalar(b"H2/mccls", message, big_r, public_key)
        v = (k + h * rho) % n
        q_id = scheme.q_of(challenger.target_identity)
        d_id = q_id * s_master
        s_point = d_id * ((h * pow(k, -1, n)) % n)
        sig = McCLSSignature(v=v, s=s_point, r=big_r)
        return ForgeryAttempt(
            message=message,
            signature=sig,
            identity=challenger.target_identity,
            public_key=public_key,
        )


# ---------------------------------------------------------------------------
# Pakniat's attacks on pairing-free CLS (arXiv:1909.10816).  Both exploit
# a missing binding, so they succeed against the deliberately weakened
# ECLS variants and fail against the hardened :class:`ECLSScheme`.
# ---------------------------------------------------------------------------


class PublicKeyReplacementForger(Adversary):
    """Pakniat Type I: pick the signature first, solve for the key.

    When H2 fails to bind the public key, ``h`` is fixed before the
    adversary commits to ``P_ID`` - so it picks random ``t, z``, computes
    ``h = H2(M, ID, T)`` and *solves the verification equation* for a
    replacement key::

        P_ID' = h^{-1} (z*P - T) - R_ID - H1(ID, R_ID, P_pub) * P_pub

    Succeeds with probability 1 against
    :class:`~repro.schemes.ecls.WeakECLSUnboundKey` using public values
    only.  Against :class:`~repro.schemes.ecls.ECLSScheme` the same move
    fails: hashing binds ``P_ID'``, making the equation circular.
    """

    name = "pakniat-type-i"

    def attempt(self, challenger: Challenger) -> Optional[ForgeryAttempt]:
        """Produce one forgery attempt against the challenger."""
        scheme = challenger.scheme
        if not isinstance(scheme, ECLSScheme):
            return None  # the attack shape needs the Schnorr-style equation
        ctx: PairingContext = scheme.ctx
        n = ctx.order
        target = challenger.target_identity
        honest_pk, r_pub = challenger.public_key_points_oracle(target)
        message = b"pakniat type-i: solved-for public key"
        t = self.rng.randrange(1, n)
        z = self.rng.randrange(1, n)
        t_pub = ctx.g1_mul(ctx.g1, t)
        # against the weak scheme this hash ignores the key material, so
        # the value survives the replacement below; against hardened ECLS
        # the verifier rehashes with P_ID' and the forgery collapses
        h = scheme._h2(message, target, t_pub, honest_pk, r_pub)
        h1 = scheme._h1(target, r_pub)
        h_inv = pow(h, -1, n)
        replaced_pk = ctx.g1_msm(
            [
                (ctx.g1, (h_inv * z) % n),
                (t_pub, (-h_inv) % n),
                (r_pub, n - 1),
                (scheme.p_pub, (-h1) % n),
            ]
        )
        challenger.replace_public_key(target, replaced_pk)
        return ForgeryAttempt(
            message=message,
            signature=ECLSSignature(t_pub=t_pub, z=z),
            identity=target,
            public_key=replaced_pk,
            public_key_extra=r_pub,
        )


class MaliciousKGCPartialKeyForger(Adversary):
    """Pakniat Type II: the KGC forges with self-issued partial keys.

    The KGC knows ``s``, so it mints a fresh partial key
    ``(R', d' = r' + s*H1(ID, R', P_pub))`` for the target and signs with
    ``d'`` alone.  A scheme whose signatures do not involve the user's
    secret value ``x`` (:class:`~repro.schemes.ecls.WeakECLSNoUserSecret`)
    accepts this at will; hardened :class:`~repro.schemes.ecls.ECLSScheme`
    verification aggregates ``P_ID`` into the equation, and without ``x``
    the KGC cannot balance that term.
    """

    name = "pakniat-type-ii"

    def attempt(self, challenger: Challenger) -> Optional[ForgeryAttempt]:
        """Produce one forgery attempt against the challenger."""
        scheme = challenger.scheme
        if not isinstance(scheme, ECLSScheme):
            return None
        ctx: PairingContext = scheme.ctx
        n = ctx.order
        s_master = scheme.master_secret  # Type II: the adversary IS the KGC
        target = challenger.target_identity
        honest_pk, _honest_r_pub = challenger.public_key_points_oracle(target)
        message = b"pakniat type-ii: kgc-minted partial key"
        r_prime = self.rng.randrange(1, n)
        r_pub_prime = ctx.g1_mul(ctx.g1, r_prime)
        h1 = scheme._h1(target, r_pub_prime)
        d_prime = (r_prime + s_master * h1) % n
        t = self.rng.randrange(1, n)
        t_pub = ctx.g1_mul(ctx.g1, t)
        h = scheme._h2(message, target, t_pub, honest_pk, r_pub_prime)
        z = (t + h * d_prime) % n
        return ForgeryAttempt(
            message=message,
            signature=ECLSSignature(t_pub=t_pub, z=z),
            identity=target,
            public_key=honest_pk,
            public_key_extra=r_pub_prime,
        )


#: Pakniat's pairing-free CLS attacks: succeed against the weakened ECLS
#: variants, fail against hardened ECLS, concede against pairing schemes
PAKNIAT_ADVERSARIES = (
    PublicKeyReplacementForger,
    MaliciousKGCPartialKeyForger,
)


# ---------------------------------------------------------------------------
# Batch-verification soundness games (cross-signer folding).
# ---------------------------------------------------------------------------


def run_batch_corruption_game(
    verifier,
    signer_count: int = 10,
    batch_size: int = 100,
    rng: Optional[random.Random] = None,
) -> Dict[str, object]:
    """Corrupt one signature inside a large mixed-signer window.

    The batch verifier must (a) reject exactly the corrupted item, (b)
    accept every honest one, and (c) find the culprit through fold
    bisection rather than exact-verifying the whole window.  Returns the
    evidence dict the tests assert on.
    """
    rng = rng if rng is not None else random.Random(0xBA7C4)
    scheme = verifier.scheme
    signers = [
        scheme.generate_user_keys(f"node-{i}@corruption-game")
        for i in range(signer_count)
    ]
    # admit every signer first so the corrupted window runs the pure-G1
    # anchored fold - the path whose soundness is under test
    warm = []
    for i, keys in enumerate(signers):
        msg = f"warmup-{i}".encode()
        warm.append((msg, scheme.sign(msg, keys), keys.identity, keys.public_key))
    verifier.verify_cross_signer(warm)

    items = []
    for j in range(batch_size):
        keys = signers[j % signer_count]
        msg = f"payload-{j}".encode()
        items.append((msg, scheme.sign(msg, keys), keys.identity, keys.public_key))
    corrupt_at = rng.randrange(batch_size)
    msg, sig, identity, pk = items[corrupt_at]
    n = scheme.ctx.order
    items[corrupt_at] = (
        msg,
        McCLSSignature(v=(sig.v + rng.randrange(1, n)) % n or 1, s=sig.s, r=sig.r),
        identity,
        pk,
    )
    verdicts, stats = verifier.verify_cross_signer(items)
    expected = [j != corrupt_at for j in range(batch_size)]
    return {
        "correct": verdicts == expected,
        "located": not verdicts[corrupt_at],
        "honest_accepted": all(v for j, v in enumerate(verdicts) if j != corrupt_at),
        "bisections": stats["bisections"],
        "exact_checks": stats["exact_checks"],
        "corrupt_at": corrupt_at,
    }


def run_cancelling_pair_game(
    verifier,
    trials: int = 4,
    rng: Optional[random.Random] = None,
) -> Dict[str, object]:
    """A malicious signer submits two INVALID signatures whose fold defects
    cancel under unit weights (the classic attack on linear batch tests).

    Knowing its own x (hence the anchor W = x*P), the signer picks
    R = rho*P and  v = h*(rho + x +/- gamma)  so each item's defect is
    +/- gamma*P: a batch verifier folding with FIXED weights would accept
    both forgeries, since the defects sum to zero.  Random per-item
    80-bit weights make the folded defect (d1 - d2)*gamma*P != 0 with
    overwhelming probability, so the verifier must reject BOTH items
    every trial (located via bisection down to exact checks).
    """
    rng = rng if rng is not None else random.Random(0xCA9CE1)
    scheme = verifier.scheme
    ctx = scheme.ctx
    n = ctx.order
    keys = scheme.generate_user_keys("malicious-signer@pair-game")
    # anchor the signer with one honest signature
    honest = b"honest hello"
    verifier.verify_cross_signer(
        [(honest, scheme.sign(honest, keys), keys.identity, keys.public_key)]
    )
    x = keys.secret_value
    s_point = scheme._s_component(keys)
    accepted_forgeries = 0
    rejected_pairs = 0
    for trial in range(trials):
        gamma = rng.randrange(1, n)
        pair = []
        for sign_of_gamma in (1, -1):
            rho = rng.randrange(1, n)
            big_r = ctx.g1 * rho
            msg = f"cancelling-{trial}-{sign_of_gamma}".encode()
            h = ctx.hash_scalar(b"H2/mccls", msg, big_r, keys.public_key)
            v = (h * (rho + x + sign_of_gamma * gamma)) % n
            sig = McCLSSignature(v=v, s=s_point, r=big_r)
            # each item alone must be invalid by construction
            assert not scheme.verify(msg, sig, keys.identity, keys.public_key)
            pair.append((msg, sig, keys.identity, keys.public_key))
        verdicts, _stats = verifier.verify_cross_signer(pair)
        accepted_forgeries += sum(verdicts)
        if verdicts == [False, False]:
            rejected_pairs += 1
    return {
        "trials": trials,
        "accepted_forgeries": accepted_forgeries,
        "rejected_pairs": rejected_pairs,
        "all_rejected": rejected_pairs == trials and accepted_forgeries == 0,
    }


#: adversaries modelling protocol-level attackers (should all fail)
PROTOCOL_ADVERSARIES = (
    RandomForgeryAdversary,
    TamperAdversary,
    TransplantAdversary,
    KeyReplacementAdversary,
)

#: adversaries exploiting the algebraic flaw (succeed against McCLS)
ALGEBRAIC_ADVERSARIES = (
    UniversalForgeryAttack,
    MaliciousKGCForger,
)
