"""System-parameter view of a certificateless deployment.

Separates the three trust roles the paper's architecture implies:

* the **KGC** (owns the master secret, issues partial private keys),
* **users** (combine the partial key with a self-chosen secret value),
* **verifiers** (hold only the public parameters).

The network simulator hands every node a :class:`PublicParams`, gives each
legitimate node its :class:`UserKeyPair` via the KGC, and gives attacker
nodes *nothing* - which is exactly why their forged routing messages fail
verification.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Type

from repro.pairing.bn import BNCurve
from repro.pairing.curve import CurvePoint
from repro.pairing.groups import PairingContext
from repro.schemes.base import CertificatelessScheme, Identity, UserKeyPair


@dataclass(frozen=True)
class PublicParams:
    """What the paper calls (P, P_pub, H1, H2): the verifier's world view."""

    scheme_name: str
    curve_name: str
    g1: CurvePoint
    g2: CurvePoint
    p_pub_g1: CurvePoint
    p_pub_g2: CurvePoint
    order: int


class KeyGenerationCenter:
    """The KGC role: Setup plus partial-key issuance for a chosen scheme.

    Wraps a scheme instance, hands out user key material, and never leaks
    the master secret through the public surface.
    """

    def __init__(
        self,
        scheme_cls: Type[CertificatelessScheme],
        curve: Optional[BNCurve] = None,
        seed: Optional[int] = None,
        master_secret: Optional[int] = None,
        cache_size: Optional[int] = None,
        backend=None,
    ):
        rng = random.Random(seed)
        kwargs = {"backend": backend}
        if cache_size is not None:
            kwargs["cache_size"] = cache_size
        # PairingContext supplies the default curve (on the resolved
        # backend) and rebinds an explicit one.
        self.ctx = PairingContext(curve, rng, **kwargs)
        self.scheme = scheme_cls(self.ctx, master_secret=master_secret)
        self._issued: Dict[str, UserKeyPair] = {}

    def public_params(self) -> PublicParams:
        """The verifier's world view (P, P_pub, order, curve)."""
        return PublicParams(
            scheme_name=self.scheme.name,
            curve_name=self.ctx.curve.name,
            g1=self.ctx.g1,
            g2=self.ctx.g2,
            p_pub_g1=self.scheme.p_pub_g1,
            p_pub_g2=self.scheme.p_pub_g2,
            order=self.ctx.order,
        )

    def rekey(self, new_secret: Optional[int] = None) -> PublicParams:
        """Rotate the master secret and re-issue every enrolled identity.

        Models the operational KGC rekey (e.g. after a suspected
        compromise or an outage): a fresh master secret invalidates every
        outstanding partial key, so all issued users are re-enrolled under
        the new one.  The scheme-level rotation also purges every cache
        derived from the old P_pub - memoised constant pairings, stale
        fixed-base comb tables, scheme-private signer caches - so the
        first verify after a rekey runs cold *exactly once* per identity
        instead of reading stale material.  Returns the new public params
        (verifiers must refresh theirs).
        """
        self.scheme.rotate_master_secret(new_secret)
        for identity in self.issued_identities():
            self._issued[identity] = self.scheme.generate_user_keys(identity)
        return self.public_params()

    def enroll(self, identity: Identity) -> UserKeyPair:
        """Full enrollment: partial key extraction + user key generation.

        In a real deployment stages 2 and 3 run on different machines; the
        simulator treats the returned object as having been provisioned
        out-of-band before the network starts (as the paper assumes).
        """
        keys = self.scheme.generate_user_keys(identity)
        self._issued[keys.identity] = keys
        return keys

    def issued_identities(self):
        """Sorted identities enrolled so far."""
        return sorted(self._issued)

    def keys_for(self, identity: str) -> UserKeyPair:
        """Key material previously issued to ``identity``."""
        return self._issued[identity]
