"""Deprecation shims for the pre-unification public API.

The scheme surface was unified around
``verify(message, signature, identity, public_key, ...)``; the old
positional shapes (BLS/ECDSA taking the public key third) keep working
through shims that warn **once per process per message** and then
delegate, so long-running simulations are not drowned in warnings.
"""

from __future__ import annotations

import warnings

_emitted: set = set()


def warn_deprecated(message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` once per distinct message."""
    if message in _emitted:
        return
    _emitted.add(message)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which warnings fired (test isolation hook)."""
    _emitted.clear()
