"""Deprecation shims for the pre-unification public API.

The scheme surface was unified around
``verify(message, signature, identity, public_key, ...)``; the old
positional shapes (BLS/ECDSA taking the public key third) keep working
through shims that warn **once per process per message** and then
delegate, so long-running simulations are not drowned in warnings.
"""

from __future__ import annotations

import warnings

_emitted: set = set()


def warn_deprecated(message: str, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` once per distinct message."""
    if message in _emitted:
        return
    _emitted.add(message)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Forget which warnings fired (test isolation hook)."""
    _emitted.clear()


# ---------------------------------------------------------------------------
# legacy field-layer constructors (pre-FieldBackend API)
# ---------------------------------------------------------------------------


def FieldSpec(p, xi_a, backend=None):
    """Legacy positional ``FieldSpec(p, xi_a)`` constructor.

    The redesigned API takes ``xi_a`` keyword-only so backend selection is
    explicit (``repro.pairing.fields.FieldSpec(p, xi_a=..., backend=...)``).
    This shim keeps old call sites working for one release: it warns once,
    then builds the spec on the resolved default backend (or an explicit
    ``backend`` if the caller has already migrated that far).
    """
    warn_deprecated(
        "repro.compat.FieldSpec is a migration shim; switch to"
        " repro.pairing.fields.FieldSpec(p, xi_a=..., backend=...)"
    )
    from repro.pairing import fields

    return fields.FieldSpec(p, xi_a=xi_a, backend=backend)


def Fp(spec_or_p, value):
    """Legacy ``Fp(p, value)`` constructor taking a bare prime.

    Old callers built base-field elements straight from an integer
    modulus, which bypasses the tower spec (and now the field backend).
    Warns once, then routes through a proper spec - a passed-in
    :class:`~repro.pairing.fields.FieldSpec` is used as-is, a bare prime
    gets a default-backend spec with the legacy ``xi_a = 1`` residue.
    """
    warn_deprecated(
        "repro.compat.Fp is a migration shim; build a FieldSpec (with a"
        " field backend) and use spec.fp(value) instead"
    )
    from repro.pairing import fields

    if isinstance(spec_or_p, fields.FieldSpec):
        return fields.Fp(spec_or_p, value)
    return fields.Fp(fields.FieldSpec(spec_or_p, xi_a=1), value)
