"""Short-Weierstrass elliptic-curve arithmetic (y^2 = x^3 + b).

BN curves (and their sextic twists) all have the a = 0 form, so only ``b``
parameterises a curve here.  The same :class:`EllipticCurve` class serves

* G1: points over :class:`~repro.pairing.fields.Fp`,
* G2: points over :class:`~repro.pairing.fields.Fp2` (the twist), and
* the Fp12 embedding used inside the Miller loop,

because the field element classes share one arithmetic protocol.

Points are immutable.  The point at infinity is represented by a point with
``infinity=True``; it compares equal across calls and acts as the group
identity.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CurveError
from repro.obs import runtime as _rt


class EllipticCurve:
    """The curve y^2 = x^3 + b over a field given by sample element ``b``.

    ``b`` must be a field element (Fp, Fp2 or Fp12); its type fixes the
    coordinate field.  ``order`` is the group order used for scalar
    validation when provided.
    """

    __slots__ = ("b", "order", "name")

    def __init__(self, b, order: Optional[int] = None, name: str = ""):
        self.b = b
        self.order = order
        self.name = name

    def point(self, x, y) -> "CurvePoint":
        """Construct a point, validating the curve equation."""
        pt = CurvePoint(self, x, y)
        if not pt.is_on_curve():
            raise CurveError(f"({x!r}, {y!r}) is not on curve {self.name!r}")
        return pt

    def unsafe_point(self, x, y) -> "CurvePoint":
        """Construct without the on-curve check (hot inner loops only)."""
        return CurvePoint(self, x, y)

    def infinity(self) -> "CurvePoint":
        """The group identity (point at infinity)."""
        return CurvePoint(self, None, None, infinity=True)

    def contains(self, point: "CurvePoint") -> bool:
        """True iff the point is on THIS curve (not merely on its own)."""
        if point.infinity:
            return True
        return point.curve == self and point.is_on_curve()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EllipticCurve):
            return NotImplemented
        return self.b == other.b

    def __hash__(self) -> int:
        return hash(("EllipticCurve", self.b))

    def __repr__(self) -> str:
        return f"EllipticCurve({self.name or self.b!r})"


class CurvePoint:
    """An affine point on an :class:`EllipticCurve` (immutable)."""

    __slots__ = ("curve", "x", "y", "infinity")

    def __init__(self, curve: EllipticCurve, x, y, infinity: bool = False):
        self.curve = curve
        self.x = x
        self.y = y
        self.infinity = infinity

    # -- predicates -----------------------------------------------------------
    def is_on_curve(self) -> bool:
        """Whether the coordinates satisfy y^2 = x^3 + b."""
        if self.infinity:
            return True
        return self.y * self.y == self.x * self.x * self.x + self.curve.b

    def is_infinity(self) -> bool:
        """Whether this is the group identity."""
        return self.infinity

    # -- group law ------------------------------------------------------------
    def __add__(self, other: "CurvePoint") -> "CurvePoint":
        if not isinstance(other, CurvePoint):
            return NotImplemented
        if self.curve != other.curve:
            raise CurveError("cannot add points on different curves")
        if self.infinity:
            return other
        if other.infinity:
            return self
        if self.x == other.x:
            if self.y == other.y:
                return self._double()
            return self.curve.infinity()
        tally = _rt.tally
        if tally is not None:
            tally.point_add += 1
        slope = (other.y - self.y) / (other.x - self.x)
        x3 = slope.square() - self.x - other.x
        y3 = slope * (self.x - x3) - self.y
        return CurvePoint(self.curve, x3, y3)

    def _double(self) -> "CurvePoint":
        if self.infinity:
            return self
        if self.y == self.y - self.y:  # y == 0: vertical tangent
            return self.curve.infinity()
        tally = _rt.tally
        if tally is not None:
            tally.point_double += 1
        slope = (self.x.square() * 3) / (self.y * 2)
        x3 = slope.square() - self.x - self.x
        y3 = slope * (self.x - x3) - self.y
        return CurvePoint(self.curve, x3, y3)

    def double(self) -> "CurvePoint":
        """The point added to itself."""
        return self._double()

    def __neg__(self) -> "CurvePoint":
        if self.infinity:
            return self
        return CurvePoint(self.curve, self.x, -self.y)

    def __sub__(self, other: "CurvePoint") -> "CurvePoint":
        return self + (-other)

    def __mul__(self, scalar: int) -> "CurvePoint":
        # NOTE: the scalar is deliberately NOT reduced modulo the curve order;
        # order checks like ``point * n == infinity`` must be honest even for
        # points outside the prime-order subgroup (the curve-search code and
        # the in_g1/in_g2 membership checks rely on this).
        if not isinstance(scalar, int):
            return NotImplemented
        if scalar < 0:
            return (-self) * (-scalar)
        if scalar == 0 or self.infinity:
            return self.curve.infinity()
        tally = _rt.tally
        if tally is not None:
            tally.point_mul += 1
        if scalar < 8:
            result = self.curve.infinity()
            addend = self
            while scalar:
                if scalar & 1:
                    result = result + addend
                addend = addend._double()
                scalar >>= 1
            return result
        if scalar.bit_length() >= 64:
            return _wnaf_scalar_mult(self, scalar)
        return _jacobian_scalar_mult(self, scalar)

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CurvePoint):
            return NotImplemented
        if self.infinity or other.infinity:
            return self.infinity and other.infinity
        return self.curve == other.curve and self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        if self.infinity:
            return hash(("CurvePoint", "inf"))
        return hash(("CurvePoint", self.x, self.y))

    def __repr__(self) -> str:
        if self.infinity:
            return "CurvePoint(infinity)"
        return f"CurvePoint({self.x!r}, {self.y!r})"


def _jacobian_scalar_mult(point: CurvePoint, scalar: int) -> CurvePoint:
    """Double-and-add in Jacobian projective coordinates (a = 0 curves).

    Affine addition pays one field inversion per step; Jacobian coordinates
    (X, Y, Z) with x = X/Z^2, y = Y/Z^3 defer everything to a single
    inversion at the end, which is the standard ~5-10x speedup for
    pure-software curves.  Field-agnostic: works over Fp, Fp2 and Fp12
    through the shared operator protocol.
    """
    x, y = point.x, point.y
    one = _field_one(x)
    result = None  # Jacobian infinity
    base = (x, y, one)
    for bit_index in range(scalar.bit_length() - 1, -1, -1):
        if result is not None:
            result = _jacobian_double(result)
        if (scalar >> bit_index) & 1:
            result = base if result is None else _jacobian_add(result, base)
    return _jacobian_to_affine(point.curve, result)


def _jacobian_to_affine(curve: EllipticCurve, result) -> CurvePoint:
    """Normalise a Jacobian triple (or None) to an affine :class:`CurvePoint`."""
    if result is None:
        return curve.infinity()
    big_x, big_y, big_z = result
    if big_z == big_z * 0:  # Z == 0: the point at infinity
        return curve.infinity()
    z_inv = big_z.inverse()
    z_inv2 = z_inv.square()
    return CurvePoint(curve, big_x * z_inv2, big_y * z_inv2 * z_inv)


def _field_one(sample):
    """The multiplicative identity of ``sample``'s field."""
    from repro.pairing.fields import Fp, Fp2, Fp12

    if isinstance(sample, Fp):
        return Fp(sample.spec, 1)
    if isinstance(sample, Fp2):
        return Fp2(sample.spec, 1)
    if isinstance(sample, Fp12):
        return sample.spec.fp12_one()
    raise CurveError(f"unsupported coordinate field {type(sample).__name__}")


def _jacobian_double(p):
    if p is None:
        return None
    x1, y1, z1 = p
    if y1 == y1 * 0:
        return None  # vertical tangent: the point at infinity
    a = x1.square()
    b = y1.square()
    c = b.square()
    t = x1 + b
    d = (t.square() - a - c) * 2
    e = a * 3
    f = e.square()
    x3 = f - d * 2
    y3 = e * (d - x3) - c * 8
    z3 = y1 * z1 * 2
    return (x3, y3, z3)


def _jacobian_add(p, q):
    """General Jacobian addition (q has Z = 1 when coming from `base`)."""
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1z1 = z1.square()
    z2z2 = z2.square()
    u1 = x1 * z2z2
    u2 = x2 * z1z1
    s1 = y1 * z2z2 * z2
    s2 = y2 * z1z1 * z1
    if u1 == u2:
        if s1 == s2:
            return _jacobian_double(p)
        return None  # p == -q: the point at infinity
    h = u2 - u1
    hh = h + h
    i = hh.square()
    j = h * i
    r = (s2 - s1) * 2
    v = u1 * i
    x3 = r.square() - j - v * 2
    y3 = r * (v - x3) - s1 * j * 2
    z3 = z1 * z2 * h * 2
    return (x3, y3, z3)


def _wnaf_digits(scalar: int, width: int):
    """Width-w non-adjacent form of ``scalar`` (little-endian digit list).

    Digits are either zero or odd with |d| < 2^(w-1); any two non-zero
    digits are at least ``width`` positions apart, so a length-l scalar
    needs ~l/(w+1) point additions instead of l/2.
    """
    digits = []
    modulus = 1 << width
    half = modulus >> 1
    while scalar > 0:
        if scalar & 1:
            digit = scalar & (modulus - 1)
            if digit >= half:
                digit -= modulus
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


def _wnaf_scalar_mult(point: CurvePoint, scalar: int, width: int = 5) -> CurvePoint:
    """Windowed-NAF scalar multiplication in Jacobian coordinates.

    Precomputes the odd multiples P, 3P, ..., (2^(w-1)-1)P once, then walks
    the signed-digit recoding of the scalar: same doubling count as the
    plain ladder but roughly half the additions the binary expansion would
    pay, with negation nearly free (Y -> -Y).  Semantics match ``__mul__``:
    the scalar is NOT reduced modulo the curve order.
    """
    base = (point.x, point.y, _field_one(point.x))
    double_base = _jacobian_double(base)
    # odds[i] holds (2i+1) * P; None encodes infinity, which small-order
    # points (cofactor components on toy curves) can genuinely reach.
    odds = [base]
    for _ in range((1 << (width - 2)) - 1):
        previous = odds[-1]
        if previous is None:
            odds.append(double_base)
        elif double_base is None:
            odds.append(previous)
        else:
            odds.append(_jacobian_add(previous, double_base))
    result = None  # Jacobian infinity
    for digit in reversed(_wnaf_digits(scalar, width)):
        result = _jacobian_double(result)
        if digit:
            entry = odds[(abs(digit) - 1) // 2]
            if entry is None:
                continue
            if digit < 0:
                entry = (entry[0], -entry[1], entry[2])
            result = entry if result is None else _jacobian_add(result, entry)
    return _jacobian_to_affine(point.curve, result)


class PrecomputedPoint:
    """Fixed-base comb tables for a point multiplied many times.

    The comb splits a ``bits``-wide scalar into ``width`` rows of
    ``d = ceil(bits / width)`` columns; the table holds every row-subset sum
    of the basis points 2^(i*d) * P, so one multiplication costs d-1
    Jacobian doublings plus at most d mixed additions — versus ~bits
    doublings for the generic ladder.  Built once per (context, point);
    worth it only for bases reused across many signatures (P, P_pub, Q_ID).

    The handle is transparent: ``mul`` returns ordinary affine
    :class:`CurvePoint` values identical to ``point * scalar``, and falls
    back to the generic path for scalars it does not cover (negative, zero,
    or wider than ``bits``), preserving the unreduced-scalar semantics that
    order/membership checks rely on.
    """

    __slots__ = ("point", "width", "bits", "columns", "uses", "_table")

    def __init__(self, point: CurvePoint, width: int = 4, bits: Optional[int] = None):
        if point.is_infinity():
            raise CurveError("cannot precompute the point at infinity")
        if width < 2 or width > 8:
            raise CurveError(f"comb width {width} out of range [2, 8]")
        self.point = point
        self.width = width
        if bits is None:
            order = point.curve.order
            bits = order.bit_length() if order else 257
        self.bits = bits
        self.columns = -(-bits // width)  # ceil
        self.uses = 0
        self._table = None

    @property
    def built(self) -> bool:
        """Whether the comb table has been materialised yet."""
        return self._table is not None

    def covers(self, scalar) -> bool:
        """True iff ``scalar`` can take the comb fast path."""
        return (
            isinstance(scalar, int)
            and scalar > 0
            and scalar.bit_length() <= self.bits
        )

    def build(self) -> None:
        """Materialise the basis and subset-sum tables (idempotent)."""
        if self._table is not None:
            return
        basis = [self.point]
        for _ in range(self.width - 1):
            basis.append(basis[-1] * (1 << self.columns))
        table = [None] * (1 << self.width)
        for index in range(1, 1 << self.width):
            low_bit = index & -index
            rest = index ^ low_bit
            entry = basis[low_bit.bit_length() - 1]
            if rest:
                entry = table[rest] + entry
            table[index] = entry
        self._table = table

    def mul(self, scalar: int) -> CurvePoint:
        """``point * scalar`` through the comb (generic fallback if needed)."""
        if not self.covers(scalar):
            return self.point * scalar
        self.build()
        tally = _rt.tally
        if tally is not None:
            tally.point_mul += 1
        one = None
        table = self._table
        d = self.columns
        width = self.width
        result = None  # Jacobian infinity
        for col in range(d - 1, -1, -1):
            result = _jacobian_double(result)
            index = 0
            for row in range(width):
                if (scalar >> (row * d + col)) & 1:
                    index |= 1 << row
            if index:
                entry = table[index]
                if entry.infinity:
                    continue
                if one is None:
                    one = _field_one(entry.x)
                mixed = (entry.x, entry.y, one)
                result = mixed if result is None else _jacobian_add(result, mixed)
        return _jacobian_to_affine(self.point.curve, result)


def point_key(point: CurvePoint):
    """A representation-independent hashable key for a curve point.

    Extracts the raw affine coordinate integers (Fp value, Fp2 coefficient
    pair, or Fp12 coefficient tuple), so two :class:`CurvePoint` objects
    describing the same group element — however they were produced — map to
    the same key.  Used by the pairing cache and the fixed-base registry.
    """
    if point.infinity:
        return ("inf",)
    return (_coord_key(point.x), _coord_key(point.y))


def _coord_key(value):
    inner = getattr(value, "value", None)
    if inner is not None:
        return inner
    coeffs = getattr(value, "coeffs", None)
    if coeffs is not None:
        return tuple(coeffs)
    return (value.c0, value.c1)
