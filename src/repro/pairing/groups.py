"""A charm-crypto-style pairing-group facade with operation accounting.

Signature schemes route every expensive group operation through a
:class:`PairingContext` so the benchmark harness can reproduce the paper's
Table 1 (pairings / scalar multiplications / exponentiations per sign and
verify) by simply reading counters, and so the network simulator's crypto
timing model can charge the exact operation mix.
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.obs import runtime as _rt

from repro.pairing import glv as _glv
from repro.pairing.bn import BNCurve, default_test_curve
from repro.pairing.curve import CurvePoint, PrecomputedPoint, point_key
from repro.pairing.fields import Fp12
from repro.pairing.lru import LRUCache
from repro.pairing.hashing import (
    Encodable,
    hash_to_g1,
    hash_to_g2,
    hash_to_scalar,
)
from repro.pairing.numbers import inverse_mod
from repro.pairing.pairing import (
    cyclotomic_exp,
    final_exponentiation,
    miller_loop,
    multi_pairing,
    pairing,
)

from repro.obs.registry import get_registry

#: default bound of the per-context pairing caches (GT values and inverted
#: Miller values each).  Generous for a single node - a MANET node meets
#: tens of neighbours, a gateway thousands of identities per window - but
#: a bound, so an unbounded identity population can no longer grow the
#: process without limit (the serving-layer leak this replaces).
DEFAULT_CACHE_SIZE = 4096


def _count_pairing_eviction() -> None:
    get_registry().counter("pairing.cache_evictions").inc()


def _count_table_eviction() -> None:
    get_registry().counter("precomp.table_evictions").inc()


@dataclass
class OpCount:
    """Tally of expensive group operations (the units of paper Table 1)."""

    pairings: int = 0
    scalar_mults: int = 0  # G1 + G2 scalar multiplications combined
    g1_mults: int = 0
    g2_mults: int = 0
    gt_exps: int = 0
    group_hashes: int = 0
    cached_pairing_hits: int = 0

    def snapshot(self) -> "OpCount":
        """An independent copy of the current counters."""
        return OpCount(**vars(self))

    def diff(self, earlier: "OpCount") -> "OpCount":
        """Counter-wise difference against an earlier snapshot."""
        return OpCount(
            **{k: getattr(self, k) - getattr(earlier, k) for k in vars(self)}
        )

    def summary(self) -> str:
        """Compact Table 1-style rendering, e.g. '1p+2s'."""
        parts = []
        if self.pairings:
            parts.append(f"{self.pairings}p")
        if self.scalar_mults:
            parts.append(f"{self.scalar_mults}s")
        if self.gt_exps:
            parts.append(f"{self.gt_exps}e")
        return "+".join(parts) if parts else "0"


class PairingContext:
    """Bundle of curve + RNG + counters used by all signature schemes."""

    #: A registered fixed base takes the comb fast path from its Nth
    #: multiplication on; the first N-1 stay on the generic ladder so that
    #: one-shot points (e.g. Q_ID during a single key extraction) never pay
    #: for a table they will not amortise.
    PRECOMP_BUILD_THRESHOLD = 2

    def __init__(
        self,
        curve: Optional[BNCurve] = None,
        rng: Optional[random.Random] = None,
        precompute: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
        *,
        backend=None,
        insecure_deterministic_batch: bool = False,
    ):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        from repro.pairing import backends as _backends

        # Precedence: explicit kwarg > REPRO_FIELD_BACKEND env > default.
        # An explicit curve is rebound to the resolved backend (a cheap
        # element rewrap, no re-derivation) so curve and backend choices
        # compose instead of conflicting.
        self.backend = _backends.resolve_backend(backend)
        if curve is None:
            curve = default_test_curve(backend=self.backend)
        else:
            curve = curve.with_backend(self.backend)
        self.curve = curve
        self.rng = rng if rng is not None else random.Random()
        # Batch-verification weights/deltas must be unpredictable to an
        # adversary submitting signatures: the small-exponent test is only
        # sound against attackers who cannot predict the weights, and the
        # campaign seed (hence self.rng's stream) is public.  Gateway-side
        # batch randomness therefore comes from the OS CSPRNG unless the
        # caller explicitly opts into the seeded stream for reproducible
        # tests/campaigns.
        self.insecure_deterministic_batch = insecure_deterministic_batch
        self.ops = OpCount()
        self.precompute_enabled = precompute
        self.cache_size = cache_size
        # Both memo caches are LRU-bounded: with more distinct identities
        # than cache_size the oldest constant pairings are evicted (counted
        # as pairing.cache_evictions) and simply re-verify cold - memory
        # stays bounded, correctness does not depend on residency.
        self._pairing_cache: LRUCache = LRUCache(
            cache_size, on_evict=_count_pairing_eviction
        )
        # Inverted raw Miller values of constant pairs, for the co-DH
        # equality check (see codh_check_cached): warm checks then cost one
        # Miller loop + one shared final exponentiation, with no GT value
        # ever materialised for the constant side.
        self._miller_cache: LRUCache = LRUCache(
            cache_size, on_evict=_count_pairing_eviction
        )
        # Fixed-base comb tables grow one entry per registered base (and
        # q_of registers every identity it hashes), so they get the same
        # bound; evicting a hot base only costs a table rebuild.
        self._fixed_bases: LRUCache = LRUCache(
            cache_size, on_evict=_count_table_eviction
        )
        # Hash-to-G2 outputs (Q_ID and friends) keyed by (domain, items):
        # try-and-increment plus cofactor clearing is pure recomputation
        # for a repeat identity, and unlike the pairing caches the value
        # depends only on the curve — a KGC rekey does not invalidate it.
        # One entry is a single affine point (~a hundred bytes), orders of
        # magnitude lighter than a comb table or an Fp12 Miller value, so
        # it gets 8x the population bound of the heavyweight caches.
        self._hash_g2_cache: LRUCache = LRUCache(8 * cache_size)
        # Pinned comb tables (generator / P_pub): every multiplication in
        # the system hits these, so identity churn must never evict them.
        # A plain dict outside the LRU — entered only via
        # fixed_base(..., pin=True), removed only by drop_fixed_base.
        self._pinned_bases: Dict = {}

    # -- basic accessors -------------------------------------------------------
    @property
    def order(self) -> int:
        return self.curve.n

    @property
    def g1(self) -> CurvePoint:
        return self.curve.g1

    @property
    def g2(self) -> CurvePoint:
        return self.curve.g2

    def random_scalar(self) -> int:
        """A uniform non-zero scalar modulo the group order."""
        return self.rng.randrange(1, self.curve.n)

    def batch_randrange(self, start: int, stop: int) -> int:
        """Adversary-facing batch randomness (fold weights / deltas).

        Defaults to the OS CSPRNG: the seeded ``self.rng`` stream is
        predictable to anyone who knows the campaign seed, which would let
        a forger craft cancelling batches that pass the small-exponent
        test.  Construction with ``insecure_deterministic_batch=True``
        opts back into the seeded stream for byte-reproducible runs.
        """
        if self.insecure_deterministic_batch:
            return self.rng.randrange(start, stop)
        return start + secrets.randbelow(stop - start)

    def scalar_inverse(self, k: int) -> int:
        """k^-1 modulo the group order."""
        return inverse_mod(k, self.curve.n)

    # -- fixed-base precomputation ---------------------------------------------
    def fixed_base(self, point: CurvePoint, *, pin: bool = False) -> CurvePoint:
        """Register ``point`` as a fixed base for comb precomputation.

        Returns the point unchanged, so call sites keep ordinary
        :class:`CurvePoint` values; subsequent :meth:`g1_mul`/:meth:`g2_mul`
        calls on the same group element (matched by affine coordinates, not
        object identity) route through a :class:`PrecomputedPoint` comb
        table once the point has been multiplied often enough to amortise
        the build.  No-op when precomputation is disabled for this context.

        ``pin=True`` marks a system-lifetime base (the generators and
        P_pub): its table lives outside the LRU and is never evicted by
        per-identity churn — only :meth:`drop_fixed_base` (rekey) removes
        it.  Pinning an already-registered base promotes its existing
        table, warm state included.
        """
        if not self.precompute_enabled or point.is_infinity():
            return point
        key = point_key(point)
        if pin:
            if key not in self._pinned_bases:
                handle = self._fixed_bases.pop(key)
                if handle is None:
                    handle = PrecomputedPoint(
                        point, bits=self.curve.n.bit_length()
                    )
                self._pinned_bases[key] = handle
            return point
        if key in self._pinned_bases:
            return point
        if key not in self._fixed_bases:
            self._fixed_bases[key] = PrecomputedPoint(
                point, bits=self.curve.n.bit_length()
            )
        return point

    def precomputed(self, point: CurvePoint) -> Optional[PrecomputedPoint]:
        """The comb handle registered for ``point``, if any."""
        key = point_key(point)
        handle = self._pinned_bases.get(key)
        if handle is not None:
            return handle
        return self._fixed_bases.get(key)

    def _mul(
        self,
        point: CurvePoint,
        scalar: int,
        *,
        g2: bool = False,
        in_subgroup: bool = False,
    ) -> CurvePoint:
        """Scalar multiplication: comb fast path, then GLV, then generic.

        The GLV/GLS route only fires for int scalars already in (0, n) —
        so unreduced-scalar semantics (order and membership checks going
        through ``point * scalar`` directly) are never affected — and on
        G2 only when the caller vouched for subgroup membership
        (``in_subgroup=True``): the psi eigenvalue relation simply does
        not hold for cofactor components, and hostile signature points are
        exactly the values that must keep bit-exact generic semantics.
        """
        if self._pinned_bases or self._fixed_bases:
            key = point_key(point)
            handle = self._pinned_bases.get(key)
            if handle is None:
                handle = self._fixed_bases.get(key)
            if handle is not None and handle.covers(scalar):
                handle.uses += 1
                if handle.built or handle.uses >= self.PRECOMP_BUILD_THRESHOLD:
                    registry = get_registry()
                    if not handle.built:
                        registry.counter("precomp.table_builds").inc()
                        handle.build()
                    registry.counter("precomp.fast_mults").inc()
                    return handle.mul(scalar)
        if not g2 or in_subgroup:
            result = _glv.try_mul(self.curve, point, scalar, g2=g2)
            if result is not None:
                return result
        if isinstance(scalar, int) and scalar != 0 and not point.is_infinity():
            # Generic tail: one-term wNAF MSM.  Same signed-window chain
            # (and op counts) on every backend, executed inside the
            # compiled point kernel when the backend provides one; no
            # endomorphism is involved, so hostile G2 points are safe.
            group_curve = self.curve.g2_curve if g2 else self.curve.g1_curve
            return _glv.msm(self.curve, group_curve, [(point, scalar)])
        return point * scalar

    # -- counted operations ----------------------------------------------------
    def g1_mul(self, point: CurvePoint, scalar: int) -> CurvePoint:
        """Counted G1 scalar multiplication."""
        self.ops.scalar_mults += 1
        self.ops.g1_mults += 1
        return self._mul(point, scalar)

    def g2_mul(
        self, point: CurvePoint, scalar: int, *, in_subgroup: bool = False
    ) -> CurvePoint:
        """Counted G2 scalar multiplication.

        ``in_subgroup=True`` asserts the point lies in the order-n subgroup
        (trusted values: Q_ID hashes, D_ID partial keys), unlocking the
        GLS endomorphism split.  Leave it False for attacker-controlled
        points such as signature components.
        """
        self.ops.scalar_mults += 1
        self.ops.g2_mults += 1
        return self._mul(point, scalar, g2=True, in_subgroup=in_subgroup)

    def g1_msm(
        self, pairs: Sequence[Tuple[CurvePoint, int]]
    ) -> CurvePoint:
        """Counted multi-scalar multiplication sum_i k_i * P_i on G1.

        One shared doubling chain across all terms (kernel-accelerated
        under the native backend) — the batch verifier's folding primitive.
        Counts as a single G1 multiplication in Table 1 units.
        """
        self.ops.scalar_mults += 1
        self.ops.g1_mults += 1
        tally = _rt.tally
        if tally is not None:
            tally.point_mul += 1
        return _glv.msm(self.curve, self.curve.g1_curve, pairs)

    def pair(self, p_point: CurvePoint, q_point: CurvePoint) -> Fp12:
        """Counted pairing e(P, Q)."""
        self.ops.pairings += 1
        return pairing(self.curve, p_point, q_point)

    def pair_cached(self, p_point: CurvePoint, q_point: CurvePoint) -> Fp12:
        """Pairing with memoisation for *constant* argument pairs.

        The paper's key efficiency claim is that McCLS verification only
        needs the constant pairing e(P_pub, Q_ID), which a verifier computes
        once per identity.  Cache hits are counted separately so benchmarks
        can report both cold and warm verification costs.

        Keys are the *normalized* affine coordinates (via
        :func:`~repro.pairing.curve.point_key`), so two point objects
        describing the same group element — e.g. one straight from a hash
        and one normalised out of Jacobian coordinates — share one cache
        entry instead of silently re-running the Miller loop.

        A cache fill also stores the pair's inverted raw Miller value, so
        a verifier warmed through :meth:`pair_cached` is equally warm for
        :meth:`codh_check_cached` (and vice-versa-adjacent paths) without
        a second Miller loop.
        """
        key = (point_key(p_point), point_key(q_point))
        registry = get_registry()
        cached = self._pairing_cache.get(key)
        if cached is not None:
            self.ops.cached_pairing_hits += 1
            registry.counter("pairing.cache_hits").inc()
            return cached
        registry.counter("pairing.cache_misses").inc()
        curve = self.curve
        tally = _rt.tally
        self.ops.pairings += 1
        if tally is not None:
            tally.pairings += 1
        with registry.phase("pairing.miller_loop"):
            raw = miller_loop(curve, p_point, q_point)
        with registry.phase("pairing.final_exp"):
            value = final_exponentiation(curve, raw)
        self._miller_cache[key] = raw.inverse()
        self._pairing_cache[key] = value
        return value

    def multi_pair(self, pairs: Sequence[Tuple[CurvePoint, CurvePoint]]) -> Fp12:
        """Counted multi-pairing: prod e(P_i, Q_i), ONE final exponentiation.

        Each pair counts as one requested pairing (the Table 1 unit); the
        shared final exponentiation is what makes a k-pairing verify
        cheaper than k independent :meth:`pair` calls.
        """
        self.ops.pairings += len(pairs)
        return multi_pairing(self.curve, pairs)

    def multi_pair_check(
        self, pairs: Sequence[Tuple[CurvePoint, CurvePoint]]
    ) -> bool:
        """True iff prod e(P_i, Q_i) == 1 (one shared final exponentiation).

        The natural form for product-of-pairings verification equations:
        move every factor to one side, negate the G1 argument of the moved
        factors, and test against the identity.
        """
        return self.multi_pair(pairs).is_one()

    def codh_check_cached(
        self,
        left_g1: CurvePoint,
        right_g2: CurvePoint,
        base_g1: CurvePoint,
        target_g2: CurvePoint,
        weight: int = 1,
    ) -> bool:
        """e(left, right) == e(base, target)^weight, caching the constant side.

        The constant pair (base, target) — e(P_pub, Q_ID) in the paper —
        is cached as an *inverted raw Miller value*, not a GT value.  A
        cold check therefore runs two Miller loops and exactly ONE final
        exponentiation (of the ratio); a warm check runs one Miller loop
        plus the shared final exponentiation and counts a cached-pairing
        hit, preserving the paper's "one pairing to verify" accounting.

        ``weight`` folds a known exponent on the constant side into the
        same shared final exponentiation (the batch verifier's weighted
        small-exponent test); the raw Miller value is exponentiated with
        the generic ladder since it is not yet cyclotomic.
        """
        curve = self.curve
        key = (point_key(base_g1), point_key(target_g2))
        registry = get_registry()
        tally = _rt.tally
        m2_inv = self._miller_cache.get(key)
        if m2_inv is not None:
            self.ops.pairings += 1
            self.ops.cached_pairing_hits += 1
            registry.counter("pairing.cache_hits").inc()
            if tally is not None:
                tally.pairings += 1
            with registry.phase("pairing.miller_loop"):
                m1 = miller_loop(curve, left_g1, right_g2)
        else:
            registry.counter("pairing.cache_misses").inc()
            self.ops.pairings += 2
            if tally is not None:
                tally.pairings += 2
            with registry.phase("pairing.miller_loop"):
                m1 = miller_loop(curve, left_g1, right_g2)
                m2_inv = miller_loop(curve, base_g1, target_g2).inverse()
            self._miller_cache[key] = m2_inv
        if weight != 1:
            m2_inv = m2_inv ** (weight % self.order)
        with registry.phase("pairing.final_exp"):
            return final_exponentiation(curve, m1 * m2_inv).is_one()

    def cached_gt(
        self, p_point: CurvePoint, q_point: CurvePoint
    ) -> Optional[Fp12]:
        """The memoised GT value for (P, Q), if :meth:`pair_cached` built one."""
        return self._pairing_cache.get((point_key(p_point), point_key(q_point)))

    def gt_exp(self, value: Fp12, scalar: int) -> Fp12:
        """Counted GT exponentiation (cyclotomic ladder).

        GT lies inside the cyclotomic subgroup of Fp12, so squarings use
        the Granger-Scott formulas and negative exponents cost only a
        conjugation.  ``value`` must be a pairing output (or other
        cyclotomic-subgroup element); anything else produces garbage.
        """
        self.ops.gt_exps += 1
        return cyclotomic_exp(value, scalar)

    def hash_g1(self, domain: bytes, *items: Encodable) -> CurvePoint:
        """Counted hash onto G1."""
        self.ops.group_hashes += 1
        return hash_to_g1(self.curve, domain, *items)

    def hash_g2(self, domain: bytes, *items: Encodable) -> CurvePoint:
        """Counted hash onto G2 (memoised: the output is rekey-invariant).

        Counts one group hash either way — Table 1 units describe the
        protocol, not the memo — but a repeat identity skips the
        try-and-increment search and the cofactor multiplication.
        """
        self.ops.group_hashes += 1
        try:
            key = (domain,) + tuple(
                point_key(item) if isinstance(item, CurvePoint) else item
                for item in items
            )
            hash(key)
        except TypeError:  # pragma: no cover - exotic unhashable encodable
            return hash_to_g2(self.curve, domain, *items)
        cached = self._hash_g2_cache.get(key)
        if cached is not None:
            return cached
        value = hash_to_g2(self.curve, domain, *items)
        self._hash_g2_cache[key] = value
        return value

    def hash_scalar(self, domain: bytes, *items: Encodable) -> int:
        """Hash onto Z_n (not counted; scalar work is cheap)."""
        return hash_to_scalar(self.curve, domain, *items)

    # -- accounting helpers ------------------------------------------------------
    def reset_ops(self) -> None:
        """Zero all operation counters."""
        self.ops = OpCount()

    def measure(self) -> "_OpMeter":
        """Context manager yielding the OpCount delta of the with-block."""
        return _OpMeter(self)

    def clear_pairing_cache(self) -> None:
        """Forget memoised constant pairings (GT and Miller-value caches)."""
        self._pairing_cache.clear()
        self._miller_cache.clear()

    def drop_fixed_base(self, point: CurvePoint) -> None:
        """Forget the comb table registered for ``point`` (if any).

        Called on KGC rekey for the old P_pub: its table would otherwise
        stay alive (and non-evictable while it keeps winning LRU
        freshness) even though nothing will ever multiply that base again.
        """
        if point.is_infinity():
            return
        key = point_key(point)
        self._pinned_bases.pop(key, None)
        self._fixed_bases.pop(key)

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Size/peak/hit/miss/eviction accounting of every bounded cache.

        ``fixed_bases`` additionally reports ``pinned`` (tables living
        outside the LRU: generators and P_pub) next to ``evictable`` (the
        LRU population) so cache-pressure dashboards can see that identity
        churn no longer touches the system bases.
        """
        fixed = self._fixed_bases.stats()
        fixed["pinned"] = len(self._pinned_bases)
        fixed["evictable"] = fixed["size"]
        return {
            "pairing": self._pairing_cache.stats(),
            "miller": self._miller_cache.stats(),
            "fixed_bases": fixed,
            "hash_g2": self._hash_g2_cache.stats(),
        }


class _OpMeter:
    """Context manager capturing the operation delta inside a with-block."""

    def __init__(self, ctx: PairingContext):
        self._ctx = ctx
        self.delta: Optional[OpCount] = None

    def __enter__(self) -> "_OpMeter":
        self._before = self._ctx.ops.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.delta = self._ctx.ops.diff(self._before)
