"""Textbook reference implementation of the optimal-ate pairing.

This module preserves the pre-optimisation pairing path verbatim: affine
Miller-loop coordinates (one Fp2 inversion per doubling), dense Fp12 line
values multiplied with the generic schoolbook product, and a final
exponentiation whose hard part is a plain square-and-multiply of the
cached ``(p^4 - p^2 + 1) // n`` exponent.

It exists for two reasons:

* **Ground truth.**  The optimised projective/sparse/cyclotomic path in
  :mod:`repro.pairing.pairing` is property-tested to be value-identical
  to these functions on every test curve.
* **Fallback.**  The projective Miller loop raises on degenerate steps
  (vertical chords, points of small order) that only hostile non-subgroup
  inputs can produce; :func:`repro.pairing.pairing.miller_loop` then
  re-runs the affine reference, which handles verticals explicitly, so
  adversarial-input behaviour is unchanged from the pre-optimisation code.
  The compiled pairing kernel of the ``native`` field backend keeps the
  same contract: a degenerate step aborts the native loop (partial op
  counts applied) and lands here, so every backend funnels hostile inputs
  through one audited code path.

All scalar arithmetic below goes through the shared ``Fp``/``Fp2``/``Fp12``
classes, whose inversions and exponentiations are routed through the
active :class:`~repro.pairing.fields.FieldBackend` - this module is
backend-transparent rather than backend-aware.

None of these functions update the obs tally's pairing counters (the
public entry points in :mod:`repro.pairing.pairing` do); field-level
operation counts still accrue through the shared Fp/Fp2/Fp12 classes,
which is what lets benchmarks compare fp_mul honestly between the two
paths.
"""

from __future__ import annotations

from typing import Tuple

from repro.pairing.bn import BNCurve
from repro.pairing.curve import CurvePoint
from repro.pairing.fields import Fp2, Fp12, FieldSpec


def embed_fp2(spec: FieldSpec, z: Fp2, power: int) -> Fp12:
    """Embed z * w^power into Fp12 for z in Fp2 (power in 0..5).

    Uses w^6 = xi = xi_a + i, so  z0 + z1*i = (z0 - xi_a*z1) + z1*w^6.
    """
    coeffs = [0] * 12
    coeffs[power] = (z.c0 - spec.xi_a * z.c1) % spec.p
    coeffs[power + 6] = z.c1
    return Fp12(spec, coeffs)


def line_eval_affine(
    curve: BNCurve,
    r: CurvePoint,
    s: CurvePoint,
    px: int,
    py: int,
) -> Tuple[Fp12, CurvePoint]:
    """Line through twist points r, s evaluated at the G1 point (px, py).

    Returns the dense Fp12 line value and the twist point r + s.  All three
    cases (chord, tangent, vertical) are handled, matching the classic
    Miller-loop line function.
    """
    spec = curve.spec
    xr, yr = r.x, r.y
    xs, ys = s.x, s.y
    if xr != xs:
        slope = (ys - yr) / (xs - xr)
    elif yr == ys and not yr.is_zero():
        slope = (xr * xr * 3) / (yr * 2)
    else:
        # Vertical line x = xr: value is px - xr * w^2.
        coeffs = [0] * 12
        coeffs[0] = px
        value = Fp12(spec, coeffs) - embed_fp2(spec, xr, 2)
        return value, curve.g2_curve.infinity()

    # l(P) = slope*w*px - w^3*(slope*xr - yr) - py
    # (slope, coordinates in Fp2; evaluation point in Fp).
    term_w1 = embed_fp2(spec, slope * px, 1)
    term_w3 = embed_fp2(spec, slope * xr - yr, 3)
    const = [0] * 12
    const[0] = -py
    value = term_w1 - term_w3 + Fp12(spec, const)
    return value, r + s


def miller_loop_naive(
    curve: BNCurve, p_point: CurvePoint, q_point: CurvePoint
) -> Fp12:
    """Affine/dense Miller loop f_{6t+2,Q}(P) with the two BN extra lines."""
    from repro.pairing.pairing import twist_frobenius

    spec = curve.spec
    if p_point.is_infinity() or q_point.is_infinity():
        return spec.fp12_one()
    px, py = p_point.x.value, p_point.y.value

    f = spec.fp12_one()
    r = q_point
    loop = curve.ate_loop_count
    for i in range(loop.bit_length() - 2, -1, -1):
        line, r = line_eval_affine(curve, r, r, px, py)
        f = f * f * line
        if (loop >> i) & 1:
            line, r = line_eval_affine(curve, r, q_point, px, py)
            f = f * line

    q1 = twist_frobenius(curve, q_point)
    q2 = -twist_frobenius(curve, q1)
    line, r = line_eval_affine(curve, r, q1, px, py)
    f = f * line
    line, _ = line_eval_affine(curve, r, q2, px, py)
    f = f * line
    return f


def final_exponentiation_naive(curve: BNCurve, f: Fp12) -> Fp12:
    """Reference final exponentiation: Frobenius easy part, generic hard part.

    The hard part is a plain square-and-multiply by the cached
    ``curve.final_exp_hard`` exponent — no cyclotomic structure exploited.
    """
    from repro.pairing.pairing import fp12_frobenius

    # Easy part 1: f^(p^6 - 1) = frob^6(f) * f^(-1).
    f = fp12_frobenius(curve, f, 6) * f.inverse()
    # Easy part 2: f^(p^2 + 1) = frob^2(f) * f.
    f = fp12_frobenius(curve, f, 2) * f
    # Hard part.
    return f ** curve.final_exp_hard


def pairing_naive(
    curve: BNCurve, p_point: CurvePoint, q_point: CurvePoint
) -> Fp12:
    """Reference pairing: naive Miller loop + naive final exponentiation."""
    return final_exponentiation_naive(
        curve, miller_loop_naive(curve, p_point, q_point)
    )
