"""Bilinear-pairing substrate: fields, BN curves, optimal-ate pairing.

This subpackage is a from-scratch replacement for the pairing library the
paper's authors would have used (MIRACL/charm-style).  Public surface:

* :func:`repro.pairing.bn.bn254` / :func:`repro.pairing.bn.toy_curve` -
  curve construction.
* :func:`repro.pairing.pairing.pairing` - the pairing map e: G1 x G2 -> GT.
* :mod:`repro.pairing.hashing` - hash-to-group and hash-to-scalar oracles.
* :class:`repro.pairing.groups.PairingContext` - a charm-crypto-style
  facade with operation counting, used by the signature schemes.
"""

from repro.pairing.bn import BNCurve, bn254, default_test_curve, toy_curve
from repro.pairing.curve import PrecomputedPoint, point_key
from repro.pairing.groups import PairingContext
from repro.pairing.pairing import PairingEngine, multi_pairing, pairing

__all__ = [
    "BNCurve",
    "bn254",
    "toy_curve",
    "default_test_curve",
    "pairing",
    "multi_pairing",
    "PairingEngine",
    "PairingContext",
    "PrecomputedPoint",
    "point_key",
]
