"""The optimal-ate pairing e: G1 x G2 -> GT on BN curves.

The Miller loop runs over the twist E'(Fp2) so that all slope computations
(and their inversions) happen in the cheap Fp2 field; only the line
*evaluations* at the G1 argument live in Fp12.  After the loop, the two
Frobenius correction steps standard for BN optimal-ate are applied, followed
by the final exponentiation by (p^12 - 1) / n.

The public entry points are :func:`pairing` and :func:`PairingEngine.pair`;
the engine caches nothing by itself (caching of constant pairings is done by
the scheme layer, mirroring the paper's "e(P_pub, Q_ID) is a constant"
optimisation).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import CurveError
from repro.obs import runtime as _rt
from repro.obs.registry import get_registry
from repro.pairing.bn import BNCurve
from repro.pairing.curve import CurvePoint
from repro.pairing.fields import Fp2, Fp12, FieldSpec


def _embed_fp2(spec: FieldSpec, z: Fp2, power: int) -> Fp12:
    """Embed z * w^power into Fp12 for z in Fp2 (power in 0..5).

    Uses w^6 = xi = xi_a + i, so  z0 + z1*i = (z0 - xi_a*z1) + z1*w^6.
    """
    coeffs = [0] * 12
    coeffs[power] = (z.c0 - spec.xi_a * z.c1) % spec.p
    coeffs[power + 6] = z.c1
    return Fp12(spec, coeffs)


def _line_eval(
    curve: BNCurve,
    r: CurvePoint,
    s: CurvePoint,
    px: int,
    py: int,
) -> Tuple[Fp12, CurvePoint]:
    """Line through twist points r, s evaluated at the G1 point (px, py).

    Returns the sparse Fp12 line value and the twist point r + s.  All three
    cases (chord, tangent, vertical) are handled, matching the classic
    Miller-loop line function.
    """
    spec = curve.spec
    xr, yr = r.x, r.y
    xs, ys = s.x, s.y
    if xr != xs:
        slope = (ys - yr) / (xs - xr)
    elif yr == ys and not yr.is_zero():
        slope = (xr * xr * 3) / (yr * 2)
    else:
        # Vertical line x = xr: value is px - xr * w^2.
        coeffs = [0] * 12
        coeffs[0] = px
        value = Fp12(spec, coeffs) - _embed_fp2(spec, xr, 2)
        return value, curve.g2_curve.infinity()

    # l(P) = slope*w*px - w^3*(slope*xr - yr) - py
    # (slope, coordinates in Fp2; evaluation point in Fp).
    term_w1 = _embed_fp2(spec, slope * px, 1)
    term_w3 = _embed_fp2(spec, slope * xr - yr, 3)
    const = [0] * 12
    const[0] = -py
    value = term_w1 - term_w3 + Fp12(spec, const)
    return value, r + s


def _twist_frobenius(curve: BNCurve, q: CurvePoint) -> CurvePoint:
    """The p-power Frobenius endomorphism expressed on twist coordinates."""
    if q.is_infinity():
        return q
    x = q.x.conjugate() * curve.frob_gamma2
    y = q.y.conjugate() * curve.frob_gamma3
    return curve.g2_curve.unsafe_point(x, y)


def miller_loop(curve: BNCurve, p_point: CurvePoint, q_point: CurvePoint) -> Fp12:
    """Raw Miller loop value f_{6t+2,Q}(P) including the two BN extra lines."""
    spec = curve.spec
    if p_point.is_infinity() or q_point.is_infinity():
        return spec.fp12_one()
    tally = _rt.tally
    if tally is not None:
        tally.miller_loops += 1
    px, py = p_point.x.value, p_point.y.value

    f = spec.fp12_one()
    r = q_point
    loop = curve.ate_loop_count
    for i in range(loop.bit_length() - 2, -1, -1):
        line, r = _line_eval(curve, r, r, px, py)
        f = f * f * line
        if (loop >> i) & 1:
            line, r = _line_eval(curve, r, q_point, px, py)
            f = f * line

    q1 = _twist_frobenius(curve, q_point)
    q2 = -_twist_frobenius(curve, q1)
    line, r = _line_eval(curve, r, q1, px, py)
    f = f * line
    line, _ = _line_eval(curve, r, q2, px, py)
    f = f * line
    return f


_FROBENIUS_GAMMAS = {}


def _frobenius_gammas(curve: BNCurve):
    """gamma[i] = (w^(p-1))^i = xi^(i*(p-1)/6) in Fp2, for i = 0..5.

    These drive the coefficient-wise p-power Frobenius on Fp12:
    (sum z_i w^i)^p = sum conj(z_i) * gamma[i] * w^i.
    """
    cached = _FROBENIUS_GAMMAS.get(curve.spec)
    if cached is None:
        xi = curve.spec.fp2(curve.spec.xi_a, 1)
        base = xi ** ((curve.p - 1) // 6)
        gammas = [curve.spec.fp2(1)]
        for _ in range(5):
            gammas.append(gammas[-1] * base)
        cached = tuple(gammas)
        _FROBENIUS_GAMMAS[curve.spec] = cached
    return cached


def fp12_frobenius(curve: BNCurve, value: Fp12, power: int = 1) -> Fp12:
    """The p^power Frobenius endomorphism of Fp12, O(1) field mults.

    Replaces a full ~p-bit exponentiation with 6 Fp2 conjugations and
    multiplications per application.
    """
    gammas = _frobenius_gammas(curve)
    result = value
    for _ in range(power % 12):
        components = result.tower_components()
        mapped = [z.conjugate() * gammas[i] for i, z in enumerate(components)]
        result = Fp12.from_tower_components(curve.spec, mapped)
    return result


def final_exponentiation(curve: BNCurve, f: Fp12) -> Fp12:
    """Map a Miller-loop value into the order-n subgroup GT.

    Computed as f^((p^12-1)/n) split the standard way:

    * easy part  f <- f^(p^6 - 1) then f <- f^(p^2 + 1), both via the O(1)
      Frobenius endomorphism (plus one Fp12 inversion), and
    * hard part  f^((p^4 - p^2 + 1)/n) by plain square-and-multiply of the
      ~3x-smaller remaining exponent.

    Equality with the naive single exponentiation is covered by tests.
    """
    tally = _rt.tally
    if tally is not None:
        tally.final_exps += 1
    # Easy part 1: f^(p^6 - 1) = frob^6(f) * f^(-1).
    f = fp12_frobenius(curve, f, 6) * f.inverse()
    # Easy part 2: f^(p^2 + 1) = frob^2(f) * f.
    f = fp12_frobenius(curve, f, 2) * f
    # Hard part.
    p2 = curve.p * curve.p
    hard_exponent = (p2 * p2 - p2 + 1) // curve.n
    return f ** hard_exponent


def pairing(
    curve: BNCurve,
    p_point: CurvePoint,
    q_point: CurvePoint,
    check_membership: bool = False,
) -> Fp12:
    """The optimal-ate pairing e(P, Q) with P in G1, Q in G2.

    With ``check_membership=True`` both inputs are verified to lie in their
    prime-order subgroups first (slower; scheme code validates keys once at
    import time instead of on every pairing).
    """
    if check_membership:
        if not curve.in_g1(p_point):
            raise CurveError("first pairing argument is not in G1")
        if not curve.in_g2(q_point):
            raise CurveError("second pairing argument is not in G2")
    tally = _rt.tally
    if tally is not None:
        tally.pairings += 1
    registry = get_registry()
    with registry.phase("pairing.miller_loop"):
        f = miller_loop(curve, p_point, q_point)
    with registry.phase("pairing.final_exp"):
        return final_exponentiation(curve, f)


class PairingEngine:
    """Convenience wrapper binding a :class:`BNCurve` with counters.

    Tracks how many pairings, G1/G2 scalar multiplications and GT
    exponentiations have been requested, which feeds the Table 1 operation
    accounting in the benchmark harness.
    """

    def __init__(self, curve: BNCurve):
        self.curve = curve
        self.pairing_count = 0

    def pair(self, p_point: CurvePoint, q_point: CurvePoint) -> Fp12:
        """Counted pairing through this engine."""
        self.pairing_count += 1
        return pairing(self.curve, p_point, q_point)

    def reset_counters(self) -> None:
        """Zero the engine's pairing counter."""
        self.pairing_count = 0


def is_valid_codh_tuple(
    curve: BNCurve,
    base: CurvePoint,
    left_g1: CurvePoint,
    right_g2: CurvePoint,
    target_g2: CurvePoint,
    engine: Optional[PairingEngine] = None,
) -> bool:
    """Check the co-Diffie-Hellman relation e(left, right) == e(base, target).

    This is the "valid Diffie-Hellman tuple" test the paper's CL-Verify
    performs: (P_pub, V*P - h*R, S/h, Q_ID) is valid iff
    e(V*P - h*R, S/h) == e(P_pub, Q_ID).
    """
    pair = engine.pair if engine is not None else (
        lambda a, b: pairing(curve, a, b)
    )
    return pair(left_g1, right_g2) == pair(base, target_g2)
