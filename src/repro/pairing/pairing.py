"""The optimal-ate pairing e: G1 x G2 -> GT on BN curves, optimised.

The Miller loop runs over the twist E'(Fp2) in homogeneous projective
coordinates, so the per-doubling Fp2 inversion of the affine slope never
happens; line values are kept sparse (three Fp2 tower coefficients) and
folded into the accumulator with :meth:`Fp12.mul_sparse`, and the
accumulator squaring uses the dedicated :meth:`Fp12.square`.  After the
loop, the two Frobenius correction steps standard for BN optimal-ate are
applied, followed by the final exponentiation by (p^12 - 1)/n whose hard
part is the Devegili-Scott-Dahab addition chain over Granger-Scott
cyclotomic squarings (conjugation is inversion there, so the chain is
inversion-free).

Public entry points are :func:`pairing`, :func:`multi_pairing` (a product
of Miller loops under ONE shared final exponentiation) and
:class:`PairingEngine`; the engine caches nothing by itself (caching of
constant pairings is done by the scheme layer, mirroring the paper's
"e(P_pub, Q_ID) is a constant" optimisation).  The pre-optimisation
textbook path is retained in :mod:`repro.pairing.naive` as ground truth
and as the fallback for degenerate (hostile-input) Miller steps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import CurveError
from repro.obs import runtime as _rt
from repro.obs.registry import get_registry
from repro.pairing import naive as _naive
from repro.pairing.bn import BNCurve
from repro.pairing.curve import CurvePoint, _wnaf_digits
from repro.pairing.fields import Fp2, Fp12, FieldSpec

#: a sparse Miller line: ((w-power, Fp2 coefficient), ...) tower terms
SparseLine = Tuple[Tuple[int, Fp2], ...]


class _DegenerateMillerStep(Exception):
    """Raised when the projective loop hits a vertical/degenerate step.

    Only non-subgroup (hostile or malformed) twist points can trigger it;
    the caller falls back to the affine reference loop, which handles
    verticals explicitly, so external behaviour matches the textbook path.
    """


def twist_frobenius(curve: BNCurve, q: CurvePoint) -> CurvePoint:
    """The p-power Frobenius endomorphism expressed on twist coordinates."""
    if q.is_infinity():
        return q
    x = q.x.conjugate() * curve.frob_gamma2
    y = q.y.conjugate() * curve.frob_gamma3
    return curve.g2_curve.unsafe_point(x, y)


def _double_step(
    spec: FieldSpec, x: Fp2, y: Fp2, z: Fp2, px: int, py: int
) -> Tuple[SparseLine, Fp2, Fp2, Fp2]:
    """One projective Miller doubling: tangent line at T and the point 2T.

    T = (x : y : z) is homogeneous on the twist.  The returned line is the
    affine tangent value scaled by the Fp2 factor 2*Y*Z^2 (erased later by
    the final exponentiation), with tower terms at w^0, w^1, w^3:

        l'(P) = 3X^2*Z*xP * w - (3X^3 - 2Y^2*Z) * w^3 - 2*Y*Z^2 * yP
    """
    if z.is_zero() or y.is_zero():
        raise _DegenerateMillerStep("doubling a point at infinity/2-torsion")
    xx = x.square()
    w3 = xx + xx + xx  # 3X^2
    s = y * z
    ss = s.square()
    yy = y.square()
    bz = (x * yy) * z  # X*Y^2*Z
    h = w3.square() - bz * 8
    x3 = (h * s) * 2
    y3 = w3 * (bz * 4 - h) - (yy * ss) * 8
    z3 = (s * ss) * 8
    line: SparseLine = (
        (0, (s * z) * (-2 * py)),
        (1, (xx * z) * (3 * px)),
        (3, (yy * z) * 2 - w3 * x),
    )
    return line, x3, y3, z3


def _add_step(
    spec: FieldSpec,
    x: Fp2,
    y: Fp2,
    z: Fp2,
    x2: Fp2,
    y2: Fp2,
    px: int,
    py: int,
) -> Tuple[SparseLine, Fp2, Fp2, Fp2]:
    """One mixed Miller addition: chord through T and affine Q, plus T + Q.

    The line is the affine chord value scaled by the Fp2 denominator
    v = x2*Z - X (again erased by the final exponentiation):

        l'(P) = u*xP * w - (u*x2 - v*y2) * w^3 - v*yP,   u = y2*Z - Y
    """
    if z.is_zero():
        raise _DegenerateMillerStep("adding to the point at infinity")
    u = y2 * z - y
    v = x2 * z - x
    if v.is_zero():
        raise _DegenerateMillerStep("vertical chord in Miller addition")
    vv = v.square()
    vvv = vv * v
    r = vv * x
    a = u.square() * z - vvv - r - r
    x3 = v * a
    y3 = u * (r - a) - vvv * y
    z3 = vvv * z
    line: SparseLine = (
        (0, v * (-py)),
        (1, u * px),
        (3, v * y2 - u * x2),
    )
    return line, x3, y3, z3


def _sparse_to_fp12(spec: FieldSpec, line: SparseLine) -> Fp12:
    """Materialise a sparse line as a dense Fp12 element."""
    zero = Fp2(spec, 0)
    comps: List[Fp2] = [zero] * 6
    for power, coeff in line:
        comps[power] = comps[power] + coeff
    return Fp12.from_tower_components(spec, comps)


def _miller_loop_projective(
    curve: BNCurve, p_point: CurvePoint, q_point: CurvePoint
) -> Fp12:
    """Projective sparse Miller loop; raises on degenerate steps."""
    spec = curve.spec
    px, py = p_point.x.value, p_point.y.value
    x2, y2 = q_point.x, q_point.y
    x, y, z = x2, y2, spec.fp2(1)
    f: Optional[Fp12] = None
    sparse_mults = 0
    loop = curve.ate_loop_count
    for i in range(loop.bit_length() - 2, -1, -1):
        line, x, y, z = _double_step(spec, x, y, z, px, py)
        if f is None:
            f = _sparse_to_fp12(spec, line)
        else:
            f = f.square().mul_sparse(line)
            sparse_mults += 1
        if (loop >> i) & 1:
            line, x, y, z = _add_step(spec, x, y, z, x2, y2, px, py)
            f = f.mul_sparse(line)
            sparse_mults += 1

    q1 = twist_frobenius(curve, q_point)
    q2 = -twist_frobenius(curve, q1)
    if q1.is_infinity() or q2.is_infinity():
        raise _DegenerateMillerStep("degenerate Frobenius correction point")
    line, x, y, z = _add_step(spec, x, y, z, q1.x, q1.y, px, py)
    f = f.mul_sparse(line)
    line, _, _, _ = _add_step(spec, x, y, z, q2.x, q2.y, px, py)
    f = f.mul_sparse(line)
    sparse_mults += 2
    get_registry().counter("pairing.sparse_mults").inc(sparse_mults)
    return f


def miller_loop(curve: BNCurve, p_point: CurvePoint, q_point: CurvePoint) -> Fp12:
    """Raw Miller loop value f_{6t+2,Q}(P) including the two BN extra lines.

    Uses the projective sparse fast path; degenerate steps (possible only
    for non-subgroup inputs) fall back to the affine reference loop.  The
    raw value differs from the affine reference by an Fp2 subfield factor
    (the projective line scalings), which the final exponentiation erases.

    When the active field backend provides a compiled pairing kernel
    (``spec.backend.pairing_kernel(curve)``), the projective loop runs
    natively instead — bit-identical values and obs counts, including the
    degenerate-step fallback to the affine loop.
    """
    spec = curve.spec
    if p_point.is_infinity() or q_point.is_infinity():
        return spec.fp12_one()
    tally = _rt.tally
    if tally is not None:
        tally.miller_loops += 1
    kernel = spec.backend.pairing_kernel(curve)
    if kernel is not None:
        f = kernel.miller_loop(p_point, q_point)
        if f is not None:
            return f
        return _naive.miller_loop_naive(curve, p_point, q_point)
    try:
        return _miller_loop_projective(curve, p_point, q_point)
    except _DegenerateMillerStep:
        return _naive.miller_loop_naive(curve, p_point, q_point)


#: per-spec cache of Frobenius gamma tables {1: (...), 2: (...), 3: (...)}
_FROBENIUS_TABLES = {}


def _frobenius_tables(curve: BNCurve):
    """Cached gamma tables for the p, p^2 and p^3 Frobenius maps on Fp12.

    ``tables[1][i] = (w^(p-1))^i = xi^(i*(p-1)/6)`` drives the p-power map
    ``(sum z_i w^i)^p = sum conj(z_i) * gamma[i] * w^i``; the p^2 table is
    ``gamma[i] * conj(gamma[i])`` (real, so no coefficient conjugation) and
    the p^3 table their product.
    """
    cached = _FROBENIUS_TABLES.get(curve.spec)
    if cached is None:
        spec = curve.spec
        xi = spec.fp2(spec.xi_a, 1)
        base = xi ** ((curve.p - 1) // 6)
        g1 = [spec.fp2(1)]
        for _ in range(5):
            g1.append(g1[-1] * base)
        g2 = [g * g.conjugate() for g in g1]
        g3 = [a * b for a, b in zip(g2, g1)]
        cached = {1: tuple(g1), 2: tuple(g2), 3: tuple(g3)}
        _FROBENIUS_TABLES[curve.spec] = cached
    return cached


def fp12_frobenius(curve: BNCurve, value: Fp12, power: int = 1) -> Fp12:
    """The p^power Frobenius endomorphism of Fp12, O(1) field mults.

    Decomposes ``power mod 12`` as (optional conjugation for the p^6
    half-turn) plus at most two applications of the cached p/p^2/p^3 gamma
    tables, instead of iterating the coefficient map ``power`` times.
    """
    k = power % 12
    if k == 0:
        return value
    if k >= 6:
        # frob^6 is w -> -w, i.e. plain conjugation.
        value = value.conjugate()
        k -= 6
        if k == 0:
            return value
    tables = _frobenius_tables(curve)
    while k:
        step = 3 if k >= 3 else k
        table = tables[step]
        components = value.tower_components()
        if step % 2:
            mapped = [z.conjugate() * table[i] for i, z in enumerate(components)]
        else:
            mapped = [z * table[i] for i, z in enumerate(components)]
        value = Fp12.from_tower_components(curve.spec, mapped)
        k -= step
    return value


def cyclotomic_exp(value: Fp12, exponent: int) -> Fp12:
    """Exponentiation valid only in the cyclotomic subgroup of Fp12.

    Uses Granger-Scott squarings and a signed NAF digit expansion where
    negative digits multiply by the conjugate (which is the inverse in the
    cyclotomic subgroup), so the whole ladder is inversion-free.  Garbage
    for inputs outside the subgroup — callers guarantee membership.
    """
    if exponent == 0:
        return value.spec.fp12_one()
    if exponent < 0:
        value, exponent = value.conjugate(), -exponent
    conj = value.conjugate()
    digits = _wnaf_digits(exponent, 2)  # width-2 wNAF == NAF, digits in {0,+-1}
    result: Optional[Fp12] = None
    squares = 0
    for digit in reversed(digits):
        if result is not None:
            result = result.cyclotomic_square()
            squares += 1
        if digit == 1:
            result = value if result is None else result * value
        elif digit == -1:
            result = conj if result is None else result * conj
    get_registry().counter("pairing.cyclo_squares").inc(squares)
    return result


def final_exponentiation(curve: BNCurve, f: Fp12) -> Fp12:
    """Map a Miller-loop value into the order-n subgroup GT.

    Computed as f^((p^12-1)/n) split the standard way:

    * easy part  f <- conj(f) * f^(-1)  (= f^(p^6 - 1), since the p^6
      Frobenius is plain conjugation) then f <- frob^2(f) * f, and
    * hard part  f^((p^4 - p^2 + 1)/n) via the Devegili-Scott-Dahab BN
      addition chain: three f^t ladders (cyclotomic NAF), Frobenius maps,
      Granger-Scott squarings and conjugation-as-inversion.

    Equality with the naive single exponentiation is covered by tests.
    """
    tally = _rt.tally
    if tally is not None:
        tally.final_exps += 1
    kernel = curve.spec.backend.pairing_kernel(curve)
    if kernel is not None:
        return kernel.final_exp(f)
    # Easy part 1: f^(p^6 - 1) = conj(f) * f^(-1).
    f = f.conjugate() * f.inverse()
    # Easy part 2: f^(p^2 + 1) = frob^2(f) * f.
    f = fp12_frobenius(curve, f, 2) * f
    # Hard part: f is now in the cyclotomic subgroup, where conjugation
    # inverts and Granger-Scott squaring applies.  Chain valid for the
    # repo's curves (t > 0 is enforced at curve derivation).
    t = curve.t
    fp1 = fp12_frobenius(curve, f, 1)
    fp2 = fp12_frobenius(curve, f, 2)
    fp3 = fp12_frobenius(curve, fp2, 1)
    fu = cyclotomic_exp(f, t)
    fu2 = cyclotomic_exp(fu, t)
    fu3 = cyclotomic_exp(fu2, t)
    y0 = fp1 * fp2 * fp3
    y1 = f.conjugate()
    y2 = fp12_frobenius(curve, fu2, 2)
    y3 = fp12_frobenius(curve, fu, 1).conjugate()
    y4 = (fu * fp12_frobenius(curve, fu2, 1)).conjugate()
    y5 = fu2.conjugate()
    y6 = (fu3 * fp12_frobenius(curve, fu3, 1)).conjugate()
    t0 = y6.cyclotomic_square() * y4 * y5
    t1 = y3 * y5 * t0
    t0 = t0 * y2
    t1 = (t1.cyclotomic_square() * t0).cyclotomic_square()
    t0 = t1 * y1
    t1 = t1 * y0
    t0 = t0.cyclotomic_square()
    get_registry().counter("pairing.cyclo_squares").inc(4)
    return t0 * t1


def pairing(
    curve: BNCurve,
    p_point: CurvePoint,
    q_point: CurvePoint,
    check_membership: bool = False,
) -> Fp12:
    """The optimal-ate pairing e(P, Q) with P in G1, Q in G2.

    With ``check_membership=True`` both inputs are verified to lie in their
    prime-order subgroups first (slower; scheme code validates keys once at
    import time instead of on every pairing).
    """
    if check_membership:
        if not curve.in_g1(p_point):
            raise CurveError("first pairing argument is not in G1")
        if not curve.in_g2(q_point):
            raise CurveError("second pairing argument is not in G2")
    tally = _rt.tally
    if tally is not None:
        tally.pairings += 1
    registry = get_registry()
    with registry.phase("pairing.miller_loop"):
        f = miller_loop(curve, p_point, q_point)
    with registry.phase("pairing.final_exp"):
        return final_exponentiation(curve, f)


def multi_pairing(
    curve: BNCurve,
    pairs: Sequence[Tuple[CurvePoint, CurvePoint]],
    check_membership: bool = False,
) -> Fp12:
    """The product prod_i e(P_i, Q_i) under ONE shared final exponentiation.

    Multiplies the raw Miller-loop values together and exponentiates the
    product once, so k pairings cost k Miller loops + 1 final
    exponentiation instead of k of each.  Counts as ``len(pairs)``
    requested pairings in the obs tally (the Table 1 accounting is about
    pairing *relations*, not final exponentiations).
    """
    if check_membership:
        for p_point, q_point in pairs:
            if not curve.in_g1(p_point):
                raise CurveError("multi-pairing G1 argument is not in G1")
            if not curve.in_g2(q_point):
                raise CurveError("multi-pairing G2 argument is not in G2")
    if not pairs:
        return curve.spec.fp12_one()
    tally = _rt.tally
    if tally is not None:
        tally.pairings += len(pairs)
    registry = get_registry()
    registry.counter("pairing.multi_pairings").inc()
    f: Optional[Fp12] = None
    with registry.phase("pairing.miller_loop"):
        for p_point, q_point in pairs:
            m = miller_loop(curve, p_point, q_point)
            f = m if f is None else f * m
    with registry.phase("pairing.final_exp"):
        return final_exponentiation(curve, f)


class PairingEngine:
    """Convenience wrapper binding a :class:`BNCurve` with counters.

    Tracks how many pairings, G1/G2 scalar multiplications and GT
    exponentiations have been requested, which feeds the Table 1 operation
    accounting in the benchmark harness.
    """

    def __init__(self, curve: BNCurve):
        self.curve = curve
        self.pairing_count = 0

    def pair(self, p_point: CurvePoint, q_point: CurvePoint) -> Fp12:
        """Counted pairing through this engine."""
        self.pairing_count += 1
        return pairing(self.curve, p_point, q_point)

    def multi_pair(
        self, pairs: Sequence[Tuple[CurvePoint, CurvePoint]]
    ) -> Fp12:
        """Counted multi-pairing: each pair counts as one requested pairing."""
        self.pairing_count += len(pairs)
        return multi_pairing(self.curve, pairs)

    def reset_counters(self) -> None:
        """Zero the engine's pairing counter."""
        self.pairing_count = 0


def is_valid_codh_tuple(
    curve: BNCurve,
    base: CurvePoint,
    left_g1: CurvePoint,
    right_g2: CurvePoint,
    target_g2: CurvePoint,
    engine: Optional[PairingEngine] = None,
) -> bool:
    """Check the co-Diffie-Hellman relation e(left, right) == e(base, target).

    This is the "valid Diffie-Hellman tuple" test the paper's CL-Verify
    performs: (P_pub, V*P - h*R, S/h, Q_ID) is valid iff
    e(V*P - h*R, S/h) == e(P_pub, Q_ID).  Evaluated as the single
    multi-pairing e(left, right) * e(-base, target) == 1, sharing one
    final exponentiation across both Miller loops.
    """
    pairs = [(left_g1, right_g2), (-base, target_g2)]
    if engine is not None:
        return engine.multi_pair(pairs).is_one()
    return multi_pairing(curve, pairs).is_one()
