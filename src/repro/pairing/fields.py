"""Finite-field arithmetic for pairing-friendly curves.

Three field layers are provided:

* :class:`Fp` - the prime base field GF(p).
* :class:`Fp2` - the quadratic extension GF(p^2) = GF(p)[i] / (i^2 + 1),
  which requires p = 3 (mod 4); used for coordinates of the sextic twist.
* :class:`Fp12` - the full extension GF(p^12) = GF(p)[w] / (w^12 - 2a w^6 +
  (a^2+1)), i.e. w^6 = xi = a + i for the tower non-residue xi; this is the
  target field of the pairing's Miller loop.

Elements are immutable value objects.  Every element carries a reference to
its :class:`FieldSpec`, and mixing elements of different specs raises
:class:`FieldError` rather than silently producing garbage.

Base-field *strategy* is pluggable: every :class:`FieldSpec` holds a
:class:`FieldBackend` that supplies the scalar primitives the tower cannot
express structurally (modular exponentiation, modular inversion, the
coefficient representation, and - for native backends - a compiled pairing
kernel).  Backends are registered and resolved by name in
:mod:`repro.pairing.backends`; two specs with equal ``(p, xi_a)`` compare
equal regardless of backend, so elements produced under different backends
interoperate and can be compared bit-for-bit (the cross-backend identity
tests rely on this).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from repro.errors import FieldError
from repro.obs import runtime as _rt
from repro.pairing.numbers import inverse_mod, legendre_symbol, sqrt_mod

IntLike = Union[int, "Fp"]


class FieldBackend:
    """Strategy supplying base-field scalar primitives to a field tower.

    The base class implements the *reference* semantics (plain Python
    ints, builtin ``pow``), so a backend only overrides what it
    accelerates.  Implementations must be value-transparent: for the same
    inputs every backend returns the same canonical residues, and the obs
    tally (``fp_mul`` and friends) is incremented by the tower classes /
    kernel wrappers identically across backends, so operation-count
    benchmarks stay backend-independent.

    ``modulus`` arguments of :meth:`powmod`/:meth:`invmod` are always the
    base-field prime ``p`` of a :class:`FieldSpec`, so backends may use
    prime-only algorithms (Fermat inversion, Montgomery ladders).
    """

    #: registry name; concrete backends override this
    name = "abstract"

    def availability(self) -> Tuple[bool, str]:
        """Whether this backend can run here, plus a human-readable reason."""
        return True, "always available (pure Python)"

    def wrap(self, value: int) -> int:
        """Coefficient-representation entry point.

        Applied to the prime ``p`` when a :class:`FieldSpec` is built, so
        a backend with a faster integer type (e.g. ``gmpy2.mpz``) can make
        every ``x % spec.p`` reduction propagate that type through the
        tower with zero per-operation dispatch cost.
        """
        return value

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        """``base ** exponent % modulus`` for non-negative exponents."""
        return pow(base, exponent, modulus)

    def invmod(self, value: int, modulus: int) -> int:
        """Modular inverse; ``modulus`` is prime (the base-field p)."""
        return inverse_mod(value, modulus)

    def pairing_kernel(self, curve):
        """A compiled pairing kernel for ``curve``, or ``None``.

        Returning ``None`` keeps the pure-Python Miller loop / final
        exponentiation; a non-None kernel is used by
        :mod:`repro.pairing.pairing` for whole-stage native execution.
        """
        return None

    def point_kernel(self, curve):
        """A compiled point-arithmetic kernel for ``curve``, or ``None``.

        A non-None kernel (the same object as :meth:`pairing_kernel` for
        the native backend) lets :mod:`repro.pairing.glv` run its
        interleaved-wNAF multi-scalar multiplications natively, with
        bit- and count-identical results to the reference column walk.
        """
        return None

    def describe(self) -> str:
        """One-line human description (shown by CLI/bench surfaces)."""
        ok, reason = self.availability()
        state = "available" if ok else "unavailable"
        return f"{self.name}: {state} - {reason}"

    def __repr__(self) -> str:
        return f"<FieldBackend {self.name}>"


class FieldSpec:
    """Shared description of a field tower: base prime and tower residue.

    ``xi = xi_a + i`` is the quadratic/sextic non-residue in Fp2 used to
    build Fp12 (w^6 = xi).  For the standard BN254/alt_bn128 tower,
    ``xi_a = 9``.

    ``backend`` selects the base-field arithmetic strategy (a
    :class:`FieldBackend` instance or a registered name); omitted, it
    resolves through :func:`repro.pairing.backends.resolve_backend`, which
    honours the ``REPRO_FIELD_BACKEND`` environment default.  The legacy
    positional form ``FieldSpec(p, xi_a)`` bypasses backend selection and
    is deprecated (it warns once and resolves the default backend).
    """

    __slots__ = ("p", "xi_a", "fp12_mod_c0", "fp12_mod_c6", "backend")

    def __init__(
        self,
        p: int,
        *legacy_args: int,
        xi_a: Optional[int] = None,
        backend=None,
    ):
        if legacy_args:
            if xi_a is not None or len(legacy_args) != 1:
                raise TypeError(
                    "FieldSpec takes (p, *, xi_a=..., backend=...); the"
                    " positional form accepts exactly FieldSpec(p, xi_a)"
                )
            from repro import compat as _compat

            _compat.warn_deprecated(
                "positional FieldSpec(p, xi_a) bypasses field-backend"
                " selection and is deprecated; construct with"
                " FieldSpec(p, xi_a=..., backend=...) (or use"
                " repro.compat.FieldSpec during migration)"
            )
            xi_a = legacy_args[0]
        if xi_a is None:
            raise TypeError("FieldSpec requires xi_a (keyword) to be given")
        if p % 4 != 3:
            raise FieldError("field tower requires p = 3 (mod 4) so i^2 = -1")
        if backend is None or isinstance(backend, str):
            from repro.pairing import backends as _backends

            backend = _backends.resolve_backend(backend)
        self.backend = backend
        self.p = backend.wrap(p)
        self.xi_a = xi_a % p
        # w^12 = 2a w^6 - (a^2 + 1): reduction constants for Fp12.
        self.fp12_mod_c6 = (2 * self.xi_a) % p
        self.fp12_mod_c0 = (-(self.xi_a * self.xi_a + 1)) % p

    def __repr__(self) -> str:
        return (
            f"FieldSpec(p~2^{self.p.bit_length()}, xi={self.xi_a}+i,"
            f" backend={self.backend.name})"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FieldSpec)
            and self.p == other.p
            and self.xi_a == other.xi_a
        )

    def __hash__(self) -> int:
        return hash((self.p, self.xi_a))

    # -- element constructors ------------------------------------------------
    def fp(self, value: int) -> "Fp":
        """An Fp element of this spec."""
        return Fp(self, value)

    def fp2(self, c0: int, c1: int = 0) -> "Fp2":
        """An Fp2 element c0 + c1*i of this spec."""
        return Fp2(self, c0, c1)

    def fp12(self, coeffs: Sequence[int]) -> "Fp12":
        """An Fp12 element from 12 Fp coefficients."""
        return Fp12(self, coeffs)

    def fp12_one(self) -> "Fp12":
        """The Fp12 multiplicative identity."""
        return Fp12(self, (1,) + (0,) * 11)

    def fp12_zero(self) -> "Fp12":
        """The Fp12 additive identity."""
        return Fp12(self, (0,) * 12)


def _coerce_int(value: IntLike) -> int:
    if isinstance(value, Fp):
        return value.value
    if isinstance(value, int):
        return value
    raise FieldError(f"cannot coerce {type(value).__name__} to field scalar")


class Fp:
    """An element of the prime field GF(p)."""

    __slots__ = ("spec", "value")

    def __init__(self, spec: FieldSpec, value: int):
        self.spec = spec
        self.value = value % spec.p

    def _check(self, other: "Fp") -> None:
        if self.spec is not other.spec and self.spec != other.spec:
            raise FieldError("mixed-field arithmetic")

    def __add__(self, other: IntLike) -> "Fp":
        if isinstance(other, Fp):
            self._check(other)
            return Fp(self.spec, self.value + other.value)
        return Fp(self.spec, self.value + _coerce_int(other))

    __radd__ = __add__

    def __sub__(self, other: IntLike) -> "Fp":
        if isinstance(other, Fp):
            self._check(other)
            return Fp(self.spec, self.value - other.value)
        return Fp(self.spec, self.value - _coerce_int(other))

    def __rsub__(self, other: IntLike) -> "Fp":
        return Fp(self.spec, _coerce_int(other) - self.value)

    def __mul__(self, other: IntLike) -> "Fp":
        tally = _rt.tally
        if tally is not None:
            tally.fp_mul += 1
        if isinstance(other, Fp):
            self._check(other)
            return Fp(self.spec, self.value * other.value)
        return Fp(self.spec, self.value * _coerce_int(other))

    __rmul__ = __mul__

    def __neg__(self) -> "Fp":
        return Fp(self.spec, -self.value)

    def __truediv__(self, other: IntLike) -> "Fp":
        tally = _rt.tally
        if tally is not None:
            tally.fp_inv += 1
            tally.fp_mul += 1
        div = other.value if isinstance(other, Fp) else _coerce_int(other)
        spec = self.spec
        return Fp(spec, self.value * spec.backend.invmod(div, spec.p))

    def __rtruediv__(self, other: IntLike) -> "Fp":
        return Fp(self.spec, _coerce_int(other)) / self

    def __pow__(self, exponent: int) -> "Fp":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        spec = self.spec
        return Fp(spec, spec.backend.powmod(self.value, exponent, spec.p))

    def square(self) -> "Fp":
        """The square of this element (one base-field multiplication)."""
        tally = _rt.tally
        if tally is not None:
            tally.fp_mul += 1
        return Fp(self.spec, self.value * self.value)

    def inverse(self) -> "Fp":
        """The multiplicative inverse (raises FieldError on zero)."""
        tally = _rt.tally
        if tally is not None:
            tally.fp_inv += 1
        spec = self.spec
        return Fp(spec, spec.backend.invmod(self.value, spec.p))

    def is_zero(self) -> bool:
        """Whether this is the additive identity."""
        return self.value == 0

    def is_square(self) -> bool:
        """Quadratic-residue test."""
        return legendre_symbol(self.value, self.spec.p) >= 0

    def sqrt(self) -> "Fp":
        """A square root (raises FieldError for non-residues)."""
        return Fp(self.spec, sqrt_mod(self.value, self.spec.p))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Fp):
            return self.spec == other.spec and self.value == other.value
        if isinstance(other, int):
            return self.value == other % self.spec.p
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.spec.p, self.value))

    def __repr__(self) -> str:
        return f"Fp({self.value})"


class Fp2:
    """An element c0 + c1*i of GF(p^2) with i^2 = -1."""

    __slots__ = ("spec", "c0", "c1")

    def __init__(self, spec: FieldSpec, c0: int, c1: int = 0):
        self.spec = spec
        self.c0 = c0 % spec.p
        self.c1 = c1 % spec.p

    def _check(self, other: "Fp2") -> None:
        if self.spec is not other.spec and self.spec != other.spec:
            raise FieldError("mixed-field arithmetic")

    def __add__(self, other: "Fp2") -> "Fp2":
        self._check(other)
        return Fp2(self.spec, self.c0 + other.c0, self.c1 + other.c1)

    def __sub__(self, other: "Fp2") -> "Fp2":
        self._check(other)
        return Fp2(self.spec, self.c0 - other.c0, self.c1 - other.c1)

    def __neg__(self) -> "Fp2":
        return Fp2(self.spec, -self.c0, -self.c1)

    def __mul__(self, other: Union["Fp2", int]) -> "Fp2":
        tally = _rt.tally
        if isinstance(other, int):
            if tally is not None:
                tally.fp2_mul += 1
                tally.fp_mul += 2
            return Fp2(self.spec, self.c0 * other, self.c1 * other)
        self._check(other)
        if tally is not None:
            tally.fp2_mul += 1
            tally.fp_mul += 3
        a0, a1, b0, b1 = self.c0, self.c1, other.c0, other.c1
        # Karatsuba over i^2 = -1: three base multiplications.
        m0 = a0 * b0
        m1 = a1 * b1
        m2 = (a0 + a1) * (b0 + b1)
        return Fp2(self.spec, m0 - m1, m2 - m0 - m1)

    __rmul__ = __mul__

    def square(self) -> "Fp2":
        """Dedicated squaring: two base multiplications instead of three."""
        tally = _rt.tally
        if tally is not None:
            tally.fp2_sq += 1
            tally.fp_mul += 2
        a0, a1 = self.c0, self.c1
        # (a0 + a1 i)^2 = (a0+a1)(a0-a1) + 2 a0 a1 i
        return Fp2(self.spec, (a0 + a1) * (a0 - a1), 2 * a0 * a1)

    def __truediv__(self, other: Union["Fp2", int]) -> "Fp2":
        if isinstance(other, int):
            inv = self.spec.backend.invmod(other, self.spec.p)
            return Fp2(self.spec, self.c0 * inv, self.c1 * inv)
        return self * other.inverse()

    def __pow__(self, exponent: int) -> "Fp2":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = Fp2(self.spec, 1)
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base.square()
            e >>= 1
        return result

    def inverse(self) -> "Fp2":
        """The multiplicative inverse (raises FieldError on zero)."""
        tally = _rt.tally
        if tally is not None:
            tally.fp2_inv += 1
            tally.fp_mul += 4
        p = self.spec.p
        norm = (self.c0 * self.c0 + self.c1 * self.c1) % p
        if norm == 0:
            raise FieldError("inversion of zero in Fp2")
        inv = self.spec.backend.invmod(norm, p)
        return Fp2(self.spec, self.c0 * inv, -self.c1 * inv)

    def conjugate(self) -> "Fp2":
        """The conjugate c0 - c1*i."""
        return Fp2(self.spec, self.c0, -self.c1)

    def mul_by_xi(self) -> "Fp2":
        """Multiply by the tower residue xi = xi_a + i."""
        tally = _rt.tally
        if tally is not None:
            tally.fp_mul += 2
        a = self.spec.xi_a
        return Fp2(self.spec, self.c0 * a - self.c1, self.c0 + self.c1 * a)

    def is_zero(self) -> bool:
        """Whether this is the additive identity."""
        return self.c0 == 0 and self.c1 == 0

    def is_square(self) -> bool:
        """Quadratic-residue test in Fp2 via the norm map to Fp."""
        if self.is_zero():
            return True
        p = self.spec.p
        norm = (self.c0 * self.c0 + self.c1 * self.c1) % p
        return legendre_symbol(norm, p) == 1

    def sqrt(self) -> "Fp2":
        """Square root in Fp2 (complex method; raises for non-residues)."""
        if self.is_zero():
            return Fp2(self.spec, 0)
        p = self.spec.p
        if self.c1 == 0:
            if legendre_symbol(self.c0, p) == 1:
                return Fp2(self.spec, sqrt_mod(self.c0, p), 0)
            # sqrt(c0) = sqrt(-c0) * sqrt(-1); -1 has no sqrt in Fp here
            # (p = 3 mod 4), so the root is purely imaginary.
            return Fp2(self.spec, 0, sqrt_mod((-self.c0) % p, p))
        norm = (self.c0 * self.c0 + self.c1 * self.c1) % p
        if legendre_symbol(norm, p) != 1:
            raise FieldError("element is not a square in Fp2")
        n = sqrt_mod(norm, p)
        inv2 = inverse_mod(2, p)
        a = ((self.c0 + n) * inv2) % p
        if legendre_symbol(a, p) != 1:
            a = ((self.c0 - n) * inv2) % p
        if legendre_symbol(a, p) != 1:
            raise FieldError("element is not a square in Fp2")
        x0 = sqrt_mod(a, p)
        x1 = (self.c1 * inverse_mod(2 * x0, p)) % p
        root = Fp2(self.spec, x0, x1)
        if root * root == self:
            return root
        raise FieldError("element is not a square in Fp2")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Fp2):
            return (
                self.spec == other.spec
                and self.c0 == other.c0
                and self.c1 == other.c1
            )
        if isinstance(other, int):
            return self.c1 == 0 and self.c0 == other % self.spec.p
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.spec.p, self.c0, self.c1))

    def __repr__(self) -> str:
        return f"Fp2({self.c0}, {self.c1})"


class Fp12:
    """An element of GF(p^12) as a degree-11 polynomial in w.

    The reduction rule is w^12 = c6 * w^6 + c0 with c6 = 2*xi_a and
    c0 = -(xi_a^2 + 1), which encodes w^6 = xi = xi_a + i.
    """

    __slots__ = ("spec", "coeffs")

    def __init__(self, spec: FieldSpec, coeffs: Sequence[int]):
        if len(coeffs) != 12:
            raise FieldError("Fp12 elements need exactly 12 coefficients")
        p = spec.p
        self.spec = spec
        self.coeffs: Tuple[int, ...] = tuple(c % p for c in coeffs)

    def _check(self, other: "Fp12") -> None:
        if self.spec is not other.spec and self.spec != other.spec:
            raise FieldError("mixed-field arithmetic")

    def __add__(self, other: "Fp12") -> "Fp12":
        self._check(other)
        return Fp12(
            self.spec,
            [a + b for a, b in zip(self.coeffs, other.coeffs)],
        )

    def __sub__(self, other: "Fp12") -> "Fp12":
        self._check(other)
        return Fp12(
            self.spec,
            [a - b for a, b in zip(self.coeffs, other.coeffs)],
        )

    def __neg__(self) -> "Fp12":
        return Fp12(self.spec, [-a for a in self.coeffs])

    def __mul__(self, other: Union["Fp12", int]) -> "Fp12":
        tally = _rt.tally
        if isinstance(other, int):
            if tally is not None:
                tally.fp12_mul += 1
                tally.fp_mul += 12
            return Fp12(self.spec, [a * other for a in self.coeffs])
        self._check(other)
        p = self.spec.p
        a = self.coeffs
        b = other.coeffs
        # Schoolbook product, degree <= 22.
        prod = [0] * 23
        mults = 0
        for i, ai in enumerate(a):
            if ai == 0:
                continue
            for j, bj in enumerate(b):
                if bj:
                    prod[i + j] += ai * bj
                    mults += 1
        # Reduce w^k for k >= 12 using w^12 = c6 w^6 + c0.
        c6 = self.spec.fp12_mod_c6
        c0 = self.spec.fp12_mod_c0
        for k in range(22, 11, -1):
            v = prod[k]
            if v == 0:
                continue
            prod[k] = 0
            prod[k - 6] += v * c6
            prod[k - 12] += v * c0
            mults += 2
        if tally is not None:
            tally.fp12_mul += 1
            tally.fp_mul += mults
        return Fp12(self.spec, [prod[k] % p for k in range(12)])

    __rmul__ = __mul__

    def square(self) -> "Fp12":
        """Dedicated squaring via the symmetric schoolbook product.

        Computes only the upper triangle of the coefficient product
        (78 base multiplications instead of 144 for a dense ``*``).
        """
        tally = _rt.tally
        p = self.spec.p
        a = self.coeffs
        prod = [0] * 23
        mults = 0
        for i, ai in enumerate(a):
            if ai == 0:
                continue
            prod[2 * i] += ai * ai
            mults += 1
            twice = 2 * ai
            for j in range(i + 1, 12):
                aj = a[j]
                if aj:
                    prod[i + j] += twice * aj
                    mults += 1
        c6 = self.spec.fp12_mod_c6
        c0 = self.spec.fp12_mod_c0
        for k in range(22, 11, -1):
            v = prod[k]
            if v == 0:
                continue
            prod[k] = 0
            prod[k - 6] += v * c6
            prod[k - 12] += v * c0
            mults += 2
        if tally is not None:
            tally.fp12_sq += 1
            tally.fp_mul += mults
        return Fp12(self.spec, [prod[k] % p for k in range(12)])

    def mul_sparse(self, terms: Sequence[Tuple[int, "Fp2"]]) -> "Fp12":
        """Multiply by a sparse operand given as (w-power, Fp2) tower terms.

        ``terms`` lists the nonzero tower components of the other operand
        indexed by w-power (< 6); Miller-loop line values have only three
        (powers 0, 1, 3).  Cost is ``6 * len(terms)`` Fp2 multiplications
        instead of a dense 12x12 coefficient product.
        """
        tally = _rt.tally
        if tally is not None:
            tally.fp12_sparse_mul += 1
        spec = self.spec
        comps = self.tower_components()
        acc = [None] * 6
        for power, coeff in terms:
            if coeff.is_zero():
                continue
            for i, z in enumerate(comps):
                k = i + power
                term = z * coeff
                if k >= 6:
                    k -= 6
                    term = term.mul_by_xi()
                acc[k] = term if acc[k] is None else acc[k] + term
        zero = Fp2(spec, 0)
        return Fp12.from_tower_components(
            spec, [zero if z is None else z for z in acc]
        )

    def cyclotomic_square(self) -> "Fp12":
        """Granger-Scott squaring, valid only in the cyclotomic subgroup.

        For f with f^(p^6+1) in the order-(p^4-p^2+1) subgroup (every
        output of the final exponentiation's easy part, hence all of GT),
        squaring collapses to three Fp4 squarings over the tower
        components.  Roughly a third of the base multiplications of
        :meth:`square`; garbage outside the cyclotomic subgroup.
        """
        tally = _rt.tally
        if tally is not None:
            tally.fp12_cyclo_sq += 1
        g = self.tower_components()
        a0, a1 = _fp4_square(g[0], g[3])
        b0, b1 = _fp4_square(g[1], g[4])
        c0, c1 = _fp4_square(g[2], g[5])

        def plus(three, two):
            # 3*three + 2*two via additions only.
            t = three + two
            return t + t + three

        def minus(three, two):
            # 3*three - 2*two via additions only.
            t = three - two
            return t + t + three

        return Fp12.from_tower_components(
            self.spec,
            [
                minus(a0, g[0]),
                plus(c1.mul_by_xi(), g[1]),
                minus(b0, g[2]),
                plus(a1, g[3]),
                minus(c0, g[4]),
                plus(b1, g[5]),
            ],
        )

    def __truediv__(self, other: Union["Fp12", int]) -> "Fp12":
        if isinstance(other, int):
            inv = self.spec.backend.invmod(other, self.spec.p)
            return Fp12(self.spec, [a * inv for a in self.coeffs])
        return self * other.inverse()

    def __pow__(self, exponent: int) -> "Fp12":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = self.spec.fp12_one()
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base.square()
            e >>= 1
        return result

    def inverse(self) -> "Fp12":
        """Inverse via the extended Euclidean algorithm on polynomials."""
        tally = _rt.tally
        if tally is not None:
            tally.fp12_inv += 1
        p = self.spec.p
        # Modulus polynomial m(w) = w^12 - c6 w^6 - c0.
        modulus = [(-self.spec.fp12_mod_c0) % p, 0, 0, 0, 0, 0,
                   (-self.spec.fp12_mod_c6) % p, 0, 0, 0, 0, 0, 1]
        lm, hm = [1] + [0] * 12, [0] * 13
        low = list(self.coeffs) + [0]
        high = list(modulus)
        if all(c == 0 for c in self.coeffs):
            raise FieldError("inversion of zero in Fp12")

        def deg(poly):
            for d in range(len(poly) - 1, -1, -1):
                if poly[d]:
                    return d
            return 0

        while deg(low):
            r = _poly_rounded_div(high, low, p)
            r += [0] * (len(high) - len(r))
            nm = list(hm)
            new = list(high)
            for i in range(13):
                for j in range(13 - i):
                    nm[i + j] = (nm[i + j] - lm[i] * r[j]) % p
                    new[i + j] = (new[i + j] - low[i] * r[j]) % p
            lm, low, hm, high = nm, new, lm, low
        inv_lead = self.spec.backend.invmod(low[0], p)
        return Fp12(self.spec, [(c * inv_lead) % p for c in lm[:12]])

    def conjugate(self) -> "Fp12":
        """Conjugation by the order-2 Frobenius w -> -w (negate odd terms)."""
        return Fp12(
            self.spec,
            [c if k % 2 == 0 else -c for k, c in enumerate(self.coeffs)],
        )

    def tower_components(self) -> Tuple["Fp2", ...]:
        """View as sum_{i<6} z_i * w^i with z_i in Fp2 = Fp[i].

        Uses w^6 = xi = xi_a + i: the coefficient pair (c_i, c_{i+6})
        represents z_i = c_i + c_{i+6}*xi = (c_i + xi_a*c_{i+6}) + c_{i+6}*i.
        """
        tally = _rt.tally
        if tally is not None:
            tally.fp_mul += 6
        spec = self.spec
        return tuple(
            Fp2(
                spec,
                self.coeffs[i] + spec.xi_a * self.coeffs[i + 6],
                self.coeffs[i + 6],
            )
            for i in range(6)
        )

    @classmethod
    def from_tower_components(
        cls, spec: FieldSpec, components: Sequence["Fp2"]
    ) -> "Fp12":
        """Inverse of :meth:`tower_components`."""
        if len(components) != 6:
            raise FieldError("need exactly 6 Fp2 tower components")
        tally = _rt.tally
        if tally is not None:
            tally.fp_mul += 6
        coeffs = [0] * 12
        for i, z in enumerate(components):
            # z = z0 + z1*i and w^6 = xi_a + i  =>  pair is
            # (z0 - xi_a*z1, z1) at positions (i, i+6).
            coeffs[i] = (z.c0 - spec.xi_a * z.c1) % spec.p
            coeffs[i + 6] = z.c1
        return cls(spec, coeffs)

    def is_one(self) -> bool:
        """Whether this is the multiplicative identity."""
        return self.coeffs[0] == 1 and all(c == 0 for c in self.coeffs[1:])

    def is_zero(self) -> bool:
        """Whether this is the additive identity."""
        return all(c == 0 for c in self.coeffs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Fp12):
            return self.spec == other.spec and self.coeffs == other.coeffs
        if isinstance(other, int):
            return (
                self.coeffs[0] == other % self.spec.p
                and all(c == 0 for c in self.coeffs[1:])
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.spec.p, self.coeffs))

    def __repr__(self) -> str:
        return f"Fp12({list(self.coeffs)})"


def _fp4_square(a: "Fp2", b: "Fp2") -> Tuple["Fp2", "Fp2"]:
    """Squaring in Fp4 = Fp2[V]/(V^2 - xi): (a + bV)^2 as (re, im).

    Returns (a^2 + xi b^2, 2ab) using three Fp2 squarings (the cross term
    via (a+b)^2 - a^2 - b^2).
    """
    a2 = a.square()
    b2 = b.square()
    return a2 + b2.mul_by_xi(), (a + b).square() - a2 - b2


def _poly_rounded_div(a: Sequence[int], b: Sequence[int], p: int):
    """Polynomial division helper used by Fp12 inversion (py_ecc style)."""
    dega = _degree(a)
    degb = _degree(b)
    temp = list(a)
    out = [0] * len(a)
    inv_lead = inverse_mod(b[degb], p)
    for i in range(dega - degb, -1, -1):
        out[i] = (out[i] + temp[degb + i] * inv_lead) % p
        for c in range(degb + 1):
            temp[c + i] = (temp[c + i] - out[i] * b[c]) % p
    return out[: _degree(out) + 1]


def _degree(poly: Sequence[int]) -> int:
    d = len(poly) - 1
    while d > 0 and poly[d] == 0:
        d -= 1
    return d
