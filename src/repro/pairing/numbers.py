"""Number-theoretic helpers for the pairing substrate.

Pure-Python implementations of primality testing, modular inversion and
modular square roots.  These are the only number-theory primitives the rest
of the library needs; they work on arbitrary-precision ``int`` values.
"""

from __future__ import annotations

import random

from repro.errors import FieldError

# Deterministic Miller-Rabin witness sets.  For n < 3.3e24 the first set is a
# proven deterministic test; for larger n we add random witnesses for a
# 2^-128 error bound, which is ample for parameter *generation* (the shipped
# BN254 parameters are standard and independently known to be prime).
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_BOUND = 3317044064679887385961981


def is_probable_prime(n: int, extra_rounds: int = 32) -> bool:
    """Return True if ``n`` is prime (deterministic below ~3.3e24).

    Uses trial division by small primes followed by Miller-Rabin.  Below the
    deterministic bound the witness set proves primality; above it the test
    is probabilistic with error below 4**-extra_rounds.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witness_composite(a: int) -> bool:
        x = pow(a, d, n)
        if x in (1, n - 1):
            return False
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                return False
        return True

    for a in _DETERMINISTIC_WITNESSES:
        if a >= n:
            continue
        if witness_composite(a):
            return False
    if n < _DETERMINISTIC_BOUND:
        return True

    rng = random.Random(0xC0FFEE ^ n)
    for _ in range(extra_rounds):
        a = rng.randrange(2, n - 1)
        if witness_composite(a):
            return False
    return True


def inverse_mod(a: int, m: int) -> int:
    """Return the multiplicative inverse of ``a`` modulo ``m``.

    Raises :class:`FieldError` when ``a`` is not invertible (shares a factor
    with ``m``), which for prime ``m`` means ``a == 0 (mod m)``.
    """
    a %= m
    if a == 0:
        raise FieldError("division by zero in modular inverse")
    # Python 3.8+: pow with negative exponent performs the extended-gcd
    # inversion in C, which is considerably faster than a Python-level loop.
    try:
        return pow(a, -1, m)
    except ValueError as exc:  # pragma: no cover - non-prime modulus misuse
        raise FieldError(f"{a} is not invertible modulo {m}") from exc


def legendre_symbol(a: int, p: int) -> int:
    """Return the Legendre symbol (a/p) in {-1, 0, 1} for odd prime p."""
    a %= p
    if a == 0:
        return 0
    ls = pow(a, (p - 1) // 2, p)
    return -1 if ls == p - 1 else 1


def sqrt_mod(a: int, p: int) -> int:
    """Return a square root of ``a`` modulo the odd prime ``p``.

    Raises :class:`FieldError` when ``a`` is a quadratic non-residue.  Uses
    the p = 3 (mod 4) shortcut when available, else Tonelli-Shanks.
    """
    a %= p
    if a == 0:
        return 0
    if legendre_symbol(a, p) != 1:
        raise FieldError(f"{a} is not a quadratic residue modulo {p}")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)

    # Tonelli-Shanks for p = 1 (mod 4).
    q = p - 1
    s = 0
    while q % 2 == 0:
        q //= 2
        s += 1
    z = 2
    while legendre_symbol(z, p) != -1:
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    result = pow(a, (q + 1) // 2, p)
    while t != 1:
        t2 = t
        i = 0
        while t2 != 1:
            t2 = (t2 * t2) % p
            i += 1
            if i == m:  # pragma: no cover - guarded by residue check above
                raise FieldError("Tonelli-Shanks failed; modulus not prime?")
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = (b * b) % p
        t = (t * c) % p
        result = (result * b) % p
    return result


def bit_length_of(n: int) -> int:
    """Bit length of ``abs(n)`` (0 for n == 0); thin wrapper for symmetry."""
    return abs(n).bit_length()
