"""GLV/GLS endomorphism-accelerated scalar multiplication for BN curves.

BN curves have j-invariant 0, so G1 carries the efficient endomorphism

    phi(x, y) = (beta * x, y),        beta^3 = 1 in Fp,

which acts on the prime-order subgroup as multiplication by a cube root of
unity lambda mod n.  A scalar k is lattice-reduced into (k1, k2) with
|k1|, |k2| ~ sqrt(n) and k = k1 + k2 * lambda (mod n), and k*P is evaluated
as the 2-way interleaved wNAF multi-scalar product k1*P + k2*phi(P) —
halving the doubling count of a plain ladder.

On the sextic twist, the Frobenius map expressed in twist coordinates
(psi = twist_frobenius, eigenvalue mu = p mod n on G2) satisfies the
cyclotomic relation psi^4 - psi^2 + 1 = 0, giving a 4-way GLS
decomposition with |k_i| ~ n^(1/4) where the lattice basis reduces well;
a 2-way (n, mu) Euclid basis is the fallback.  G2 decomposition is only
valid for points in the order-n subgroup, so callers must opt in
explicitly (see ``PairingContext.g2_mul(..., in_subgroup=True)``).

Everything here is value-identical to ``point * scalar`` for subgroup
points: the decompositions are verified at setup time against the curve
generators, and the MSM reuses the exact Jacobian formulas from
:mod:`repro.pairing.curve` so op counts stay deterministic.  Under the
``native`` backend the MSM column walk runs inside the compiled kernel
(:meth:`PairingKernel.g1_msm` / ``g2_msm``) with bit-identical results and
op-count identity versus this reference path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from fractions import Fraction
from math import isqrt
from typing import List, Optional, Sequence, Tuple

from repro.obs import runtime as _rt
from repro.obs.registry import get_registry
from repro.pairing.bn import BNCurve
from repro.pairing.curve import (
    CurvePoint,
    _field_one,
    _jacobian_add,
    _jacobian_double,
    _jacobian_to_affine,
    _wnaf_digits,
)
from repro.pairing.fields import Fp, Fp2
from repro.pairing.numbers import sqrt_mod

#: scalars below this stay on the generic path: the decomposition and the
#: second odd-multiples table are not worth it for short scalars (and the
#: Babai step degenerates to (k, 0) there anyway).
GLV_MIN_BITS = 32

#: wNAF window of the interleaved MSM; matches ``_wnaf_scalar_mult`` so the
#: single-point MSM degenerates to exactly the existing wNAF ladder.
MSM_WINDOW = 5

#: largest point count a single kernel MSM call accepts (mirrors the C side).
MSM_KERNEL_MAX_POINTS = 1024


@dataclass(frozen=True)
class GLVParams:
    """Verified endomorphism/lattice data for one (p, n) BN curve."""

    p: int
    n: int
    # -- G1: phi(x, y) = (beta*x, y) acts as *lambda on the subgroup --
    beta: int
    lam: int
    v1: Tuple[int, int]  # short basis of {(a, b) : a + b*lam = 0 mod n}
    v2: Tuple[int, int]
    det: int
    # -- G2: psi = twist_frobenius acts as *mu on the order-n subgroup --
    mu: Optional[int]
    v1_g2: Optional[Tuple[int, int]]
    v2_g2: Optional[Tuple[int, int]]
    det_g2: Optional[int]
    # 4-way GLS basis (rows of a reduced lattice basis) + first row of the
    # inverse matrix as exact fractions, when the reduction is good enough.
    basis4: Optional[Tuple[Tuple[int, int, int, int], ...]]
    binv_row0: Optional[Tuple[Tuple[int, int], ...]]  # (numerator, denominator)


_PARAMS_CACHE: dict = {}
_PARAMS_LOCK = threading.Lock()


class _suppress_tally:
    """Temporarily disable the fp-op tally (setup-time arithmetic only)."""

    def __enter__(self):
        self._saved = _rt.tally
        _rt.tally = None
        return self

    def __exit__(self, exc_type, exc, tb):
        _rt.tally = self._saved


def _nearest(num: int, den: int) -> int:
    """round(num / den) with exact integer arithmetic (half rounds up)."""
    if den < 0:
        num, den = -num, -den
    return (2 * num + den) // (2 * den)


def _euclid_basis(n: int, lam: int):
    """Two short independent vectors (a, b) with a + b*lam = 0 (mod n).

    The classic GLV construction: run the extended Euclid algorithm on
    (n, lam) and stop at the first remainder below sqrt(n); consecutive
    remainder/cofactor pairs give lattice vectors of norm ~ sqrt(n)
    (Gallant-Lambert-Vanstone, via GECC Alg. 3.74).
    """
    r0, t0 = n, 0
    r1, t1 = lam % n, 1
    stop = isqrt(n)
    while r1 > stop:
        q = r0 // r1
        r0, r1 = r1, r0 - q * r1
        t0, t1 = t1, t0 - q * t1
    v1 = (r1, -t1)
    q = r0 // r1
    r2, t2 = r0 - q * r1, t0 - q * t1
    cand_a = (r0, -t0)
    cand_b = (r2, -t2)
    v2 = min(cand_a, cand_b, key=lambda v: v[0] * v[0] + v[1] * v[1])
    det = v1[0] * v2[1] - v2[0] * v1[1]
    for a, b in (v1, v2):
        if (a + b * lam) % n != 0:  # pragma: no cover - construction invariant
            raise ArithmeticError("GLV basis vector not in the lattice")
    if det == 0:  # pragma: no cover - independent by construction
        raise ArithmeticError("degenerate GLV basis")
    return v1, v2, det


def _decompose_dim2(k: int, v1, v2, det: int) -> Tuple[int, int]:
    """Babai round-off of (k, 0) against the 2D basis: k = k1 + k2*lam mod n."""
    a1, b1 = v1
    a2, b2 = v2
    c1 = _nearest(b2 * k, det)
    c2 = _nearest(-b1 * k, det)
    k1 = k - c1 * a1 - c2 * a2
    k2 = -(c1 * b1 + c2 * b2)
    return k1, k2


def decompose2(params: GLVParams, k: int) -> Tuple[int, int]:
    """Split k into (k1, k2) with k = k1 + k2*lambda (mod n), |ki| ~ sqrt(n)."""
    return _decompose_dim2(k, params.v1, params.v2, params.det)


def decompose2_g2(params: GLVParams, k: int) -> Tuple[int, int]:
    """Split k against the G2 eigenvalue mu: k = k1 + k2*mu (mod n)."""
    return _decompose_dim2(k, params.v1_g2, params.v2_g2, params.det_g2)


def decompose4(params: GLVParams, k: int) -> Optional[Tuple[int, int, int, int]]:
    """4-way GLS split: k = sum k_i * mu^i (mod n) with |k_i| ~ n^(1/4).

    Returns None when the 4D basis was rejected at setup (callers fall back
    to :func:`decompose2_g2`).  The recombination identity is re-checked on
    every call — it is a few modular integer ops — so a bad split can never
    silently corrupt a scalar multiplication.
    """
    if params.basis4 is None or params.binv_row0 is None:
        return None
    target = (k, 0, 0, 0)
    coeffs = [_nearest(k * num, den) for num, den in params.binv_row0]
    kvec = list(target)
    for c, row in zip(coeffs, params.basis4):
        for i in range(4):
            kvec[i] -= c * row[i]
    n, mu = params.n, params.mu
    acc, power = 0, 1
    for ki in kvec:
        acc = (acc + ki * power) % n
        power = (power * mu) % n
    if acc != k % n:  # pragma: no cover - defensive; verified at setup
        return None
    return tuple(kvec)  # type: ignore[return-value]


# -- lattice reduction (setup-time only) --------------------------------------


def _lll(rows: List[List[int]], delta: Fraction = Fraction(3, 4)) -> List[List[int]]:
    """Textbook LLL over exact rationals; fine for tiny (4x4) bases."""
    basis = [list(map(int, row)) for row in rows]
    m = len(basis)

    def gram_schmidt():
        ortho: List[List[Fraction]] = []
        coeffs: List[List[Fraction]] = [[Fraction(0)] * m for _ in range(m)]
        for i in range(m):
            vec = [Fraction(x) for x in basis[i]]
            for j in range(i):
                denom = sum(x * x for x in ortho[j])
                mu_ij = (
                    Fraction(0)
                    if denom == 0
                    else sum(Fraction(basis[i][k]) * ortho[j][k] for k in range(len(vec))) / denom
                )
                coeffs[i][j] = mu_ij
                vec = [v - mu_ij * o for v, o in zip(vec, ortho[j])]
            ortho.append(vec)
        return ortho, coeffs

    ortho, mu = gram_schmidt()
    i = 1
    while i < m:
        for j in range(i - 1, -1, -1):
            if abs(mu[i][j]) > Fraction(1, 2):
                r = _nearest(mu[i][j].numerator, mu[i][j].denominator)
                basis[i] = [a - r * b for a, b in zip(basis[i], basis[j])]
                ortho, mu = gram_schmidt()
        norm_prev = sum(x * x for x in ortho[i - 1])
        norm_here = sum(x * x for x in ortho[i])
        if norm_here >= (delta - mu[i][i - 1] ** 2) * norm_prev:
            i += 1
        else:
            basis[i], basis[i - 1] = basis[i - 1], basis[i]
            ortho, mu = gram_schmidt()
            i = max(i - 1, 1)
    return basis


def _invert_rows(rows) -> Optional[List[List[Fraction]]]:
    """Exact inverse of a small integer matrix (None when singular)."""
    m = len(rows)
    aug = [
        [Fraction(rows[i][j]) for j in range(m)]
        + [Fraction(1 if i == j else 0) for j in range(m)]
        for i in range(m)
    ]
    for col in range(m):
        pivot = next((r for r in range(col, m) if aug[r][col] != 0), None)
        if pivot is None:
            return None
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv = 1 / aug[col][col]
        aug[col] = [x * inv for x in aug[col]]
        for r in range(m):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [x - factor * y for x, y in zip(aug[r], aug[col])]
    return [row[m:] for row in aug]


# -- parameter derivation -----------------------------------------------------


def _cube_roots_of_unity(modulus: int) -> List[int]:
    """The two primitive cube roots of unity mod a prime = 1 (mod 3)."""
    root = sqrt_mod((-3) % modulus, modulus)
    inv2 = pow(2, -1, modulus)
    out = []
    for sign in (1, -1):
        w = ((-1 + sign * root) * inv2) % modulus
        if (w * w + w + 1) % modulus == 0:
            out.append(w)
    return out


def _derive_params(curve: BNCurve) -> Optional[GLVParams]:
    p, n = curve.p, curve.n
    if p % 3 != 1 or n % 3 != 1:  # pragma: no cover - impossible for BN
        return None
    try:
        betas = _cube_roots_of_unity(p)
        lams = _cube_roots_of_unity(n)
    except Exception:  # pragma: no cover - sqrt of -3 exists for p=1 mod 3
        return None
    if not betas or not lams:  # pragma: no cover
        return None

    spec = curve.spec
    g1 = curve.g1
    match = None
    with _suppress_tally():
        for beta in betas:
            phi_g1 = curve.g1_curve.unsafe_point(
                spec.fp((int(g1.x.value) * beta) % p), g1.y
            )
            for lam in lams:
                if g1 * lam == phi_g1:
                    match = (beta, lam)
                    break
            if match:
                break
    if match is None:  # pragma: no cover - one pairing always matches
        return None
    beta, lam = match
    v1, v2, det = _euclid_basis(n, lam)

    # -- G2 / GLS: psi eigenvalue and lattices ------------------------------
    from repro.pairing.pairing import twist_frobenius

    mu = p % n
    g2_ok = (pow(mu, 4, n) - pow(mu, 2, n) + 1) % n == 0
    if g2_ok:
        with _suppress_tally():
            g2_ok = twist_frobenius(curve, curve.g2) == curve.g2 * mu
    v1_g2 = v2_g2 = det_g2 = basis4 = binv_row0 = None
    if g2_ok:
        v1_g2, v2_g2, det_g2 = _euclid_basis(n, mu)
        basis4, binv_row0 = _derive_basis4(n, mu)

    return GLVParams(
        p=p,
        n=n,
        beta=beta,
        lam=lam,
        v1=v1,
        v2=v2,
        det=det,
        mu=mu if g2_ok else None,
        v1_g2=v1_g2,
        v2_g2=v2_g2,
        det_g2=det_g2,
        basis4=basis4,
        binv_row0=binv_row0,
    )


def _derive_basis4(n: int, mu: int):
    """LLL-reduce the degree-4 GLS lattice; reject weak reductions."""
    rows = [
        [n, 0, 0, 0],
        [-mu, 1, 0, 0],
        [0, -mu, 1, 0],
        [0, 0, -mu, 1],
    ]
    reduced = _lll(rows)
    # Every row must stay in the lattice: sum_j row[j] * mu^j = 0 (mod n).
    for row in reduced:
        acc, power = 0, 1
        for entry in row:
            acc = (acc + entry * power) % n
            power = (power * mu) % n
        if acc != 0:  # pragma: no cover - LLL preserves the lattice
            return None, None
    # Entries should be ~ n^(1/4); reject anything that would not actually
    # shorten the scalars (then the 2-way split is strictly better).
    bound_bits = (n.bit_length() + 3) // 4 + 8
    if any(abs(e).bit_length() > bound_bits for row in reduced for e in row):
        return None, None
    inverse = _invert_rows(reduced)
    if inverse is None:  # pragma: no cover - basis rows are independent
        return None, None
    row0 = tuple(
        (inverse[0][j].numerator, inverse[0][j].denominator) for j in range(4)
    )
    return tuple(tuple(row) for row in reduced), row0


def glv_params(curve: BNCurve) -> Optional[GLVParams]:
    """Verified GLV/GLS parameters for ``curve`` (cached per (p, n))."""
    key = (curve.p, curve.n)
    params = _PARAMS_CACHE.get(key)
    if params is not None or key in _PARAMS_CACHE:
        return params
    with _PARAMS_LOCK:
        if key not in _PARAMS_CACHE:
            _PARAMS_CACHE[key] = _derive_params(curve)
    return _PARAMS_CACHE[key]


# -- interleaved multi-scalar multiplication ----------------------------------


def _build_odds_table(pt: CurvePoint):
    """Odd multiples P, 3P, ..., 15P in Jacobian form (as _wnaf_scalar_mult)."""
    base = (pt.x, pt.y, _field_one(pt.x))
    double_base = _jacobian_double(base)
    odds = [base]
    for _ in range((1 << (MSM_WINDOW - 2)) - 1):
        previous = odds[-1]
        if previous is None:
            odds.append(double_base)
        elif double_base is None:
            odds.append(previous)
        else:
            odds.append(_jacobian_add(previous, double_base))
    return odds


def _derive_table_g1(table, beta_fp):
    """The odds table of phi(P) from P's table: phi is X -> beta*X, even in
    Jacobian coordinates (x = X/Z^2 scales the same way).  One fp_mul per
    entry versus a full rebuild."""
    return [
        None if entry is None else (entry[0] * beta_fp, entry[1], entry[2])
        for entry in table
    ]


def _derive_table_g2(curve: BNCurve, table):
    """The odds table of psi(Q) from Q's table.

    psi(x, y) = (conj(x)*gamma2, conj(y)*gamma3) extends to Jacobian
    coordinates as (conj(X)*gamma2, conj(Y)*gamma3, conj(Z)): conjugation
    is a ring automorphism, so X/Z^2 maps to conj(X/Z^2) and the gamma
    factors land exactly as in the affine map.  Two fp2_mul per entry
    versus a full table rebuild.
    """
    gamma2, gamma3 = curve.frob_gamma2, curve.frob_gamma3
    return [
        None
        if entry is None
        else (
            entry[0].conjugate() * gamma2,
            entry[1].conjugate() * gamma3,
            entry[2].conjugate(),
        )
        for entry in table
    ]


def _msm_loop(tables, digit_lists, ndigits):
    """Shared-doubling interleaved wNAF column walk over Jacobian triples.

    Per point this is exactly the digit walk of ``_wnaf_scalar_mult`` —
    including the None (infinity) propagation for small-order points — but
    all points share one doubling chain, which is where the GLV saving
    comes from.
    """
    result = None  # Jacobian infinity
    for col in range(ndigits - 1, -1, -1):
        result = _jacobian_double(result)
        for i, digits in enumerate(digit_lists):
            if col >= len(digits):
                continue
            digit = digits[col]
            if not digit:
                continue
            entry = tables[i][(abs(digit) - 1) // 2]
            if entry is None:
                continue
            if digit < 0:
                entry = (entry[0], -entry[1], entry[2])
            result = entry if result is None else _jacobian_add(result, entry)
    return result


def _signed_wnaf_digits(k: int):
    """wNAF digits of a possibly-negative scalar (digitwise negation)."""
    if k < 0:
        return [-d for d in _wnaf_digits(-k, MSM_WINDOW)]
    return _wnaf_digits(k, MSM_WINDOW)


def _point_kernel(curve: BNCurve):
    backend = curve.spec.backend
    getter = getattr(backend, "point_kernel", None)
    if getter is None:
        return None
    return getter(curve)


def msm(
    curve: BNCurve,
    group_curve,
    pairs: Sequence[Tuple[CurvePoint, int]],
) -> CurvePoint:
    """sum_i k_i * P_i with one shared doubling chain (kernel when available).

    Scalars may be any integers (negatives flip the point, zeros and
    infinities drop out); the result is an ordinary affine point, identical
    to folding ``point * scalar`` sums by hand.
    """
    prepared = []
    for pt, k in pairs:
        if not isinstance(k, int):
            raise TypeError(f"MSM scalar must be int, got {type(k).__name__}")
        if k == 0 or pt.is_infinity():
            continue
        if k < 0:
            pt, k = -pt, -k
        prepared.append((pt, k))
    if not prepared:
        return group_curve.infinity()
    digit_lists = [_wnaf_digits(k, MSM_WINDOW) for _, k in prepared]
    ndigits = max(len(d) for d in digit_lists)
    jac = _msm_dispatch(
        curve, [pt for pt, _ in prepared], digit_lists, ndigits, endo=False
    )
    return _jacobian_to_affine(group_curve, jac)


def _msm_dispatch(curve: BNCurve, points, digit_lists, ndigits, *, endo: bool):
    """Run the MSM core in the compiled kernel when available, else here.

    ``endo=True`` means points[i] = endo^i(points[0]) (phi powers on G1,
    psi powers on G2): only the first odds table is built from scratch and
    the rest are derived by the endomorphism map, on both paths, so kernel
    and reference tally identical op counts.
    """
    kernel = _point_kernel(curve)
    if kernel is not None and len(points) <= MSM_KERNEL_MAX_POINTS:
        sample = points[0].x
        if isinstance(sample, Fp):
            supported, jac = kernel.g1_msm(points, digit_lists, ndigits, endo=endo)
        elif isinstance(sample, Fp2):
            supported, jac = kernel.g2_msm(points, digit_lists, ndigits, endo=endo)
        else:  # pragma: no cover - Fp12 embeddings never come through here
            supported = False
            jac = None
        if supported:
            return jac
    if endo:
        tables = [_build_odds_table(points[0])]
        g2 = isinstance(points[0].x, Fp2)
        params = glv_params(curve)
        for _ in range(1, len(points)):
            if g2:
                tables.append(_derive_table_g2(curve, tables[-1]))
            else:
                tables.append(
                    _derive_table_g1(tables[-1], curve.spec.fp(params.beta))
                )
    else:
        tables = [_build_odds_table(pt) for pt in points]
    return _msm_loop(tables, digit_lists, ndigits)


def glv_mul(curve: BNCurve, point: CurvePoint, scalar: int) -> CurvePoint:
    """k*P on G1 via the 2-way GLV split (P must lie in the order-n group).

    G1 has cofactor 1, so every on-curve point qualifies.  The scalar is
    reduced mod n (valid precisely because the point has order dividing n —
    callers needing unreduced semantics use ``point * scalar``).
    """
    params = glv_params(curve)
    k = scalar % curve.n
    if k == 0 or point.is_infinity():
        return point.curve.infinity()
    if params is None:
        return point * k
    tally = _rt.tally
    if tally is not None:
        tally.point_mul += 1
    k1, k2 = decompose2(params, k)
    return _endo_msm(curve, point, (k1, k2))


def glv_mul_g2(curve: BNCurve, point: CurvePoint, scalar: int) -> CurvePoint:
    """k*Q on G2 via the psi (GLS) split — Q MUST be in the order-n subgroup.

    Callers are responsible for the subgroup guarantee (trusted points such
    as Q_ID / D_ID / hash outputs); the context API enforces this with an
    explicit ``in_subgroup=True`` opt-in.
    """
    params = glv_params(curve)
    k = scalar % curve.n
    if k == 0 or point.is_infinity():
        return point.curve.infinity()
    if params is None or params.mu is None:
        return point * k
    tally = _rt.tally
    if tally is not None:
        tally.point_mul += 1
    split4 = decompose4(params, k)
    if split4 is None:
        split4 = decompose2_g2(params, k)
    return _endo_msm(curve, point, split4)


def _endo_msm(curve: BNCurve, point: CurvePoint, scalars) -> CurvePoint:
    """sum_i k_i * endo^i(P) with the endo tables derived, not rebuilt.

    Negative sub-scalars are handled by negating their wNAF digits (the
    digitwise-negation identity), so every derived table stays an exact
    endomorphism image of the first and the sharing trick applies to all
    sign patterns.  Trailing zero sub-scalars are trimmed — a derived table
    costs little, but a trimmed point costs nothing.
    """
    scalars = list(scalars)
    while scalars and scalars[-1] == 0:
        scalars.pop()
    if not scalars:
        return point.curve.infinity()
    digit_lists = [_signed_wnaf_digits(k) for k in scalars]
    ndigits = max(len(d) for d in digit_lists)
    points = [point] * len(scalars)  # only points[0] is read when endo=True
    jac = _msm_dispatch(curve, points, digit_lists, ndigits, endo=True)
    return _jacobian_to_affine(point.curve, jac)


def try_mul(
    curve: BNCurve, point: CurvePoint, scalar, *, g2: bool = False
) -> Optional[CurvePoint]:
    """GLV-route a context scalar multiplication when it is safe and worth it.

    Returns None (caller falls back to ``point * scalar``) unless the scalar
    is an int in (0, n) of at least GLV_MIN_BITS bits and the point's
    coordinate field matches the requested group.  The (0, n) bound means
    no reduction happens here, so unreduced-scalar call sites (order and
    membership checks) are untouched by construction.
    """
    if not isinstance(scalar, int):
        return None
    if scalar <= 0 or scalar >= curve.n or scalar.bit_length() < GLV_MIN_BITS:
        return None
    if point.is_infinity():
        return None
    params = glv_params(curve)
    if params is None:
        return None
    if g2:
        if params.mu is None or not isinstance(point.x, Fp2):
            return None
        result = glv_mul_g2(curve, point, scalar)
    else:
        if not isinstance(point.x, Fp):
            return None
        result = glv_mul(curve, point, scalar)
    get_registry().counter("glv.fast_mults").inc()
    return result
