"""Hash functions onto pairing groups and scalars.

The paper's scheme needs two random oracles:

* ``H1: {0,1}* -> G``   (identity hashing; here onto G2, see DESIGN.md 4.1)
* ``H2: {0,1}* x G1 x G1 -> Zp``  (message/commitment hashing to a scalar)

Both are built from SHA-256 with domain separation and counter-based
expansion.  G1/G2 point hashing uses try-and-increment: derive a candidate
x-coordinate, test the curve equation for a square, take the canonical
square root, and (for G2) clear the twist cofactor so the result lands in
the prime-order subgroup.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Union

from repro.errors import CurveError
from repro.pairing import glv as _glv
from repro.pairing.bn import BNCurve
from repro.pairing.curve import CurvePoint
from repro.pairing.numbers import legendre_symbol, sqrt_mod

Encodable = Union[bytes, str, int, CurvePoint]

_MAX_TRIES = 512


def _to_bytes(item: Encodable) -> bytes:
    """Canonical, unambiguous byte encoding for hash inputs."""
    if isinstance(item, bytes):
        return b"B" + len(item).to_bytes(4, "big") + item
    if isinstance(item, str):
        raw = item.encode("utf-8")
        return b"S" + len(raw).to_bytes(4, "big") + raw
    if isinstance(item, int):
        raw = item.to_bytes((item.bit_length() + 8) // 8 or 1, "big", signed=False)
        return b"I" + len(raw).to_bytes(4, "big") + raw
    if isinstance(item, CurvePoint):
        return b"P" + _point_bytes(item)
    raise TypeError(f"cannot hash {type(item).__name__}")


def _point_bytes(point: CurvePoint) -> bytes:
    if point.is_infinity():
        return b"\x00inf"
    coords = []
    for coord in (point.x, point.y):
        if hasattr(coord, "value"):  # Fp
            coords.append(coord.value)
        else:  # Fp2
            coords.extend((coord.c0, coord.c1))
    blob = b"".join(c.to_bytes((c.bit_length() + 8) // 8 or 1, "big") for c in coords)
    return len(blob).to_bytes(4, "big") + blob


def hash_bytes(domain: bytes, items: Iterable[Encodable]) -> bytes:
    """Domain-separated SHA-256 over framed items."""
    digest = hashlib.sha256()
    digest.update(b"repro:" + domain + b":")
    for item in items:
        digest.update(_to_bytes(item))
    return digest.digest()


def expand_to_int(domain: bytes, items: Iterable[Encodable], bits: int) -> int:
    """Counter-mode SHA-256 expansion to an integer of at least ``bits`` bits."""
    seed = hash_bytes(domain, list(items))
    blocks = []
    counter = 0
    while len(blocks) * 256 < bits + 128:
        blocks.append(
            hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
        )
        counter += 1
    return int.from_bytes(b"".join(blocks), "big")


def hash_to_scalar(curve: BNCurve, domain: bytes, *items: Encodable) -> int:
    """Hash arbitrary items to a non-zero scalar in Z_n (the group order).

    The 128 extra expansion bits make the modular bias negligible.
    """
    value = expand_to_int(domain, items, curve.n.bit_length()) % curve.n
    return value if value != 0 else 1


def hash_to_g1(curve: BNCurve, domain: bytes, *items: Encodable) -> CurvePoint:
    """Try-and-increment hash onto the prime-order group G1 = E(Fp)."""
    p = curve.p
    spec = curve.spec
    for counter in range(_MAX_TRIES):
        x = expand_to_int(domain + b"/g1", list(items) + [counter], p.bit_length()) % p
        rhs = (x * x * x + curve.b) % p
        if legendre_symbol(rhs, p) != 1:
            continue
        y = sqrt_mod(rhs, p)
        if y % 2 == 1:
            y = p - y  # canonical (even) root for determinism
        point = curve.g1_curve.unsafe_point(spec.fp(x), spec.fp(y))
        # BN G1 has cofactor 1, so any curve point is already in the subgroup.
        return point
    raise CurveError("hash_to_g1 failed to find a curve point")  # pragma: no cover


def hash_to_g2(curve: BNCurve, domain: bytes, *items: Encodable) -> CurvePoint:
    """Try-and-increment hash onto G2 (twist subgroup of order n).

    A candidate twist point is found first, then multiplied by the twist
    cofactor 2p - n to land in the prime-order subgroup.
    """
    p = curve.p
    spec = curve.spec
    for counter in range(_MAX_TRIES):
        raw = expand_to_int(
            domain + b"/g2", list(items) + [counter], 2 * p.bit_length() + 64
        )
        x = spec.fp2(raw % p, (raw >> p.bit_length()) % p)
        rhs = x * x * x + curve.g2_curve.b
        if not rhs.is_square():
            continue
        y = rhs.sqrt()
        if (y.c1, y.c0) > ((p - y.c1) % p, (p - y.c0) % p):
            y = -y  # canonical root
        # Cofactor clearing via the shared wNAF/kernel MSM: the candidate
        # is a full-twist-group point, so no endomorphism shortcuts — the
        # plain signed-window chain is exact and kernel-resident when the
        # backend ships one.
        candidate = curve.g2_curve.unsafe_point(x, y)
        point = _glv.msm(
            curve, curve.g2_curve, [(candidate, curve.twist_cofactor)]
        )
        if point.is_infinity():
            continue  # pragma: no cover - probability ~ 1/n
        return point
    raise CurveError("hash_to_g2 failed to find a curve point")  # pragma: no cover


def hash_identity(curve: BNCurve, identity: Union[str, bytes]) -> CurvePoint:
    """The paper's H1: map an identity string to Q_ID (in G2; DESIGN.md 4.1).

    Identities are canonicalised to text so that ``b"alice"`` and
    ``"alice"`` name the same principal.
    """
    if isinstance(identity, bytes):
        identity = identity.decode("utf-8")
    return hash_to_g2(curve, b"H1", identity)


def hash_h2(
    curve: BNCurve,
    message: Union[str, bytes],
    commitment: CurvePoint,
    public_key: CurvePoint,
) -> int:
    """The paper's H2(M, R, P_ID) -> Z_p scalar."""
    return hash_to_scalar(curve, b"H2", message, commitment, public_key)
