"""Word-wise Montgomery arithmetic over a prime, in pure Python.

This is the scalar engine of the ``montgomery`` field backend and the
specification the compiled kernel (:mod:`repro.pairing._kernel`) mirrors:
values live as *Montgomery-form* integers ``aR mod p`` with ``R = 2^(64k)``
one word past the prime, products are reduced with the word-wise REDC
(CIOS) recurrence, and conversion in/out goes through the precomputed
``R^2 mod p``.

Honesty note, measured on CPython: for a *single* multiplication the
interpreter-level REDC loop below is slower than the builtin ``a * b %
p`` (big-int multiply plus one divmod in C beats k^2 Python-level word
steps).  The representation pays off where multiplications chain without
leaving the domain - the exponentiation ladders here, and above all the
compiled kernel, where the same algorithm runs at native speed.  The
``montgomery`` backend therefore routes only ``powmod``/``invmod``
through this module and is shipped as the always-available, dependency-
free specification of the native representation, not as a speed claim.
"""

from __future__ import annotations

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1


class MontgomeryDomain:
    """Montgomery representation of GF(p) for an odd prime ``p``."""

    __slots__ = ("p", "nwords", "r_bits", "np_", "r2", "one")

    def __init__(self, p: int, *, nwords: int | None = None):
        if p < 3 or p % 2 == 0:
            raise ValueError("Montgomery domain requires an odd modulus >= 3")
        self.p = p
        min_words = (p.bit_length() + WORD_BITS - 1) // WORD_BITS
        if nwords is None:
            nwords = min_words
        elif nwords < min_words:
            raise ValueError("nwords too small for modulus")
        self.nwords = nwords
        self.r_bits = self.nwords * WORD_BITS
        # np_ = -p^-1 mod 2^64 via Newton iteration (5 steps double the
        # correct low bits from 1 to 64+).
        inv = 1
        for _ in range(6):
            inv = (inv * (2 - p * inv)) & WORD_MASK
        self.np_ = (-inv) & WORD_MASK
        r = 1 << self.r_bits
        self.r2 = (r * r) % p
        self.one = r % p  # 1 in Montgomery form

    # -- core reduction ----------------------------------------------------
    def redc(self, t: int) -> int:
        """Word-wise REDC: t * R^-1 mod p for 0 <= t < p * R."""
        p, np_ = self.p, self.np_
        for _ in range(self.nwords):
            m = ((t & WORD_MASK) * np_) & WORD_MASK
            t = (t + m * p) >> WORD_BITS
        if t >= p:
            t -= p
        return t

    def mul(self, a_mont: int, b_mont: int) -> int:
        """Montgomery product: (aR)(bR)R^-1 = abR mod p."""
        return self.redc(a_mont * b_mont)

    # -- conversions -------------------------------------------------------
    def to_mont(self, a: int) -> int:
        """Canonical residue -> Montgomery form (one REDC against R^2)."""
        return self.redc((a % self.p) * self.r2)

    def from_mont(self, a_mont: int) -> int:
        """Montgomery form -> canonical residue (REDC against 1)."""
        return self.redc(a_mont)

    # -- ladders -----------------------------------------------------------
    def powmod(self, base: int, exponent: int, *, _unused=None) -> int:
        """``base ** exponent mod p`` via a Montgomery square-and-multiply."""
        if exponent < 0:
            raise ValueError("negative exponent; invert first")
        if exponent == 0:
            return 1 % self.p
        acc = self.one
        b = self.to_mont(base)
        for bit in bin(exponent)[2:]:
            acc = self.mul(acc, acc)
            if bit == "1":
                acc = self.mul(acc, b)
        return self.from_mont(acc)

    def invmod(self, value: int) -> int:
        """Fermat inverse a^(p-2) mod p (p prime; raises on zero)."""
        value %= self.p
        if value == 0:
            raise ZeroDivisionError("inversion of zero")
        return self.powmod(value, self.p - 2)


_DOMAINS: dict = {}


def domain(p: int) -> MontgomeryDomain:
    """Memoised :class:`MontgomeryDomain` for ``p``."""
    dom = _DOMAINS.get(p)
    if dom is None:
        dom = _DOMAINS[p] = MontgomeryDomain(p)
    return dom
