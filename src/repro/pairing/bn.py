"""Barreto-Naehrig (BN) pairing-friendly curves.

A BN curve is parameterised by an integer ``t``:

* base field prime   p(t) = 36t^4 + 36t^3 + 24t^2 + 6t + 1
* group order        n(t) = 36t^4 + 36t^3 + 18t^2 + 6t + 1
* Frobenius trace    tr(t) = 6t^2 + 1
* optimal-ate loop   6t + 2

G1 = E(Fp) with E: y^2 = x^3 + b (prime order n, cofactor 1).
G2 = the n-torsion subgroup of the D-type sextic twist E': y^2 = x^3 + b/xi
over Fp2, where xi = xi_a + i is a non-square non-cube in Fp2.  The twist
group order is n * h2 with cofactor h2 = 2p - n.

:func:`bn_curve` derives everything from ``t`` (searching for b, xi and
generators), verifying each choice.  :data:`BN254` is the standard
alt_bn128 curve (t = 4965661367192848881); :func:`toy_curve` generates small
curves (e.g. ~64-bit p) that exercise exactly the same code paths at test
speed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Optional

from repro.errors import CurveError, ParameterError
from repro.pairing.curve import CurvePoint, EllipticCurve
from repro.pairing.fields import FieldSpec, Fp, Fp2
from repro.pairing.numbers import is_probable_prime, legendre_symbol, sqrt_mod

# The alt_bn128 / BN254 parameter, as used by Ethereum and py_ecc.
BN254_T = 4965661367192848881


@dataclass(frozen=True)
class BNCurve:
    """A fully-derived BN curve: fields, curves, generators, pairing data."""

    t: int
    p: int
    n: int
    trace: int
    b: int
    spec: FieldSpec
    g1_curve: EllipticCurve
    g2_curve: EllipticCurve
    g1: CurvePoint
    g2: CurvePoint
    twist_cofactor: int
    ate_loop_count: int
    final_exp_power: int
    # Hard part of the final exponentiation, (p^4 - p^2 + 1) // n, cached
    # here so final_exponentiation never recomputes it per call.
    final_exp_hard: int = 0
    # Frobenius constants on the twist: gamma2 = xi^((p-1)/3),
    # gamma3 = xi^((p-1)/2), both in Fp2.
    frob_gamma2: Fp2 = field(repr=False, default=None)  # type: ignore[assignment]
    frob_gamma3: Fp2 = field(repr=False, default=None)  # type: ignore[assignment]
    name: str = "bn"

    @property
    def xi_a(self) -> int:
        return self.spec.xi_a

    def random_scalar(self, rng: random.Random) -> int:
        """A uniform non-zero scalar modulo the group order."""
        return rng.randrange(1, self.n)

    def g1_point(self, x: int, y: int) -> CurvePoint:
        """Construct and validate a G1 point from integer coordinates."""
        return self.g1_curve.point(self.spec.fp(x), self.spec.fp(y))

    def g2_point(self, x0: int, x1: int, y0: int, y1: int) -> CurvePoint:
        """Construct and validate a G2 point from Fp2 coefficient pairs."""
        return self.g2_curve.point(self.spec.fp2(x0, x1), self.spec.fp2(y0, y1))

    def _order_mul(self, group_curve, point: CurvePoint) -> CurvePoint:
        """n * point for membership checks, via the shared wNAF/kernel MSM.

        No GLV decomposition (the scalar is n itself, out of (0, n)) — this
        is the plain signed-window chain, so it is exact for arbitrary
        on-curve points, including cofactor components; the compiled point
        kernel executes the identical chain natively when available.
        """
        from repro.pairing import glv as _glv  # lazy: glv imports this module

        return _glv.msm(self, group_curve, [(point, self.n)])

    def in_g1(self, point: CurvePoint) -> bool:
        """Subgroup membership check for G1 (full order-n check)."""
        return (
            self.g1_curve.contains(point)
            and self._order_mul(self.g1_curve, point).is_infinity()
        )

    def in_g2(self, point: CurvePoint) -> bool:
        """Subgroup membership check for G2 (full order-n check)."""
        return (
            self.g2_curve.contains(point)
            and self._order_mul(self.g2_curve, point).is_infinity()
        )

    def with_backend(self, backend=None) -> "BNCurve":
        """This curve rebound to a field backend (no-op if already on it).

        Rebuilds the :class:`FieldSpec` and every cached field element
        (curve coefficients, generators, twist Frobenius constants) on the
        resolved backend; the derived integer parameters are reused as-is,
        so no curve search or primality checking reruns.
        """
        from repro.pairing import backends as _backends

        resolved = _backends.resolve_backend(backend)
        if resolved is self.spec.backend:
            return self
        spec = FieldSpec(self.p, xi_a=self.spec.xi_a, backend=resolved)
        g1_curve = EllipticCurve(
            spec.fp(int(self.g1_curve.b.value)),
            order=self.n,
            name=self.g1_curve.name,
        )
        b2 = self.g2_curve.b
        g2_curve = EllipticCurve(
            spec.fp2(int(b2.c0), int(b2.c1)),
            order=self.n,
            name=self.g2_curve.name,
        )
        g1 = g1_curve.unsafe_point(
            spec.fp(int(self.g1.x.value)), spec.fp(int(self.g1.y.value))
        )
        g2 = g2_curve.unsafe_point(
            spec.fp2(int(self.g2.x.c0), int(self.g2.x.c1)),
            spec.fp2(int(self.g2.y.c0), int(self.g2.y.c1)),
        )
        return replace(
            self,
            spec=spec,
            g1_curve=g1_curve,
            g2_curve=g2_curve,
            g1=g1,
            g2=g2,
            frob_gamma2=spec.fp2(
                int(self.frob_gamma2.c0), int(self.frob_gamma2.c1)
            ),
            frob_gamma3=spec.fp2(
                int(self.frob_gamma3.c0), int(self.frob_gamma3.c1)
            ),
        )


def bn_parameters(t: int):
    """Return (p, n, trace) for BN parameter t; raise if non-prime."""
    p = 36 * t**4 + 36 * t**3 + 24 * t**2 + 6 * t + 1
    n = 36 * t**4 + 36 * t**3 + 18 * t**2 + 6 * t + 1
    trace = 6 * t**2 + 1
    if not is_probable_prime(p):
        raise ParameterError(f"BN p(t) is not prime for t={t}")
    if not is_probable_prime(n):
        raise ParameterError(f"BN n(t) is not prime for t={t}")
    if p % 4 != 3:
        raise ParameterError(f"BN p(t) != 3 (mod 4) for t={t}; tower needs i^2=-1")
    return p, n, trace


def _find_b_and_g1(spec: FieldSpec, n: int):
    """Smallest b with E: y^2 = x^3 + b of order n, plus a generator."""
    p = spec.p
    for b in range(1, 10_000):
        curve = EllipticCurve(spec.fp(b), order=n, name=f"E(Fp)+{b}")
        for x in range(1, 1_000):
            rhs = (x * x * x + b) % p
            if legendre_symbol(rhs, p) != 1:
                continue
            y = sqrt_mod(rhs, p)
            point = curve.unsafe_point(spec.fp(x), spec.fp(y))
            if not point.is_on_curve():  # pragma: no cover - defensive
                continue
            if (point * n).is_infinity():
                return b, curve, point
            break  # wrong group order: this b is not the BN curve
    raise CurveError("no suitable b found for BN curve")  # pragma: no cover


def _xi_is_non_square_non_cube(spec: FieldSpec, xi: Fp2) -> bool:
    p = spec.p
    order = p * p - 1
    if (xi ** (order // 2)) == 1:
        return False
    if order % 3 == 0 and (xi ** (order // 3)) == 1:
        return False
    return True


def _find_twist(spec: FieldSpec, b: int, n: int, p: int):
    """Find xi = a + i giving the D-type twist of order n*(2p-n), plus G2."""
    h2 = 2 * p - n
    rng = random.Random(0x5EED)
    for a in range(1, 64):
        candidate_spec = FieldSpec(p, xi_a=a, backend=spec.backend)
        xi = candidate_spec.fp2(a, 1)
        if not _xi_is_non_square_non_cube(candidate_spec, xi):
            continue
        b2 = candidate_spec.fp2(b, 0) / xi
        twist = EllipticCurve(b2, order=n, name=f"E'(Fp2) xi={a}+i")
        g2 = _g2_generator(candidate_spec, twist, b2, n, h2, rng)
        if g2 is not None:
            return candidate_spec, twist, g2
    raise CurveError("no suitable twist found")  # pragma: no cover


def _g2_generator(
    spec: FieldSpec,
    twist: EllipticCurve,
    b2: Fp2,
    n: int,
    h2: int,
    rng: random.Random,
) -> Optional[CurvePoint]:
    """Try to find an order-n point on the twist via cofactor clearing."""
    for _ in range(24):
        x = spec.fp2(rng.randrange(spec.p), rng.randrange(spec.p))
        rhs = x * x * x + b2
        if not rhs.is_square():
            continue
        y = rhs.sqrt()
        point = twist.unsafe_point(x, y)
        cleared = point * h2
        if cleared.is_infinity():
            continue
        if (cleared * n).is_infinity():
            return cleared
        return None  # wrong twist class: order does not divide n*h2
    return None  # pragma: no cover - extremely unlikely with 24 draws


def derive_bn_curve(t: int, name: str = "", *, backend=None) -> BNCurve:
    """Derive a complete BN curve (fields, twist, generators) from ``t``."""
    if t <= 0:
        raise ParameterError("BN parameter t must be positive here (loop 6t+2)")
    from repro.pairing import backends as _backends

    resolved = _backends.resolve_backend(backend)
    p, n, trace = bn_parameters(t)
    # temporary spec just for the G1 search
    base_spec = FieldSpec(p, xi_a=1, backend=resolved)
    b, _, _ = _find_b_and_g1(base_spec, n)
    spec, twist_curve, g2 = _find_twist(base_spec, b, n, p)
    # Re-derive the G1 curve/generator on the final spec (correct xi_a).
    b_final, g1_curve, g1 = _find_b_and_g1(spec, n)
    assert b_final == b
    gamma2 = spec.fp2(spec.xi_a, 1) ** ((p - 1) // 3)
    gamma3 = spec.fp2(spec.xi_a, 1) ** ((p - 1) // 2)
    return BNCurve(
        t=t,
        p=p,
        n=n,
        trace=trace,
        b=b,
        spec=spec,
        g1_curve=g1_curve,
        g2_curve=twist_curve,
        g1=g1,
        g2=g2,
        twist_cofactor=2 * p - n,
        ate_loop_count=6 * t + 2,
        final_exp_power=(p**12 - 1) // n,
        final_exp_hard=(p**4 - p**2 + 1) // n,
        frob_gamma2=gamma2,
        frob_gamma3=gamma3,
        name=name or f"bn-t{t}",
    )


def bn254(backend=None) -> BNCurve:
    """The standard 254-bit BN curve (alt_bn128 parameters, b = 3, xi = 9+i).

    Constructed from the published constants rather than searched, then
    checked; this is the curve Ethereum's precompiles and py_ecc use.
    ``backend`` selects the field backend (name, instance, or ``None`` for
    the env/default precedence); curves are cached per backend.
    """
    from repro.pairing import backends as _backends

    return _bn254_cached(_backends.resolve_backend(backend).name)


@lru_cache(maxsize=None)
def _bn254_cached(backend_name: str) -> BNCurve:
    t = BN254_T
    p, n, trace = bn_parameters(t)
    spec = FieldSpec(p, xi_a=9, backend=backend_name)
    xi = spec.fp2(9, 1)
    if not _xi_is_non_square_non_cube(spec, xi):  # pragma: no cover
        raise CurveError("xi = 9+i unexpectedly invalid for BN254")
    b = 3
    g1_curve = EllipticCurve(spec.fp(b), order=n, name="alt_bn128 G1")
    g1 = g1_curve.point(spec.fp(1), spec.fp(2))
    b2 = spec.fp2(b, 0) / xi
    g2_curve = EllipticCurve(b2, order=n, name="alt_bn128 G2")
    g2 = g2_curve.point(
        spec.fp2(
            10857046999023057135944570762232829481370756359578518086990519993285655852781,
            11559732032986387107991004021392285783925812861821192530917403151452391805634,
        ),
        spec.fp2(
            8495653923123431417604973247489272438418190587263600148770280649306958101930,
            4082367875863433681332203403145435568316851327593401208105741076214120093531,
        ),
    )
    gamma2 = xi ** ((p - 1) // 3)
    gamma3 = xi ** ((p - 1) // 2)
    return BNCurve(
        t=t,
        p=p,
        n=n,
        trace=trace,
        b=b,
        spec=spec,
        g1_curve=g1_curve,
        g2_curve=g2_curve,
        g1=g1,
        g2=g2,
        twist_cofactor=2 * p - n,
        ate_loop_count=6 * t + 2,
        final_exp_power=(p**12 - 1) // n,
        final_exp_hard=(p**4 - p**2 + 1) // n,
        frob_gamma2=gamma2,
        frob_gamma3=gamma3,
        name="bn254",
    )


def _search_t(start: int) -> int:
    """Smallest t >= start with p(t), n(t) prime and p = 3 (mod 4)."""
    t = start
    while True:
        try:
            bn_parameters(t)
            return t
        except ParameterError:
            t += 1


def toy_curve(bits: int = 64, backend=None) -> BNCurve:
    """A small BN curve whose prime p has roughly ``bits`` bits.

    p(t) ~ 36 t^4, so t ~ (2^bits / 36)^(1/4).  The same derivation code as
    production curves; pairings on the result take milliseconds, which keeps
    the test suite fast while exercising every code path.  Cached per
    (bits, resolved backend).
    """
    from repro.pairing import backends as _backends

    return _toy_curve_cached(bits, _backends.resolve_backend(backend).name)


@lru_cache(maxsize=None)
def _toy_curve_cached(bits: int, backend_name: str) -> BNCurve:
    if bits < 24 or bits > 128:
        raise ParameterError("toy curves supported for 24..128-bit primes")
    t_start = max(2, round((2 ** bits / 36) ** 0.25))
    t = _search_t(t_start)
    return derive_bn_curve(t, name=f"bn-toy{bits}", backend=backend_name)


def default_test_curve(backend=None) -> BNCurve:
    """The curve used throughout the test suite (fast, ~64-bit prime)."""
    return toy_curve(64, backend=backend)
