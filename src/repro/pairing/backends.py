"""Registry of pluggable field-arithmetic backends.

Mirrors :mod:`repro.schemes.registry`: backends are looked up by name,
constructed lazily, and validated before use.  A backend decides how the
scalar layer of the tower computes — modular exponentiation, inversion,
the integer type carried by :class:`~repro.pairing.fields.FieldSpec` —
and may provide a compiled *pairing kernel* that executes whole Miller
loops and final exponentiations natively.  Whatever the backend, values
and obs counters are bit-identical to the ``reference`` tower; backends
trade wall time, never semantics.

Selection precedence (highest first):

1. explicit object/name passed to ``PairingContext(backend=...)``,
   ``create_scheme(..., backend=...)``, CLI ``--backend``;
2. the ``REPRO_FIELD_BACKEND`` environment variable;
3. the ``reference`` default.

Registered names:

``reference``
    The pure-Python tower exactly as shipped; always available.
``native``
    Best native engine present: ``gmpy2`` big-ints if importable, plus
    the cffi-compiled Montgomery pairing kernel when a C toolchain is
    available; degrades to pure Python (with a recorded flavor) so it is
    always *selectable*, merely not always *fast*.
``montgomery``
    Pure-Python word-wise REDC ladders (:mod:`repro.pairing._mont`) for
    ``powmod``/``invmod``; the dependency-free executable specification
    of the representation the kernel uses, not a speed claim.
``gmpy2``
    Strict gmpy2 backend; unavailable (with reason) when gmpy2 is not
    installed.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple, Union

from repro.pairing.fields import FieldBackend, inverse_mod

ENV_VAR = "REPRO_FIELD_BACKEND"
DEFAULT_BACKEND = "reference"


class BackendError(ValueError):
    """Unknown or unavailable field backend."""


# ---------------------------------------------------------------------------
# implementations
# ---------------------------------------------------------------------------


class ReferenceBackend(FieldBackend):
    """The pure-Python tower; the value oracle every other backend matches."""

    name = "reference"


class MontgomeryBackend(FieldBackend):
    """Pure-Python Montgomery ladders for the scalar hot paths.

    Routes ``powmod``/``invmod`` through :class:`MontgomeryDomain` so the
    ``final_exp_hard`` chains run square-and-multiply entirely inside the
    Montgomery domain.  Single multiplies stay on builtin big-ints (see
    the honesty note in :mod:`repro.pairing._mont`).
    """

    name = "montgomery"

    def availability(self) -> Tuple[bool, str]:
        """Always available; pure Python, no dependencies."""
        return True, "always available (pure-Python REDC)"

    def powmod(self, base, exponent, modulus):
        """Square-and-multiply inside the Montgomery domain of ``modulus``."""
        if exponent < 0:
            from repro.pairing import _mont

            dom = _mont.domain(int(modulus))
            return dom.powmod(dom.invmod(int(base)), -exponent)
        from repro.pairing import _mont

        return _mont.domain(int(modulus)).powmod(int(base), int(exponent))

    def invmod(self, value, modulus):
        """Fermat inverse via the Montgomery ladder (modulus must be prime)."""
        from repro.pairing import _mont

        return _mont.domain(int(modulus)).invmod(int(value))


class NativeBackend(FieldBackend):
    """Fastest engine available in this interpreter/toolchain.

    ``flavor`` records what was actually found, in preference order:
    ``gmpy2`` (big-int layer) layered with ``cffi-kernel`` (whole-stage
    pairing kernel) when each is present; ``fallback`` when neither is.
    The backend is always selectable so ``--backend native`` is safe in
    any environment; :meth:`describe` tells the truth about speed.
    """

    name = "native"

    def __init__(self) -> None:
        try:
            import gmpy2  # noqa: F401

            self._gmpy2 = gmpy2
        except ImportError:
            self._gmpy2 = None
        self._kernels: Dict[tuple, object] = {}
        self._kernel_state: Optional[Tuple[bool, str]] = None

    @property
    def flavor(self) -> str:
        parts = []
        if self._gmpy2 is not None:
            parts.append("gmpy2")
        if self._kernel_available()[0]:
            parts.append("cffi-kernel")
        return "+".join(parts) if parts else "fallback"

    def _kernel_available(self) -> Tuple[bool, str]:
        if self._kernel_state is None:
            from repro.pairing import _kernel

            self._kernel_state = _kernel.kernel_availability()
        return self._kernel_state

    def availability(self) -> Tuple[bool, str]:
        """Always selectable; the reason string reports the engine found."""
        ok, reason = self._kernel_available()
        if self._gmpy2 is not None and ok:
            return True, "gmpy2 big-ints + compiled pairing kernel"
        if ok:
            return True, "compiled pairing kernel (gmpy2 not installed)"
        if self._gmpy2 is not None:
            return True, f"gmpy2 big-ints (kernel unavailable: {reason})"
        return True, f"pure-Python fallback (gmpy2 absent; kernel: {reason})"

    def wrap(self, value: int):
        """Lift ``value`` to ``gmpy2.mpz`` when the library is present."""
        if self._gmpy2 is not None:
            return self._gmpy2.mpz(value)
        return value

    def powmod(self, base, exponent, modulus):
        """``gmpy2.powmod`` when available, builtin ``pow`` otherwise."""
        if self._gmpy2 is not None:
            return int(self._gmpy2.powmod(base, exponent, modulus))
        return pow(base, exponent, modulus)

    def invmod(self, value, modulus):
        """``gmpy2.invert`` when available, extended Euclid otherwise."""
        if self._gmpy2 is not None:
            try:
                return int(self._gmpy2.invert(value, modulus))
            except ZeroDivisionError:
                raise ZeroDivisionError("inversion of zero")
        return inverse_mod(value, modulus)

    def pairing_kernel(self, curve):
        """Memoised compiled kernel for ``curve`` (None when unbuildable)."""
        key = (int(curve.spec.p), int(curve.spec.xi_a),
               curve.ate_loop_count, curve.t)
        if key in self._kernels:
            return self._kernels[key]
        if not self._kernel_available()[0]:
            kernel = None
        else:
            from repro.pairing._kernel import PairingKernel

            kernel = PairingKernel.for_curve(curve)
        self._kernels[key] = kernel
        return kernel

    def point_kernel(self, curve):
        """The compiled kernel doubles as the point-arithmetic engine."""
        return self.pairing_kernel(curve)


class Gmpy2Backend(NativeBackend):
    """Strict gmpy2 backend: refuses to run without the real library."""

    name = "gmpy2"

    def availability(self) -> Tuple[bool, str]:
        """Available only when the real gmpy2 library imports."""
        if self._gmpy2 is None:
            return False, "gmpy2 is not installed"
        return True, "gmpy2 big-ints"

    def pairing_kernel(self, curve):
        """Always None: scalar-layer-only backend, so benchmarks can
        isolate the gmpy2 contribution from the compiled kernel's."""
        return None


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_FACTORIES: Dict[str, Callable[[], FieldBackend]] = {
    "reference": ReferenceBackend,
    "native": NativeBackend,
    "montgomery": MontgomeryBackend,
    "gmpy2": Gmpy2Backend,
}
_INSTANCES: Dict[str, FieldBackend] = {}


def register_backend(name: str, factory: Callable[[], FieldBackend]) -> None:
    """Register a backend factory under ``name`` (overwrites allowed)."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, default first."""
    names = sorted(_FACTORIES)
    names.remove(DEFAULT_BACKEND)
    return (DEFAULT_BACKEND, *names)


def get_backend(name: str) -> FieldBackend:
    """The (memoised) backend instance registered under ``name``.

    Raises :class:`BackendError` for unknown names; does *not* check
    availability — use :func:`resolve_backend` for selection semantics.
    """
    if name not in _FACTORIES:
        known = ", ".join(backend_names())
        raise BackendError(f"unknown field backend {name!r} (known: {known})")
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _INSTANCES[name] = _FACTORIES[name]()
        if not isinstance(instance, FieldBackend):
            raise BackendError(
                f"backend factory {name!r} returned {type(instance).__name__}, "
                "not a FieldBackend"
            )
    return instance


def available_backends() -> Dict[str, Tuple[bool, str]]:
    """Name -> (available, reason) for every registered backend."""
    return {name: get_backend(name).availability() for name in backend_names()}


def resolve_backend(
    backend: Union[FieldBackend, str, None] = None,
) -> FieldBackend:
    """Apply selection precedence and return a usable backend instance.

    ``backend`` may be an instance (returned as-is), a name, or ``None``
    — in which case the ``REPRO_FIELD_BACKEND`` environment variable is
    consulted before falling back to ``reference``.  Selecting an
    unavailable backend (e.g. ``gmpy2`` without the library) raises
    :class:`BackendError` with the recorded reason.
    """
    if isinstance(backend, FieldBackend):
        return backend
    if backend is None:
        backend = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    instance = get_backend(backend)
    ok, reason = instance.availability()
    if not ok:
        raise BackendError(f"field backend {backend!r} unavailable: {reason}")
    return instance
