"""Native-speed BN pairing kernel, compiled on demand with cffi.

The ``native`` field backend routes whole pairing *stages* - the
projective Miller loop and the final exponentiation - through a small C
library built at first use (API-mode cffi, a one-off ~1 s compile per
process).  Per-scalar native calls were measured slower than pure Python
(FFI overhead dominates a single 254-bit multiply), so the boundary sits
at the stage level: a pairing becomes two C calls instead of ~41k
interpreted base-field multiplications.

Design contract with the pure-Python tower:

* **Bit identity.**  The C code transliterates
  :func:`repro.pairing.pairing._miller_loop_projective`,
  :func:`~repro.pairing.pairing.final_exponentiation` and the field
  formulas of :mod:`repro.pairing.fields` operation for operation
  (internally in 4x64-limb Montgomery form, the representation specified
  by :mod:`repro.pairing._mont`), so raw Miller values and GT outputs are
  byte-identical to the reference backend - not merely equal as group
  elements.
* **Count identity.**  Every C helper bumps a counter block using the
  *same rules* as the Python tower methods (e.g. an Fp2 x Fp2 product is
  ``fp2_mul += 1, fp_mul += 3`` whatever the internal algorithm), and the
  dense Fp12 product replicates the zero-skip accounting via "touched"
  flags, so the obs tally is identical across backends.  Registry-level
  counters (``pairing.sparse_mults``, ``pairing.cyclo_squares``) are
  carried in dedicated slots and applied by the Python wrapper inside the
  same phase context the pure path uses.
* **Degenerate steps.**  The C Miller loop aborts with the partial
  counter block exactly where the Python projective loop would raise
  ``_DegenerateMillerStep``; the wrapper applies the partial counts and
  lets the caller fall back to the affine reference loop, matching pure
  semantics for hostile inputs.

The kernel is an optional accelerator: any import, compile or toolchain
failure degrades to ``None`` (pure Python) with a recorded reason, never
an exception.  Curves whose prime exceeds 254 bits or whose loop/NAF
constants exceed the fixed buffers simply get no kernel.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import sys
import tempfile
from typing import Optional, Tuple

from repro.obs import runtime as _rt
from repro.obs.registry import get_registry
from repro.pairing._mont import MontgomeryDomain

#: fixed limb count: every supported prime fits 4 x 64 bits
_NLIMBS = 4
_LIMB_BYTES = 32

#: counter-block slots, mirroring repro.obs.runtime.FieldOpTally names
_TALLY_SLOTS = (
    "fp_mul",
    "fp_inv",
    "fp2_mul",
    "fp2_sq",
    "fp2_inv",
    "fp12_mul",
    "fp12_sq",
    "fp12_sparse_mul",
    "fp12_cyclo_sq",
    "fp12_inv",
)
_REG_SPARSE = 10
_REG_CYCLO = 11
_NCOUNTS = 12

_MAX_LOOP_BITS = 192
_MAX_NAF = 200

_CDEF = """
typedef unsigned long long u64;
typedef struct { u64 c[4]; } fp;
typedef struct { fp c0, c1; } fp2;
typedef struct {
    fp p; u64 np; fp r2;
    fp c6m, c0m; int c6_nz, c0_nz;
    fp xi_a;
    fp two, four, eight, three;
    fp2 g1t[6], g2t[6], g3t[6];
    fp2 twg2, twg3;
    int n_loop_bits; unsigned char loop_bits[192];
    int n_t_naf; signed char t_naf[200];
} bnctx;
int kern_miller(const bnctx *ctx, const u64 *px, const u64 *py,
                const u64 *qx, const u64 *qy, u64 *out, u64 *counts);
void kern_final_exp(const bnctx *ctx, const u64 *f_in, const u64 *finv_in,
                    u64 *out, u64 *counts);
int kern_g1_msm(const bnctx *ctx, int m, const u64 *xs, const u64 *ys,
                const signed char *digits, int ndigits, int endo,
                const u64 *endo_beta, u64 *out, u64 *counts);
int kern_g2_msm(const bnctx *ctx, int m, const u64 *xs, const u64 *ys,
                const signed char *digits, int ndigits, int endo,
                u64 *out, u64 *counts);
void kern_mont_mul_test(const bnctx *ctx, const u64 *a, const u64 *b,
                        u64 *out);
"""

_CSOURCE = r"""
#include <stdlib.h>
#include <string.h>

typedef unsigned long long u64;
typedef __uint128_t u128;
typedef __int128_t i128;

typedef struct { u64 c[4]; } fp;
typedef struct { fp c0, c1; } fp2;
typedef struct {
    fp p; u64 np; fp r2;
    fp c6m, c0m; int c6_nz, c0_nz;
    fp xi_a;
    fp two, four, eight, three;
    fp2 g1t[6], g2t[6], g3t[6];
    fp2 twg2, twg3;
    int n_loop_bits; unsigned char loop_bits[192];
    int n_t_naf; signed char t_naf[200];
} bnctx;

/* counter slots (must match the Python wrapper) */
enum {
    FP_MUL, FP_INV, FP2_MUL, FP2_SQ, FP2_INV,
    FP12_MUL, FP12_SQ, FP12_SPARSE, FP12_CYCLO, FP12_INV,
    REG_SPARSE, REG_CYCLO, NCOUNTS
};

/* ---------------- base field (Montgomery form) ---------------- */

static int fp_is_zero(const fp *a) {
    return (a->c[0] | a->c[1] | a->c[2] | a->c[3]) == 0;
}

static int fp_geq(const u64 *a, const u64 *p) {
    for (int i = 3; i >= 0; i--) {
        if (a[i] > p[i]) return 1;
        if (a[i] < p[i]) return 0;
    }
    return 1;
}

static void fp_sub_p(u64 *r, const u64 *p) {
    i128 c = 0;
    for (int i = 0; i < 4; i++) {
        c += (i128)r[i] - p[i];
        r[i] = (u64)c;
        c >>= 64;
    }
}

static void fp_add(const bnctx *ctx, fp *o, const fp *a, const fp *b) {
    u64 r[4];
    u128 c = 0;
    for (int i = 0; i < 4; i++) {
        c += (u128)a->c[i] + b->c[i];
        r[i] = (u64)c;
        c >>= 64;
    }
    if (c || fp_geq(r, ctx->p.c)) fp_sub_p(r, ctx->p.c);
    memcpy(o->c, r, sizeof r);
}

static void fp_sub(const bnctx *ctx, fp *o, const fp *a, const fp *b) {
    u64 r[4];
    i128 c = 0;
    for (int i = 0; i < 4; i++) {
        c += (i128)a->c[i] - b->c[i];
        r[i] = (u64)c;
        c >>= 64;
    }
    if (c) { /* borrow: add p back */
        u128 k = 0;
        for (int i = 0; i < 4; i++) {
            k += (u128)r[i] + ctx->p.c[i];
            r[i] = (u64)k;
            k >>= 64;
        }
    }
    memcpy(o->c, r, sizeof r);
}

static void fp_neg(const bnctx *ctx, fp *o, const fp *a) {
    if (fp_is_zero(a)) { *o = *a; return; }
    u64 r[4];
    i128 c = 0;
    for (int i = 0; i < 4; i++) {
        c += (i128)ctx->p.c[i] - a->c[i];
        r[i] = (u64)c;
        c >>= 64;
    }
    memcpy(o->c, r, sizeof r);
}

/* CIOS Montgomery product: o = a * b * R^-1 mod p */
static void mont_mul(const bnctx *ctx, fp *o, const fp *a, const fp *b) {
    const u64 *P = ctx->p.c;
    const u64 NP = ctx->np;
    u64 t[6] = {0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 4; i++) {
        u128 c = 0;
        u64 bi = b->c[i];
        for (int j = 0; j < 4; j++) {
            c = (u128)a->c[j] * bi + t[j] + (u64)c;
            t[j] = (u64)c;
            c >>= 64;
        }
        c = (u128)t[4] + (u64)c;
        t[4] = (u64)c;
        t[5] = (u64)(c >> 64);
        u64 m = t[0] * NP;
        c = (u128)m * P[0] + t[0];
        c >>= 64;
        for (int j = 1; j < 4; j++) {
            c = (u128)m * P[j] + t[j] + (u64)c;
            t[j - 1] = (u64)c;
            c >>= 64;
        }
        c = (u128)t[4] + (u64)c;
        t[3] = (u64)c;
        t[4] = t[5] + (u64)(c >> 64);
    }
    u64 r[4] = {t[0], t[1], t[2], t[3]};
    if (t[4] || fp_geq(r, P)) fp_sub_p(r, P);
    memcpy(o->c, r, sizeof r);
}

static void fp_to_mont(const bnctx *ctx, fp *o, const fp *a) {
    mont_mul(ctx, o, a, &ctx->r2);
}

static void fp_from_mont(const bnctx *ctx, fp *o, const fp *a) {
    fp one1 = {{1, 0, 0, 0}};
    mont_mul(ctx, o, a, &one1);
}

/* ---------------- Fp2 (counting mirrors fields.Fp2) ---------------- */

static int fp2_is_zero(const fp2 *a) {
    return fp_is_zero(&a->c0) && fp_is_zero(&a->c1);
}

static void fp2_add(const bnctx *ctx, fp2 *o, const fp2 *a, const fp2 *b) {
    fp_add(ctx, &o->c0, &a->c0, &b->c0);
    fp_add(ctx, &o->c1, &a->c1, &b->c1);
}

static void fp2_sub(const bnctx *ctx, fp2 *o, const fp2 *a, const fp2 *b) {
    fp_sub(ctx, &o->c0, &a->c0, &b->c0);
    fp_sub(ctx, &o->c1, &a->c1, &b->c1);
}

static void fp2_neg(const bnctx *ctx, fp2 *o, const fp2 *a) {
    fp_neg(ctx, &o->c0, &a->c0);
    fp_neg(ctx, &o->c1, &a->c1);
}

static void fp2_conj(const bnctx *ctx, fp2 *o, const fp2 *a) {
    o->c0 = a->c0;
    fp_neg(ctx, &o->c1, &a->c1);
}

/* Fp2 x Fp2: tally rule fp2_mul+1, fp_mul+3 (Python uses Karatsuba) */
static void fp2_mul(const bnctx *ctx, u64 *k, fp2 *o,
                    const fp2 *a, const fp2 *b) {
    k[FP2_MUL] += 1;
    k[FP_MUL] += 3;
    fp m0, m1, sa, sb, m2, t;
    mont_mul(ctx, &m0, &a->c0, &b->c0);
    mont_mul(ctx, &m1, &a->c1, &b->c1);
    fp_add(ctx, &sa, &a->c0, &a->c1);
    fp_add(ctx, &sb, &b->c0, &b->c1);
    mont_mul(ctx, &m2, &sa, &sb);
    fp_sub(ctx, &t, &m0, &m1);
    fp_sub(ctx, &m2, &m2, &m0);
    fp_sub(ctx, &o->c1, &m2, &m1);
    o->c0 = t;
}

/* Fp2 x scalar (Python's Fp2.__mul__(int)): fp2_mul+1, fp_mul+2 */
static void fp2_mul_fp(const bnctx *ctx, u64 *k, fp2 *o,
                       const fp2 *a, const fp *s) {
    k[FP2_MUL] += 1;
    k[FP_MUL] += 2;
    fp t0, t1;
    mont_mul(ctx, &t0, &a->c0, s);
    mont_mul(ctx, &t1, &a->c1, s);
    o->c0 = t0;
    o->c1 = t1;
}

/* Fp2 squaring: fp2_sq+1, fp_mul+2 */
static void fp2_sq(const bnctx *ctx, u64 *k, fp2 *o, const fp2 *a) {
    k[FP2_SQ] += 1;
    k[FP_MUL] += 2;
    fp s, d, t0, t1;
    fp_add(ctx, &s, &a->c0, &a->c1);
    fp_sub(ctx, &d, &a->c0, &a->c1);
    mont_mul(ctx, &t0, &s, &d);
    fp_add(ctx, &t1, &a->c1, &a->c1);
    mont_mul(ctx, &t1, &t1, &a->c0);
    o->c0 = t0;
    o->c1 = t1;
}

/* multiply by xi = xi_a + i: fp_mul+2 */
static void fp2_mul_xi(const bnctx *ctx, u64 *k, fp2 *o, const fp2 *a) {
    k[FP_MUL] += 2;
    fp t0, t1, r0, r1;
    mont_mul(ctx, &t0, &a->c0, &ctx->xi_a);
    mont_mul(ctx, &t1, &a->c1, &ctx->xi_a);
    fp_sub(ctx, &r0, &t0, &a->c1);
    fp_add(ctx, &r1, &a->c0, &t1);
    o->c0 = r0;
    o->c1 = r1;
}

/* ---------------- Fp12 (counting mirrors fields.Fp12) ---------------- */

typedef struct { fp c[12]; } fp12;

static void fp12_conj(const bnctx *ctx, fp12 *o, const fp12 *a) {
    for (int i = 0; i < 12; i++) {
        if (i % 2) fp_neg(ctx, &o->c[i], &a->c[i]);
        else o->c[i] = a->c[i];
    }
}

/* dense product with the Python zero-skip accounting: mults counts every
 * nonzero a_i*b_j pair plus 2 per reduced power whose unreduced Python
 * coefficient would be a nonzero integer ("touched"). */
static void fp12_mul(const bnctx *ctx, u64 *k, fp12 *o,
                     const fp12 *a, const fp12 *b) {
    fp prod[23];
    int touched[23];
    memset(prod, 0, sizeof prod);
    memset(touched, 0, sizeof touched);
    u64 mults = 0;
    int bz[12];
    for (int j = 0; j < 12; j++) bz[j] = fp_is_zero(&b->c[j]);
    for (int i = 0; i < 12; i++) {
        if (fp_is_zero(&a->c[i])) continue;
        for (int j = 0; j < 12; j++) {
            if (bz[j]) continue;
            fp t;
            mont_mul(ctx, &t, &a->c[i], &b->c[j]);
            fp_add(ctx, &prod[i + j], &prod[i + j], &t);
            touched[i + j] = 1;
            mults += 1;
        }
    }
    for (int kk = 22; kk >= 12; kk--) {
        if (!touched[kk]) continue;
        fp t;
        mont_mul(ctx, &t, &prod[kk], &ctx->c6m);
        fp_add(ctx, &prod[kk - 6], &prod[kk - 6], &t);
        if (ctx->c6_nz) touched[kk - 6] = 1;
        mont_mul(ctx, &t, &prod[kk], &ctx->c0m);
        fp_add(ctx, &prod[kk - 12], &prod[kk - 12], &t);
        if (ctx->c0_nz) touched[kk - 12] = 1;
        mults += 2;
    }
    k[FP12_MUL] += 1;
    k[FP_MUL] += mults;
    for (int i = 0; i < 12; i++) o->c[i] = prod[i];
}

/* dedicated squaring (upper-triangle schoolbook), same accounting */
static void fp12_sq(const bnctx *ctx, u64 *k, fp12 *o, const fp12 *a) {
    fp prod[23];
    int touched[23];
    memset(prod, 0, sizeof prod);
    memset(touched, 0, sizeof touched);
    u64 mults = 0;
    int az[12];
    for (int j = 0; j < 12; j++) az[j] = fp_is_zero(&a->c[j]);
    for (int i = 0; i < 12; i++) {
        if (az[i]) continue;
        fp t, twice;
        mont_mul(ctx, &t, &a->c[i], &a->c[i]);
        fp_add(ctx, &prod[2 * i], &prod[2 * i], &t);
        touched[2 * i] = 1;
        mults += 1;
        fp_add(ctx, &twice, &a->c[i], &a->c[i]);
        for (int j = i + 1; j < 12; j++) {
            if (az[j]) continue;
            mont_mul(ctx, &t, &twice, &a->c[j]);
            fp_add(ctx, &prod[i + j], &prod[i + j], &t);
            touched[i + j] = 1;
            mults += 1;
        }
    }
    for (int kk = 22; kk >= 12; kk--) {
        if (!touched[kk]) continue;
        fp t;
        mont_mul(ctx, &t, &prod[kk], &ctx->c6m);
        fp_add(ctx, &prod[kk - 6], &prod[kk - 6], &t);
        if (ctx->c6_nz) touched[kk - 6] = 1;
        mont_mul(ctx, &t, &prod[kk], &ctx->c0m);
        fp_add(ctx, &prod[kk - 12], &prod[kk - 12], &t);
        if (ctx->c0_nz) touched[kk - 12] = 1;
        mults += 2;
    }
    k[FP12_SQ] += 1;
    k[FP_MUL] += mults;
    for (int i = 0; i < 12; i++) o->c[i] = prod[i];
}

/* Fp12 -> 6 Fp2 tower components: fp_mul+6 */
static void fp12_to_tower(const bnctx *ctx, u64 *k, fp2 *z, const fp12 *a) {
    k[FP_MUL] += 6;
    for (int i = 0; i < 6; i++) {
        fp t;
        mont_mul(ctx, &t, &ctx->xi_a, &a->c[i + 6]);
        fp_add(ctx, &z[i].c0, &a->c[i], &t);
        z[i].c1 = a->c[i + 6];
    }
}

/* 6 Fp2 tower components -> Fp12: fp_mul+6 */
static void fp12_from_tower(const bnctx *ctx, u64 *k, fp12 *o, const fp2 *z) {
    k[FP_MUL] += 6;
    for (int i = 0; i < 6; i++) {
        fp t;
        mont_mul(ctx, &t, &ctx->xi_a, &z[i].c1);
        fp_sub(ctx, &o->c[i], &z[i].c0, &t);
        o->c[i + 6] = z[i].c1;
    }
}

/* sparse product by a Miller line (powers 0, 1, 3) */
typedef struct { int power; fp2 coeff; } line_term;

static void fp12_mul_sparse(const bnctx *ctx, u64 *k, fp12 *o,
                            const fp12 *a, const line_term *terms, int n) {
    k[FP12_SPARSE] += 1;
    fp2 comps[6], acc[6];
    int have[6] = {0, 0, 0, 0, 0, 0};
    fp12_to_tower(ctx, k, comps, a);
    for (int t = 0; t < n; t++) {
        if (fp2_is_zero(&terms[t].coeff)) continue;
        for (int i = 0; i < 6; i++) {
            int kk = i + terms[t].power;
            fp2 term;
            fp2_mul(ctx, k, &term, &comps[i], &terms[t].coeff);
            if (kk >= 6) {
                kk -= 6;
                fp2_mul_xi(ctx, k, &term, &term);
            }
            if (have[kk]) fp2_add(ctx, &acc[kk], &acc[kk], &term);
            else { acc[kk] = term; have[kk] = 1; }
        }
    }
    for (int i = 0; i < 6; i++) {
        if (!have[i]) memset(&acc[i], 0, sizeof(fp2));
    }
    fp12_from_tower(ctx, k, o, acc);
}

/* Fp4 squaring helper of cyclotomic_square: fp2_sq+3, fp_mul net +8 */
static void fp4_sq(const bnctx *ctx, u64 *k, fp2 *re, fp2 *im,
                   const fp2 *a, const fp2 *b) {
    fp2 a2, b2, t;
    fp2_sq(ctx, k, &a2, a);
    fp2_sq(ctx, k, &b2, b);
    fp2_mul_xi(ctx, k, &t, &b2);
    fp2_add(ctx, re, &a2, &t);
    fp2_add(ctx, &t, a, b);
    fp2_sq(ctx, k, &t, &t);
    fp2_sub(ctx, &t, &t, &a2);
    fp2_sub(ctx, im, &t, &b2);
}

/* 3*three + 2*two via additions only (mirrors Python plus()) */
static void gs_plus(const bnctx *ctx, fp2 *o, const fp2 *three,
                    const fp2 *two) {
    fp2 t;
    fp2_add(ctx, &t, three, two);
    fp2_add(ctx, &t, &t, &t);
    fp2_add(ctx, o, &t, three);
}

static void gs_minus(const bnctx *ctx, fp2 *o, const fp2 *three,
                     const fp2 *two) {
    fp2 t;
    fp2_sub(ctx, &t, three, two);
    fp2_add(ctx, &t, &t, &t);
    fp2_add(ctx, o, &t, three);
}

static void fp12_cyclo_sq(const bnctx *ctx, u64 *k, fp12 *o, const fp12 *f) {
    k[FP12_CYCLO] += 1;
    fp2 g[6], out[6];
    fp12_to_tower(ctx, k, g, f);
    fp2 a0, a1, b0, b1, c0, c1, xc1;
    fp4_sq(ctx, k, &a0, &a1, &g[0], &g[3]);
    fp4_sq(ctx, k, &b0, &b1, &g[1], &g[4]);
    fp4_sq(ctx, k, &c0, &c1, &g[2], &g[5]);
    gs_minus(ctx, &out[0], &a0, &g[0]);
    fp2_mul_xi(ctx, k, &xc1, &c1);
    gs_plus(ctx, &out[1], &xc1, &g[1]);
    gs_minus(ctx, &out[2], &b0, &g[2]);
    gs_plus(ctx, &out[3], &a1, &g[3]);
    gs_minus(ctx, &out[4], &c0, &g[4]);
    gs_plus(ctx, &out[5], &b1, &g[5]);
    fp12_from_tower(ctx, k, o, out);
}

/* Frobenius p^power with cached gamma tables (mirrors fp12_frobenius) */
static void fp12_frob(const bnctx *ctx, u64 *k, fp12 *o, const fp12 *f,
                      int power) {
    int kk = power % 12;
    fp12 v = *f;
    if (kk == 0) { *o = v; return; }
    if (kk >= 6) {
        fp12_conj(ctx, &v, &v);
        kk -= 6;
        if (kk == 0) { *o = v; return; }
    }
    while (kk) {
        int step = kk >= 3 ? 3 : kk;
        const fp2 *table =
            step == 1 ? ctx->g1t : (step == 2 ? ctx->g2t : ctx->g3t);
        fp2 comps[6], mapped[6];
        fp12_to_tower(ctx, k, comps, &v);
        for (int i = 0; i < 6; i++) {
            fp2 z = comps[i];
            if (step % 2) fp2_conj(ctx, &z, &z);
            fp2_mul(ctx, k, &mapped[i], &z, &table[i]);
        }
        fp12_from_tower(ctx, k, &v, mapped);
        kk -= step;
    }
    *o = v;
}

/* cyclotomic exponentiation by the curve parameter t (NAF in ctx) */
static void fp12_cyclo_exp_t(const bnctx *ctx, u64 *k, fp12 *o,
                             const fp12 *val) {
    fp12 conj, result;
    fp12_conj(ctx, &conj, val);
    int have = 0;
    u64 squares = 0;
    for (int d = ctx->n_t_naf - 1; d >= 0; d--) {
        if (have) {
            fp12_cyclo_sq(ctx, k, &result, &result);
            squares += 1;
        }
        int dig = ctx->t_naf[d];
        if (dig == 1) {
            if (have) fp12_mul(ctx, k, &result, &result, val);
            else { result = *val; have = 1; }
        } else if (dig == -1) {
            if (have) fp12_mul(ctx, k, &result, &result, &conj);
            else { result = conj; have = 1; }
        }
    }
    k[REG_CYCLO] += squares;
    *o = result;
}

/* ---------------- Miller loop (mirrors _miller_loop_projective) -------- */

/* returns 1 on a degenerate step (counts stay partially filled) */
static int c_double_step(const bnctx *ctx, u64 *k, fp2 line[3],
                         fp2 *x, fp2 *y, fp2 *z,
                         const fp *px3, const fp *pym2) {
    if (fp2_is_zero(z) || fp2_is_zero(y)) return 1;
    fp2 xx, w3, s, ss, yy, bz, h, t, u;
    fp2_sq(ctx, k, &xx, x);
    fp2_add(ctx, &w3, &xx, &xx);
    fp2_add(ctx, &w3, &w3, &xx);
    fp2_mul(ctx, k, &s, y, z);
    fp2_sq(ctx, k, &ss, &s);
    fp2_sq(ctx, k, &yy, y);
    fp2_mul(ctx, k, &t, x, &yy);
    fp2_mul(ctx, k, &bz, &t, z);
    fp2_sq(ctx, k, &h, &w3);
    fp2_mul_fp(ctx, k, &t, &bz, &ctx->eight);
    fp2_sub(ctx, &h, &h, &t);
    /* x3 = (h * s) * 2 */
    fp2 x3, y3, z3;
    fp2_mul(ctx, k, &t, &h, &s);
    fp2_mul_fp(ctx, k, &x3, &t, &ctx->two);
    /* y3 = w3 * (bz*4 - h) - (yy*ss)*8 */
    fp2_mul_fp(ctx, k, &t, &bz, &ctx->four);
    fp2_sub(ctx, &t, &t, &h);
    fp2_mul(ctx, k, &u, &w3, &t);
    fp2_mul(ctx, k, &t, &yy, &ss);
    fp2_mul_fp(ctx, k, &t, &t, &ctx->eight);
    fp2_sub(ctx, &y3, &u, &t);
    /* z3 = (s * ss) * 8 */
    fp2_mul(ctx, k, &t, &s, &ss);
    fp2_mul_fp(ctx, k, &z3, &t, &ctx->eight);
    /* line terms at powers 0, 1, 3 */
    fp2_mul(ctx, k, &t, &s, z);
    fp2_mul_fp(ctx, k, &line[0], &t, pym2);
    fp2_mul(ctx, k, &t, &xx, z);
    fp2_mul_fp(ctx, k, &line[1], &t, px3);
    fp2_mul(ctx, k, &t, &yy, z);
    fp2_mul_fp(ctx, k, &t, &t, &ctx->two);
    fp2_mul(ctx, k, &u, &w3, x);
    fp2_sub(ctx, &line[2], &t, &u);
    *x = x3;
    *y = y3;
    *z = z3;
    return 0;
}

static int c_add_step(const bnctx *ctx, u64 *k, fp2 line[3],
                      fp2 *x, fp2 *y, fp2 *z,
                      const fp2 *x2, const fp2 *y2,
                      const fp *pxm, const fp *pyn) {
    if (fp2_is_zero(z)) return 1;
    fp2 u, v, t;
    fp2_mul(ctx, k, &t, y2, z);
    fp2_sub(ctx, &u, &t, y);
    fp2_mul(ctx, k, &t, x2, z);
    fp2_sub(ctx, &v, &t, x);
    if (fp2_is_zero(&v)) return 1;
    fp2 vv, vvv, r, a, x3, y3, z3;
    fp2_sq(ctx, k, &vv, &v);
    fp2_mul(ctx, k, &vvv, &vv, &v);
    fp2_mul(ctx, k, &r, &vv, x);
    fp2_sq(ctx, k, &t, &u);
    fp2_mul(ctx, k, &a, &t, z);
    fp2_sub(ctx, &a, &a, &vvv);
    fp2_sub(ctx, &a, &a, &r);
    fp2_sub(ctx, &a, &a, &r);
    fp2_mul(ctx, k, &x3, &v, &a);
    fp2_sub(ctx, &t, &r, &a);
    fp2_mul(ctx, k, &t, &u, &t);
    fp2_mul(ctx, k, &y3, &vvv, y);
    fp2_sub(ctx, &y3, &t, &y3);
    fp2_mul(ctx, k, &z3, &vvv, z);
    fp2_mul_fp(ctx, k, &line[0], &v, pyn);
    fp2_mul_fp(ctx, k, &line[1], &u, pxm);
    fp2_mul(ctx, k, &t, &v, y2);
    fp2_mul(ctx, k, &u, &u, x2);
    fp2_sub(ctx, &line[2], &t, &u);
    *x = x3;
    *y = y3;
    *z = z3;
    return 0;
}

/* first-iteration materialisation (mirrors _sparse_to_fp12) */
static void sparse_to_fp12(const bnctx *ctx, u64 *k, fp12 *o,
                           const fp2 line[3]) {
    fp2 comps[6];
    memset(comps, 0, sizeof comps);
    fp2_add(ctx, &comps[0], &comps[0], &line[0]);
    fp2_add(ctx, &comps[1], &comps[1], &line[1]);
    fp2_add(ctx, &comps[3], &comps[3], &line[2]);
    fp12_from_tower(ctx, k, o, comps);
}

static void fold_line(const bnctx *ctx, u64 *k, fp12 *f, const fp2 line[3]) {
    line_term terms[3];
    terms[0].power = 0; terms[0].coeff = line[0];
    terms[1].power = 1; terms[1].coeff = line[1];
    terms[2].power = 3; terms[2].coeff = line[2];
    fp12_mul_sparse(ctx, k, f, f, terms, 3);
}

int kern_miller(const bnctx *ctx, const u64 *px_, const u64 *py_,
                const u64 *qx_, const u64 *qy_, u64 *out, u64 *counts) {
    memset(counts, 0, NCOUNTS * sizeof(u64));
    fp pxm, pym, px3, pym2, pyn, t;
    fp2 qx, qy;
    memcpy(pxm.c, px_, sizeof pxm.c);
    memcpy(pym.c, py_, sizeof pym.c);
    memcpy(qx.c0.c, qx_, 32);
    memcpy(qx.c1.c, qx_ + 4, 32);
    memcpy(qy.c0.c, qy_, 32);
    memcpy(qy.c1.c, qy_ + 4, 32);
    fp_to_mont(ctx, &pxm, &pxm);
    fp_to_mont(ctx, &pym, &pym);
    fp_to_mont(ctx, &qx.c0, &qx.c0);
    fp_to_mont(ctx, &qx.c1, &qx.c1);
    fp_to_mont(ctx, &qy.c0, &qy.c0);
    fp_to_mont(ctx, &qy.c1, &qy.c1);
    /* scalar line factors: 3*px, -(2*py), -py (canonical residues) */
    fp_add(ctx, &px3, &pxm, &pxm);
    fp_add(ctx, &px3, &px3, &pxm);
    fp_add(ctx, &t, &pym, &pym);
    fp_neg(ctx, &pym2, &t);
    fp_neg(ctx, &pyn, &pym);

    fp2 x = qx, y = qy, z;
    memset(&z, 0, sizeof z);
    fp one_canon = {{1, 0, 0, 0}};
    fp_to_mont(ctx, &z.c0, &one_canon);
    fp12 f;
    int have_f = 0;
    u64 sparse = 0;
    fp2 line[3];
    for (int i = 0; i < ctx->n_loop_bits; i++) {
        if (c_double_step(ctx, counts, line, &x, &y, &z, &px3, &pym2))
            return 1;
        if (!have_f) {
            sparse_to_fp12(ctx, counts, &f, line);
            have_f = 1;
        } else {
            fp12_sq(ctx, counts, &f, &f);
            fold_line(ctx, counts, &f, line);
            sparse += 1;
        }
        if (ctx->loop_bits[i]) {
            if (c_add_step(ctx, counts, line, &x, &y, &z, &qx, &qy,
                           &pxm, &pyn))
                return 1;
            fold_line(ctx, counts, &f, line);
            sparse += 1;
        }
    }
    /* Frobenius correction points q1 = pi(Q), q2 = -pi(q1) */
    fp2 q1x, q1y, q2x, q2y, c;
    fp2_conj(ctx, &c, &qx);
    fp2_mul(ctx, counts, &q1x, &c, &ctx->twg2);
    fp2_conj(ctx, &c, &qy);
    fp2_mul(ctx, counts, &q1y, &c, &ctx->twg3);
    fp2_conj(ctx, &c, &q1x);
    fp2_mul(ctx, counts, &q2x, &c, &ctx->twg2);
    fp2_conj(ctx, &c, &q1y);
    fp2_mul(ctx, counts, &q2y, &c, &ctx->twg3);
    fp2_neg(ctx, &q2y, &q2y);
    if (c_add_step(ctx, counts, line, &x, &y, &z, &q1x, &q1y, &pxm, &pyn))
        return 1;
    fold_line(ctx, counts, &f, line);
    if (c_add_step(ctx, counts, line, &x, &y, &z, &q2x, &q2y, &pxm, &pyn))
        return 1;
    fold_line(ctx, counts, &f, line);
    sparse += 2;
    counts[REG_SPARSE] = sparse;
    for (int i = 0; i < 12; i++) {
        fp o;
        fp_from_mont(ctx, &o, &f.c[i]);
        memcpy(out + 4 * i, o.c, 32);
    }
    return 0;
}

/* ---------------- final exponentiation (mirrors pairing.py) ----------- */

void kern_final_exp(const bnctx *ctx, const u64 *f_in, const u64 *finv_in,
                    u64 *out, u64 *counts) {
    memset(counts, 0, NCOUNTS * sizeof(u64));
    fp12 f0, finv, f, t, fr;
    for (int i = 0; i < 12; i++) {
        memcpy(f0.c[i].c, f_in + 4 * i, 32);
        fp_to_mont(ctx, &f0.c[i], &f0.c[i]);
        memcpy(finv.c[i].c, finv_in + 4 * i, 32);
        fp_to_mont(ctx, &finv.c[i], &finv.c[i]);
    }
    /* easy part */
    fp12_conj(ctx, &t, &f0);
    fp12_mul(ctx, counts, &f, &t, &finv);
    fp12_frob(ctx, counts, &fr, &f, 2);
    fp12_mul(ctx, counts, &f, &fr, &f);
    /* hard part (Devegili-Scott-Dahab chain) */
    fp12 fp1, fp2_, fp3, fu, fu2, fu3;
    fp12_frob(ctx, counts, &fp1, &f, 1);
    fp12_frob(ctx, counts, &fp2_, &f, 2);
    fp12_frob(ctx, counts, &fp3, &fp2_, 1);
    fp12_cyclo_exp_t(ctx, counts, &fu, &f);
    fp12_cyclo_exp_t(ctx, counts, &fu2, &fu);
    fp12_cyclo_exp_t(ctx, counts, &fu3, &fu2);
    fp12 y0, y1, y2, y3, y4, y5, y6;
    fp12_mul(ctx, counts, &y0, &fp1, &fp2_);
    fp12_mul(ctx, counts, &y0, &y0, &fp3);
    fp12_conj(ctx, &y1, &f);
    fp12_frob(ctx, counts, &y2, &fu2, 2);
    fp12_frob(ctx, counts, &y3, &fu, 1);
    fp12_conj(ctx, &y3, &y3);
    fp12_frob(ctx, counts, &t, &fu2, 1);
    fp12_mul(ctx, counts, &y4, &fu, &t);
    fp12_conj(ctx, &y4, &y4);
    fp12_conj(ctx, &y5, &fu2);
    fp12_frob(ctx, counts, &t, &fu3, 1);
    fp12_mul(ctx, counts, &y6, &fu3, &t);
    fp12_conj(ctx, &y6, &y6);
    fp12 t0, t1;
    fp12_cyclo_sq(ctx, counts, &t0, &y6);
    fp12_mul(ctx, counts, &t0, &t0, &y4);
    fp12_mul(ctx, counts, &t0, &t0, &y5);
    fp12_mul(ctx, counts, &t1, &y3, &y5);
    fp12_mul(ctx, counts, &t1, &t1, &t0);
    fp12_mul(ctx, counts, &t0, &t0, &y2);
    fp12_cyclo_sq(ctx, counts, &t1, &t1);
    fp12_mul(ctx, counts, &t1, &t1, &t0);
    fp12_cyclo_sq(ctx, counts, &t1, &t1);
    fp12 ta, tb;
    fp12_mul(ctx, counts, &ta, &t1, &y1);
    fp12_mul(ctx, counts, &tb, &t1, &y0);
    fp12_cyclo_sq(ctx, counts, &ta, &ta);
    counts[REG_CYCLO] += 4;
    fp12 res;
    fp12_mul(ctx, counts, &res, &ta, &tb);
    for (int i = 0; i < 12; i++) {
        fp o;
        fp_from_mont(ctx, &o, &res.c[i]);
        memcpy(out + 4 * i, o.c, 32);
    }
}

/* ---------------- Jacobian point arithmetic (MSM) ----------------
 *
 * Transliterations of curve._jacobian_double / _jacobian_add with the
 * tally rules of fields.Fp / fields.Fp2 applied per operation, so the
 * kernel MSM reports op counts identical to the reference column walk
 * in glv._msm_loop.  "Valid" flags mirror Python's None propagation
 * (the point at infinity, reachable for small-order toy points).
 */

static int fp_eq(const fp *a, const fp *b) {
    /* all fp routines emit canonical (< p) Montgomery residues */
    return memcmp(a->c, b->c, sizeof(a->c)) == 0;
}

static int fp2_eq(const fp2 *a, const fp2 *b) {
    return fp_eq(&a->c0, &b->c0) && fp_eq(&a->c1, &b->c1);
}

/* tallied Fp product: Python's Fp*Fp / Fp*int / Fp.square() all count 1 */
static void fp_mul_t(const bnctx *ctx, u64 *k, fp *o,
                     const fp *a, const fp *b) {
    k[FP_MUL] += 1;
    mont_mul(ctx, o, a, b);
}

typedef struct { fp x, y, z; } g1jac;
typedef struct { fp2 x, y, z; } g2jac;

/* 13 fp_mul, including the y1 == y1*0 infinity probe; 0 = infinity */
static int g1_dbl(const bnctx *ctx, u64 *k, g1jac *p) {
    k[FP_MUL] += 1;                      /* y1 * 0 */
    if (fp_is_zero(&p->y)) return 0;
    fp a, b, c, t, d, e, f, t2, x3, y3, z3;
    fp_mul_t(ctx, k, &a, &p->x, &p->x);
    fp_mul_t(ctx, k, &b, &p->y, &p->y);
    fp_mul_t(ctx, k, &c, &b, &b);
    fp_add(ctx, &t, &p->x, &b);
    fp_mul_t(ctx, k, &t, &t, &t);
    fp_sub(ctx, &t, &t, &a);
    fp_sub(ctx, &t, &t, &c);
    fp_mul_t(ctx, k, &d, &t, &ctx->two);
    fp_mul_t(ctx, k, &e, &a, &ctx->three);
    fp_mul_t(ctx, k, &f, &e, &e);
    fp_mul_t(ctx, k, &t2, &d, &ctx->two);
    fp_sub(ctx, &x3, &f, &t2);
    fp_sub(ctx, &t, &d, &x3);
    fp_mul_t(ctx, k, &t, &e, &t);
    fp_mul_t(ctx, k, &t2, &c, &ctx->eight);
    fp_sub(ctx, &y3, &t, &t2);
    fp_mul_t(ctx, k, &t, &p->y, &p->z);
    fp_mul_t(ctx, k, &z3, &t, &ctx->two);
    p->x = x3; p->y = y3; p->z = z3;
    return 1;
}

/* 20 fp_mul on the general path; equal-x falls into doubling or infinity */
static int g1_add(const bnctx *ctx, u64 *k, g1jac *p, const g1jac *q) {
    fp z1z1, z2z2, u1, u2, s1, s2, t;
    fp_mul_t(ctx, k, &z1z1, &p->z, &p->z);
    fp_mul_t(ctx, k, &z2z2, &q->z, &q->z);
    fp_mul_t(ctx, k, &u1, &p->x, &z2z2);
    fp_mul_t(ctx, k, &u2, &q->x, &z1z1);
    fp_mul_t(ctx, k, &t, &p->y, &z2z2);
    fp_mul_t(ctx, k, &s1, &t, &q->z);
    fp_mul_t(ctx, k, &t, &q->y, &z1z1);
    fp_mul_t(ctx, k, &s2, &t, &p->z);
    if (fp_eq(&u1, &u2)) {
        if (fp_eq(&s1, &s2)) return g1_dbl(ctx, k, p);
        return 0;                        /* p == -q */
    }
    fp h, hh, ii, j, r, v, t2, x3, y3, z3;
    fp_sub(ctx, &h, &u2, &u1);
    fp_add(ctx, &hh, &h, &h);
    fp_mul_t(ctx, k, &ii, &hh, &hh);
    fp_mul_t(ctx, k, &j, &h, &ii);
    fp_sub(ctx, &t, &s2, &s1);
    fp_mul_t(ctx, k, &r, &t, &ctx->two);
    fp_mul_t(ctx, k, &v, &u1, &ii);
    fp_mul_t(ctx, k, &t, &r, &r);
    fp_sub(ctx, &t, &t, &j);
    fp_mul_t(ctx, k, &t2, &v, &ctx->two);
    fp_sub(ctx, &x3, &t, &t2);
    fp_sub(ctx, &t, &v, &x3);
    fp_mul_t(ctx, k, &t, &r, &t);
    fp_mul_t(ctx, k, &t2, &s1, &j);
    fp_mul_t(ctx, k, &t2, &t2, &ctx->two);
    fp_sub(ctx, &y3, &t, &t2);
    fp_mul_t(ctx, k, &t, &p->z, &q->z);
    fp_mul_t(ctx, k, &t, &t, &h);
    fp_mul_t(ctx, k, &z3, &t, &ctx->two);
    p->x = x3; p->y = y3; p->z = z3;
    return 1;
}

/* Fp2 double: 5 fp2_sq + 2 fp2_mul + 6 scalar muls, as the generic
 * Python formula tallies over Fp2 */
static int g2_dbl(const bnctx *ctx, u64 *k, g2jac *p) {
    k[FP2_MUL] += 1;                     /* y1 * 0 */
    k[FP_MUL] += 2;
    if (fp2_is_zero(&p->y)) return 0;
    fp2 a, b, c, t, d, e, f, t2, x3, y3, z3;
    fp2_sq(ctx, k, &a, &p->x);
    fp2_sq(ctx, k, &b, &p->y);
    fp2_sq(ctx, k, &c, &b);
    fp2_add(ctx, &t, &p->x, &b);
    fp2_sq(ctx, k, &t, &t);
    fp2_sub(ctx, &t, &t, &a);
    fp2_sub(ctx, &t, &t, &c);
    fp2_mul_fp(ctx, k, &d, &t, &ctx->two);
    fp2_mul_fp(ctx, k, &e, &a, &ctx->three);
    fp2_sq(ctx, k, &f, &e);
    fp2_mul_fp(ctx, k, &t2, &d, &ctx->two);
    fp2_sub(ctx, &x3, &f, &t2);
    fp2_sub(ctx, &t, &d, &x3);
    fp2_mul(ctx, k, &t, &e, &t);
    fp2_mul_fp(ctx, k, &t2, &c, &ctx->eight);
    fp2_sub(ctx, &y3, &t, &t2);
    fp2_mul(ctx, k, &t, &p->y, &p->z);
    fp2_mul_fp(ctx, k, &z3, &t, &ctx->two);
    p->x = x3; p->y = y3; p->z = z3;
    return 1;
}

/* Fp2 add: 4 fp2_sq + 12 fp2_mul + 4 scalar muls on the general path */
static int g2_add(const bnctx *ctx, u64 *k, g2jac *p, const g2jac *q) {
    fp2 z1z1, z2z2, u1, u2, s1, s2, t;
    fp2_sq(ctx, k, &z1z1, &p->z);
    fp2_sq(ctx, k, &z2z2, &q->z);
    fp2_mul(ctx, k, &u1, &p->x, &z2z2);
    fp2_mul(ctx, k, &u2, &q->x, &z1z1);
    fp2_mul(ctx, k, &t, &p->y, &z2z2);
    fp2_mul(ctx, k, &s1, &t, &q->z);
    fp2_mul(ctx, k, &t, &q->y, &z1z1);
    fp2_mul(ctx, k, &s2, &t, &p->z);
    if (fp2_eq(&u1, &u2)) {
        if (fp2_eq(&s1, &s2)) return g2_dbl(ctx, k, p);
        return 0;
    }
    fp2 h, hh, ii, j, r, v, t2, x3, y3, z3;
    fp2_sub(ctx, &h, &u2, &u1);
    fp2_add(ctx, &hh, &h, &h);
    fp2_sq(ctx, k, &ii, &hh);
    fp2_mul(ctx, k, &j, &h, &ii);
    fp2_sub(ctx, &t, &s2, &s1);
    fp2_mul_fp(ctx, k, &r, &t, &ctx->two);
    fp2_mul(ctx, k, &v, &u1, &ii);
    fp2_sq(ctx, k, &t, &r);
    fp2_sub(ctx, &t, &t, &j);
    fp2_mul_fp(ctx, k, &t2, &v, &ctx->two);
    fp2_sub(ctx, &x3, &t, &t2);
    fp2_sub(ctx, &t, &v, &x3);
    fp2_mul(ctx, k, &t, &r, &t);
    fp2_mul(ctx, k, &t2, &s1, &j);
    fp2_mul_fp(ctx, k, &t2, &t2, &ctx->two);
    fp2_sub(ctx, &y3, &t, &t2);
    fp2_mul(ctx, k, &t, &p->z, &q->z);
    fp2_mul(ctx, k, &t, &t, &h);
    fp2_mul_fp(ctx, k, &z3, &t, &ctx->two);
    p->x = x3; p->y = y3; p->z = z3;
    return 1;
}

#define MSM_MAX_POINTS 1024
#define MSM_TAB 8                        /* odd multiples for width-5 wNAF */

/* Interleaved wNAF MSM over G1.  digits is an m x ndigits column-major-
 * safe row matrix (row i = point i, zero padded).  endo != 0 means
 * points[i] = phi^i(points[0]): table 0 is built and the rest derived by
 * X *= beta (1 fp_mul per live entry), exactly as glv._derive_table_g1.
 * Returns 0 = point in out (affine-domain Jacobian limbs), 1 = infinity,
 * 2 = unsupported (counts must be discarded). */
int kern_g1_msm(const bnctx *ctx, int m, const u64 *xs, const u64 *ys,
                const signed char *digits, int ndigits, int endo,
                const u64 *endo_beta, u64 *out, u64 *counts) {
    memset(counts, 0, NCOUNTS * sizeof(u64));
    if (m <= 0 || m > MSM_MAX_POINTS || ndigits <= 0) return 2;
    g1jac *tab = malloc((size_t)m * MSM_TAB * sizeof(g1jac));
    unsigned char *ok = malloc((size_t)m * MSM_TAB);
    if (!tab || !ok) { free(tab); free(ok); return 2; }
    fp one = {{1, 0, 0, 0}};
    fp onem, beta;
    fp_to_mont(ctx, &onem, &one);
    if (endo) memcpy(beta.c, endo_beta, sizeof(beta.c));
    for (int i = 0; i < m; i++) {
        if (endo && i > 0) {
            for (int e = 0; e < MSM_TAB; e++) {
                int idx = i * MSM_TAB + e, prev = (i - 1) * MSM_TAB + e;
                ok[idx] = ok[prev];
                if (!ok[prev]) continue;
                tab[idx] = tab[prev];
                fp_mul_t(ctx, counts, &tab[idx].x, &tab[prev].x, &beta);
            }
            continue;
        }
        g1jac base, dbl;
        memcpy(base.x.c, xs + 4 * i, 32);
        memcpy(base.y.c, ys + 4 * i, 32);
        fp_to_mont(ctx, &base.x, &base.x);
        fp_to_mont(ctx, &base.y, &base.y);
        base.z = onem;
        dbl = base;
        int dvalid = g1_dbl(ctx, counts, &dbl);
        tab[i * MSM_TAB] = base;
        ok[i * MSM_TAB] = 1;
        for (int e = 1; e < MSM_TAB; e++) {
            int idx = i * MSM_TAB + e, prev = idx - 1;
            if (!ok[prev]) { tab[idx] = dbl; ok[idx] = (unsigned char)dvalid; }
            else if (!dvalid) { tab[idx] = tab[prev]; ok[idx] = 1; }
            else {
                tab[idx] = tab[prev];
                ok[idx] = (unsigned char)g1_add(ctx, counts, &tab[idx], &dbl);
            }
        }
    }
    g1jac r;
    int rvalid = 0;
    for (int col = ndigits - 1; col >= 0; col--) {
        if (rvalid) rvalid = g1_dbl(ctx, counts, &r);
        for (int i = 0; i < m; i++) {
            int d = digits[(size_t)i * ndigits + col];
            if (!d) continue;
            int a = d < 0 ? -d : d;
            int e = (a - 1) >> 1;
            if (e >= MSM_TAB) { free(tab); free(ok); return 2; }
            int idx = i * MSM_TAB + e;
            if (!ok[idx]) continue;
            g1jac entry = tab[idx];
            if (d < 0) fp_neg(ctx, &entry.y, &entry.y);
            if (!rvalid) { r = entry; rvalid = 1; }
            else rvalid = g1_add(ctx, counts, &r, &entry);
        }
    }
    free(tab); free(ok);
    if (!rvalid) return 1;
    fp o;
    fp_from_mont(ctx, &o, &r.x); memcpy(out, o.c, 32);
    fp_from_mont(ctx, &o, &r.y); memcpy(out + 4, o.c, 32);
    fp_from_mont(ctx, &o, &r.z); memcpy(out + 8, o.c, 32);
    return 0;
}

/* G2 twin: coords are Fp2 (8 limbs: c0 then c1).  endo != 0 derives
 * table i from i-1 by psi: (conj(X)*twg2, conj(Y)*twg3, conj(Z)) — two
 * fp2_mul per live entry, as glv._derive_table_g2. */
int kern_g2_msm(const bnctx *ctx, int m, const u64 *xs, const u64 *ys,
                const signed char *digits, int ndigits, int endo,
                u64 *out, u64 *counts) {
    memset(counts, 0, NCOUNTS * sizeof(u64));
    if (m <= 0 || m > MSM_MAX_POINTS || ndigits <= 0) return 2;
    g2jac *tab = malloc((size_t)m * MSM_TAB * sizeof(g2jac));
    unsigned char *ok = malloc((size_t)m * MSM_TAB);
    if (!tab || !ok) { free(tab); free(ok); return 2; }
    fp one = {{1, 0, 0, 0}};
    fp onem;
    fp_to_mont(ctx, &onem, &one);
    for (int i = 0; i < m; i++) {
        if (endo && i > 0) {
            for (int e = 0; e < MSM_TAB; e++) {
                int idx = i * MSM_TAB + e, prev = (i - 1) * MSM_TAB + e;
                ok[idx] = ok[prev];
                if (!ok[prev]) continue;
                fp2 t;
                fp2_conj(ctx, &t, &tab[prev].x);
                fp2_mul(ctx, counts, &tab[idx].x, &t, &ctx->twg2);
                fp2_conj(ctx, &t, &tab[prev].y);
                fp2_mul(ctx, counts, &tab[idx].y, &t, &ctx->twg3);
                fp2_conj(ctx, &tab[idx].z, &tab[prev].z);
            }
            continue;
        }
        g2jac base, dbl;
        memcpy(base.x.c0.c, xs + 8 * i, 32);
        memcpy(base.x.c1.c, xs + 8 * i + 4, 32);
        memcpy(base.y.c0.c, ys + 8 * i, 32);
        memcpy(base.y.c1.c, ys + 8 * i + 4, 32);
        fp_to_mont(ctx, &base.x.c0, &base.x.c0);
        fp_to_mont(ctx, &base.x.c1, &base.x.c1);
        fp_to_mont(ctx, &base.y.c0, &base.y.c0);
        fp_to_mont(ctx, &base.y.c1, &base.y.c1);
        base.z.c0 = onem;
        memset(base.z.c1.c, 0, 32);
        dbl = base;
        int dvalid = g2_dbl(ctx, counts, &dbl);
        tab[i * MSM_TAB] = base;
        ok[i * MSM_TAB] = 1;
        for (int e = 1; e < MSM_TAB; e++) {
            int idx = i * MSM_TAB + e, prev = idx - 1;
            if (!ok[prev]) { tab[idx] = dbl; ok[idx] = (unsigned char)dvalid; }
            else if (!dvalid) { tab[idx] = tab[prev]; ok[idx] = 1; }
            else {
                tab[idx] = tab[prev];
                ok[idx] = (unsigned char)g2_add(ctx, counts, &tab[idx], &dbl);
            }
        }
    }
    g2jac r;
    int rvalid = 0;
    for (int col = ndigits - 1; col >= 0; col--) {
        if (rvalid) rvalid = g2_dbl(ctx, counts, &r);
        for (int i = 0; i < m; i++) {
            int d = digits[(size_t)i * ndigits + col];
            if (!d) continue;
            int a = d < 0 ? -d : d;
            int e = (a - 1) >> 1;
            if (e >= MSM_TAB) { free(tab); free(ok); return 2; }
            int idx = i * MSM_TAB + e;
            if (!ok[idx]) continue;
            g2jac entry = tab[idx];
            if (d < 0) fp2_neg(ctx, &entry.y, &entry.y);
            if (!rvalid) { r = entry; rvalid = 1; }
            else rvalid = g2_add(ctx, counts, &r, &entry);
        }
    }
    free(tab); free(ok);
    if (!rvalid) return 1;
    fp o;
    fp_from_mont(ctx, &o, &r.x.c0); memcpy(out, o.c, 32);
    fp_from_mont(ctx, &o, &r.x.c1); memcpy(out + 4, o.c, 32);
    fp_from_mont(ctx, &o, &r.y.c0); memcpy(out + 8, o.c, 32);
    fp_from_mont(ctx, &o, &r.y.c1); memcpy(out + 12, o.c, 32);
    fp_from_mont(ctx, &o, &r.z.c0); memcpy(out + 16, o.c, 32);
    fp_from_mont(ctx, &o, &r.z.c1); memcpy(out + 20, o.c, 32);
    return 0;
}

/* exposed for the Python-side build self-test */
void kern_mont_mul_test(const bnctx *ctx, const u64 *a, const u64 *b,
                        u64 *out) {
    fp fa, fb, fo;
    memcpy(fa.c, a, 32);
    memcpy(fb.c, b, 32);
    fp_to_mont(ctx, &fa, &fa);
    fp_to_mont(ctx, &fb, &fb);
    mont_mul(ctx, &fo, &fa, &fb);
    fp_from_mont(ctx, &fo, &fo);
    memcpy(out, fo.c, 32);
}
"""

# ---------------------------------------------------------------------------
# build machinery
# ---------------------------------------------------------------------------

_BUILD_STATE: dict = {"tried": False, "ffi": None, "lib": None, "reason": ""}


def _source_tag() -> str:
    digest = hashlib.sha256(
        (_CDEF + _CSOURCE).encode("utf-8")
    ).hexdigest()[:16]
    return f"_repro_pairing_kernel_{digest}"


def _compile_library() -> Tuple[Optional[object], Optional[object], str]:
    """Compile (or reuse) the kernel extension; never raises."""
    try:
        import cffi
    except ImportError:
        return None, None, "cffi is not installed"
    modname = _source_tag()
    build_root = os.environ.get("REPRO_KERNEL_CACHE") or os.path.join(
        tempfile.gettempdir(), f"{modname}-py{sys.version_info[0]}{sys.version_info[1]}"
    )
    try:
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        ffi.set_source(modname, _CSOURCE, extra_compile_args=["-O2"])
        sofile = None
        if os.path.isdir(build_root):
            for entry in sorted(os.listdir(build_root)):
                if entry.startswith(modname) and entry.endswith(
                    (".so", ".pyd", ".dylib")
                ):
                    sofile = os.path.join(build_root, entry)
                    break
        if sofile is None:
            os.makedirs(build_root, exist_ok=True)
            # Compile in a fresh private dir, then publish atomically so
            # concurrently-spawned worker processes never load a half-
            # written extension.
            workdir = tempfile.mkdtemp(prefix="build-", dir=build_root)
            built = ffi.compile(tmpdir=workdir)
            final = os.path.join(build_root, os.path.basename(built))
            try:
                os.replace(built, final)
            except OSError:
                final = built
            sofile = final
        spec = importlib.util.spec_from_file_location(modname, sofile)
        if spec is None or spec.loader is None:
            return None, None, f"cannot load built kernel at {sofile}"
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.ffi, module.lib, "compiled"
    except Exception as exc:  # toolchain/compiler/load failures
        return None, None, f"kernel build failed: {exc!r}"


def _library() -> Tuple[Optional[object], Optional[object], str]:
    state = _BUILD_STATE
    if not state["tried"]:
        state["tried"] = True
        ffi, lib, reason = _compile_library()
        if lib is not None:
            try:
                _selftest(ffi, lib)
            except Exception as exc:
                ffi, lib, reason = None, None, f"kernel self-test failed: {exc!r}"
        state["ffi"], state["lib"], state["reason"] = ffi, lib, reason
    return state["ffi"], state["lib"], state["reason"]


def kernel_availability() -> Tuple[bool, str]:
    """Whether the compiled kernel can be used here, plus the reason."""
    _, lib, reason = _library()
    return lib is not None, reason


def _limbs(value: int):
    value = int(value)
    return [(value >> (64 * i)) & 0xFFFFFFFFFFFFFFFF for i in range(_NLIMBS)]


def _fp_from_bytes(raw: bytes, index: int) -> int:
    start = index * _LIMB_BYTES
    return int.from_bytes(raw[start:start + _LIMB_BYTES], "little")


def _selftest(ffi, lib) -> None:
    """Check the C Montgomery core against Python big-int arithmetic."""
    import random as _random

    rng = _random.Random(0xC0DE)
    from repro.pairing.numbers import is_probable_prime

    p = (1 << 254) - 1
    while not (is_probable_prime(p) and p % 4 == 3):
        p -= 2
    ctx = ffi.new("bnctx *")
    dom = MontgomeryDomain(p, nwords=_NLIMBS)
    ctx.p.c = _limbs(p)
    ctx.np = dom.np_
    ctx.r2.c = _limbs(dom.r2)
    out = ffi.new("u64[4]")
    for _ in range(8):
        a = rng.randrange(p)
        b = rng.randrange(p)
        abuf = ffi.new("u64[4]", _limbs(a))
        bbuf = ffi.new("u64[4]", _limbs(b))
        lib.kern_mont_mul_test(ctx, abuf, bbuf, out)
        got = int.from_bytes(bytes(ffi.buffer(out)), "little")
        if got != (a * b) % p:
            raise ArithmeticError("Montgomery product mismatch")


# ---------------------------------------------------------------------------
# per-curve kernel handle
# ---------------------------------------------------------------------------


class PairingKernel:
    """Compiled Miller loop + final exponentiation bound to one BN curve."""

    def __init__(self, curve, ffi, lib):
        self._curve = curve
        self._ffi = ffi
        self._lib = lib
        self._tables_ready = False
        spec = curve.spec
        p = int(spec.p)
        dom = MontgomeryDomain(p, nwords=_NLIMBS)
        self._dom = dom
        ctx = ffi.new("bnctx *")
        ctx.p.c = _limbs(p)
        ctx.np = dom.np_
        ctx.r2.c = _limbs(dom.r2)
        ctx.c6m.c = _limbs(dom.to_mont(spec.fp12_mod_c6))
        ctx.c0m.c = _limbs(dom.to_mont(spec.fp12_mod_c0))
        ctx.c6_nz = 1 if spec.fp12_mod_c6 % p else 0
        ctx.c0_nz = 1 if spec.fp12_mod_c0 % p else 0
        ctx.xi_a.c = _limbs(dom.to_mont(spec.xi_a))
        ctx.two.c = _limbs(dom.to_mont(2))
        ctx.four.c = _limbs(dom.to_mont(4))
        ctx.eight.c = _limbs(dom.to_mont(8))
        ctx.three.c = _limbs(dom.to_mont(3))
        self._fill_fp2(ctx.twg2, curve.frob_gamma2)
        self._fill_fp2(ctx.twg3, curve.frob_gamma3)
        loop = curve.ate_loop_count
        bits = [(loop >> i) & 1 for i in range(loop.bit_length() - 2, -1, -1)]
        ctx.n_loop_bits = len(bits)
        for i, bit in enumerate(bits):
            ctx.loop_bits[i] = bit
        from repro.pairing.curve import _wnaf_digits

        naf = _wnaf_digits(curve.t, 2)
        ctx.n_t_naf = len(naf)
        for i, digit in enumerate(naf):
            ctx.t_naf[i] = digit
        self._ctx = ctx

    def _fill_fp2(self, target, value) -> None:
        dom = self._dom
        target.c0.c = _limbs(dom.to_mont(int(value.c0)))
        target.c1.c = _limbs(dom.to_mont(int(value.c1)))

    @classmethod
    def for_curve(cls, curve) -> Optional["PairingKernel"]:
        """A kernel for ``curve`` if the library and parameters allow it."""
        ffi, lib, _ = _library()
        if lib is None:
            return None
        p = int(curve.spec.p)
        if p.bit_length() > 254 or p % 2 == 0:
            return None
        loop_bits = curve.ate_loop_count.bit_length() - 1
        if loop_bits > _MAX_LOOP_BITS or curve.t <= 0:
            return None
        if len(str(curve.t)) and curve.t.bit_length() + 2 > _MAX_NAF:
            return None
        try:
            return cls(curve, ffi, lib)
        except Exception:
            return None

    # -- tally plumbing ----------------------------------------------------
    def _apply_counts(self, counts, apply_registry_sparse: bool) -> None:
        tally = _rt.tally
        if tally is not None:
            for index, name in enumerate(_TALLY_SLOTS):
                value = counts[index]
                if value:
                    setattr(tally, name, getattr(tally, name) + value)
        registry = get_registry()
        if apply_registry_sparse and counts[_REG_SPARSE]:
            registry.counter("pairing.sparse_mults").inc(counts[_REG_SPARSE])
        if counts[_REG_CYCLO]:
            registry.counter("pairing.cyclo_squares").inc(counts[_REG_CYCLO])

    def _ensure_tables(self) -> None:
        """Fill the Frobenius gamma tables on first final exponentiation.

        Built through the *same* cached pure-Python helper the reference
        path uses, at the same point in the call sequence (first final
        exp), so the one-off table construction tallies identically across
        backends.
        """
        if self._tables_ready:
            return
        from repro.pairing.pairing import _frobenius_tables

        tables = _frobenius_tables(self._curve)
        for power, field_name in ((1, "g1t"), (2, "g2t"), (3, "g3t")):
            target = getattr(self._ctx, field_name)
            for i, value in enumerate(tables[power]):
                self._fill_fp2(target[i], value)
        self._tables_ready = True

    # -- public stages -----------------------------------------------------
    def miller_loop(self, p_point, q_point):
        """Kernel Miller loop; ``None`` signals a degenerate step."""
        ffi, lib = self._ffi, self._lib
        px = ffi.new("u64[4]", _limbs(p_point.x.value))
        py = ffi.new("u64[4]", _limbs(p_point.y.value))
        qx = ffi.new("u64[8]", _limbs(q_point.x.c0) + _limbs(q_point.x.c1))
        qy = ffi.new("u64[8]", _limbs(q_point.y.c0) + _limbs(q_point.y.c1))
        out = ffi.new("u64[48]")
        counts = ffi.new("u64[12]")
        rc = lib.kern_miller(self._ctx, px, py, qx, qy, out, counts)
        self._apply_counts(counts, apply_registry_sparse=(rc == 0))
        if rc != 0:
            return None
        raw = bytes(ffi.buffer(out))
        spec = self._curve.spec
        from repro.pairing.fields import Fp12

        return Fp12(spec, [_fp_from_bytes(raw, i) for i in range(12)])

    # -- point arithmetic --------------------------------------------------
    def _pack_digits(self, digit_lists, ndigits: int, m: int):
        """Row-major zero-padded int8 digit matrix for the C column walk."""
        buf = self._ffi.new(f"signed char[{m * ndigits}]")
        for i, digits in enumerate(digit_lists):
            base = i * ndigits
            for j, digit in enumerate(digits):
                buf[base + j] = digit
        return buf

    def g1_msm(self, points, digit_lists, ndigits: int, *, endo: bool = False):
        """Interleaved wNAF MSM over G1 in the kernel.

        Returns ``(supported, jac)``: ``supported=False`` asks the caller
        to run the reference path (no counts were applied); otherwise
        ``jac`` is the Jacobian triple (or None for infinity), bit- and
        count-identical to :func:`repro.pairing.glv._msm_loop`.
        """
        ffi, lib = self._ffi, self._lib
        m = len(points)
        beta = ffi.new("u64[4]")
        if endo:
            from repro.pairing import glv as _glv

            params = _glv.glv_params(self._curve)
            if params is None:
                return False, None
            beta = ffi.new("u64[4]", _limbs(self._dom.to_mont(params.beta)))
        xs, ys = [], []
        for pt in points:
            xs.extend(_limbs(pt.x.value))
            ys.extend(_limbs(pt.y.value))
        out = ffi.new("u64[12]")
        counts = ffi.new(f"u64[{_NCOUNTS}]")
        rc = lib.kern_g1_msm(
            self._ctx,
            m,
            ffi.new(f"u64[{4 * m}]", xs),
            ffi.new(f"u64[{4 * m}]", ys),
            self._pack_digits(digit_lists, ndigits, m),
            ndigits,
            1 if endo else 0,
            beta,
            out,
            counts,
        )
        if rc == 2:
            return False, None
        self._apply_counts(counts, apply_registry_sparse=False)
        if rc == 1:
            return True, None
        raw = bytes(ffi.buffer(out))
        spec = self._curve.spec
        return True, (
            spec.fp(_fp_from_bytes(raw, 0)),
            spec.fp(_fp_from_bytes(raw, 1)),
            spec.fp(_fp_from_bytes(raw, 2)),
        )

    def g2_msm(self, points, digit_lists, ndigits: int, *, endo: bool = False):
        """G2 twin of :meth:`g1_msm` (Fp2 coordinates, psi-derived tables)."""
        ffi, lib = self._ffi, self._lib
        m = len(points)
        xs, ys = [], []
        for pt in points:
            xs.extend(_limbs(pt.x.c0) + _limbs(pt.x.c1))
            ys.extend(_limbs(pt.y.c0) + _limbs(pt.y.c1))
        out = ffi.new("u64[24]")
        counts = ffi.new(f"u64[{_NCOUNTS}]")
        rc = lib.kern_g2_msm(
            self._ctx,
            m,
            ffi.new(f"u64[{8 * m}]", xs),
            ffi.new(f"u64[{8 * m}]", ys),
            self._pack_digits(digit_lists, ndigits, m),
            ndigits,
            1 if endo else 0,
            out,
            counts,
        )
        if rc == 2:
            return False, None
        self._apply_counts(counts, apply_registry_sparse=False)
        if rc == 1:
            return True, None
        raw = bytes(ffi.buffer(out))
        spec = self._curve.spec
        return True, (
            spec.fp2(_fp_from_bytes(raw, 0), _fp_from_bytes(raw, 1)),
            spec.fp2(_fp_from_bytes(raw, 2), _fp_from_bytes(raw, 3)),
            spec.fp2(_fp_from_bytes(raw, 4), _fp_from_bytes(raw, 5)),
        )

    def final_exp(self, f):
        """Kernel final exponentiation of a Miller value ``f``."""
        self._ensure_tables()
        # The easy part needs f^-1; the pure path computes it with the
        # Python extended-Euclid (tallying fp12_inv exactly once), so the
        # kernel path does the same and hands both operands to C.
        f_inv = f.inverse()
        ffi, lib = self._ffi, self._lib
        fbuf = ffi.new("u64[48]")
        ibuf = ffi.new("u64[48]")
        for i in range(12):
            for j, limb in enumerate(_limbs(f.coeffs[i])):
                fbuf[4 * i + j] = limb
            for j, limb in enumerate(_limbs(f_inv.coeffs[i])):
                ibuf[4 * i + j] = limb
        out = ffi.new("u64[48]")
        counts = ffi.new("u64[12]")
        lib.kern_final_exp(self._ctx, fbuf, ibuf, out, counts)
        self._apply_counts(counts, apply_registry_sparse=False)
        raw = bytes(ffi.buffer(out))
        spec = self._curve.spec
        from repro.pairing.fields import Fp12

        return Fp12(spec, [_fp_from_bytes(raw, i) for i in range(12)])
