"""A size-bounded LRU mapping for the pairing stack's memoisation caches.

The warm-verify path caches one GT value and one inverted Miller value per
``(P_pub, Q_ID)`` pair.  On a MANET node that meets a handful of
neighbours an unbounded dict is harmless, but a verification gateway
serving a large mobile population would grow it without limit - and a KGC
rekey would leave every old entry alive forever.  :class:`LRUCache` gives
those caches a hard size bound with least-recently-used eviction, plus the
hit/miss/eviction accounting the serving layer exports.

Deliberately not a full MutableMapping: the pairing hot path only ever
calls ``get``, ``__setitem__``, ``__len__``, ``__contains__`` and
``clear``, and keeping the surface that small keeps the per-lookup cost at
one OrderedDict operation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator, Optional


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    ``maxsize`` must be positive; ``on_evict`` (optional) is called once
    per evicted entry, *after* the entry is gone - the pairing context
    uses it to feed the ``pairing.cache_evictions`` obs counter.

    Accounting attributes (all monotone over the cache's lifetime):

    * ``hits`` / ``misses`` - :meth:`get` outcomes,
    * ``evictions``         - entries dropped by the size bound,
    * ``peak_size``         - high-water mark of ``len(self)``.
    """

    __slots__ = (
        "maxsize",
        "hits",
        "misses",
        "evictions",
        "peak_size",
        "_data",
        "_on_evict",
    )

    def __init__(
        self, maxsize: int, on_evict: Optional[Callable[[], None]] = None
    ):
        if maxsize < 1:
            raise ValueError("LRUCache needs maxsize >= 1")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.peak_size = 0
        self._data: OrderedDict = OrderedDict()
        self._on_evict = on_evict

    def get(self, key, default=None):
        """The value for ``key`` (freshened to most-recently-used), else
        ``default``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        data = self._data
        data[key] = value
        data.move_to_end(key)
        while len(data) > self.maxsize:
            data.popitem(last=False)
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict()
        if len(data) > self.peak_size:
            self.peak_size = len(data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator:
        """Keys, least- to most-recently-used (no freshening)."""
        return iter(self._data)

    def clear(self) -> None:
        """Drop every entry (not counted as evictions; peak is kept)."""
        self._data.clear()

    def pop(self, key, default=None):
        """Remove and return one entry (not counted as an eviction)."""
        return self._data.pop(key, default)

    def stats(self) -> dict:
        """size/bound/peak/hits/misses/evictions as a JSON-ready dict."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "peak_size": self.peak_size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: sentinel distinguishing "absent" from a stored None
_MISSING = object()
