"""Entry point for ``python -m repro``.

The ``__main__`` guard is load-bearing: the service's worker pool spawns
processes with the ``spawn`` start method, which re-imports the parent's
main module in every child (as ``__mp_main__``).  Without the guard each
crypto worker would re-run the CLI instead of entering its job loop.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
