"""ECDSA over the BN curve's G1, from scratch.

The paper's introduction contrasts certificateless crypto with traditional
PKI signatures [18, 14]; this module supplies that baseline.  It is plain
ECDSA on the prime-order group G1 = E(Fp) of whichever BN curve the
deployment uses, so the comparison benchmarks share one curve.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import SignatureError
from repro.pairing.bn import BNCurve, default_test_curve
from repro.pairing.curve import CurvePoint
from repro.pairing.numbers import inverse_mod
from repro.schemes.base import Message, normalize_message


@dataclass(frozen=True)
class ECDSAKeyPair:
    secret: int
    public_key: CurvePoint


@dataclass(frozen=True)
class ECDSASignature:
    r: int
    s: int


class ECDSA:
    """Textbook ECDSA with deterministic-width SHA-256 message digests."""

    name = "ecdsa"

    def __init__(self, curve: Optional[BNCurve] = None, rng: Optional[random.Random] = None):
        self.curve = curve if curve is not None else default_test_curve()
        self.rng = rng if rng is not None else random.Random()

    def _digest_scalar(self, message: bytes) -> int:
        digest = hashlib.sha256(b"ecdsa:" + message).digest()
        # Standard leftmost-bits truncation to the order's size.
        value = int.from_bytes(digest, "big")
        excess = 256 - self.curve.n.bit_length()
        if excess > 0:
            value >>= excess
        return value % self.curve.n

    def generate_keys(self, secret: Optional[int] = None) -> ECDSAKeyPair:
        """Fresh (or deterministic, given ``secret``) ECDSA key pair."""
        n = self.curve.n
        d = secret % n if secret else self.rng.randrange(1, n)
        if d == 0:
            raise SignatureError("ECDSA secret must be non-zero")
        return ECDSAKeyPair(secret=d, public_key=self.curve.g1 * d)

    def sign(self, message: Message, keys: ECDSAKeyPair) -> ECDSASignature:
        """Textbook ECDSA signature over SHA-256 of the message."""
        msg = normalize_message(message)
        n = self.curve.n
        z = self._digest_scalar(msg)
        while True:
            k = self.rng.randrange(1, n)
            point = self.curve.g1 * k
            r = point.x.value % n
            if r == 0:
                continue
            s = (inverse_mod(k, n) * (z + r * keys.secret)) % n
            if s == 0:
                continue
            return ECDSASignature(r=r, s=s)

    def verify(
        self, message: Message, signature: ECDSASignature, public_key: CurvePoint
    ) -> bool:
        """Textbook ECDSA verification with full range checks."""
        msg = normalize_message(message)
        n = self.curve.n
        if not isinstance(signature, ECDSASignature):
            raise SignatureError("expected an ECDSASignature")
        if not (0 < signature.r < n and 0 < signature.s < n):
            return False
        if public_key.is_infinity() or not self.curve.g1_curve.contains(public_key):
            return False
        z = self._digest_scalar(msg)
        w = inverse_mod(signature.s, n)
        u1 = (z * w) % n
        u2 = (signature.r * w) % n
        point = self.curve.g1 * u1 + public_key * u2
        if point.is_infinity():
            return False
        return point.x.value % n == signature.r


def signature_size_bytes(curve: BNCurve) -> int:
    """Encoded (r, s) size - two order-width integers."""
    width = (curve.n.bit_length() + 7) // 8
    return 2 * width


def encode_signature(curve: BNCurve, sig: ECDSASignature) -> bytes:
    """Fixed-width big-endian (r, s) encoding."""
    width = (curve.n.bit_length() + 7) // 8
    return sig.r.to_bytes(width, "big") + sig.s.to_bytes(width, "big")


def decode_signature(curve: BNCurve, data: bytes) -> Tuple[ECDSASignature, bytes]:
    """Decode (r, s), returning the remaining bytes."""
    width = (curve.n.bit_length() + 7) // 8
    if len(data) < 2 * width:
        raise SignatureError("truncated ECDSA signature")
    r = int.from_bytes(data[:width], "big")
    s = int.from_bytes(data[width : 2 * width], "big")
    return ECDSASignature(r=r, s=s), data[2 * width :]
