"""ECDSA over the BN curve's G1, from scratch.

The paper's introduction contrasts certificateless crypto with traditional
PKI signatures [18, 14]; this module supplies that baseline.  It is plain
ECDSA on the prime-order group G1 = E(Fp) of whichever BN curve the
deployment uses, so the comparison benchmarks share one curve.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.compat import warn_deprecated
from repro.errors import SignatureError
from repro.pairing.bn import BNCurve, default_test_curve
from repro.pairing.curve import CurvePoint
from repro.pairing.groups import PairingContext
from repro.pairing.numbers import inverse_mod
from repro.schemes.base import (
    Identity,
    Message,
    normalize_identity,
    normalize_message,
)


@dataclass(frozen=True)
class ECDSAKeyPair:
    secret: int
    public_key: CurvePoint
    identity: str = ""


@dataclass(frozen=True)
class ECDSASignature:
    r: int
    s: int


class ECDSA:
    """Textbook ECDSA with deterministic-width SHA-256 message digests.

    Conforms to :class:`repro.schemes.base.SchemeProtocol`: construct it
    from a shared :class:`~repro.pairing.groups.PairingContext` (preferred —
    base-point multiplications then share the context's fixed-base comb
    tables and operation counters) or from a bare :class:`BNCurve` as
    before.  ECDSA has no identity binding; ``verify`` accepts and ignores
    the identity argument.
    """

    name = "ecdsa"

    def __init__(
        self,
        curve: Union[BNCurve, PairingContext, None] = None,
        rng: Optional[random.Random] = None,
    ):
        if isinstance(curve, PairingContext):
            self.ctx = curve
            self.curve = curve.curve
            self.rng = rng if rng is not None else curve.rng
        else:
            self.curve = curve if curve is not None else default_test_curve()
            self.rng = rng if rng is not None else random.Random()
            self.ctx = PairingContext(self.curve, self.rng)
        self.ctx.fixed_base(self.curve.g1)

    def _digest_scalar(self, message: bytes) -> int:
        digest = hashlib.sha256(b"ecdsa:" + message).digest()
        # Standard leftmost-bits truncation to the order's size.
        value = int.from_bytes(digest, "big")
        excess = 256 - self.curve.n.bit_length()
        if excess > 0:
            value >>= excess
        return value % self.curve.n

    def generate_keys(self, secret: Optional[int] = None) -> ECDSAKeyPair:
        """Fresh (or deterministic, given ``secret``) ECDSA key pair."""
        n = self.curve.n
        d = secret % n if secret else self.rng.randrange(1, n)
        if d == 0:
            raise SignatureError("ECDSA secret must be non-zero")
        return ECDSAKeyPair(secret=d, public_key=self.ctx.g1_mul(self.curve.g1, d))

    def generate_user_keys(self, identity: Identity) -> ECDSAKeyPair:
        """Protocol-shaped key generation: a fresh pair tagged with ``identity``."""
        ident = normalize_identity(identity)
        pair = self.generate_keys()
        return ECDSAKeyPair(
            secret=pair.secret, public_key=pair.public_key, identity=ident
        )

    def sign(self, message: Message, keys: ECDSAKeyPair) -> ECDSASignature:
        """Textbook ECDSA signature over SHA-256 of the message."""
        msg = normalize_message(message)
        n = self.curve.n
        z = self._digest_scalar(msg)
        while True:
            k = self.rng.randrange(1, n)
            point = self.ctx.g1_mul(self.curve.g1, k)
            r = point.x.value % n
            if r == 0:
                continue
            s = (inverse_mod(k, n) * (z + r * keys.secret)) % n
            if s == 0:
                continue
            return ECDSASignature(r=r, s=s)

    def verify(
        self,
        message: Message,
        signature: ECDSASignature,
        identity: Optional[Identity] = None,
        public_key: Optional[CurvePoint] = None,
        public_key_extra: Optional[CurvePoint] = None,
    ) -> bool:
        """Textbook ECDSA verification with full range checks.

        Unified protocol shape; the identity is accepted for uniformity and
        ignored.  The pre-unification ``verify(message, signature,
        public_key)`` call still works through a deprecation shim.
        """
        if public_key is None and isinstance(identity, CurvePoint):
            warn_deprecated(
                "ECDSA.verify(message, signature, public_key) is deprecated; "
                "call verify(message, signature, identity, public_key) "
                "(identity may be None)"
            )
            public_key, identity = identity, None
        if public_key is None:
            raise SignatureError("ECDSA.verify requires a public key")
        msg = normalize_message(message)
        n = self.curve.n
        if not isinstance(signature, ECDSASignature):
            raise SignatureError("expected an ECDSASignature")
        if not (0 < signature.r < n and 0 < signature.s < n):
            return False
        if public_key.is_infinity() or not self.curve.g1_curve.contains(public_key):
            return False
        z = self._digest_scalar(msg)
        w = inverse_mod(signature.s, n)
        u1 = (z * w) % n
        u2 = (signature.r * w) % n
        point = self.ctx.g1_mul(self.curve.g1, u1) + public_key * u2
        if point.is_infinity():
            return False
        return point.x.value % n == signature.r


def signature_size_bytes(curve: BNCurve) -> int:
    """Encoded (r, s) size - two order-width integers."""
    width = (curve.n.bit_length() + 7) // 8
    return 2 * width


def encode_signature(curve: BNCurve, sig: ECDSASignature) -> bytes:
    """Fixed-width big-endian (r, s) encoding."""
    width = (curve.n.bit_length() + 7) // 8
    return sig.r.to_bytes(width, "big") + sig.s.to_bytes(width, "big")


def decode_signature(curve: BNCurve, data: bytes) -> Tuple[ECDSASignature, bytes]:
    """Decode (r, s), returning the remaining bytes."""
    width = (curve.n.bit_length() + 7) // 8
    if len(data) < 2 * width:
        raise SignatureError("truncated ECDSA signature")
    r = int.from_bytes(data[:width], "big")
    s = int.from_bytes(data[width : 2 * width], "big")
    return ECDSASignature(r=r, s=s), data[2 * width :]
