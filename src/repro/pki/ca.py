"""A minimal but complete certificate authority for the PKI baseline.

Models exactly the machinery whose cost the paper's introduction argues
certificateless crypto removes: certificates binding identity to public
key, chains up to a root, expiry, and a revocation list.  Used by the PKI
comparison example and the Table 1 context benchmarks (verifying a PKI
signature = verifying the signature + walking the chain + checking the
CRL, i.e. one extra ECDSA verify per chain link).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import CertificateError
from repro.pairing.bn import BNCurve, default_test_curve
from repro.pairing.curve import CurvePoint
from repro.pki.ecdsa import ECDSA, ECDSAKeyPair, ECDSASignature


@dataclass(frozen=True)
class Certificate:
    """A signed (subject, public key, validity) binding."""

    serial: int
    subject: str
    issuer: str
    public_key: CurvePoint
    not_before: float
    not_after: float
    signature: ECDSASignature

    def tbs_bytes(self) -> bytes:
        """The to-be-signed encoding (everything except the signature)."""
        x = self.public_key.x.value if not self.public_key.is_infinity() else 0
        y = self.public_key.y.value if not self.public_key.is_infinity() else 0
        return "|".join(
            [
                str(self.serial),
                self.subject,
                self.issuer,
                str(x),
                str(y),
                repr(self.not_before),
                repr(self.not_after),
            ]
        ).encode("utf-8")


class CertificateAuthority:
    """Issues, verifies and revokes certificates; may be chained."""

    def __init__(
        self,
        name: str,
        curve: Optional[BNCurve] = None,
        parent: Optional["CertificateAuthority"] = None,
        seed: Optional[int] = None,
        validity_seconds: float = 3600.0,
    ):
        self.name = name
        self.curve = curve if curve is not None else default_test_curve()
        self.parent = parent
        self.validity_seconds = validity_seconds
        self.ecdsa = ECDSA(self.curve, random.Random(seed))
        self.keys: ECDSAKeyPair = self.ecdsa.generate_keys()
        self._serial = 0
        self._revoked: Set[int] = set()
        self._issued: Dict[int, Certificate] = {}
        #: this CA's own certificate (None for a self-trusted root)
        self.certificate: Optional[Certificate] = None
        if parent is not None:
            self.certificate = parent.issue(name, self.keys.public_key, now=0.0)

    def issue(
        self, subject: str, public_key: CurvePoint, now: float = 0.0
    ) -> Certificate:
        """Sign a (subject, public key, validity) binding."""
        self._serial += 1
        unsigned = Certificate(
            serial=self._serial,
            subject=subject,
            issuer=self.name,
            public_key=public_key,
            not_before=now,
            not_after=now + self.validity_seconds,
            signature=ECDSASignature(1, 1),  # placeholder replaced below
        )
        signature = self.ecdsa.sign(unsigned.tbs_bytes(), self.keys)
        cert = Certificate(
            serial=unsigned.serial,
            subject=unsigned.subject,
            issuer=unsigned.issuer,
            public_key=unsigned.public_key,
            not_before=unsigned.not_before,
            not_after=unsigned.not_after,
            signature=signature,
        )
        self._issued[cert.serial] = cert
        return cert

    def revoke(self, serial: int) -> None:
        """Add an issued certificate's serial to the CRL."""
        if serial not in self._issued:
            raise CertificateError(f"unknown serial {serial}")
        self._revoked.add(serial)

    def crl(self) -> Set[int]:
        """The (in-memory) certificate revocation list."""
        return set(self._revoked)

    def check_certificate(self, cert: Certificate, now: float = 0.0) -> None:
        """Raise :class:`CertificateError` unless ``cert`` is currently valid."""
        if cert.issuer != self.name:
            raise CertificateError(
                f"certificate issued by {cert.issuer!r}, not {self.name!r}"
            )
        if cert.serial in self._revoked:
            raise CertificateError(f"certificate {cert.serial} is revoked")
        if not cert.not_before <= now <= cert.not_after:
            raise CertificateError("certificate outside its validity window")
        if not self.ecdsa.verify(
            cert.tbs_bytes(), cert.signature, public_key=self.keys.public_key
        ):
            raise CertificateError("certificate signature does not verify")


def verify_chain(
    chain: Sequence[Certificate],
    authorities: Dict[str, CertificateAuthority],
    now: float = 0.0,
) -> None:
    """Validate leaf-to-root; raises on the first broken link.

    ``chain[0]`` is the leaf; each subsequent certificate must certify the
    issuer of the previous one; the last issuer must be a trusted root in
    ``authorities``.
    """
    if not chain:
        raise CertificateError("empty certificate chain")
    for position, cert in enumerate(chain):
        issuer_ca = authorities.get(cert.issuer)
        if issuer_ca is None:
            raise CertificateError(f"unknown issuer {cert.issuer!r}")
        issuer_ca.check_certificate(cert, now=now)
        if position + 1 < len(chain) and chain[position + 1].subject != cert.issuer:
            raise CertificateError("chain is not contiguous")


@dataclass
class CertifiedIdentity:
    """A PKI participant: key pair plus the certificate that vouches for it."""

    name: str
    keys: ECDSAKeyPair
    certificate: Certificate
    chain: List[Certificate]


def enroll_identity(
    name: str,
    ca: CertificateAuthority,
    now: float = 0.0,
    seed: Optional[int] = None,
) -> CertifiedIdentity:
    """Generate a key pair and obtain its certificate chain."""
    ecdsa = ECDSA(ca.curve, random.Random(seed))
    keys = ecdsa.generate_keys()
    cert = ca.issue(name, keys.public_key, now=now)
    chain = [cert]
    authority = ca
    while authority.certificate is not None and authority.parent is not None:
        chain.append(authority.certificate)
        authority = authority.parent
    return CertifiedIdentity(name=name, keys=keys, certificate=cert, chain=chain)
