"""Traditional-PKI baseline: ECDSA and a certificate authority.

The paper's introduction motivates certificateless crypto by the cost and
complexity of certificate management in PKI-based MANET schemes; this
subpackage implements that baseline so the comparison is runnable.
"""

from repro.pki.ca import (
    Certificate,
    CertificateAuthority,
    CertifiedIdentity,
    enroll_identity,
    verify_chain,
)
from repro.pki.ecdsa import ECDSA, ECDSAKeyPair, ECDSASignature

__all__ = [
    "ECDSA",
    "ECDSAKeyPair",
    "ECDSASignature",
    "Certificate",
    "CertificateAuthority",
    "CertifiedIdentity",
    "enroll_identity",
    "verify_chain",
]
