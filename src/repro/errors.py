"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParameterError(ReproError):
    """Invalid or inconsistent cryptographic system parameters."""


class CurveError(ReproError):
    """A point is not on the expected curve, or curve construction failed."""


class FieldError(ReproError):
    """Invalid field arithmetic (mixed moduli, inversion of zero, ...)."""


class SignatureError(ReproError):
    """A signature object is structurally invalid (wrong groups, zero parts)."""


class SerializationError(ReproError):
    """Wire-format encoding or decoding failed."""


class KeyError_(ReproError):
    """A key is malformed or does not match the expected identity/params."""


class SimulationError(ReproError):
    """Invalid simulator configuration or runtime inconsistency."""


class CertificateError(ReproError):
    """Certificate validation failed (bad chain, expired, revoked, forged)."""


class ServiceError(ReproError):
    """Verification-gateway protocol or server failure (ERR/BUSY replies,
    malformed frames, calls against a client that never fetched params)."""
