"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParameterError(ReproError):
    """Invalid or inconsistent cryptographic system parameters."""


class CurveError(ReproError):
    """A point is not on the expected curve, or curve construction failed."""


class FieldError(ReproError):
    """Invalid field arithmetic (mixed moduli, inversion of zero, ...)."""


class SignatureError(ReproError):
    """A signature object is structurally invalid (wrong groups, zero parts)."""


class SerializationError(ReproError):
    """Wire-format encoding or decoding failed."""


class KeyError_(ReproError):
    """A key is malformed or does not match the expected identity/params."""


class SimulationError(ReproError):
    """Invalid simulator configuration or runtime inconsistency."""


class CertificateError(ReproError):
    """Certificate validation failed (bad chain, expired, revoked, forged)."""


class ServiceError(ReproError):
    """Verification-gateway protocol or server failure (ERR/BUSY replies,
    malformed frames, calls against a client that never fetched params)."""


class ServiceBusy(ServiceError):
    """The gateway shed the request (bounded queue full, or draining)."""


class ServiceTimeout(ServiceError):
    """No reply arrived within the client's per-call timeout.

    Distinct from :class:`ServiceConnectionLost`: the TCP stream was
    still up, the server was just silent (stalled, hung, overloaded).
    The reply stream can no longer be re-synchronised, so the client
    drops the connection before retrying."""


class ServiceConnectionLost(ServiceError):
    """The gateway connection died mid-exchange (reset, EOF, refused)."""


class WorkerLostError(ServiceError):
    """A crypto worker process died or hung with this job in flight."""
