"""YHG - Yap, Heng & Goi's efficient certificateless signature (EUC 2006).

Table 1 row "YHG [13]": sign = 2 scalar mults and **no pairing**, verify =
2 pairings + scalar work, 1-point public key.  Before McCLS this was the
most pairing-frugal CLS scheme, which is why the paper singles it out.

Type-3 layout:

* User keys: secret x; public key PK = x*P (G1); partial D_ID = s*Q_ID (G2).
* Sign(M):  r <- Zp*;  U = r*P (G1);  h = H(M, ID, U, PK);
  V = (r + h*x)^{-1} * D_ID (G2);  sigma = (U, V).
* Verify:  h = H(M, ID, U, PK);  accept iff
  e(U + h*PK, V) == e(P_pub, Q_ID).

Correctness:  U + h*PK = (r + h*x)*P, so the left pairing is
e((r+hx)*P, (r+hx)^{-1} * s*Q_ID) = e(P, Q_ID)^s = e(P_pub, Q_ID).
Like McCLS, the right-hand pairing is constant per identity and cacheable;
unlike McCLS the left side still re-pairs per message *and* the scheme
needs a modular inversion inside signing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SignatureError
from repro.pairing.curve import CurvePoint
from repro.schemes.base import (
    CertificatelessScheme,
    Identity,
    Message,
    UserKeyPair,
    normalize_identity,
    normalize_message,
)


@dataclass(frozen=True)
class YHGSignature:
    """sigma = (U, V): G1 point U and G2 point V."""

    u: CurvePoint
    v: CurvePoint


class YHGScheme(CertificatelessScheme):
    """Yap-Heng-Goi CLS (Table 1 column "YHG [13]")."""

    name = "yhg"
    public_key_length_points = 1
    paper_sign_profile = (0, 2, 0)  # 2s
    paper_verify_profile = (2, 3, 0)  # 2p + 3s

    def generate_user_keys(self, identity: Identity) -> UserKeyPair:
        """YHG keys: secret x, public PK = x*P."""
        ident = normalize_identity(identity)
        x = self.ctx.random_scalar()
        pk = self.ctx.g1_mul(self.ctx.g1, x)
        partial = self.extract_partial_key(ident)
        return UserKeyPair(
            identity=ident, secret_value=x, public_key=pk, partial=partial
        )

    def sign(self, message: Message, keys: UserKeyPair) -> YHGSignature:
        """YHG signing: (U, V) = (r*P, (r + h*x)^-1 * D_ID); no pairings."""
        msg = normalize_message(message)
        n = self.ctx.order
        r = self.ctx.random_scalar()
        u = self.ctx.g1_mul(self.ctx.g1, r)
        h = self.ctx.hash_scalar(b"H/yhg", msg, keys.identity, u, keys.public_key)
        denom = (r + h * keys.secret_value) % n
        if denom == 0:  # pragma: no cover - probability 1/n
            return self.sign(message, keys)
        v = self.ctx.g2_mul(keys.partial.d_id, self.ctx.scalar_inverse(denom))
        return YHGSignature(u=u, v=v)

    def verify(
        self,
        message: Message,
        signature: YHGSignature,
        identity: Identity,
        public_key: CurvePoint,
        public_key_extra: Optional[CurvePoint] = None,
    ) -> bool:
        """Check e(U + h*PK, V) == e(P_pub, Q_ID) (constant cacheable)."""
        msg = normalize_message(message)
        if not isinstance(signature, YHGSignature):
            raise SignatureError("expected a YHGSignature")
        ident = normalize_identity(identity)
        curve = self.ctx.curve
        if not curve.g1_curve.contains(signature.u):
            return False
        if signature.v.is_infinity() or not curve.g2_curve.contains(signature.v):
            return False

        h = self.ctx.hash_scalar(b"H/yhg", msg, ident, signature.u, public_key)
        left_g1 = signature.u + self.ctx.g1_mul(public_key, h)
        q_id = self.q_of(ident)
        # Miller-cached co-DH check: cold = 2 Miller loops + 1 shared final
        # exponentiation; warm = 1 pairing against the cached constant.
        return self.ctx.codh_check_cached(
            left_g1, signature.v, self.p_pub_g1, q_id
        )
