"""ZWXF - Zhang, Wong, Xu & Feng's certificateless signature (ACNS 2006).

Table 1 row "ZWXF [17]": sign = 4 scalar-mult-equivalents, verify =
4 pairings + 3 scalar-mult-equivalents, 1-point public key.  (The paper's
accounting counts each MapToPoint hash as one scalar-mult-equivalent, which
is how a 3-mult/1-hash signing operation shows up as "4s"; the benchmark
harness reports both raw and equivalent counts.)

Type-3 layout:

* User keys: secret x; public key PK = x*P (G1); partial D_ID = s*Q_ID (G2).
* Sign(M):  r <- Zp*;  U = r*P (G1);  W  = H3(M, ID, U)  in G2;
  W' = H4(ID, PK) in G2 (per-signer, cached after the first signature);
  V = D_ID + r*W + x*W' (G2);  sigma = (U, V).
* Verify:  e(U', V') relation
  e(P, V) == e(P_pub, Q_ID) * e(U, W) * e(PK, W')
  which needs four pairings, matching the paper's count.

Correctness: e(P, D_ID + r*W + x*W')
           = e(P, s*Q_ID) * e(P, W)^r * e(P, W')^x
           = e(P_pub, Q_ID) * e(U, W) * e(PK, W').
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SignatureError
from repro.pairing.curve import CurvePoint
from repro.schemes.base import (
    CertificatelessScheme,
    Identity,
    Message,
    UserKeyPair,
    normalize_identity,
    normalize_message,
)


@dataclass(frozen=True)
class ZWXFSignature:
    """sigma = (U, V): G1 point U and G2 point V."""

    u: CurvePoint
    v: CurvePoint


class ZWXFScheme(CertificatelessScheme):
    """Zhang-Wong-Xu-Feng CLS (Table 1 column "ZWXF [17]")."""

    name = "zwxf"
    public_key_length_points = 1
    paper_sign_profile = (0, 4, 0)  # 4s (3 mults + 1 MapToPoint-equivalent)
    paper_verify_profile = (4, 3, 0)  # 4p + 3s (3 MapToPoint-equivalents)

    def generate_user_keys(self, identity: Identity) -> UserKeyPair:
        """ZWXF keys: secret x, public PK = x*P."""
        ident = normalize_identity(identity)
        x = self.ctx.random_scalar()
        pk = self.ctx.g1_mul(self.ctx.g1, x)
        partial = self.extract_partial_key(ident)
        return UserKeyPair(
            identity=ident, secret_value=x, public_key=pk, partial=partial
        )

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._w_prime_cache = {}

    def _w_prime(self, identity: str, public_key: CurvePoint) -> CurvePoint:
        """W' = H4(ID, PK): message-independent, cached per signer."""
        key = (identity, public_key)
        cached = self._w_prime_cache.get(key)
        if cached is None:
            cached = self.ctx.hash_g2(b"H4/zwxf", identity, public_key)
            self._w_prime_cache[key] = cached
        return cached

    def sign(self, message: Message, keys: UserKeyPair) -> ZWXFSignature:
        """ZWXF signing: (U, V) = (r*P, D_ID + r*W + x*W')."""
        msg = normalize_message(message)
        r = self.ctx.random_scalar()
        u = self.ctx.g1_mul(self.ctx.g1, r)
        w = self.ctx.hash_g2(b"H3/zwxf", msg, keys.identity, u)
        w_prime = self._w_prime(keys.identity, keys.public_key)
        v = (
            keys.partial.d_id
            + self.ctx.g2_mul(w, r)
            + self.ctx.g2_mul(w_prime, keys.secret_value)
        )
        return ZWXFSignature(u=u, v=v)

    def verify(
        self,
        message: Message,
        signature: ZWXFSignature,
        identity: Identity,
        public_key: CurvePoint,
        public_key_extra: Optional[CurvePoint] = None,
    ) -> bool:
        """Check e(P, V) against the three-factor pairing product."""
        msg = normalize_message(message)
        if not isinstance(signature, ZWXFSignature):
            raise SignatureError("expected a ZWXFSignature")
        ident = normalize_identity(identity)
        curve = self.ctx.curve
        if not curve.g1_curve.contains(signature.u):
            return False
        if not curve.g2_curve.contains(signature.v):
            return False

        q_id = self.q_of(ident)
        w = self.ctx.hash_g2(b"H3/zwxf", msg, ident, signature.u)
        w_prime = self.ctx.hash_g2(b"H4/zwxf", ident, public_key)
        # e(P, V) == e(P_pub, Q_ID) * e(U, W) * e(PK, W') rearranged so the
        # three non-constant pairings share ONE final exponentiation; the
        # constant keeps its GT-value cache (0 executed pairings when warm).
        lhs = self.ctx.multi_pair(
            [
                (self.ctx.g1, signature.v),
                (-signature.u, w),
                (-public_key, w_prime),
            ]
        )
        return lhs == self.ctx.pair_cached(self.p_pub_g1, q_id)
