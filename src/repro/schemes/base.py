"""Common interfaces and key material types for all signature schemes.

Every certificateless scheme in this package follows the five-stage shape
from Al-Riyami & Paterson that the paper adopts:

1. ``Setup``                    (KGC: master key s, public params)
2. ``Extract-Partial-Private-Key(ID)``  (KGC: D_ID from s and the identity)
3. ``Generate-Key-Pair``        (user: secret value x, public key P_ID)
4. ``Sign``                     (user: needs both D_ID and x)
5. ``Verify``                   (anyone: needs params, ID, P_ID)

All schemes are instantiated on a type-3 pairing (G1 x G2 -> GT); identity
hashes land in G2 and the "P side" in G1 (DESIGN.md 4.1).  Every group
operation goes through the scheme's :class:`~repro.pairing.groups
.PairingContext`, which is how the Table 1 operation counts are measured.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Protocol, Tuple, Union, runtime_checkable

from repro.errors import KeyError_
from repro.obs.registry import get_registry
from repro.pairing.curve import CurvePoint
from repro.pairing.groups import OpCount, PairingContext

Message = Union[bytes, str]
Identity = Union[bytes, str]


@runtime_checkable
class SchemeProtocol(Protocol):
    """The unified signature-scheme surface.

    Everything the simulator, the benchmarks, and the registry touch speaks
    this protocol — the certificateless schemes, the hardened variant, the
    batch-verifier wrapper, and the IBS/BLS/ECDSA baselines alike:

    * ``name`` — short registry name (drives the crypto timing model).
    * ``generate_user_keys(identity)`` — all per-user key material, as an
      object with at least ``identity`` and ``public_key`` attributes.
    * ``sign(message, keys)`` — signature over the message.
    * ``verify(message, signature, identity, public_key, ...)`` — boolean
      check from public information only.  Schemes that do not bind
      identities (BLS, ECDSA) accept and ignore the identity argument;
      schemes without standalone public keys (IBS) accept ``public_key=None``.
    """

    name: str

    def generate_user_keys(self, identity: Identity):
        """All per-user key material (has identity + public_key attrs)."""

    def sign(self, message: Message, keys):
        """A signature over ``message`` under ``keys``."""

    def verify(
        self,
        message: Message,
        signature,
        identity: Identity,
        public_key=None,
        public_key_extra=None,
    ) -> bool:
        """Check a signature from public information only."""
        ...


@dataclass(frozen=True)
class PartialPrivateKey:
    """KGC-issued partial key: D_ID = s * H1(ID) plus the hashed identity."""

    identity: str
    q_id: CurvePoint  # H1(ID), in G2
    d_id: CurvePoint  # s * Q_ID, in G2


@dataclass(frozen=True)
class UserKeyPair:
    """Full certificateless key material held by one user."""

    identity: str
    secret_value: int  # x, chosen by the user, unknown to the KGC
    public_key: CurvePoint  # scheme-specific; single point for most schemes
    partial: PartialPrivateKey
    # AP is the only scheme with a 2-point public key ("PubKey Len 2 points"
    # in Table 1); other schemes leave this None.
    public_key_extra: Optional[CurvePoint] = None
    # Schemes that derive a long-term full private key at key-generation
    # time (AP: S_A = x * D_ID) store it here so signing does not pay the
    # derivation again on every message.
    full_private_key: Optional[CurvePoint] = None

    def public_key_points(self) -> Tuple[CurvePoint, ...]:
        """The public key as a tuple of points (1 or 2)."""
        if self.public_key_extra is not None:
            return (self.public_key, self.public_key_extra)
        return (self.public_key,)


def normalize_identity(identity: Identity) -> str:
    """Canonicalise an identity to str (UTF-8 decodes bytes)."""
    if isinstance(identity, bytes):
        return identity.decode("utf-8")
    if isinstance(identity, str):
        return identity
    raise KeyError_(f"identity must be str or bytes, got {type(identity).__name__}")


def normalize_message(message: Message) -> bytes:
    """Canonicalise a message to bytes (UTF-8 encodes str)."""
    if isinstance(message, str):
        return message.encode("utf-8")
    if isinstance(message, bytes):
        return message
    raise TypeError(f"message must be str or bytes, got {type(message).__name__}")


class CertificatelessScheme(abc.ABC):
    """Abstract base of the four CLS schemes compared in the paper.

    A scheme instance *is* a KGC: it owns the master secret generated at
    construction (or accepts one for reproducibility) and exposes the user
    and verifier operations.  Verifiers in a real deployment hold only
    ``public_params()``; the split is preserved by the network simulator,
    which never reads ``master_secret`` from non-KGC nodes.
    """

    #: short registry name, e.g. "mccls", "ap"
    name: str = ""
    #: H1 domain override: a variant scheme (e.g. McCLS+) sets this to its
    #: parent's name so identity hashes - and thus keys and signatures -
    #: stay interchangeable with the parent scheme
    h1_compat_name: str = ""
    #: number of G1/G2 points in a user public key (paper Table 1 row 3)
    public_key_length_points: int = 1

    def __init__(self, ctx: PairingContext, master_secret: Optional[int] = None):
        self.ctx = ctx
        curve = ctx.curve
        self.master_secret = (
            master_secret % curve.n if master_secret else ctx.random_scalar()
        )
        if self.master_secret == 0:
            raise KeyError_("master secret must be non-zero")
        # P_pub on both sides of the pairing: schemes pick what they need.
        self.p_pub_g1 = curve.g1 * self.master_secret
        self.p_pub_g2 = curve.g2 * self.master_secret
        # The generators and P_pub are multiplied on every sign/verify, so
        # they are the canonical fixed bases for comb precomputation —
        # pinned outside the LRU so per-identity Q_ID churn can never
        # evict them.
        ctx.fixed_base(curve.g1, pin=True)
        ctx.fixed_base(curve.g2, pin=True)
        ctx.fixed_base(self.p_pub_g1, pin=True)
        ctx.fixed_base(self.p_pub_g2, pin=True)

    # -- rekey ----------------------------------------------------------------
    def rotate_master_secret(self, new_secret: Optional[int] = None) -> int:
        """Replace the master secret (and P_pub) with a fresh one.

        The operational response to a suspected KGC compromise: every
        previously issued partial key and every signature made under it
        stops verifying, so the caller must re-issue user key material
        afterwards (see ``KeyGenerationCenter.rekey``).

        Crucially this also invalidates every derived artifact of the old
        P_pub, which would otherwise stay alive (or worse, keep being
        *used*): the memoised e(P_pub, Q_ID) GT/Miller cache entries, the
        old P_pub fixed-base comb tables, and any scheme-private caches
        (via the :meth:`_on_rekey` hook).  Returns the new master secret.
        """
        curve = self.ctx.curve
        old_p_pub_g1, old_p_pub_g2 = self.p_pub_g1, self.p_pub_g2
        secret = (
            new_secret % curve.n if new_secret else self.ctx.random_scalar()
        )
        if secret == 0:
            raise KeyError_("master secret must be non-zero")
        self.master_secret = secret
        self.p_pub_g1 = curve.g1 * secret
        self.p_pub_g2 = curve.g2 * secret
        self.ctx.drop_fixed_base(old_p_pub_g1)
        self.ctx.drop_fixed_base(old_p_pub_g2)
        self.ctx.fixed_base(self.p_pub_g1, pin=True)
        self.ctx.fixed_base(self.p_pub_g2, pin=True)
        # Old e(P_pub, Q_ID) entries are dead weight at best (the cache key
        # includes P_pub, so they can never match again) - drop them all.
        self.ctx.clear_pairing_cache()
        self._on_rekey()
        get_registry().counter("kgc.rekeys").inc()
        return self.master_secret

    def _on_rekey(self) -> None:
        """Hook for scheme-private cache invalidation on master rekey."""

    # -- stage 2: KGC ---------------------------------------------------------
    def _h1_domain(self) -> bytes:
        return b"H1/" + (self.h1_compat_name or self.name).encode()

    def extract_partial_key(self, identity: Identity) -> PartialPrivateKey:
        """D_ID = s * H1(ID).  Run by the KGC over a secure channel."""
        ident = normalize_identity(identity)
        q_id = self.ctx.fixed_base(self.ctx.hash_g2(self._h1_domain(), ident))
        # Q_ID is a cofactor-cleared hash output, so the GLS fast path is
        # sound here.
        d_id = self.ctx.g2_mul(q_id, self.master_secret, in_subgroup=True)
        return PartialPrivateKey(identity=ident, q_id=q_id, d_id=d_id)

    # -- stage 3: user --------------------------------------------------------
    @abc.abstractmethod
    def generate_user_keys(self, identity: Identity) -> UserKeyPair:
        """Pick the secret value x and derive the user public key."""

    # -- stages 4/5 -----------------------------------------------------------
    @abc.abstractmethod
    def sign(self, message: Message, keys: UserKeyPair):
        """Produce a signature; requires both D_ID and the secret value."""

    @abc.abstractmethod
    def verify(
        self,
        message: Message,
        signature,
        identity: Identity,
        public_key: CurvePoint,
        public_key_extra: Optional[CurvePoint] = None,
    ) -> bool:
        """Check a signature given only public information."""

    # -- shared helpers --------------------------------------------------------
    def q_of(self, identity: Identity) -> CurvePoint:
        """Public recomputation of Q_ID = H1(ID) (not counted as secret)."""
        return self.ctx.fixed_base(
            self.ctx.hash_g2(self._h1_domain(), normalize_identity(identity))
        )

    def measure_sign(self, message: Message, keys: UserKeyPair):
        """Return (signature, OpCount) for one signing operation.

        The call also runs inside an obs phase ``<scheme>.sign``, so an
        active :mod:`repro.obs` registry additionally receives the
        field-level operation counts under that label.
        """
        with get_registry().phase(f"{self.name}.sign"):
            with self.ctx.measure() as meter:
                sig = self.sign(message, keys)
        return sig, meter.delta

    def measure_verify(
        self,
        message: Message,
        signature,
        keys: UserKeyPair,
    ) -> Tuple[bool, OpCount]:
        """Return (ok, OpCount) for one verification (cold caches unless
        the caller pre-warmed them).

        Runs inside an obs phase ``<scheme>.verify`` (see
        :meth:`measure_sign`).
        """
        with get_registry().phase(f"{self.name}.verify"):
            with self.ctx.measure() as meter:
                ok = self.verify(
                    message,
                    signature,
                    keys.identity,
                    keys.public_key,
                    keys.public_key_extra,
                )
        return ok, meter.delta

    # Expected Table 1 profiles, as (pairings, scalar_mults, exponentiations).
    #: operation profile the paper's Table 1 claims for Sign
    paper_sign_profile: Tuple[int, int, int] = (0, 0, 0)
    #: operation profile the paper's Table 1 claims for Verify
    paper_verify_profile: Tuple[int, int, int] = (0, 0, 0)
