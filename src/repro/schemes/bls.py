"""BLS short signatures (Boneh-Lynn-Shacham) as a primitive baseline.

Not compared in the paper's Table 1, but it is the simplest pairing
signature and a useful calibration point for the benchmark harness (one
hash-to-group + one scalar mult to sign; two pairings to verify), and the
building block the GDH-group assumption in Section 3 is usually introduced
with.

Layout: secret z; public key PK = z*P2 (G2); sigma = z*H(M) with H into G1;
verify e(sigma, P2) == e(H(M), PK).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.compat import warn_deprecated
from repro.errors import SignatureError
from repro.pairing.curve import CurvePoint
from repro.pairing.groups import PairingContext
from repro.schemes.base import (
    Identity,
    Message,
    normalize_identity,
    normalize_message,
)


@dataclass(frozen=True)
class BLSKeyPair:
    secret: int
    public_key: CurvePoint  # in G2
    identity: str = ""


@dataclass(frozen=True)
class BLSSignature:
    sigma: CurvePoint  # in G1


class BLSScheme:
    """Plain BLS over the shared pairing context.

    Conforms to :class:`repro.schemes.base.SchemeProtocol`; BLS has no
    identity binding, so ``verify`` accepts and ignores the identity slot.
    """

    name = "bls"

    def __init__(self, ctx: PairingContext):
        self.ctx = ctx
        ctx.fixed_base(ctx.g2)

    def generate_keys(self, secret: Optional[int] = None) -> BLSKeyPair:
        """Fresh (or deterministic, given ``secret``) BLS key pair."""
        z = secret % self.ctx.order if secret else self.ctx.random_scalar()
        if z == 0:
            raise SignatureError("BLS secret must be non-zero")
        return BLSKeyPair(secret=z, public_key=self.ctx.g2_mul(self.ctx.g2, z))

    def generate_user_keys(self, identity: Identity) -> BLSKeyPair:
        """Protocol-shaped key generation: a fresh pair tagged with ``identity``."""
        ident = normalize_identity(identity)
        pair = self.generate_keys()
        return BLSKeyPair(
            secret=pair.secret, public_key=pair.public_key, identity=ident
        )

    def sign(self, message: Message, keys: BLSKeyPair) -> BLSSignature:
        """sigma = z * H(M): one hash-to-G1 and one multiplication."""
        msg = normalize_message(message)
        h = self.ctx.hash_g1(b"H/bls", msg)
        return BLSSignature(sigma=self.ctx.g1_mul(h, keys.secret))

    def verify(
        self,
        message: Message,
        signature: BLSSignature,
        identity: Optional[Identity] = None,
        public_key: Optional[CurvePoint] = None,
        public_key_extra: Optional[CurvePoint] = None,
    ) -> bool:
        """Check e(sigma, P2) == e(H(M), PK).

        Unified protocol shape; the identity is accepted for uniformity and
        ignored.  The pre-unification ``verify(message, signature,
        public_key)`` call still works through a deprecation shim.
        """
        if public_key is None and isinstance(identity, CurvePoint):
            warn_deprecated(
                "BLSScheme.verify(message, signature, public_key) is "
                "deprecated; call verify(message, signature, identity, "
                "public_key) (identity may be None)"
            )
            public_key, identity = identity, None
        if public_key is None:
            raise SignatureError("BLS.verify requires a public key")
        msg = normalize_message(message)
        if not isinstance(signature, BLSSignature):
            raise SignatureError("expected a BLSSignature")
        if not self.ctx.curve.g1_curve.contains(signature.sigma):
            return False
        h = self.ctx.hash_g1(b"H/bls", msg)
        # e(sigma, P2) == e(H(M), PK) evaluated as a 2-term multi-pairing
        # sharing one final exponentiation; the honest hash point is the
        # side that gets negated.
        return self.ctx.multi_pair_check(
            [(signature.sigma, self.ctx.g2), (-h, public_key)]
        )
