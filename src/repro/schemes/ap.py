"""AP - the Al-Riyami & Paterson certificateless signature (ASIACRYPT 2003).

The first CLS scheme and the paper's first comparison row in Table 1:
sign = 1 pairing + 3 scalar mults, verify = 4 pairings + 1 exponentiation,
public key = **2 points** (the only scheme in the table with a 2-point key).

Type-3 layout (DESIGN.md 4.1): identities hash to G2.

* User keys: secret x; public key pair  X_A = x*P (G1),  Y_A = x*P_pub (G1);
  full private key S_A = x*D_ID (G2).
* Sign(M):  a <- Zp*;  r = e(a*P, P2) in GT;  v = H(M, r);
  U = v*S_A + a*P2 (G2);  sigma = (U, v).
* Verify: first the AP key-consistency check
  e(X_A, P_pub2) == e(Y_A, P2)  - this is what replaces a certificate -
  then recover  r' = e(P, U) * e(Y_A, Q_ID)^(-v)  and accept iff
  v == H(M, r').

Correctness:  e(P, U) = e(P, S_A)^v * e(P, P2)^a = e(Y_A, Q_ID)^v * r,
since e(P, x*s*Q_ID) = e(x*s*P, Q_ID) = e(Y_A, Q_ID).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SignatureError
from repro.pairing.curve import CurvePoint
from repro.schemes.base import (
    CertificatelessScheme,
    Identity,
    Message,
    UserKeyPair,
    normalize_identity,
    normalize_message,
)


@dataclass(frozen=True)
class APSignature:
    """sigma = (U, v): G2 point U and scalar v."""

    u: CurvePoint
    v: int


class APScheme(CertificatelessScheme):
    """Al-Riyami-Paterson CLS (Table 1 column "AP [1]")."""

    name = "ap"
    public_key_length_points = 2
    paper_sign_profile = (1, 3, 0)  # 1p + 3s
    paper_verify_profile = (4, 0, 1)  # 4p + 1e

    def generate_user_keys(self, identity: Identity) -> UserKeyPair:
        """AP keys: secret x, public pair (X_A, Y_A), stored S_A."""
        ident = normalize_identity(identity)
        x = self.ctx.random_scalar()
        x_a = self.ctx.g1_mul(self.ctx.g1, x)
        y_a = self.ctx.g1_mul(self.p_pub_g1, x)
        partial = self.extract_partial_key(ident)
        # AP derives the long-term full private key S_A = x * D_ID once.
        s_a = self.ctx.g2_mul(partial.d_id, x)
        return UserKeyPair(
            identity=ident,
            secret_value=x,
            public_key=x_a,
            partial=partial,
            public_key_extra=y_a,
            full_private_key=s_a,
        )

    def sign(self, message: Message, keys: UserKeyPair) -> APSignature:
        """AP signing: one pairing (the GT commitment) plus three mults."""
        msg = normalize_message(message)
        if keys.full_private_key is None:
            raise SignatureError("AP keys must carry the full private key S_A")
        a = self.ctx.random_scalar()
        r_gt = self.ctx.pair(self.ctx.g1_mul(self.ctx.g1, a), self.ctx.g2)
        v = self.ctx.hash_scalar(b"H/ap", msg, *_gt_items(r_gt))
        u = self.ctx.g2_mul(keys.full_private_key, v) + self.ctx.g2_mul(
            self.ctx.g2, a
        )
        return APSignature(u=u, v=v)

    def verify(
        self,
        message: Message,
        signature: APSignature,
        identity: Identity,
        public_key: CurvePoint,
        public_key_extra: Optional[CurvePoint] = None,
    ) -> bool:
        """AP verification: key-consistency check plus commitment recovery."""
        msg = normalize_message(message)
        if not isinstance(signature, APSignature):
            raise SignatureError("expected an APSignature")
        if public_key_extra is None:
            raise SignatureError("AP verification needs the 2-point public key")
        if not (0 < signature.v < self.ctx.order):
            return False
        curve = self.ctx.curve
        if not curve.g2_curve.contains(signature.u):
            return False

        # Key-consistency check (the certificateless stand-in for a cert):
        # e(X_A, P_pub2) == e(Y_A, P2)  <=>  Y_A = s * X_A, evaluated as a
        # 2-term multi-pairing sharing one final exponentiation.
        if not self.ctx.multi_pair_check(
            [(public_key, self.p_pub_g2), (-public_key_extra, self.ctx.g2)]
        ):
            return False

        q_id = self.q_of(identity)
        r_recovered = self.ctx.pair(self.ctx.g1, signature.u) * self.ctx.gt_exp(
            self.ctx.pair(public_key_extra, q_id), -signature.v % self.ctx.order
        )
        v_check = self.ctx.hash_scalar(b"H/ap", msg, *_gt_items(r_recovered))
        return v_check == signature.v


def _gt_items(value):
    """Flatten a GT (Fp12) element into hashable integers."""
    return tuple(value.coeffs)
