"""Signature schemes: McCLS's comparison baselines and building blocks.

* :mod:`repro.schemes.ap`   - Al-Riyami-Paterson CLS (Table 1 "AP").
* :mod:`repro.schemes.zwxf` - Zhang-Wong-Xu-Feng CLS (Table 1 "ZWXF").
* :mod:`repro.schemes.yhg`  - Yap-Heng-Goi CLS (Table 1 "YHG").
* :mod:`repro.schemes.ibs`  - the underlying ID-based signature + PKG
  (with the key-escrow demonstration).
* :mod:`repro.schemes.bls`  - BLS short signatures (primitive baseline).

McCLS itself lives in :mod:`repro.core.mccls` (it is the paper's
contribution, not a baseline).
"""

from repro.schemes.ap import APScheme, APSignature
from repro.schemes.base import (
    CertificatelessScheme,
    PartialPrivateKey,
    SchemeProtocol,
    UserKeyPair,
)
from repro.schemes.bls import BLSScheme, BLSSignature
from repro.schemes.ibs import ChaCheonIBS, IBSSignature, PrivateKeyGenerator
from repro.schemes.registry import (
    all_scheme_classes,
    all_scheme_names,
    create_scheme,
    scheme_class,
    scheme_names,
)
from repro.schemes.yhg import YHGScheme, YHGSignature
from repro.schemes.zwxf import ZWXFScheme, ZWXFSignature

__all__ = [
    "CertificatelessScheme",
    "SchemeProtocol",
    "PartialPrivateKey",
    "UserKeyPair",
    "APScheme",
    "APSignature",
    "ZWXFScheme",
    "ZWXFSignature",
    "YHGScheme",
    "YHGSignature",
    "ChaCheonIBS",
    "IBSSignature",
    "PrivateKeyGenerator",
    "BLSScheme",
    "BLSSignature",
    "all_scheme_classes",
    "all_scheme_names",
    "create_scheme",
    "scheme_class",
    "scheme_names",
]
