"""ECLS: a pairing-free certificateless signature scheme on G1.

He & Chen (arXiv:1106.3898) and the schemes Pakniat analyses
(arXiv:1909.10816) build certificateless crypto on *plain* elliptic-curve
arithmetic: the KGC's contribution to a user key is a Schnorr-style
scalar instead of a pairing-group point, so signing and verification
never touch the Miller loop or the final exponentiation.  This module
carries that construction onto the repository's existing curve stack —
the prime-order group G1 of whichever BN curve the deployment runs — so
ECLS shares generators, comb tables and operation counters with McCLS
while costing zero pairings.

Construction (the standard pairing-free CLS shape):

* **Setup.**  Master secret ``s``; ``P_pub = s*P``.
* **Partial key.**  For identity ``ID`` the KGC picks ``r``, publishes
  ``R_ID = r*P`` and hands over ``d = r + s*H1(ID, R_ID, P_pub) mod n``.
  Anyone can check ``d*P == R_ID + H1(ID, R_ID, P_pub)*P_pub``.
* **User key.**  Secret value ``x``; public key ``P_ID = x*P`` (with
  ``R_ID`` travelling alongside as the second public-key point).
* **Sign.**  ``T = t*P``; ``h = H2(M, ID, T, P_ID, R_ID, P_pub)``;
  ``z = t + h*(x + d) mod n``.  The signature is ``(T, z)``.
* **Verify.**  ``z*P == T + h*(P_ID + R_ID + H1(ID, R_ID, P_pub)*P_pub)``.

``H2`` binds the *whole* public key (``P_ID``, ``R_ID`` **and**
``P_pub``): Pakniat's public-key-replacement forgeries work exactly when
a scheme omits one of these bindings, which is why
:class:`WeakECLSUnboundKey` / :class:`WeakECLSNoUserSecret` exist below
as deliberately-broken variants for the security games — never register
or deploy them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import KeyError_, SignatureError
from repro.obs.registry import get_registry
from repro.pairing.curve import CurvePoint
from repro.pairing.groups import OpCount, PairingContext
from repro.schemes.base import (
    Identity,
    Message,
    normalize_identity,
    normalize_message,
)


@dataclass(frozen=True)
class ECLSPartialKey:
    """KGC-issued Schnorr-style partial key for one identity.

    ``r_pub`` (= r*P) is public and travels with the user's public key;
    ``d`` (= r + s*H1(ID, R_ID, P_pub) mod n) is the secret scalar only
    the KGC can produce.
    """

    identity: str
    r_pub: CurvePoint
    d: int


@dataclass(frozen=True)
class ECLSKeyPair:
    """Full ECLS key material held by one user."""

    identity: str
    secret_value: int  # x, chosen by the user, unknown to the KGC
    public_key: CurvePoint  # P_ID = x*P
    partial: ECLSPartialKey
    # R_ID rides in the protocol's public_key_extra slot so the unified
    # verify(message, sig, identity, public_key, public_key_extra) call
    # shape carries everything a verifier needs.
    public_key_extra: Optional[CurvePoint] = None
    full_private_key: Optional[int] = None  # x + d mod n, cached

    def public_key_points(self) -> Tuple[CurvePoint, ...]:
        """The full two-point public key ``(P_ID, R_ID)``."""
        return (self.public_key, self.public_key_extra)


@dataclass(frozen=True)
class ECLSSignature:
    """(T, z) Schnorr-style signature: T = t*P, z = t + h*(x + d)."""

    t_pub: CurvePoint
    z: int


class ECLSScheme:
    """Pairing-free certificateless signatures on G1.

    Conforms to :class:`repro.schemes.base.SchemeProtocol` and mirrors
    the KGC surface of :class:`~repro.schemes.base.CertificatelessScheme`
    (``master_secret``, ``extract_partial_key``, ``rotate_master_secret``)
    so :class:`~repro.core.params.KeyGenerationCenter` and the service
    rekey chain drive it unchanged — but every group operation stays in
    G1 and no code path reaches a pairing.
    """

    name = "ecls"
    public_key_length_points = 2

    def __init__(self, ctx: PairingContext, master_secret: Optional[int] = None):
        self.ctx = ctx
        curve = ctx.curve
        self.master_secret = (
            master_secret % curve.n if master_secret else ctx.random_scalar()
        )
        if self.master_secret == 0:
            raise KeyError_("master secret must be non-zero")
        self.p_pub = ctx.g1_mul(curve.g1, self.master_secret)
        ctx.fixed_base(curve.g1, pin=True)
        ctx.fixed_base(self.p_pub, pin=True)

    # compatibility alias: service/batch code addresses the G1 master
    # public key as p_pub_g1 on every scheme
    @property
    def p_pub_g1(self) -> CurvePoint:
        return self.p_pub

    # -- rekey -----------------------------------------------------------------
    def rotate_master_secret(self, new_secret: Optional[int] = None) -> int:
        """Replace the master secret and P_pub; old partial keys die.

        Every ``d`` issued under the old ``s`` stops verifying (H1 binds
        P_pub), so the caller must re-issue user key material — and any
        session keys agreed under old partial keys must be invalidated,
        which :class:`repro.service.server.VerificationGateway` does by
        flushing its session table on REKEY.
        """
        curve = self.ctx.curve
        old_p_pub = self.p_pub
        secret = (
            new_secret % curve.n if new_secret else self.ctx.random_scalar()
        )
        if secret == 0:
            raise KeyError_("master secret must be non-zero")
        self.master_secret = secret
        self.p_pub = self.ctx.g1_mul(curve.g1, secret)
        self.ctx.drop_fixed_base(old_p_pub)
        self.ctx.fixed_base(self.p_pub, pin=True)
        get_registry().counter("kgc.rekeys").inc()
        return self.master_secret

    # -- hashing ---------------------------------------------------------------
    def _h1(self, identity: str, r_pub: CurvePoint) -> int:
        """Partial-key binding hash H1(ID, R_ID, P_pub) -> Z_n."""
        return self.ctx.hash_scalar(b"H1/ecls", identity, r_pub, self.p_pub)

    def _h2(
        self,
        message: bytes,
        identity: str,
        t_pub: CurvePoint,
        public_key: CurvePoint,
        r_pub: CurvePoint,
    ) -> int:
        """Message hash; binds the full public key against replacement."""
        return self.ctx.hash_scalar(
            b"H2/ecls", message, identity, t_pub, public_key, r_pub, self.p_pub
        )

    # -- stage 2: KGC ----------------------------------------------------------
    def extract_partial_key(self, identity: Identity) -> ECLSPartialKey:
        """(R_ID, d) with d = r + s*H1(ID, R_ID, P_pub) mod n."""
        ident = normalize_identity(identity)
        n = self.ctx.order
        r = self.ctx.random_scalar()
        r_pub = self.ctx.g1_mul(self.ctx.g1, r)
        d = (r + self.master_secret * self._h1(ident, r_pub)) % n
        return ECLSPartialKey(identity=ident, r_pub=r_pub, d=d)

    def partial_key_is_valid(self, partial: ECLSPartialKey) -> bool:
        """Public check: d*P == R_ID + H1(ID, R_ID, P_pub)*P_pub."""
        expected = self.ctx.g1_msm(
            [
                (partial.r_pub, 1),
                (self.p_pub, self._h1(partial.identity, partial.r_pub)),
            ]
        )
        return self.ctx.g1_mul(self.ctx.g1, partial.d % self.ctx.order) == expected

    # -- stage 3: user ---------------------------------------------------------
    def generate_user_keys(self, identity: Identity) -> ECLSKeyPair:
        """Full key material: partial key plus user-chosen ``x``."""
        ident = normalize_identity(identity)
        n = self.ctx.order
        partial = self.extract_partial_key(ident)
        x = self.ctx.random_scalar()
        return ECLSKeyPair(
            identity=ident,
            secret_value=x,
            public_key=self.ctx.g1_mul(self.ctx.g1, x),
            partial=partial,
            public_key_extra=partial.r_pub,
            full_private_key=(x + partial.d) % n,
        )

    # -- stage 4: sign ---------------------------------------------------------
    def sign(self, message: Message, keys: ECLSKeyPair) -> ECLSSignature:
        """Schnorr-style ``(T, z)`` under the combined key ``x + d``."""
        msg = normalize_message(message)
        n = self.ctx.order
        secret = keys.full_private_key
        if secret is None:
            secret = (keys.secret_value + keys.partial.d) % n
        if secret % n == 0:
            raise SignatureError("degenerate ECLS signing key")
        while True:
            t = self.ctx.random_scalar()
            t_pub = self.ctx.g1_mul(self.ctx.g1, t)
            h = self._h2(
                msg, keys.identity, t_pub, keys.public_key, keys.partial.r_pub
            )
            z = (t + h * secret) % n
            if z:
                return ECLSSignature(t_pub=t_pub, z=z)

    # -- stage 5: verify -------------------------------------------------------
    def verify(
        self,
        message: Message,
        signature: ECLSSignature,
        identity: Identity,
        public_key: Optional[CurvePoint] = None,
        public_key_extra: Optional[CurvePoint] = None,
    ) -> bool:
        """z*P == T + h*(P_ID + R_ID + H1*P_pub), total over hostile input."""
        try:
            msg = normalize_message(message)
            ident = normalize_identity(identity)
            n = self.ctx.order
            curve = self.ctx.curve
            if not isinstance(signature, ECLSSignature):
                return False
            if not isinstance(public_key, CurvePoint) or not isinstance(
                public_key_extra, CurvePoint
            ):
                return False
            if public_key.is_infinity() or public_key_extra.is_infinity():
                return False
            for point in (signature.t_pub, public_key, public_key_extra):
                if not curve.g1_curve.contains(point):
                    return False
            if not (0 < signature.z < n):
                return False
            h1 = self._h1(ident, public_key_extra)
            h = self._h2(msg, ident, signature.t_pub, public_key, public_key_extra)
            # z*P - h*(P_ID + R_ID) - h*h1*P_pub == T, one 4-term MSM
            lhs = self.ctx.g1_msm(
                [
                    (self.ctx.g1, signature.z),
                    (public_key, (-h) % n),
                    (public_key_extra, (-h) % n),
                    (self.p_pub, (-h * h1) % n),
                ]
            )
            return lhs == signature.t_pub
        except (ArithmeticError, ValueError, TypeError, KeyError_):
            return False

    # -- measurement (README comparison rows) ----------------------------------
    def measure_sign(self, message: Message, keys: ECLSKeyPair):
        """(signature, OpCount) for one signing, under an obs phase."""
        with get_registry().phase(f"{self.name}.sign"):
            with self.ctx.measure() as meter:
                sig = self.sign(message, keys)
        return sig, meter.delta

    def measure_verify(
        self, message: Message, signature, keys: ECLSKeyPair
    ) -> Tuple[bool, OpCount]:
        """(ok, OpCount) for one verification, under an obs phase."""
        with get_registry().phase(f"{self.name}.verify"):
            with self.ctx.measure() as meter:
                ok = self.verify(
                    message,
                    signature,
                    keys.identity,
                    keys.public_key,
                    keys.public_key_extra,
                )
        return ok, meter.delta

    #: Table-1-style profile (pairings, scalar_mults, exponentiations)
    paper_sign_profile: Tuple[int, int, int] = (0, 1, 0)
    paper_verify_profile: Tuple[int, int, int] = (0, 4, 0)


# ---------------------------------------------------------------------------
# Deliberately weakened variants for the Pakniat security games.  These
# reproduce the design mistakes his analyses exploit; they exist so the
# game tests can prove the attacks have teeth.  NEVER register or deploy.
# ---------------------------------------------------------------------------


class WeakECLSUnboundKey(ECLSScheme):
    """ECLS with H2 *not* binding the public key (Pakniat's Type I bug).

    With ``h = H2(M, ID, T)`` an adversary may pick the signature first
    and *solve for* a replacement public key: choose t, z; compute h;
    set ``P_ID' = h^{-1}(z*P - T) - R_ID - H1(ID, R_ID, P_pub)*P_pub``.
    :class:`~repro.core.games.PublicKeyReplacementForger` does exactly
    this and must succeed here while failing against :class:`ECLSScheme`.
    """

    name = "ecls-weak-unbound"

    def _h2(self, message, identity, t_pub, public_key, r_pub):
        # the bug under test: message and commitment only — the public
        # key is free for the adversary to choose after hashing
        return self.ctx.hash_scalar(b"H2/ecls-weak", message, identity, t_pub)


class WeakECLSNoUserSecret(ECLSScheme):
    """ECLS whose signatures ignore the user secret (Type II bug).

    Signing uses only the KGC-issued ``d`` and verification aggregates
    only ``R_ID + H1*P_pub`` — so a malicious KGC (who knows ``s`` and
    every ``d``) forges at will without ever learning ``x``.
    """

    name = "ecls-weak-nouser"

    def sign(self, message: Message, keys: ECLSKeyPair) -> ECLSSignature:
        """The bug under test: ``z`` involves only the KGC's ``d``."""
        msg = normalize_message(message)
        n = self.ctx.order
        while True:
            t = self.ctx.random_scalar()
            t_pub = self.ctx.g1_mul(self.ctx.g1, t)
            h = self._h2(
                msg, keys.identity, t_pub, keys.public_key, keys.partial.r_pub
            )
            z = (t + h * keys.partial.d) % n
            if z:
                return ECLSSignature(t_pub=t_pub, z=z)

    def verify(
        self,
        message: Message,
        signature: ECLSSignature,
        identity: Identity,
        public_key: Optional[CurvePoint] = None,
        public_key_extra: Optional[CurvePoint] = None,
    ) -> bool:
        """Aggregates only ``R_ID + H1*P_pub`` — ``P_ID`` never binds."""
        try:
            msg = normalize_message(message)
            ident = normalize_identity(identity)
            n = self.ctx.order
            curve = self.ctx.curve
            if not isinstance(signature, ECLSSignature):
                return False
            if not isinstance(public_key_extra, CurvePoint):
                return False
            if not curve.g1_curve.contains(signature.t_pub):
                return False
            if not (0 < signature.z < n):
                return False
            h1 = self._h1(ident, public_key_extra)
            h = self._h2(msg, ident, signature.t_pub, public_key, public_key_extra)
            lhs = self.ctx.g1_msm(
                [
                    (self.ctx.g1, signature.z),
                    (public_key_extra, (-h) % n),
                    (self.p_pub, (-h * h1) % n),
                ]
            )
            return lhs == signature.t_pub
        except (ArithmeticError, ValueError, TypeError, KeyError_):
            return False


def signature_size_bytes(curve) -> int:
    """Encoded (T, z) size: one G1 point + one order-width scalar."""
    fp_width = (curve.p.bit_length() + 7) // 8
    n_width = (curve.n.bit_length() + 7) // 8
    return 1 + 2 * fp_width + n_width
