"""Registry mapping scheme names to classes (for benches and the simulator).

McCLS lives in :mod:`repro.core`, which itself imports the scheme base
classes from this package, so the registry resolves classes lazily to keep
the import graph acyclic.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.schemes.base import CertificatelessScheme

#: the four certificateless schemes of paper Table 1, in table order,
#: plus the hardened reproduction variant
_SCHEME_PATHS: Dict[str, str] = {
    "ap": "repro.schemes.ap:APScheme",
    "zwxf": "repro.schemes.zwxf:ZWXFScheme",
    "yhg": "repro.schemes.yhg:YHGScheme",
    "mccls": "repro.core.mccls:McCLS",
    "mccls-plus": "repro.core.hardened:McCLSPlus",
}

#: the paper's Table 1 rows only (benchmarks iterate these)
TABLE1_SCHEMES = ("ap", "zwxf", "yhg", "mccls")


def scheme_class(name: str) -> Type[CertificatelessScheme]:
    """Resolve a scheme name to its class (lazy import)."""
    try:
        path = _SCHEME_PATHS[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; choose from {sorted(_SCHEME_PATHS)}"
        ) from None
    module_name, _, class_name = path.partition(":")
    module = __import__(module_name, fromlist=[class_name])
    return getattr(module, class_name)


def scheme_names() -> List[str]:
    """All registered scheme names, Table 1 order first."""
    return list(_SCHEME_PATHS)


def all_scheme_classes() -> Dict[str, Type[CertificatelessScheme]]:
    """Name -> class for every registered scheme."""
    return {name: scheme_class(name) for name in _SCHEME_PATHS}
