"""Registry mapping scheme names to classes (for benches and the simulator).

McCLS lives in :mod:`repro.core`, which itself imports the scheme base
classes from this package, so the registry resolves classes lazily to keep
the import graph acyclic.

Every registered class conforms to
:class:`repro.schemes.base.SchemeProtocol`; :func:`create_scheme` is the
one sanctioned construction path and enforces that at runtime, so callers
(the simulator's crypto material builder, benches, examples) never need to
special-case a scheme type again.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.pairing.groups import PairingContext
from repro.schemes.base import CertificatelessScheme, SchemeProtocol

#: the four certificateless schemes of paper Table 1, in table order,
#: plus the hardened reproduction variant
_SCHEME_PATHS: Dict[str, str] = {
    "ap": "repro.schemes.ap:APScheme",
    "zwxf": "repro.schemes.zwxf:ZWXFScheme",
    "yhg": "repro.schemes.yhg:YHGScheme",
    "mccls": "repro.core.mccls:McCLS",
    "mccls-plus": "repro.core.hardened:McCLSPlus",
}

#: non-certificateless baselines that share the unified SchemeProtocol
#: surface (IBS = the scheme McCLS descends from; BLS and ECDSA = the
#: pairing and PKI calibration points)
_BASELINE_PATHS: Dict[str, str] = {
    "ibs": "repro.schemes.ibs:ChaCheonIBS",
    "bls": "repro.schemes.bls:BLSScheme",
    "ecdsa": "repro.pki.ecdsa:ECDSA",
    # pairing-free certificateless scheme (plain ECC on G1): the session
    # fast path's signature layer and the lightweight Table-1 extension
    "ecls": "repro.schemes.ecls:ECLSScheme",
}

#: the paper's Table 1 rows only (benchmarks iterate these)
TABLE1_SCHEMES = ("ap", "zwxf", "yhg", "mccls")


def _resolve(path: str):
    module_name, _, class_name = path.partition(":")
    module = __import__(module_name, fromlist=[class_name])
    return getattr(module, class_name)


def scheme_class(name: str) -> Type[CertificatelessScheme]:
    """Resolve a certificateless scheme name to its class (lazy import)."""
    try:
        path = _SCHEME_PATHS[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; choose from {sorted(_SCHEME_PATHS)}"
        ) from None
    return _resolve(path)


def scheme_names() -> List[str]:
    """The certificateless scheme names, Table 1 order first."""
    return list(_SCHEME_PATHS)


def all_scheme_names() -> List[str]:
    """Every registered name: certificateless schemes, then baselines."""
    return list(_SCHEME_PATHS) + list(_BASELINE_PATHS)


def all_scheme_classes() -> Dict[str, Type[CertificatelessScheme]]:
    """Name -> class for every certificateless scheme."""
    return {name: scheme_class(name) for name in _SCHEME_PATHS}


def create_scheme(
    name: str, ctx: PairingContext, *, backend=None, **kwargs
) -> SchemeProtocol:
    """Construct a scheme by name on ``ctx``, validated against the protocol.

    Accepts both the certificateless schemes and the baselines; extra
    keyword arguments go to the scheme constructor (e.g. ``master_secret``
    or McCLS's ``precompute_s``).  ``backend`` selects a field backend for
    the scheme's context: when it differs from what ``ctx`` already runs
    on, a rebound context (same curve family/RNG/cache bound, rebuilt on
    the requested backend) is constructed for the scheme — the caller's
    ``ctx`` is never mutated.  Raises ``KeyError`` for unknown names and
    ``TypeError`` if the constructed object does not satisfy
    :class:`~repro.schemes.base.SchemeProtocol` — the registry hands out
    only conforming objects.
    """
    path = _SCHEME_PATHS.get(name) or _BASELINE_PATHS.get(name)
    if path is None:
        raise KeyError(
            f"unknown scheme {name!r}; choose from {sorted(all_scheme_names())}"
        )
    if backend is not None:
        from repro.pairing import backends as _backends

        resolved = _backends.resolve_backend(backend)
        if resolved is not getattr(ctx, "backend", None):
            ctx = PairingContext(
                ctx.curve,
                ctx.rng,
                precompute=ctx.precompute_enabled,
                cache_size=ctx.cache_size,
                backend=resolved,
                insecure_deterministic_batch=getattr(
                    ctx, "insecure_deterministic_batch", False
                ),
            )
    scheme = _resolve(path)(ctx, **kwargs)
    if not isinstance(scheme, SchemeProtocol):
        raise TypeError(
            f"scheme {name!r} ({type(scheme).__name__}) does not conform to "
            "SchemeProtocol"
        )
    return scheme
