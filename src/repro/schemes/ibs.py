"""Identity-based signatures (Cha-Cheon shape) and the PKG role.

McCLS is "an adaptation of the identity-based signature from [15] to the
certificateless setting" (paper Section 4, citing Yoon-Cheon-Kim's batch
verification work).  This module provides:

* :class:`PrivateKeyGenerator` - the ID-PKC trusted third party.  It KNOWS
  every user's full private key, which is exactly the **key escrow problem**
  the paper's introduction motivates CLS with; :meth:`PrivateKeyGenerator
  .escrow_forge` demonstrates it by forging a valid signature for any
  enrolled identity without the user's participation.
* :class:`ChaCheonIBS` - the underlying IBS with the aggregatable shape
  used by [15]'s batch verification (see :mod:`repro.core.batch`).

Scheme (type-3):

* PKG: master s, P_pub = s*P;  user key D_ID = s*Q_ID, Q_ID = H1(ID) in G2.
* Sign(M):  r <- Zp*;  U = r*Q_ID (G2);  h = H(M, U);
  V = (r + h)*D_ID (G2);  sigma = (U, V).
* Verify:  e(P, V) == e(P_pub, U + h*Q_ID).

Batch verification of k signatures (same PKG):
  e(P, sum V_i) == e(P_pub, sum (U_i + h_i*Q_IDi))  -  2 pairings total.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import SignatureError
from repro.pairing.bn import BNCurve, default_test_curve
from repro.pairing.curve import CurvePoint
from repro.pairing.groups import PairingContext
from repro.schemes.base import (
    Identity,
    Message,
    normalize_identity,
    normalize_message,
)


@dataclass(frozen=True)
class IBSPrivateKey:
    identity: str
    q_id: CurvePoint  # H1(ID) in G2
    d_id: CurvePoint  # s * Q_ID in G2
    # Identity-based schemes have no standalone user public key (the
    # identity IS the key); kept None for SchemeProtocol uniformity.
    public_key: Optional[CurvePoint] = None


@dataclass(frozen=True)
class IBSSignature:
    """sigma = (U, V), both in G2."""

    u: CurvePoint
    v: CurvePoint


class ChaCheonIBS:
    """The identity-based signature McCLS descends from.

    Conforms to :class:`repro.schemes.base.SchemeProtocol`;
    ``generate_user_keys`` is the PKG's ``extract`` (there is no user
    secret beyond the escrowed D_ID), and ``verify`` needs no public key.
    """

    name = "ibs"

    def __init__(self, ctx: PairingContext, master_secret: Optional[int] = None):
        self.ctx = ctx
        self.master_secret = (
            master_secret % ctx.order if master_secret else ctx.random_scalar()
        )
        self.p_pub_g1 = ctx.fixed_base(ctx.g1 * self.master_secret)
        ctx.fixed_base(ctx.g1)

    def q_of(self, identity: Identity) -> CurvePoint:
        """Q_ID = H1(ID) in G2."""
        return self.ctx.fixed_base(
            self.ctx.hash_g2(b"H1/ibs", normalize_identity(identity))
        )

    def extract(self, identity: Identity) -> IBSPrivateKey:
        """Issue the identity's private key D_ID = s * Q_ID (escrowed!)."""
        ident = normalize_identity(identity)
        q_id = self.q_of(ident)
        return IBSPrivateKey(
            identity=ident,
            q_id=q_id,
            d_id=self.ctx.g2_mul(q_id, self.master_secret),
        )

    def generate_user_keys(self, identity: Identity) -> IBSPrivateKey:
        """Protocol-shaped key generation (delegates to :meth:`extract`)."""
        return self.extract(identity)

    def sign(self, message: Message, key: IBSPrivateKey) -> IBSSignature:
        """Cha-Cheon signing: (U, V) = (r*Q_ID, (r+h)*D_ID)."""
        msg = normalize_message(message)
        r = self.ctx.random_scalar()
        u = self.ctx.g2_mul(key.q_id, r)
        h = self.ctx.hash_scalar(b"H/ibs", msg, u)
        v = self.ctx.g2_mul(key.d_id, (r + h) % self.ctx.order)
        return IBSSignature(u=u, v=v)

    def verify(
        self,
        message: Message,
        signature: IBSSignature,
        identity: Identity,
        public_key: Optional[CurvePoint] = None,
        public_key_extra: Optional[CurvePoint] = None,
    ) -> bool:
        """Check e(P, V) == e(P_pub, U + h*Q_ID).

        Identity-based: the ``public_key`` slots exist only for
        SchemeProtocol uniformity and are ignored.
        """
        msg = normalize_message(message)
        if not isinstance(signature, IBSSignature):
            raise SignatureError("expected an IBSSignature")
        curve = self.ctx.curve
        if not curve.g2_curve.contains(signature.u):
            return False
        if not curve.g2_curve.contains(signature.v):
            return False
        q_id = self.q_of(identity)
        h = self.ctx.hash_scalar(b"H/ibs", msg, signature.u)
        rhs_g2 = signature.u + self.ctx.g2_mul(q_id, h)
        # e(P, V) == e(P_pub, U + h*Q_ID) as a 2-term multi-pairing sharing
        # one final exponentiation; the honest generator-side G1 point is
        # the one that gets negated.
        return self.ctx.multi_pair_check(
            [(self.ctx.g1, signature.v), (-self.p_pub_g1, rhs_g2)]
        )

    def batch_verify(
        self, items: Sequence[Tuple[Message, IBSSignature, Identity]]
    ) -> bool:
        """Verify k signatures with 2 pairings (reference [15]'s trick).

        Soundness caveat inherited from the original: a batch forger could
        craft signatures whose errors cancel; the standard fix (applied
        here) weights each signature by a small random scalar.
        """
        if not items:
            return True
        curve = self.ctx.curve
        rng = self.ctx.rng
        sum_v = curve.g2_curve.infinity()
        sum_rhs = curve.g2_curve.infinity()
        for message, signature, identity in items:
            msg = normalize_message(message)
            if not curve.g2_curve.contains(signature.u):
                return False
            if not curve.g2_curve.contains(signature.v):
                return False
            weight = rng.randrange(1, 1 << 64)
            q_id = self.q_of(identity)
            h = self.ctx.hash_scalar(b"H/ibs", msg, signature.u)
            sum_v = sum_v + self.ctx.g2_mul(signature.v, weight)
            rhs = signature.u + self.ctx.g2_mul(q_id, h)
            sum_rhs = sum_rhs + self.ctx.g2_mul(rhs, weight)
        return self.ctx.multi_pair_check(
            [(self.ctx.g1, sum_v), (-self.p_pub_g1, sum_rhs)]
        )


class PrivateKeyGenerator:
    """The ID-PKC trusted third party, including its escrow power."""

    def __init__(self, curve: Optional[BNCurve] = None, seed: Optional[int] = None):
        curve = curve if curve is not None else default_test_curve()
        self.ctx = PairingContext(curve, random.Random(seed))
        self.scheme = ChaCheonIBS(self.ctx)
        self._keys: Dict[str, IBSPrivateKey] = {}

    def enroll(self, identity: Identity) -> IBSPrivateKey:
        """Extract and remember a user's (escrowed) private key."""
        key = self.scheme.extract(identity)
        self._keys[key.identity] = key
        return key

    def escrow_forge(self, message: Message, identity: Identity) -> IBSSignature:
        """Forge a signature for any identity - the key escrow problem.

        The PKG does not need the user to have ever enrolled: it can derive
        D_ID itself.  This is the attack surface certificateless schemes
        remove, and the demonstration used by tests and the key-escrow
        example.
        """
        return self.scheme.sign(message, self.scheme.extract(identity))
