"""Network node base: identity, radio access, CPU (crypto) queueing.

A node owns a mobility model, is attached to the shared radio, and has a
single serialised CPU: crypto work (signing/verification delays from the
:class:`~repro.netsim.crypto_model.CryptoTimingModel`) queues behind
earlier crypto work, so a verification burst genuinely delays later
packets - the mechanism behind McCLS's end-to-end-delay gap in Figure 3.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.crypto_model import CryptoTimingModel
from repro.netsim.engine import Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import MobilityModel
from repro.netsim.packets import BROADCAST, Frame
from repro.netsim.radio import RadioMedium


class NetworkNode:
    """Base class wiring a node into the simulator, radio and metrics."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        radio: RadioMedium,
        mobility: MobilityModel,
        metrics: MetricsCollector,
        crypto: Optional[CryptoTimingModel] = None,
    ):
        self.node_id = node_id
        self.sim = sim
        self.radio = radio
        self.mobility = mobility
        self.metrics = metrics
        self.crypto = crypto if crypto is not None else CryptoTimingModel("none")
        self._cpu_busy_until = 0.0
        #: set while the node is powered off (fault injection); callbacks
        #: scheduled before the crash may still fire but transmit nothing
        self.crashed = False
        radio.attach(node_id, mobility, self._on_frame)

    # -- radio helpers -------------------------------------------------------------
    def broadcast(self, payload: object, jitter: Optional[bool] = None) -> None:
        """Transmit a payload to every radio in range."""
        if not self.radio.is_attached(self.node_id):
            return  # powered off: the transmission silently never happens
        frame = Frame(
            sender=self.node_id, link_destination=BROADCAST, payload=payload
        )
        self._account_bytes(frame)
        self.radio.transmit(frame, jitter=jitter)

    def unicast(self, destination: int, payload: object) -> None:
        """Transmit a payload link-addressed to one neighbour."""
        if not self.radio.is_attached(self.node_id):
            return  # powered off: the transmission silently never happens
        frame = Frame(
            sender=self.node_id, link_destination=destination, payload=payload
        )
        self._account_bytes(frame)
        self.radio.transmit(frame)

    def _account_bytes(self, frame: Frame) -> None:
        from repro.netsim.packets import DataPacket

        if isinstance(frame.payload, DataPacket):
            self.metrics.data_bytes_sent += frame.size_bytes
        else:
            self.metrics.control_bytes_sent += frame.size_bytes

    def _on_frame(self, node_id: int, frame: Frame, now: float) -> None:
        if self.crashed:
            return  # powered off; nothing reaches the network layer
        if not frame.is_broadcast and frame.link_destination != self.node_id:
            return  # not addressed to us; NICs are not promiscuous here
        self.receive(frame)

    # -- failure model -----------------------------------------------------------
    def crash(self) -> None:
        """Power the node off: detach from the radio.

        Already-scheduled callbacks (CPU-queued signatures, discovery
        timers) may still fire while crashed, but the transmit guards make
        them no-ops on the air.
        """
        if self.radio.is_attached(self.node_id):
            self.radio.detach(self.node_id)
        self.crashed = True

    def recover(self) -> None:
        """Power the node back on with volatile protocol state wiped."""
        if not self.radio.is_attached(self.node_id):
            self.radio.attach(self.node_id, self.mobility, self._on_frame)
        self.crashed = False
        self._cpu_busy_until = self.sim.now
        self._on_recover()

    def _on_recover(self) -> None:
        """Protocol hook: reset state that would not survive a reboot."""

    # -- observability -----------------------------------------------------------
    def emit_event(self, event: str, **fields) -> None:
        """Emit a structured event (sim time and node id attached) to the
        simulator's event sink; free when tracing is disabled."""
        events = self.sim.events
        if events.enabled:
            events.emit(event, t=self.sim.now, node=self.node_id, **fields)

    # -- CPU model -----------------------------------------------------------------
    def cpu_process(
        self, cost_s: float, callback: Callable, *args, op: str = None
    ) -> None:
        """Run ``callback`` after ``cost_s`` seconds of (serialised) CPU time.

        An ``op`` label (e.g. ``"verify"``) turns the busy window into a
        ``span`` event on the simulator's event sink - the sim-time
        analogue of the service's wall-clock stage spans, so a trace can
        attribute protocol latency to individual crypto operations.
        Free when tracing is disabled.
        """
        if cost_s <= 0:
            callback(*args)
            return
        start = max(self.sim.now, self._cpu_busy_until)
        finish = start + cost_s
        self._cpu_busy_until = finish
        if op is not None and self.sim.events.enabled:
            self.sim.events.emit(
                "span",
                name=f"crypto.{op}",
                t=start,
                node=self.node_id,
                ms=round(cost_s * 1e3, 4),
                queued_ms=round((start - self.sim.now) * 1e3, 4),
            )
        self.sim.schedule_at(finish, callback, *args)

    # -- protocol hook ---------------------------------------------------------------
    def receive(self, frame: Frame) -> None:
        """Protocol entry point for frames addressed to this node."""
        raise NotImplementedError

    @property
    def position(self):
        return self.mobility.position(self.sim.now)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self.node_id})"
