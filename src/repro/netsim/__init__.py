"""Discrete-event MANET simulator (the QualNet replacement).

Public surface for reproducing the paper's evaluation:

* :class:`repro.netsim.scenario.ScenarioConfig` /
  :func:`repro.netsim.scenario.run_scenario` - one call per data point of
  Figures 1-5.
* :mod:`repro.netsim.routing.aodv` - plain AODV.
* :mod:`repro.netsim.routing.secure_aodv` - McCLS-authenticated AODV.
* :mod:`repro.netsim.attacks` - black hole and rushing attacker nodes.
* :mod:`repro.netsim.faults` - deterministic fault injection (node churn,
  radio degradation, frame corruption, KGC outages).
"""

from repro.netsim.engine import Simulator
from repro.netsim.faults import (
    CorruptionWindow,
    CrashSpec,
    FaultInjector,
    FaultPlan,
    KGCOutage,
    RadioWindow,
)
from repro.netsim.metrics import MetricsCollector
from repro.netsim.scenario import (
    ScenarioConfig,
    ScenarioResult,
    paper_speed_sweep,
    run_scenario,
)

__all__ = [
    "Simulator",
    "MetricsCollector",
    "ScenarioConfig",
    "ScenarioResult",
    "run_scenario",
    "paper_speed_sweep",
    "FaultPlan",
    "FaultInjector",
    "CrashSpec",
    "RadioWindow",
    "CorruptionWindow",
    "KGCOutage",
]
