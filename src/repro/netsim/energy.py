"""Per-node energy accounting (the "CPS must be efficient" dimension).

The paper motivates McCLS with cyber-physical systems' constraints; for
battery-powered MANET nodes the relevant budget is energy.  This module
charges each node for

* **radio**: joules per transmitted/received byte (802.11-class defaults),
* **CPU**: joules per second of crypto processing (sign/verify delays from
  the crypto timing model at a given active power draw),

and reports totals plus the figure of merit security people care about:
**energy per delivered packet**, with and without authentication.

The meter is passive - attach it to a built scenario before running - so
it composes with every protocol and attack without touching them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.netsim.packets import DataPacket
from repro.netsim.radio import RadioMedium

#: 802.11b-era radio energy figures (uJ per byte, from the Feeney/Nilsson
#: measurements commonly used in MANET papers), and an XScale-class CPU.
TX_JOULES_PER_BYTE = 1.9e-6
RX_JOULES_PER_BYTE = 0.5e-6
CPU_ACTIVE_WATTS = 0.4


@dataclass
class EnergyMeter:
    """Accumulates energy spent per node and per cause."""

    tx_joules_per_byte: float = TX_JOULES_PER_BYTE
    rx_joules_per_byte: float = RX_JOULES_PER_BYTE
    cpu_active_watts: float = CPU_ACTIVE_WATTS
    tx_joules: Dict[int, float] = field(default_factory=dict)
    rx_joules: Dict[int, float] = field(default_factory=dict)
    cpu_joules: Dict[int, float] = field(default_factory=dict)

    def attach_radio(self, radio: RadioMedium) -> None:
        """Start charging tx/rx energy for every transmission."""
        radio.add_observer(self._observe_transmission)

    def _observe_transmission(self, now, frame, receivers) -> None:
        self.tx_joules[frame.sender] = (
            self.tx_joules.get(frame.sender, 0.0)
            + frame.size_bytes * self.tx_joules_per_byte
        )
        for node_id in receivers:
            self.rx_joules[node_id] = (
                self.rx_joules.get(node_id, 0.0)
                + frame.size_bytes * self.rx_joules_per_byte
            )

    def attach_nodes(self, nodes) -> None:
        """Wrap each node's cpu_process so crypto seconds become joules."""
        for node_id, node in nodes.items():
            original = node.cpu_process

            def metered(
                cost_s, callback, *args, _nid=node_id, _orig=original, **kwargs
            ):
                if cost_s > 0:
                    self.cpu_joules[_nid] = (
                        self.cpu_joules.get(_nid, 0.0)
                        + cost_s * self.cpu_active_watts
                    )
                _orig(cost_s, callback, *args, **kwargs)

            node.cpu_process = metered

    # -- reporting ------------------------------------------------------------
    def total_joules(self) -> float:
        """Total energy spent across all nodes and causes."""
        return (
            sum(self.tx_joules.values())
            + sum(self.rx_joules.values())
            + sum(self.cpu_joules.values())
        )

    def node_joules(self, node_id: int) -> float:
        """Total energy one node has spent."""
        return (
            self.tx_joules.get(node_id, 0.0)
            + self.rx_joules.get(node_id, 0.0)
            + self.cpu_joules.get(node_id, 0.0)
        )

    def breakdown(self) -> Dict[str, float]:
        """Totals per cause (tx / rx / cpu / total)."""
        return {
            "tx_joules": sum(self.tx_joules.values()),
            "rx_joules": sum(self.rx_joules.values()),
            "cpu_joules": sum(self.cpu_joules.values()),
            "total_joules": self.total_joules(),
        }


def measure_scenario_energy(config) -> Dict[str, float]:
    """Build + run a scenario with an energy meter attached.

    Returns the breakdown plus joules-per-delivered-packet.
    """
    from repro.netsim.scenario import build_scenario

    sim, nodes, flows, metrics, _attackers = build_scenario(config)
    meter = EnergyMeter()
    meter.attach_radio(nodes[0].radio)
    meter.attach_nodes(nodes)
    sim.run(until=config.sim_time_s + 5.0)
    report = meter.breakdown()
    delivered = metrics.data_received
    report["delivered_packets"] = float(delivered)
    report["joules_per_delivered_packet"] = (
        report["total_joules"] / delivered if delivered else float("inf")
    )
    report["packet_delivery_ratio"] = metrics.packet_delivery_ratio
    return report
