"""Per-operation crypto timing model for the simulator.

Signing every routing packet with real pairings inside a Python
discrete-event simulator would dominate wall-clock time, and the paper's
own evaluation inside QualNet likewise charged crypto as processing delay.
This module prices each scheme's *operation mix* (the same mix the real
implementations in :mod:`repro.core` / :mod:`repro.schemes` execute, as
verified by the operation-counting tests) with per-operation costs.

Default costs approximate the 2008-era PDA/laptop-class figures the
MANET-security literature used (Tate pairing ~20 ms, G1 scalar
multiplication ~2 ms); ``speedup`` rescales everything for
faster/slower hardware, and :func:`calibrate_from_curve` measures this
machine's pure-Python implementation instead when realism about *this*
codebase is wanted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

from repro.obs.registry import get_registry
from repro.pairing.bn import BNCurve
from repro.pairing.pairing import pairing as _pairing


@dataclass(frozen=True)
class OperationCosts:
    """Seconds per primitive operation."""

    pairing: float = 0.020
    scalar_mult: float = 0.0022
    gt_exp: float = 0.0045
    group_hash: float = 0.0025
    field_ops: float = 0.0001  # inversions, scalar hashing, comparisons

    def scaled(self, speedup: float) -> "OperationCosts":
        """These costs divided by a hardware speedup factor."""
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        return OperationCosts(
            pairing=self.pairing / speedup,
            scalar_mult=self.scalar_mult / speedup,
            gt_exp=self.gt_exp / speedup,
            group_hash=self.group_hash / speedup,
            field_ops=self.field_ops / speedup,
        )


@dataclass(frozen=True)
class OperationMix:
    """Counts of primitive operations for one sign or verify call."""

    pairings: int = 0
    scalar_mults: int = 0
    gt_exps: int = 0
    group_hashes: int = 0

    def cost(self, prices: OperationCosts) -> float:
        """Price this operation mix under the given per-op costs."""
        return (
            self.pairings * prices.pairing
            + self.scalar_mults * prices.scalar_mult
            + self.gt_exps * prices.gt_exp
            + self.group_hashes * prices.group_hash
            + prices.field_ops
        )


#: steady-state operation mixes per scheme (warm caches: the constant
#: pairing e(P_pub, Q_ID) and Q_ID itself are cached per identity, which a
#: MANET node verifying its neighbours' messages reaches immediately).
#: Measured from the real implementations by tests/test_op_profiles.py.
SCHEME_MIXES: Dict[str, Dict[str, OperationMix]] = {
    "none": {
        "sign": OperationMix(),
        "verify": OperationMix(),
    },
    "mccls": {
        "sign": OperationMix(scalar_mults=2),
        "verify": OperationMix(pairings=1, scalar_mults=3),
    },
    "ap": {
        "sign": OperationMix(pairings=1, scalar_mults=3),
        "verify": OperationMix(pairings=4, gt_exps=1),
    },
    "zwxf": {
        "sign": OperationMix(scalar_mults=3, group_hashes=1),
        "verify": OperationMix(pairings=3, group_hashes=3),
    },
    "yhg": {
        "sign": OperationMix(scalar_mults=2),
        "verify": OperationMix(pairings=1, scalar_mults=1),
    },
    # PKI baseline: ECDSA sign = 1 mult; verifying one signed+certified tag
    # = 2 mults for the message signature plus 2 per certificate in the
    # chain (depth 2 by default) for the chain walk.
    "ecdsa-pki": {
        "sign": OperationMix(scalar_mults=1),
        "verify": OperationMix(scalar_mults=6),
    },
}


class CryptoTimingModel:
    """Maps (scheme, operation) -> processing seconds for simulator nodes."""

    def __init__(
        self,
        scheme="none",
        costs: OperationCosts = OperationCosts(),
        speedup: float = 1.0,
    ):
        # Accept either a registry name or any SchemeProtocol object (the
        # unified surface guarantees a ``name``); no type special-casing.
        name = scheme if isinstance(scheme, str) else getattr(scheme, "name", None)
        if name not in SCHEME_MIXES:
            raise KeyError(
                f"unknown scheme {name!r}; choose from {sorted(SCHEME_MIXES)}"
            )
        self.scheme = name
        self.costs = costs.scaled(speedup)

    @property
    def enabled(self) -> bool:
        return self.scheme != "none"

    def sign_delay(self) -> float:
        """Seconds of CPU one signing operation costs."""
        if not self.enabled:
            return 0.0
        self._record("sign")
        return SCHEME_MIXES[self.scheme]["sign"].cost(self.costs)

    def verify_delay(self) -> float:
        """Seconds of CPU one verification costs (warm caches)."""
        if not self.enabled:
            return 0.0
        self._record("verify")
        return SCHEME_MIXES[self.scheme]["verify"].cost(self.costs)

    def _record(self, operation: str) -> None:
        """Count one modelled operation (and its primitive mix) into the
        active obs registry, so modelled-crypto simulations still report
        how many pairings/mults the simulated hardware would execute."""
        registry = get_registry()
        if not registry.active:
            return
        registry.counter(f"crypto.{operation}", scheme=self.scheme).inc()
        mix = SCHEME_MIXES[self.scheme][operation]
        if mix.pairings:
            registry.counter("crypto.modelled_pairings").inc(mix.pairings)
        if mix.scalar_mults:
            registry.counter("crypto.modelled_scalar_mults").inc(
                mix.scalar_mults
            )
        if mix.gt_exps:
            registry.counter("crypto.modelled_gt_exps").inc(mix.gt_exps)
        if mix.group_hashes:
            registry.counter("crypto.modelled_group_hashes").inc(
                mix.group_hashes
            )


#: process-wide memo behind :func:`calibrated_costs`, keyed by
#: (curve name, field-backend name) — the same curve prices very
#: differently under the reference tower and a native backend
_CALIBRATED: Dict[tuple, OperationCosts] = {}


def calibrated_costs(curve: BNCurve, samples: int = 3) -> OperationCosts:
    """Memoised :func:`calibrate_from_curve`: one measurement per curve.

    Campaigns call this in the parent process and ship the resulting
    :class:`OperationCosts` to workers inside the scenario config, so a
    ``workers=N`` fan-out never re-times the pairing N times (and never
    skews a run's simulated delays by timing on a loaded core mid-sweep).
    Calibration runs on whatever field backend the curve is bound to and
    is memoised per (curve, backend) pair, so a native-backend campaign
    prices its modelled crypto with native-speed pairings.
    """
    key = (curve.name, curve.spec.backend.name)
    costs = _CALIBRATED.get(key)
    if costs is None:
        costs = calibrate_from_curve(curve, samples=samples)
        _CALIBRATED[key] = costs
    return costs


def calibrate_from_curve(curve: BNCurve, samples: int = 3) -> OperationCosts:
    """Measure this machine's pure-Python pairing/mult costs on ``curve``."""
    g1, g2 = curve.g1, curve.g2
    scalar = curve.n // 3 + 12345

    start = time.perf_counter()
    for _ in range(samples):
        _pairing(curve, g1, g2)
    pairing_cost = (time.perf_counter() - start) / samples

    start = time.perf_counter()
    for _ in range(samples):
        _ = g1 * scalar
        _ = g2 * scalar
    mult_cost = (time.perf_counter() - start) / (2 * samples)

    return OperationCosts(
        pairing=pairing_cost,
        scalar_mult=mult_cost,
        gt_exp=pairing_cost * 0.25,
        group_hash=mult_cost * 1.2,
    )
