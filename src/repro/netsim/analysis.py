"""Topology analytics for scenario interpretation.

The paper's curves are all downstream of one physical process: random-
waypoint mobility changing the unit-disk connectivity graph.  This module
samples that graph over time for a :class:`~repro.netsim.scenario
.ScenarioConfig` and computes the statistics that explain the figures:

* mean node degree and connectivity fraction (why PDR is high/low),
* link-change rate (why RREQ overhead and delay grow with speed),
* shortest-path lengths between flow endpoints (what end-to-end delay is
  made of).

Uses :mod:`networkx` for the graph algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx

from repro.netsim.mobility import distance
from repro.netsim.scenario import ScenarioConfig, build_scenario


def connectivity_graph(positions: Dict[int, tuple], range_m: float) -> nx.Graph:
    """Unit-disk graph over node positions."""
    graph = nx.Graph()
    graph.add_nodes_from(positions)
    nodes = list(positions)
    for i, a in enumerate(nodes):
        for b in nodes[i + 1 :]:
            if distance(positions[a], positions[b]) <= range_m:
                graph.add_edge(a, b)
    return graph


@dataclass
class TopologySample:
    time: float
    mean_degree: float
    largest_component_fraction: float
    component_count: int
    edges: frozenset


@dataclass
class TopologyReport:
    samples: List[TopologySample]
    link_changes_per_second: float
    mean_degree: float
    mean_largest_component_fraction: float
    mean_flow_path_length: float

    def summary(self) -> Dict[str, float]:
        """The four headline statistics as a plain dict."""
        return {
            "mean_degree": self.mean_degree,
            "largest_component_fraction": self.mean_largest_component_fraction,
            "link_changes_per_second": self.link_changes_per_second,
            "mean_flow_path_length": self.mean_flow_path_length,
        }


def analyze_topology(
    config: ScenarioConfig,
    sample_interval_s: float = 5.0,
) -> TopologyReport:
    """Sample the connectivity graph of a configured scenario over time.

    Builds the scenario's exact mobility models (same seeds as a real run)
    and walks them through time without executing any protocol events, so
    the analysis is cheap and deterministic.
    """
    sim, nodes, flows, _metrics, attacker_ids = build_scenario(config)
    honest = [nid for nid in nodes if nid not in attacker_ids]
    mobilities = {nid: nodes[nid].mobility for nid in honest}

    samples: List[TopologySample] = []
    path_lengths: List[float] = []
    previous_edges = None
    changes = 0
    times = [
        i * sample_interval_s
        for i in range(int(config.sim_time_s / sample_interval_s) + 1)
    ]
    for t in times:
        positions = {nid: mob.position(t) for nid, mob in mobilities.items()}
        graph = connectivity_graph(positions, config.range_m)
        components = list(nx.connected_components(graph))
        largest = max((len(c) for c in components), default=0)
        degrees = [d for _, d in graph.degree()]
        edges = frozenset(frozenset(e) for e in graph.edges())
        if previous_edges is not None:
            changes += len(edges.symmetric_difference(previous_edges))
        previous_edges = edges
        samples.append(
            TopologySample(
                time=t,
                mean_degree=sum(degrees) / len(degrees) if degrees else 0.0,
                largest_component_fraction=largest / len(honest) if honest else 0.0,
                component_count=len(components),
                edges=edges,
            )
        )
        for flow in flows:
            try:
                path_lengths.append(
                    nx.shortest_path_length(
                        graph, flow.spec.source, flow.spec.destination
                    )
                )
            except nx.NetworkXNoPath:
                pass

    duration = times[-1] - times[0] if len(times) > 1 else 1.0
    return TopologyReport(
        samples=samples,
        link_changes_per_second=changes / duration if duration else 0.0,
        mean_degree=sum(s.mean_degree for s in samples) / len(samples),
        mean_largest_component_fraction=(
            sum(s.largest_component_fraction for s in samples) / len(samples)
        ),
        mean_flow_path_length=(
            sum(path_lengths) / len(path_lengths) if path_lengths else 0.0
        ),
    )
