"""Discrete-event simulation engine (the QualNet-replacement kernel).

A deliberately small, deterministic core: a priority queue of timestamped
events, a monotonically advancing clock, and named per-component RNG
streams so that mobility, MAC jitter, traffic and loss decisions each draw
from their own seeded :class:`random.Random` - changing one component's
draw pattern never perturbs the others, which keeps sweeps comparable
across protocol variants (the same seeds produce the same mobility for the
AODV and McCLS runs of a figure).
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Dict, Optional

from repro.errors import SimulationError
from repro.obs.events import EventSink, NULL_EVENT_SINK


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event queue + clock + deterministic RNG streams."""

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self.seed = seed
        self._queue: list = []
        self._sequence = itertools.count()
        self._rngs: Dict[str, random.Random] = {}
        self._events_executed = 0
        #: structured-event sink shared by every component of this
        #: simulation (nodes, radio, tracer); the no-op default costs
        #: emitters one ``enabled`` check
        self.events: EventSink = NULL_EVENT_SINK
        #: the run's :class:`~repro.netsim.faults.FaultInjector`, when a
        #: fault plan is attached (set by the scenario builder; None in
        #: healthy runs) - carries injected-fault counts and the event log
        self.faults = None

    def attach_events(self, sink: Optional[EventSink]) -> None:
        """Install the structured-event sink (None restores the no-op)."""
        self.events = sink if sink is not None else NULL_EVENT_SINK

    # -- randomness -------------------------------------------------------------
    def rng(self, stream: str) -> random.Random:
        """The named RNG stream (created on first use, seeded from (seed, name))."""
        existing = self._rngs.get(stream)
        if existing is None:
            existing = random.Random(f"{self.seed}/{stream}")
            self._rngs[stream] = existing
        return existing

    # -- scheduling ---------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s into the past")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable, *args: Any) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError("cannot schedule before the current time")
        handle = EventHandle(time, next(self._sequence), callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    # -- execution ---------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> None:
        """Drain events up to ``until`` simulated seconds (or queue empty)."""
        executed = 0
        while self._queue:
            head = self._queue[0]
            if until is not None and head.time > until:
                break
            heapq.heappop(self._queue)
            if head.cancelled:
                continue
            self.now = head.time
            head.callback(*head.args)
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
        if until is not None and self.now < until:
            self.now = until
        self._events_executed += executed

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def pending_events(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return sum(1 for event in self._queue if not event.cancelled)
