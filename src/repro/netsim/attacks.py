"""Attacker node behaviours: black hole and rushing (paper Section 2/6).

Both attackers are *insiders at the network layer but outsiders at the key
layer*: they run the routing protocol but were never enrolled with the KGC,
exactly the paper's threat model ("the proposed McCLS scheme can
effectively resist such attacks").

* **Black hole** (Marti et al.): answers every RREQ it hears with a forged
  RREP advertising an artificially fresh destination sequence number and a
  1-hop route, so traffic is attracted to it; it then silently discards all
  data it is asked to forward.
* **Rushing** (Hu-Perrig-Johnson): exploits duplicate suppression -
  forwards every first RREQ copy *immediately* (no MAC jitter, no
  processing delay), so downstream nodes adopt the attacker as the reverse
  hop and drop the legitimate copies that arrive later; data is then
  discarded.

Mixins keep the behaviours orthogonal to the protocol variant: the same
attacker logic attacks plain AODV and McCLS-AODV (against the latter its
RREPs carry forged/absent signatures and get rejected - which is the whole
point of Figures 4 and 5).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.netsim.packets import (
    AuthTag,
    DataPacket,
    Frame,
    RouteReply,
    RouteRequest,
)
from repro.netsim.routing.aodv import MY_ROUTE_TIMEOUT, AODVNode
from repro.netsim.routing.secure_aodv import identity_of

#: sequence-number inflation of the forged RREP.  The default 0 claims a
#: route exactly as fresh as the victim's last-known value: it wins the
#: race against the genuine RREP (instant reply, 1 claimed hop) but is
#: displaced once the destination's strictly-fresher reply lands, which is
#: what keeps AODV's damage at the paper's Figure 5 scale.  Large boosts
#: (the "aggressive" ablation) make the fake route unbeatable and capture
#: nearly all traffic.
DEFAULT_FAKE_SEQ_BOOST = 0
AGGRESSIVE_FAKE_SEQ_BOOST = 100


class BlackHoleNode(AODVNode):
    """Forges fresh-route RREPs, then absorbs the attracted data."""

    role = "blackhole"

    def __init__(
        self,
        *args,
        signature_bytes: int = 0,
        reply_radius_hops: int = 1,
        fake_seq_boost: int = DEFAULT_FAKE_SEQ_BOOST,
        **kwargs,
    ):
        # Black holes never answer honestly from cache; they answer always.
        kwargs.setdefault("allow_intermediate_rrep", False)
        super().__init__(*args, **kwargs)
        self._signature_bytes = signature_bytes
        self.fake_seq_boost = fake_seq_boost
        # Only RREQs heard within this many hops of the originator are
        # answered: a fake RREP from far away must survive a long honest
        # reverse path and mostly loses the race, so real black holes
        # strike near the source (keeps efficacy at the levels the paper's
        # Figure 5 reports instead of capturing every flow in the network).
        self.reply_radius_hops = reply_radius_hops

    def _forged_auth(self, claimed_signer: int) -> Optional[AuthTag]:
        """A forged tag when attacking the authenticated protocol.

        The attacker holds no partial private key, so the best it can do is
        attach bytes that will not verify; in modelled-crypto runs this is
        the ``forged=True`` bit, in real-crypto runs the scenario swaps it
        for a random invalid signature object.
        """
        if self._signature_bytes <= 0:
            return None
        return AuthTag(
            signer=identity_of(claimed_signer),
            size_bytes=self._signature_bytes,
            forged=True,
        )

    def _process_rreq(self, frame: Frame, rreq: RouteRequest) -> None:
        if rreq.originator == self.node_id:
            return
        if rreq.hop_count > self.reply_radius_hops:
            return  # too far from the source to win the RREP race
        # Claim a one-hop fresh route to whatever is being looked for.
        fake_seq = rreq.destination_seq + self.fake_seq_boost
        rrep = RouteReply(
            originator=rreq.originator,
            destination=rreq.destination,
            destination_seq=fake_seq,
            hop_count=1,
            lifetime=MY_ROUTE_TIMEOUT,
            responder=rreq.destination,  # impersonates the destination
            auth=self._forged_auth(rreq.destination),
            hop_auth=self._forged_auth(self.node_id),
        )
        self.metrics.fake_rreps_sent += 1
        self.emit_event(
            "attack.fake_rrep",
            role=self.role,
            originator=rreq.originator,
            destination=rreq.destination,
        )
        # Remember the reverse hop so absorbed data can reach us.
        self.table.update(
            rreq.originator,
            frame.sender,
            rreq.hop_count + 1,
            rreq.originator_seq,
            MY_ROUTE_TIMEOUT,
            self.sim.now,
        )
        self.unicast(frame.sender, rrep)
        # A black hole does not help the flood along.

    def _handle_data(self, frame: Frame, packet: DataPacket) -> None:
        if packet.destination == self.node_id:
            # Traffic genuinely addressed to the attacker is just received.
            self.metrics.record_delivery(
                packet.flow_id, self.sim.now - packet.created_at
            )
            return
        self.metrics.dropped_by_attacker += 1  # the black hole absorbs it
        self.emit_event("attack.drop", role=self.role, flow=packet.flow_id)

    def _rreq_forward_jitter(self) -> Optional[bool]:
        return False  # react as fast as possible


class RushingNode(AODVNode):
    """Wins the duplicate-suppression race, then discards the data."""

    role = "rushing"

    def _rreq_forward_jitter(self) -> Optional[bool]:
        return False  # no MAC jitter: this IS the rushing attack

    def _handle_rreq(self, frame: Frame, rreq: RouteRequest) -> None:
        key = (rreq.originator, rreq.rreq_id)
        expiry = self._seen_rreqs.get(key)
        if expiry is not None and self.sim.now < expiry:
            return
        self._seen_rreqs[key] = self.sim.now + 30.0
        if rreq.originator == self.node_id:
            return
        # Rush: skip verification/processing delay entirely and forward at
        # once.
        if rreq.destination == self.node_id:
            # Being the destination is fine too - reply instantly.
            self._process_rreq(frame, rreq)
            return
        self.metrics.rreq_forwarded += 1
        # Still set up the reverse route so returning RREPs flow through us.
        self.table.update(frame.sender, frame.sender, 1, 0, 30.0, self.sim.now)
        self.table.update(
            rreq.originator,
            frame.sender,
            rreq.hop_count + 1,
            rreq.originator_seq,
            30.0,
            self.sim.now,
        )
        # Forward a doctored copy: hop count zeroed (so downstream reverse
        # routes through us look one hop long) and TTL restored (so the
        # rushed copy out-ranges the honest flood) - both fields are exactly
        # the mutable ones a signature over the immutable fields cannot
        # protect, which is why rushing works against naive signing too.
        rushed = replace(rreq, hop_count=0, ttl=max(rreq.ttl, 8))
        self.broadcast(rushed, jitter=False)

    def _handle_data(self, frame: Frame, packet: DataPacket) -> None:
        if packet.destination == self.node_id:
            self.metrics.record_delivery(
                packet.flow_id, self.sim.now - packet.created_at
            )
            return
        self.metrics.dropped_by_attacker += 1  # rushed route leads nowhere
        self.emit_event("attack.drop", role=self.role, flow=packet.flow_id)


class CryptanalystBlackHoleNode(BlackHoleNode):
    """A black hole that exploits the universal-forgery break of McCLS.

    :mod:`repro.core.games` shows the published scheme is universally
    forgeable from public values (``UniversalForgeryAttack``).  This
    attacker uses that break: its fake RREPs carry signatures that *do*
    verify under the claimed destination identity, so the authenticated
    protocol accepts them and the black hole works again.  Modelled-crypto
    runs represent this with ``forged=False`` tags; the games module proves
    the corresponding real signatures exist and are constructible in
    polynomial time.

    Used by the ablation benchmark to quantify the gap between the paper's
    *claimed* security (Figure 4/5: full resistance) and the security the
    scheme actually provides against an adversary that reads Section 4
    carefully.
    """

    role = "blackhole-cryptanalyst"

    def _forged_auth(self, claimed_signer: int) -> Optional[AuthTag]:
        if self._signature_bytes <= 0:
            return None
        return AuthTag(
            signer=identity_of(claimed_signer),
            size_bytes=self._signature_bytes,
            forged=False,  # the forgery VERIFIES - that is the break
        )

    def _before_forward_rreq(self, frame: Frame, rreq: RouteRequest):
        # The cryptanalyst can also produce valid hop signatures for itself.
        return replace(rreq, hop_auth=self._forged_auth(self.node_id))

    def _process_rreq(self, frame: Frame, rreq: RouteRequest) -> None:
        super()._process_rreq(frame, rreq)
        # Unlike the plain black hole it also helps the flood along (with
        # valid hop signatures), maximising the traffic it attracts.
        if rreq.destination != self.node_id and rreq.ttl > 1:
            self._forward_rreq(frame, rreq)


class GrayHoleNode(BlackHoleNode):
    """A selective-forwarding ("gray hole") variant of the black hole.

    Instead of absorbing everything, it forwards a fraction of the data it
    attracts and drops the rest, which evades naive loss-based detection
    (a victim sees degraded-but-nonzero throughput, indistinguishable from
    congestion).  Against authenticated AODV it fails identically to the
    black hole - it never gets onto a route in the first place.
    """

    role = "grayhole"

    def __init__(self, *args, drop_probability: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        self.drop_probability = drop_probability

    def _handle_data(self, frame: Frame, packet: DataPacket) -> None:
        if packet.destination == self.node_id:
            self.metrics.record_delivery(
                packet.flow_id, self.sim.now - packet.created_at
            )
            return
        if self.sim.rng("grayhole").random() < self.drop_probability:
            self.metrics.dropped_by_attacker += 1
            self.emit_event(
                "attack.drop", role=self.role, flow=packet.flow_id
            )
            return
        # Forward honestly this time (maintains the victim's trust).  The
        # fake RREP that attracted this packet promised a route the gray
        # hole may not have, so it runs a genuine discovery when needed.
        route = self.table.lookup(packet.destination, self.sim.now)
        if route is not None and self.radio.in_range(self.node_id, route.next_hop):
            self.metrics.data_forwarded += 1
            self.unicast(route.next_hop, packet)
        else:
            self._buffer_and_discover(packet)


class WormholeNode(AODVNode):
    """One endpoint of a wormhole (extension beyond the paper's attacks).

    Two colluding nodes share an out-of-band tunnel (modelled as a direct
    scheduled hand-off with ``tunnel_latency_s`` delay).  Every RREQ one
    endpoint overhears is replayed verbatim by the other, so distant parts
    of the network appear one hop apart and routes collapse through the
    wormhole; data arriving for forwarding is then discarded.

    Against McCLS-AODV the verbatim replay fails the per-hop forwarder
    signature (the tag names the original sender, not the replaying
    endpoint), so the wormhole is excluded like the other attackers -
    tunnel or not, an unenrolled node cannot inject accepted control
    traffic.
    """

    role = "wormhole"

    def __init__(self, *args, tunnel_latency_s: float = 0.001, **kwargs):
        super().__init__(*args, **kwargs)
        self.partner: Optional["WormholeNode"] = None
        self.tunnel_latency_s = tunnel_latency_s
        self._tunneled: set = set()

    def pair_with(self, partner: "WormholeNode") -> None:
        """Link two wormhole endpoints through the out-of-band tunnel."""
        self.partner = partner
        partner.partner = self

    def _handle_rreq(self, frame: Frame, rreq: RouteRequest) -> None:
        key = (rreq.originator, rreq.rreq_id)
        if self.partner is None or key in self._tunneled:
            return
        self._tunneled.add(key)
        self.partner._tunneled.add(key)
        # Tunnel the copy to the far endpoint, which replays it verbatim
        # (keeping the original auth material - the wormhole cannot sign).
        self.table.update(
            rreq.originator,
            frame.sender,
            rreq.hop_count + 1,
            rreq.originator_seq,
            30.0,
            self.sim.now,
        )
        self.sim.schedule(
            self.tunnel_latency_s, self.partner._replay_tunneled, rreq
        )

    def _replay_tunneled(self, rreq: RouteRequest) -> None:
        if not self.radio.is_attached(self.node_id):
            return
        self.metrics.rreq_forwarded += 1
        self.broadcast(rreq.hop_forward(), jitter=False)

    def _handle_rrep(self, frame: Frame, rrep: RouteReply) -> None:
        if self.partner is None:
            return
        # Tunnel the RREP back; the far endpoint pushes it towards the
        # originator along the reverse route it recorded at RREQ time.
        self.sim.schedule(self.tunnel_latency_s, self.partner._replay_rrep, rrep)

    def _replay_rrep(self, rrep: RouteReply) -> None:
        if not self.radio.is_attached(self.node_id):
            return
        reverse = self.table.lookup(rrep.originator, self.sim.now)
        if reverse is None:
            return
        self.metrics.rrep_forwarded += 1
        self.unicast(reverse.next_hop, rrep.hop_forward())

    def _handle_data(self, frame: Frame, packet: DataPacket) -> None:
        if packet.destination == self.node_id:
            self.metrics.record_delivery(
                packet.flow_id, self.sim.now - packet.created_at
            )
            return
        self.metrics.dropped_by_attacker += 1  # the wormhole eats it
        self.emit_event("attack.drop", role=self.role, flow=packet.flow_id)


class InsiderBlackHoleNode(CryptanalystBlackHoleNode):
    """An *enrolled* black hole: compromised member, not an outsider.

    Its key material is legitimate (the node was enrolled before being
    captured), so every signature it produces verifies - not through the
    algebraic break but by right.  Hop-by-hop authentication therefore
    cannot exclude it; the countermeasure is *revocation*
    (:mod:`repro.core.revocation`): once the KGC distributes a signed
    revocation list naming this node, honest verifiers reject its messages
    again.  The scenario layer schedules that response via
    ``revocation_time_s``.
    """

    role = "blackhole-insider"


ATTACK_ROLES = {
    "blackhole": BlackHoleNode,
    "rushing": RushingNode,
    "blackhole-cryptanalyst": CryptanalystBlackHoleNode,
    "blackhole-insider": InsiderBlackHoleNode,
    "wormhole": WormholeNode,
    "grayhole": GrayHoleNode,
}
