"""Node mobility models.

The paper's setup: "20 nodes move around in a rectangular area of
1500 m x 300 m according to the random waypoint model ... speed from 0 m/s
to 20 m/s, pause time 0 s".  :class:`RandomWaypoint` reproduces that model;
:class:`StaticPosition` covers the 0 m/s end of the sweep and unit tests.

Positions are evaluated lazily: a model stores its current leg (origin,
destination, speed, start time) and advances legs as queries move forward
in time.  Queries must be monotonically non-decreasing, which the
event-driven simulator guarantees.
"""

from __future__ import annotations

import math
import random
from typing import Tuple

from repro.errors import SimulationError

Position = Tuple[float, float]


def distance(a: Position, b: Position) -> float:
    """Euclidean distance between two positions."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


class MobilityModel:
    """Interface: position(now) -> (x, y) with monotone ``now``."""

    def position(self, now: float) -> Position:
        """The node's (x, y) at simulated time ``now`` (monotone queries)."""
        raise NotImplementedError


class StaticPosition(MobilityModel):
    """A node that never moves (the speed = 0 point of the paper's sweep)."""

    def __init__(self, position: Position):
        self._position = (float(position[0]), float(position[1]))

    def position(self, now: float) -> Position:
        """The node's (x, y) at simulated time ``now`` (monotone queries)."""
        return self._position


class RandomWaypoint(MobilityModel):
    """Random waypoint over a rectangle.

    Each leg: choose a uniform destination in the area and a uniform speed
    in [min_speed, max_speed], travel in a straight line, pause, repeat.
    ``max_speed == 0`` degenerates to a static node.
    """

    def __init__(
        self,
        width: float,
        height: float,
        max_speed: float,
        rng: random.Random,
        min_speed: float = 0.5,
        pause_time: float = 0.0,
        start: Position = None,
    ):
        if width <= 0 or height <= 0:
            raise SimulationError("mobility area must have positive dimensions")
        if max_speed < 0:
            raise SimulationError("max_speed must be non-negative")
        self.width = width
        self.height = height
        self.max_speed = max_speed
        self.min_speed = min(min_speed, max_speed) if max_speed > 0 else 0.0
        self.pause_time = pause_time
        self._rng = rng
        origin = start if start is not None else self._random_point()
        self._leg_start_time = 0.0
        self._leg_origin: Position = origin
        self._leg_dest: Position = origin
        self._leg_speed = 0.0
        self._leg_travel_time = 0.0
        self._last_query = 0.0
        if self.max_speed > 0:
            self._new_leg(0.0)

    def _random_point(self) -> Position:
        return (
            self._rng.uniform(0.0, self.width),
            self._rng.uniform(0.0, self.height),
        )

    def _new_leg(self, start_time: float) -> None:
        self._leg_origin = self._leg_dest
        self._leg_dest = self._random_point()
        self._leg_speed = self._rng.uniform(self.min_speed, self.max_speed)
        span = distance(self._leg_origin, self._leg_dest)
        self._leg_travel_time = span / self._leg_speed if self._leg_speed > 0 else 0.0
        self._leg_start_time = start_time

    def position(self, now: float) -> Position:
        """The node's (x, y) at simulated time ``now`` (monotone queries)."""
        if now < self._last_query - 1e-9:
            raise SimulationError("mobility queries must be monotone in time")
        self._last_query = now
        if self.max_speed <= 0:
            return self._leg_dest
        # Advance legs until ``now`` falls inside the current one.
        while now >= self._leg_start_time + self._leg_travel_time + self.pause_time:
            self._new_leg(
                self._leg_start_time + self._leg_travel_time + self.pause_time
            )
        elapsed = now - self._leg_start_time
        if elapsed >= self._leg_travel_time:  # pausing at the destination
            return self._leg_dest
        fraction = elapsed / self._leg_travel_time if self._leg_travel_time else 1.0
        ox, oy = self._leg_origin
        dx, dy = self._leg_dest
        return (ox + (dx - ox) * fraction, oy + (dy - oy) * fraction)
