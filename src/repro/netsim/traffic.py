"""Application traffic: constant-bit-rate (CBR) flows.

QualNet AODV studies (including the paper's) drive the network with CBR
sources; each flow emits fixed-size packets at a fixed interval from a
start time to a stop time, and the metrics layer matches deliveries back
to send events by flow id + sequence number (carried in the packet).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.netsim.engine import Simulator
from repro.netsim.packets import DataPacket
from repro.netsim.routing.aodv import AODVNode


@dataclass(frozen=True)
class FlowSpec:
    """Static description of one CBR flow."""

    flow_id: int
    source: int
    destination: int
    interval_s: float
    payload_bytes: int
    start_s: float
    stop_s: float


class CBRFlow:
    """Schedules the packets of one :class:`FlowSpec` onto a source node."""

    def __init__(self, sim: Simulator, spec: FlowSpec, source_node: AODVNode):
        if spec.interval_s <= 0:
            raise SimulationError("CBR interval must be positive")
        if spec.source == spec.destination:
            raise SimulationError("flow source and destination must differ")
        if source_node.node_id != spec.source:
            raise SimulationError("flow attached to the wrong node")
        self.sim = sim
        self.spec = spec
        self.node = source_node
        self._next_seq = 0
        self.packets_emitted = 0
        sim.schedule_at(spec.start_s, self._emit)

    def _emit(self) -> None:
        if self.sim.now > self.spec.stop_s:
            return
        packet = DataPacket(
            flow_id=self.spec.flow_id,
            seq=self._next_seq,
            source=self.spec.source,
            destination=self.spec.destination,
            payload_bytes=self.spec.payload_bytes,
            created_at=self.sim.now,
        )
        self._next_seq += 1
        self.packets_emitted += 1
        self.node.send_data(packet)
        self.sim.schedule(self.spec.interval_s, self._emit)
