"""Scenario construction and execution (the paper's Section 6 setup).

Defaults mirror the paper: 20 nodes in a 1500 m x 300 m rectangle, random
waypoint with pause time 0 s, node speeds swept 0-20 m/s, AODV vs
McCLS-AODV, and optionally 2 black-hole or 2 rushing attacker nodes.

A scenario is fully described by one :class:`ScenarioConfig`; `run()`
builds the simulator, nodes, flows and attackers from the seed, executes,
and returns the metric report.  The same seed produces the same mobility
and traffic for every protocol/attack variant, so curves in one figure
differ only by the thing the figure varies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.core.serialization import mccls_signature_size
from repro.errors import SimulationError
from repro.netsim.attacks import ATTACK_ROLES
from repro.netsim.crypto_model import CryptoTimingModel, OperationCosts
from repro.netsim.engine import Simulator
from repro.netsim.faults import FaultInjector, FaultPlan
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import RandomWaypoint
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.aodv import AODVNode
from repro.netsim.routing.secure_aodv import (
    CryptoMaterial,
    McCLSAODVNode,
    identity_of,
)
from repro.netsim.trace import PacketTracer
from repro.netsim.traffic import CBRFlow, FlowSpec
from repro.obs.events import EventSink
from repro.obs.registry import get_registry
from repro.pairing.bn import bn254, toy_curve
from repro.pairing.groups import PairingContext
from repro.schemes.registry import create_scheme

PROTOCOLS = ("aodv", "mccls", "pki")
ATTACKS = (
    None,
    "blackhole",
    "rushing",
    "blackhole-cryptanalyst",
    "blackhole-insider",
    "wormhole",
    "grayhole",
)


@dataclass(frozen=True, kw_only=True)
class ScenarioConfig:
    """Everything that defines one simulation run.

    Construction is keyword-only (every field has a validated default);
    consistency checks live in :meth:`validate`, which run entry points
    call before building a simulator, so partially-formed configs can
    still be constructed and inspected in tests and sweeps.
    """

    # topology / mobility (paper defaults)
    n_nodes: int = 20
    area_width: float = 1500.0
    area_height: float = 300.0
    max_speed: float = 10.0
    pause_time: float = 0.0
    # radio
    range_m: float = 320.0
    bitrate_bps: float = 2_000_000.0
    loss_rate: float = 0.01
    broadcast_jitter_s: float = 0.01
    # traffic
    n_flows: int = 6
    cbr_interval_s: float = 0.25
    cbr_payload_bytes: int = 512
    traffic_start_s: float = 5.0
    sim_time_s: float = 120.0
    #: HELLO beacon interval in seconds (0 disables; RFC 3561 uses 1.0)
    hello_interval: float = 0.0
    # protocol & security
    protocol: str = "aodv"  # "aodv" | "mccls"
    attack: Optional[str] = None  # None | "blackhole" | "rushing"
    n_attackers: int = 2
    blackhole_fake_seq_boost: int = 0
    blackhole_reply_radius: int = 1
    rushing_defense: bool = False
    #: if set (McCLS protocol only), the KGC distributes a revocation list
    #: naming every attacker at this simulated time - the response to the
    #: insider attack (repro.core.revocation); modelled as reaching all
    #: honest nodes simultaneously
    revocation_time_s: Optional[float] = None
    crypto_speedup: float = 1.0
    crypto_costs: OperationCosts = field(default_factory=OperationCosts)
    real_crypto: bool = False
    #: declarative fault-injection plan (crash churn, radio degradation,
    #: frame corruption, KGC outages); None runs the healthy network
    faults: Optional[FaultPlan] = None
    # reproducibility
    seed: int = 1

    def validate(self) -> None:
        """Raise SimulationError on inconsistent settings."""
        if self.protocol not in PROTOCOLS:
            raise SimulationError(f"unknown protocol {self.protocol!r}")
        if self.attack not in ATTACKS:
            raise SimulationError(f"unknown attack {self.attack!r}")
        if self.n_nodes < 2:
            raise SimulationError("need at least two nodes")
        if self.faults is not None:
            self.faults.validate()
        attackers = self.n_attackers if self.attack else 0
        if 2 * self.n_flows > self.n_nodes - attackers:
            raise SimulationError(
                "not enough honest nodes for disjoint flow endpoints"
            )

    def with_(self, **changes) -> "ScenarioConfig":
        """A copy of this config with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class ScenarioResult:
    config: ScenarioConfig
    metrics: MetricsCollector
    events_executed: int
    attacker_ids: List[int]
    #: injected-fault totals by event name (empty for healthy runs)
    fault_summary: Dict[str, int] = field(default_factory=dict)
    #: the ordered fault-event sequence the injector recorded
    fault_events: List[Dict[str, object]] = field(default_factory=list)

    def report(self) -> Dict[str, float]:
        """The metric report of the completed run."""
        return self.metrics.report()


def _build_crypto_material(config: ScenarioConfig, n_honest_ids: List[int]):
    """Key material per honest node id (and the signature size in bytes)."""
    if config.protocol == "pki":
        from repro.netsim.routing.pki_aodv import build_pki_material

        curve = toy_curve(64) if config.real_crypto else bn254()
        materials = build_pki_material(
            curve,
            n_honest_ids,
            real=config.real_crypto,
            seed=config.seed ^ 0x911,
        )
        tag_bytes = next(iter(materials.values())).auth_tag_bytes if materials else 0
        return materials, tag_bytes
    if config.protocol != "mccls":
        return {}, 0
    if config.real_crypto:
        curve = toy_curve(64)
        ctx = PairingContext(curve, random.Random(config.seed ^ 0xC0DE))
        scheme = create_scheme("mccls", ctx, precompute_s=True)
        directory = {}
        materials = {}
        signature_bytes = mccls_signature_size(bn254())  # honest wire size
        for node_id in n_honest_ids:
            keys = scheme.generate_user_keys(identity_of(node_id))
            directory[keys.identity] = keys.public_key
            materials[node_id] = CryptoMaterial(
                signature_bytes=signature_bytes,
                scheme=scheme,
                keys=keys,
                resolve_public_key=directory.get,
                directory=directory,
            )
        return materials, signature_bytes
    signature_bytes = mccls_signature_size(bn254())
    materials = {
        node_id: CryptoMaterial(signature_bytes=signature_bytes)
        for node_id in n_honest_ids
    }
    return materials, signature_bytes


def _sample_connected_endpoints(
    rng: random.Random,
    honest_ids: List[int],
    positions: Dict[int, tuple],
    range_m: float,
    n_flows: int,
) -> List[int]:
    """Sample 2*n_flows disjoint endpoints with initially-connected pairs.

    Connectivity is evaluated on the unit-disk graph of honest nodes at
    t = 0.  Falls back to unconstrained sampling if the topology cannot
    support the requested number of connected disjoint pairs.
    """
    components = _connected_components(honest_ids, positions, range_m)
    component_of = {
        nid: index for index, comp in enumerate(components) for nid in comp
    }
    for _ in range(64):
        available = list(honest_ids)
        rng.shuffle(available)
        endpoints: List[int] = []
        for _flow in range(n_flows):
            pair = _pick_connected_pair(available, component_of)
            if pair is None:
                break
            endpoints.extend(pair)
            available.remove(pair[0])
            available.remove(pair[1])
        if len(endpoints) == 2 * n_flows:
            return endpoints
    return rng.sample(honest_ids, 2 * n_flows)  # degenerate topology


def _pick_connected_pair(available: List[int], component_of: Dict[int, int]):
    by_component: Dict[int, List[int]] = {}
    for nid in available:
        by_component.setdefault(component_of[nid], []).append(nid)
    for members in by_component.values():
        if len(members) >= 2:
            return members[0], members[1]
    return None


def _connected_components(
    honest_ids: List[int], positions: Dict[int, tuple], range_m: float
) -> List[List[int]]:
    from repro.netsim.mobility import distance

    unvisited = set(honest_ids)
    components = []
    while unvisited:
        start = min(unvisited)
        frontier = [start]
        unvisited.discard(start)
        component = [start]
        while frontier:
            current = frontier.pop()
            reachable = [
                other
                for other in unvisited
                if distance(positions[current], positions[other]) <= range_m
            ]
            for other in reachable:
                unvisited.discard(other)
                frontier.append(other)
                component.append(other)
        components.append(component)
    return components


#: simulated seconds between queue-depth samples (sim.sample events and the
#: netsim.* registry histograms)
QUEUE_SAMPLE_INTERVAL_S = 1.0


def _schedule_queue_sampler(
    sim: Simulator, nodes: Dict[int, AODVNode], stop_s: float
) -> None:
    """Periodically sample scheduler and buffer depths over sim time.

    Emits ``sim.sample`` structured events and feeds the
    ``netsim.pending_events`` / ``netsim.buffered_packets`` registry
    histograms.  Scheduled only when at least one consumer (event sink or
    active registry) exists, so unobserved runs pay nothing.
    """
    registry = get_registry()
    if not registry.active and not sim.events.enabled:
        return

    def sample() -> None:
        pending = sim.pending_events()
        buffered = sum(
            len(discovery.buffer)
            for node in nodes.values()
            for discovery in getattr(node, "_pending", {}).values()
        )
        if registry.active:
            registry.histogram("netsim.pending_events").observe(pending)
            registry.histogram("netsim.buffered_packets").observe(buffered)
        if sim.events.enabled:
            sim.events.emit(
                "sim.sample",
                t=sim.now,
                pending_events=pending,
                buffered_packets=buffered,
            )
        if sim.now + QUEUE_SAMPLE_INTERVAL_S <= stop_s:
            sim.schedule(QUEUE_SAMPLE_INTERVAL_S, sample)

    sim.schedule(QUEUE_SAMPLE_INTERVAL_S, sample)


def build_scenario(config: ScenarioConfig, event_sink: Optional[EventSink] = None):
    """Construct (simulator, nodes, flows, metrics, attacker_ids).

    ``event_sink`` (optional) receives the structured JSONL event stream:
    routing/attack/auth events from the nodes, ``radio.tx`` per observed
    transmission, and periodic ``sim.sample`` queue-depth samples.
    """
    config.validate()
    sim = Simulator(seed=config.seed)
    if event_sink is not None:
        sim.attach_events(event_sink)
    metrics = MetricsCollector()
    radio = RadioMedium(
        sim,
        range_m=config.range_m,
        bitrate_bps=config.bitrate_bps,
        loss_rate=config.loss_rate,
        broadcast_jitter_s=config.broadcast_jitter_s,
    )

    layout_rng = sim.rng("layout")
    all_ids = list(range(config.n_nodes))
    attacker_ids: List[int] = []
    if config.attack:
        attacker_ids = sorted(layout_rng.sample(all_ids, config.n_attackers))
    honest_ids = [nid for nid in all_ids if nid not in attacker_ids]

    def make_mobility(node_id: int) -> RandomWaypoint:
        return RandomWaypoint(
            config.area_width,
            config.area_height,
            config.max_speed,
            sim.rng(f"mobility-{node_id}"),
            pause_time=config.pause_time,
        )

    mobilities = {node_id: make_mobility(node_id) for node_id in all_ids}

    # Flow endpoints are honest, pairwise disjoint, and initially connected
    # through honest relays (a flow between nodes that can never reach each
    # other measures topology luck, not the routing protocol).  With
    # mobility the pairs may still disconnect later, which is the effect
    # the speed sweep studies.
    positions = {nid: mobilities[nid].position(0.0) for nid in honest_ids}
    endpoints = _sample_connected_endpoints(
        layout_rng, honest_ids, positions, config.range_m, config.n_flows
    )
    flow_specs = [
        FlowSpec(
            flow_id=i,
            source=endpoints[2 * i],
            destination=endpoints[2 * i + 1],
            interval_s=config.cbr_interval_s,
            payload_bytes=config.cbr_payload_bytes,
            start_s=config.traffic_start_s + 0.13 * i,
            stop_s=config.sim_time_s,
        )
        for i in range(config.n_flows)
    ]

    materials, signature_bytes = _build_crypto_material(config, honest_ids)
    crypto_scheme = {
        "aodv": "none",
        "mccls": "mccls",
        "pki": "ecdsa-pki",
    }[config.protocol]
    crypto_model = CryptoTimingModel(
        scheme=crypto_scheme,
        costs=config.crypto_costs,
        speedup=config.crypto_speedup,
    )

    revocation_checker = None
    if config.protocol == "mccls" and config.revocation_time_s is not None:
        from repro.core.revocation import RevocationChecker, RevocationList

        revocation_checker = RevocationChecker()
        crl = RevocationList(
            version=1,
            revoked=frozenset(
                identity_of(attacker) for attacker in attacker_ids
            ),
        )

        def distribute_revocation() -> None:
            revocation_checker.apply(crl)
            # Nodes acting on a CRL also purge routes through the revoked
            # members; otherwise refresh-on-use keeps poisoned routes alive.
            for node_id, node in nodes.items():
                if node_id in attacker_ids:
                    continue
                for attacker in attacker_ids:
                    node.table.invalidate_via(attacker)

        sim.schedule_at(config.revocation_time_s, distribute_revocation)

    nodes: Dict[int, AODVNode] = {}
    for node_id in all_ids:
        mobility = mobilities[node_id]
        if node_id in attacker_ids:
            attacker_cls = ATTACK_ROLES[config.attack]
            kwargs = {}
            if config.attack in (
                "blackhole",
                "blackhole-cryptanalyst",
                "blackhole-insider",
                "grayhole",
            ):
                kwargs["signature_bytes"] = signature_bytes
                kwargs["fake_seq_boost"] = config.blackhole_fake_seq_boost
                kwargs["reply_radius_hops"] = config.blackhole_reply_radius
            nodes[node_id] = attacker_cls(
                node_id,
                sim,
                radio,
                mobility,
                metrics,
                crypto=CryptoTimingModel("none"),
                **kwargs,
            )
        elif config.protocol == "mccls":
            nodes[node_id] = McCLSAODVNode(
                node_id,
                sim,
                radio,
                mobility,
                metrics,
                crypto=crypto_model,
                material=materials[node_id],
                rushing_defense=config.rushing_defense,
                revocation=revocation_checker,
                hello_interval=config.hello_interval,
            )
        elif config.protocol == "pki":
            from repro.netsim.routing.pki_aodv import PKIAODVNode

            nodes[node_id] = PKIAODVNode(
                node_id,
                sim,
                radio,
                mobility,
                metrics,
                crypto=crypto_model,
                material=materials[node_id],
                hello_interval=config.hello_interval,
            )
        else:
            nodes[node_id] = AODVNode(
                node_id,
                sim,
                radio,
                mobility,
                metrics,
                crypto=crypto_model,
                hello_interval=config.hello_interval,
            )

    if config.attack == "wormhole":
        endpoints = [nodes[attacker] for attacker in attacker_ids]
        for left, right in zip(endpoints[0::2], endpoints[1::2]):
            left.pair_with(right)

    if config.faults is not None and not config.faults.empty:
        curve = None
        if config.real_crypto and config.protocol == "mccls" and materials:
            curve = next(iter(materials.values())).scheme.ctx.curve
        injector = FaultInjector(
            sim, radio, nodes, honest_ids, config.faults, curve=curve
        )
        injector.install()
        sim.faults = injector

    flows = [CBRFlow(sim, spec, nodes[spec.source]) for spec in flow_specs]
    if event_sink is not None and event_sink.enabled:
        # Mirror every transmission as a radio.tx event (the tracer is kept
        # alive by the radio's observer list).
        PacketTracer(radio, max_records=0, event_sink=event_sink)
    _schedule_queue_sampler(sim, nodes, stop_s=config.sim_time_s)
    return sim, nodes, flows, metrics, attacker_ids


def run_scenario(
    config: ScenarioConfig, event_sink: Optional[EventSink] = None
) -> ScenarioResult:
    """Build and run one scenario to completion.

    ``event_sink`` (optional) streams the structured events of the run;
    see :func:`build_scenario`.
    """
    sim, nodes, flows, metrics, attacker_ids = build_scenario(
        config, event_sink=event_sink
    )
    # Let queued deliveries/drain events settle a little past traffic stop.
    sim.run(until=config.sim_time_s + 5.0)
    return ScenarioResult(
        config=config,
        metrics=metrics,
        events_executed=sim.events_executed,
        attacker_ids=attacker_ids,
        fault_summary=sim.faults.summary() if sim.faults is not None else {},
        fault_events=list(sim.faults.log) if sim.faults is not None else [],
    )


def paper_speed_sweep() -> List[float]:
    """The x-axis of Figures 1-5."""
    return [0.0, 5.0, 10.0, 15.0, 20.0]
