"""Simulation campaigns: multi-seed runs with proper statistics.

One simulation run is one sample; the paper's curves (and any credible
MANET result) average several.  :func:`run_campaign` executes a scenario
across seeds and returns per-metric mean, standard deviation and a
confidence interval (Student-t via :mod:`scipy` when the sample is small),
plus the raw samples for custom analysis.

Runs are *isolated*: a seed whose simulation raises mid-run becomes a
structured :class:`RunFailure` record (seed, exception type, message)
instead of aborting the sweep, and summaries are computed over the
surviving samples.  A configurable failure budget bounds how much of a
campaign may fail before the whole campaign is declared broken - chaos
campaigns tolerate some losses, figure sweeps should tolerate none.

Runs are also *independent* (each seeds its own RNG streams), so a
campaign can fan them out to worker processes: ``workers=N`` (or the CLI's
``--workers N``) executes seeds on a :class:`~concurrent.futures.
ProcessPoolExecutor` and merges per-run reports, fault counts, failures
and obs-registry snapshots back in seed order, so the aggregated result
is byte-identical to a serial run.  A crashed worker only costs time:
seeds whose worker died are transparently re-run in-process.
"""

from __future__ import annotations

import math
import os
import statistics
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from scipy import stats as scipy_stats

from repro.errors import SimulationError
from repro.netsim.crypto_model import calibrated_costs
from repro.netsim.scenario import ScenarioConfig, run_scenario
from repro.pairing.bn import bn254, toy_curve
from repro.obs import collecting as obs_collecting
from repro.obs import get_registry


@dataclass(frozen=True)
class MetricSummary:
    mean: float
    std: float
    ci_low: float
    ci_high: float
    samples: tuple

    def __str__(self) -> str:
        return f"{self.mean:.4f} +/- {(self.ci_high - self.mean):.4f}"


@dataclass(frozen=True)
class RunFailure:
    """One per-seed run that raised instead of completing."""

    seed: int
    error_type: str
    message: str
    fault_plan: Optional[str] = None  # compact spec of the injected plan

    def __str__(self) -> str:
        return f"seed {self.seed}: {self.error_type}: {self.message}"


@dataclass(frozen=True, kw_only=True)
class CampaignConfig:
    """A full campaign specification: scenario, seeds, statistics, fan-out.

    Keyword-only by design (a campaign has too many scalar knobs for
    positional calls to stay readable).  :meth:`validate` checks the
    cross-field constraints; :func:`run_campaign` calls it for you.
    """

    scenario: ScenarioConfig
    seeds: Tuple[int, ...]
    confidence: float = 0.95
    failure_budget: float = 0.0
    #: worker processes; 1 = serial in-process execution
    workers: int = 1
    #: measure this machine's actual pairing/mult costs once (in the
    #: parent process) and price every run's modelled crypto with them;
    #: workers receive the measured OperationCosts inside the scenario
    #: config instead of re-timing per process
    calibrate: bool = False
    #: field-backend name for every context the campaign builds
    #: (calibration, real-crypto runs, worker processes); None = the
    #: usual REPRO_FIELD_BACKEND env / reference-default precedence
    backend: Optional[str] = None

    def validate(self) -> "CampaignConfig":
        """Check cross-field constraints; returns self for chaining."""
        if not self.seeds:
            raise ValueError("a campaign needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError("campaign seeds must be distinct")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if not 0.0 <= self.failure_budget <= 1.0:
            raise ValueError("failure_budget must be in [0, 1]")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        return self


@dataclass
class CampaignResult:
    config: ScenarioConfig
    seeds: List[int]
    metrics: Dict[str, MetricSummary] = field(default_factory=dict)
    #: per-seed runs that raised (run isolation keeps the sweep alive)
    failures: List[RunFailure] = field(default_factory=list)
    #: injected-fault totals summed over the surviving runs
    fault_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def completed_seeds(self) -> List[int]:
        """The seeds whose runs completed and contributed samples."""
        failed = {failure.seed for failure in self.failures}
        return [seed for seed in self.seeds if seed not in failed]

    def summary_line(self) -> str:
        """One auditable line: run survival, failures, injected faults."""
        parts = [
            f"campaign: {len(self.completed_seeds)}/{len(self.seeds)} runs ok"
        ]
        if self.failures:
            detail = "; ".join(str(failure) for failure in self.failures)
            parts.append(f"failures: {detail}")
        if self.fault_counts:
            injected = " ".join(
                f"{name}={count}"
                for name, count in sorted(self.fault_counts.items())
            )
            parts.append(f"faults injected: {injected}")
        return " | ".join(parts)

    def table_text(self, keys: Sequence[str] = ()) -> str:
        """Render the chosen metrics as an aligned text table."""
        keys = keys or (
            "packet_delivery_ratio",
            "rreq_ratio",
            "end_to_end_delay",
            "packet_drop_ratio",
        )
        lines = [f"{'metric':26s} {'mean':>9s} {'std':>9s} {'95% CI':>21s}"]
        for key in keys:
            summary = self.metrics[key]
            lines.append(
                f"{key:26s} {summary.mean:9.4f} {summary.std:9.4f} "
                f"[{summary.ci_low:9.4f}, {summary.ci_high:9.4f}]"
            )
        return "\n".join(lines)


def summarize(samples: Sequence[float], confidence: float = 0.95) -> MetricSummary:
    """Mean/std/CI of a sample set (t-interval; degenerate cases handled)."""
    values = list(samples)
    if not values:
        return MetricSummary(0.0, 0.0, 0.0, 0.0, ())
    mean = statistics.fmean(values)
    if len(values) == 1:
        return MetricSummary(mean, 0.0, mean, mean, tuple(values))
    std = statistics.stdev(values)
    if std == 0.0:
        return MetricSummary(mean, 0.0, mean, mean, tuple(values))
    t_value = scipy_stats.t.ppf((1 + confidence) / 2, df=len(values) - 1)
    half_width = t_value * std / math.sqrt(len(values))
    return MetricSummary(
        mean, std, mean - half_width, mean + half_width, tuple(values)
    )


#: one per-seed run as shipped between processes: ("ok", report,
#: fault_summary) or ("error", error_type, message)
_Outcome = Tuple[str, object, object]


def _seed_worker(
    config: ScenarioConfig, seed: int, collect_obs: bool
) -> Tuple[int, _Outcome, Optional[Dict[str, object]]]:
    """Run one seed in a worker process and return a picklable outcome.

    When the parent has a live obs registry, the worker collects into a
    fresh registry of its own and ships the snapshot back for merging
    (instrument state does not cross process boundaries by itself).
    """
    try:
        if collect_obs:
            with obs_collecting() as registry:
                run = run_scenario(config.with_(seed=seed))
            snapshot = registry.snapshot()
        else:
            run = run_scenario(config.with_(seed=seed))
            snapshot = None
        return seed, ("ok", run.report(), dict(run.fault_summary)), snapshot
    except Exception as exc:  # run isolation: ship the failure home
        return seed, ("error", type(exc).__name__, str(exc)), None


def _run_seeds_parallel(
    config: ScenarioConfig, seeds: Sequence[int], workers: int
) -> Dict[int, _Outcome]:
    """Fan seeds out to worker processes; return outcomes keyed by seed.

    Seeds missing from the returned mapping (worker process died, result
    failed to unpickle, executor broke) are the caller's to re-run
    serially - parallelism degrades to the serial path, never to a lost
    sample.  Worker obs snapshots are merged into the parent registry in
    seed order so instrumented parallel campaigns aggregate exactly like
    serial ones.
    """
    parent_registry = get_registry()
    collect_obs = parent_registry.active
    outcomes: Dict[int, _Outcome] = {}
    snapshots: Dict[int, Dict[str, object]] = {}
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(seeds))
        ) as pool:
            futures = [
                pool.submit(_seed_worker, config, seed, collect_obs)
                for seed in seeds
            ]
            for future in futures:
                try:
                    seed, outcome, snapshot = future.result()
                except Exception:
                    # This worker died (BrokenProcessPool reports the
                    # crash on every pending future); keep harvesting -
                    # completed results may still be retrievable.
                    continue
                outcomes[seed] = outcome
                if snapshot is not None:
                    snapshots[seed] = snapshot
    except Exception:
        # Executor setup/teardown failure: whatever was harvested stands,
        # the rest re-runs serially in the caller.
        pass
    for seed in sorted(snapshots):
        parent_registry.merge_snapshot(snapshots[seed])
    return outcomes


def run_campaign(
    config: Union[ScenarioConfig, CampaignConfig],
    seeds: Optional[Sequence[int]] = None,
    confidence: float = 0.95,
    failure_budget: float = 0.0,
    workers: int = 1,
    calibrate: bool = False,
    backend: Optional[str] = None,
) -> CampaignResult:
    """Run a campaign (one scenario x many seeds) and aggregate metrics.

    Accepts either a :class:`CampaignConfig` (the one-object form; leave
    the other arguments at their defaults) or the classic
    ``(ScenarioConfig, seeds, ...)`` call.

    A per-seed run that raises is recorded as a :class:`RunFailure` and the
    sweep continues; metrics are summarized over the surviving samples.
    ``failure_budget`` is the tolerated failed fraction of the campaign
    (0.0 = any failure is fatal, the right default for figure sweeps;
    chaos campaigns typically pass 0.5).  Exceeding the budget - or losing
    every run - raises :class:`~repro.errors.SimulationError` listing the
    recorded failures.

    ``workers > 1`` executes seeds on a process pool.  Results are
    aggregated in seed order through the same code path as a serial run,
    so summaries are byte-identical regardless of worker count; a crashed
    worker's seeds are re-run in-process automatically.
    """
    if isinstance(config, CampaignConfig):
        if seeds is not None:
            raise TypeError(
                "pass seeds inside CampaignConfig, not as a second argument"
            )
        campaign = config
    else:
        campaign = CampaignConfig(
            scenario=config,
            seeds=tuple(seeds if seeds is not None else ()),
            confidence=confidence,
            failure_budget=failure_budget,
            workers=workers,
            calibrate=calibrate,
            backend=backend,
        )
    campaign.validate()
    scenario = campaign.scenario
    backend_env: Optional[str] = None
    saved_env: Optional[str] = None
    if campaign.backend is not None:
        from repro.pairing import backends as _backends

        # Validate the name up front (a typo should fail the campaign,
        # not silently run N seeds on the default) and export it as the
        # env default for the campaign's duration, so every context the
        # runs build - in this process or in spawned seed workers, which
        # inherit the parent environment - lands on the chosen backend.
        backend_env = _backends.resolve_backend(campaign.backend).name
        saved_env = os.environ.get(_backends.ENV_VAR)
        os.environ[_backends.ENV_VAR] = backend_env
    try:
        if campaign.calibrate:
            # Calibrate ONCE, here in the parent, and ship the measured
            # costs inside the scenario config.  Workers unpickle the
            # costs instead of each re-timing the pairing on their own
            # (possibly loaded) core, so simulated crypto delays are
            # identical across workers and across worker counts.
            curve = (
                toy_curve(64, backend=backend_env)
                if scenario.real_crypto
                else bn254(backend=backend_env)
            )
            scenario = scenario.with_(crypto_costs=calibrated_costs(curve))
        return _run_campaign_body(campaign, scenario)
    finally:
        if backend_env is not None:
            from repro.pairing import backends as _backends

            if saved_env is None:
                os.environ.pop(_backends.ENV_VAR, None)
            else:
                os.environ[_backends.ENV_VAR] = saved_env


def _run_campaign_body(
    campaign: CampaignConfig, scenario: ScenarioConfig
) -> CampaignResult:
    """The seed fan-out and aggregation half of :func:`run_campaign`."""
    plan = scenario.faults
    plan_text = repr(plan.to_spec()) if plan is not None else None

    outcomes: Dict[int, _Outcome] = {}
    if campaign.workers > 1 and len(campaign.seeds) > 1:
        outcomes = _run_seeds_parallel(
            scenario, campaign.seeds, campaign.workers
        )
    for seed in campaign.seeds:
        if seed in outcomes:
            continue
        # Serial path - and the fallback for seeds a worker never
        # delivered.  Calls the module-global run_scenario so tests can
        # monkeypatch it.
        try:
            run = run_scenario(scenario.with_(seed=seed))
        except Exception as exc:  # run isolation: record, keep sweeping
            outcomes[seed] = ("error", type(exc).__name__, str(exc))
            continue
        outcomes[seed] = ("ok", run.report(), dict(run.fault_summary))

    # Aggregation walks seeds in order through this one path for serial
    # and parallel runs alike - determinism by construction.
    reports: List[Dict[str, float]] = []
    failures: List[RunFailure] = []
    fault_counts: Dict[str, int] = {}
    for seed in campaign.seeds:
        status, first, second = outcomes[seed]
        if status == "ok":
            reports.append(first)
            for name, count in second.items():
                fault_counts[name] = fault_counts.get(name, 0) + count
        else:
            failures.append(
                RunFailure(
                    seed=seed,
                    error_type=first,
                    message=second,
                    fault_plan=plan_text,
                )
            )
    if not reports:
        raise SimulationError(
            f"all {len(campaign.seeds)} campaign runs failed; "
            f"first: {failures[0]}"
        )
    if len(failures) > campaign.failure_budget * len(campaign.seeds):
        detail = "; ".join(str(failure) for failure in failures)
        raise SimulationError(
            f"campaign failure budget exceeded: "
            f"{len(failures)}/{len(campaign.seeds)} "
            f"runs failed (budget {campaign.failure_budget:.2f}): {detail}"
        )
    result = CampaignResult(
        config=scenario,
        seeds=list(campaign.seeds),
        failures=failures,
        fault_counts=fault_counts,
    )
    for key in reports[0]:
        result.metrics[key] = summarize(
            [report[key] for report in reports], campaign.confidence
        )
    return result


def compare_protocols(
    base: ScenarioConfig,
    seeds: Sequence[int],
    protocols: Sequence[str] = ("aodv", "mccls"),
    metric: str = "packet_delivery_ratio",
    workers: int = 1,
) -> Dict[str, MetricSummary]:
    """Same-seeds comparison of protocols on one metric (paired design)."""
    return {
        protocol: run_campaign(
            base.with_(protocol=protocol), seeds, workers=workers
        ).metrics[metric]
        for protocol in protocols
    }
