"""Simulation campaigns: multi-seed runs with proper statistics.

One simulation run is one sample; the paper's curves (and any credible
MANET result) average several.  :func:`run_campaign` executes a scenario
across seeds and returns per-metric mean, standard deviation and a
confidence interval (Student-t via :mod:`scipy` when the sample is small),
plus the raw samples for custom analysis.

Runs are *isolated*: a seed whose simulation raises mid-run becomes a
structured :class:`RunFailure` record (seed, exception type, message)
instead of aborting the sweep, and summaries are computed over the
surviving samples.  A configurable failure budget bounds how much of a
campaign may fail before the whole campaign is declared broken - chaos
campaigns tolerate some losses, figure sweeps should tolerate none.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from scipy import stats as scipy_stats

from repro.errors import SimulationError
from repro.netsim.scenario import ScenarioConfig, run_scenario


@dataclass(frozen=True)
class MetricSummary:
    mean: float
    std: float
    ci_low: float
    ci_high: float
    samples: tuple

    def __str__(self) -> str:
        return f"{self.mean:.4f} +/- {(self.ci_high - self.mean):.4f}"


@dataclass(frozen=True)
class RunFailure:
    """One per-seed run that raised instead of completing."""

    seed: int
    error_type: str
    message: str
    fault_plan: Optional[str] = None  # compact spec of the injected plan

    def __str__(self) -> str:
        return f"seed {self.seed}: {self.error_type}: {self.message}"


@dataclass
class CampaignResult:
    config: ScenarioConfig
    seeds: List[int]
    metrics: Dict[str, MetricSummary] = field(default_factory=dict)
    #: per-seed runs that raised (run isolation keeps the sweep alive)
    failures: List[RunFailure] = field(default_factory=list)
    #: injected-fault totals summed over the surviving runs
    fault_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def completed_seeds(self) -> List[int]:
        """The seeds whose runs completed and contributed samples."""
        failed = {failure.seed for failure in self.failures}
        return [seed for seed in self.seeds if seed not in failed]

    def summary_line(self) -> str:
        """One auditable line: run survival, failures, injected faults."""
        parts = [
            f"campaign: {len(self.completed_seeds)}/{len(self.seeds)} runs ok"
        ]
        if self.failures:
            detail = "; ".join(str(failure) for failure in self.failures)
            parts.append(f"failures: {detail}")
        if self.fault_counts:
            injected = " ".join(
                f"{name}={count}"
                for name, count in sorted(self.fault_counts.items())
            )
            parts.append(f"faults injected: {injected}")
        return " | ".join(parts)

    def table_text(self, keys: Sequence[str] = ()) -> str:
        """Render the chosen metrics as an aligned text table."""
        keys = keys or (
            "packet_delivery_ratio",
            "rreq_ratio",
            "end_to_end_delay",
            "packet_drop_ratio",
        )
        lines = [f"{'metric':26s} {'mean':>9s} {'std':>9s} {'95% CI':>21s}"]
        for key in keys:
            summary = self.metrics[key]
            lines.append(
                f"{key:26s} {summary.mean:9.4f} {summary.std:9.4f} "
                f"[{summary.ci_low:9.4f}, {summary.ci_high:9.4f}]"
            )
        return "\n".join(lines)


def summarize(samples: Sequence[float], confidence: float = 0.95) -> MetricSummary:
    """Mean/std/CI of a sample set (t-interval; degenerate cases handled)."""
    values = list(samples)
    if not values:
        return MetricSummary(0.0, 0.0, 0.0, 0.0, ())
    mean = statistics.fmean(values)
    if len(values) == 1:
        return MetricSummary(mean, 0.0, mean, mean, tuple(values))
    std = statistics.stdev(values)
    if std == 0.0:
        return MetricSummary(mean, 0.0, mean, mean, tuple(values))
    t_value = scipy_stats.t.ppf((1 + confidence) / 2, df=len(values) - 1)
    half_width = t_value * std / math.sqrt(len(values))
    return MetricSummary(
        mean, std, mean - half_width, mean + half_width, tuple(values)
    )


def run_campaign(
    config: ScenarioConfig,
    seeds: Sequence[int],
    confidence: float = 0.95,
    failure_budget: float = 0.0,
) -> CampaignResult:
    """Run ``config`` once per seed and aggregate every reported metric.

    A per-seed run that raises is recorded as a :class:`RunFailure` and the
    sweep continues; metrics are summarized over the surviving samples.
    ``failure_budget`` is the tolerated failed fraction of the campaign
    (0.0 = any failure is fatal, the right default for figure sweeps;
    chaos campaigns typically pass 0.5).  Exceeding the budget - or losing
    every run - raises :class:`~repro.errors.SimulationError` listing the
    recorded failures.
    """
    if not seeds:
        raise ValueError("a campaign needs at least one seed")
    if not 0.0 <= failure_budget <= 1.0:
        raise ValueError("failure_budget must be in [0, 1]")
    plan = config.faults
    plan_text = repr(plan.to_spec()) if plan is not None else None
    reports: List[Dict[str, float]] = []
    failures: List[RunFailure] = []
    fault_counts: Dict[str, int] = {}
    for seed in seeds:
        try:
            run = run_scenario(config.with_(seed=seed))
        except Exception as exc:  # run isolation: record, keep sweeping
            failures.append(
                RunFailure(
                    seed=seed,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    fault_plan=plan_text,
                )
            )
            continue
        reports.append(run.report())
        for name, count in run.fault_summary.items():
            fault_counts[name] = fault_counts.get(name, 0) + count
    if not reports:
        raise SimulationError(
            f"all {len(seeds)} campaign runs failed; first: {failures[0]}"
        )
    if len(failures) > failure_budget * len(seeds):
        detail = "; ".join(str(failure) for failure in failures)
        raise SimulationError(
            f"campaign failure budget exceeded: {len(failures)}/{len(seeds)} "
            f"runs failed (budget {failure_budget:.2f}): {detail}"
        )
    result = CampaignResult(
        config=config,
        seeds=list(seeds),
        failures=failures,
        fault_counts=fault_counts,
    )
    for key in reports[0]:
        result.metrics[key] = summarize(
            [report[key] for report in reports], confidence
        )
    return result


def compare_protocols(
    base: ScenarioConfig,
    seeds: Sequence[int],
    protocols: Sequence[str] = ("aodv", "mccls"),
    metric: str = "packet_delivery_ratio",
) -> Dict[str, MetricSummary]:
    """Same-seeds comparison of protocols on one metric (paired design)."""
    return {
        protocol: run_campaign(base.with_(protocol=protocol), seeds).metrics[
            metric
        ]
        for protocol in protocols
    }
