"""Simulation campaigns: multi-seed runs with proper statistics.

One simulation run is one sample; the paper's curves (and any credible
MANET result) average several.  :func:`run_campaign` executes a scenario
across seeds and returns per-metric mean, standard deviation and a
confidence interval (Student-t via :mod:`scipy` when the sample is small),
plus the raw samples for custom analysis.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from scipy import stats as scipy_stats

from repro.netsim.scenario import ScenarioConfig, run_scenario


@dataclass(frozen=True)
class MetricSummary:
    mean: float
    std: float
    ci_low: float
    ci_high: float
    samples: tuple

    def __str__(self) -> str:
        return f"{self.mean:.4f} +/- {(self.ci_high - self.mean):.4f}"


@dataclass
class CampaignResult:
    config: ScenarioConfig
    seeds: List[int]
    metrics: Dict[str, MetricSummary] = field(default_factory=dict)

    def table_text(self, keys: Sequence[str] = ()) -> str:
        """Render the chosen metrics as an aligned text table."""
        keys = keys or (
            "packet_delivery_ratio",
            "rreq_ratio",
            "end_to_end_delay",
            "packet_drop_ratio",
        )
        lines = [f"{'metric':26s} {'mean':>9s} {'std':>9s} {'95% CI':>21s}"]
        for key in keys:
            summary = self.metrics[key]
            lines.append(
                f"{key:26s} {summary.mean:9.4f} {summary.std:9.4f} "
                f"[{summary.ci_low:9.4f}, {summary.ci_high:9.4f}]"
            )
        return "\n".join(lines)


def summarize(samples: Sequence[float], confidence: float = 0.95) -> MetricSummary:
    """Mean/std/CI of a sample set (t-interval; degenerate cases handled)."""
    values = list(samples)
    if not values:
        return MetricSummary(0.0, 0.0, 0.0, 0.0, ())
    mean = statistics.fmean(values)
    if len(values) == 1:
        return MetricSummary(mean, 0.0, mean, mean, tuple(values))
    std = statistics.stdev(values)
    if std == 0.0:
        return MetricSummary(mean, 0.0, mean, mean, tuple(values))
    t_value = scipy_stats.t.ppf((1 + confidence) / 2, df=len(values) - 1)
    half_width = t_value * std / math.sqrt(len(values))
    return MetricSummary(
        mean, std, mean - half_width, mean + half_width, tuple(values)
    )


def run_campaign(
    config: ScenarioConfig,
    seeds: Sequence[int],
    confidence: float = 0.95,
) -> CampaignResult:
    """Run ``config`` once per seed and aggregate every reported metric."""
    if not seeds:
        raise ValueError("a campaign needs at least one seed")
    reports = [run_scenario(config.with_(seed=seed)).report() for seed in seeds]
    result = CampaignResult(config=config, seeds=list(seeds))
    for key in reports[0]:
        result.metrics[key] = summarize(
            [report[key] for report in reports], confidence
        )
    return result


def compare_protocols(
    base: ScenarioConfig,
    seeds: Sequence[int],
    protocols: Sequence[str] = ("aodv", "mccls"),
    metric: str = "packet_delivery_ratio",
) -> Dict[str, MetricSummary]:
    """Same-seeds comparison of protocols on one metric (paired design)."""
    return {
        protocol: run_campaign(base.with_(protocol=protocol), seeds).metrics[
            metric
        ]
        for protocol in protocols
    }
