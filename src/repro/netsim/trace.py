"""Packet tracing: per-transmission records for debugging and analysis.

QualNet-style trace files are how the paper's authors would have debugged
their AODV extension; :class:`PacketTracer` provides the same capability:
attach it to a :class:`~repro.netsim.radio.RadioMedium` and it records
every completed transmission (time, sender, link destination, packet kind,
size, receiver set), with filtering and a summary view.

Usage::

    sim, nodes, flows, metrics, attackers = build_scenario(config)
    tracer = PacketTracer(radio_of(nodes))      # or pass the radio directly
    sim.run(until=...)
    print(tracer.summary_text())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.netsim.packets import (
    DataPacket,
    Frame,
    RouteError,
    RouteReply,
    RouteRequest,
)
from repro.netsim.radio import RadioMedium
from repro.obs.events import EventSink, NULL_EVENT_SINK

_KIND_NAMES = {
    RouteRequest: "RREQ",
    RouteReply: "RREP",
    RouteError: "RERR",
    DataPacket: "DATA",
}


def packet_kind(payload: object) -> str:
    """Short name (RREQ/RREP/HELLO/RERR/DATA) of a payload."""
    for kind, name in _KIND_NAMES.items():
        if isinstance(payload, kind):
            if name == "RREP":
                reply = payload
                if reply.originator == reply.destination == reply.responder:
                    return "HELLO"
            return name
    return type(payload).__name__


@dataclass(frozen=True)
class TraceRecord:
    time: float
    sender: int
    link_destination: int
    kind: str
    size_bytes: int
    receivers: Tuple[int, ...]
    authenticated: bool
    #: the actual payload object (DataPacket / RouteRequest / ...), kept so
    #: analyses can group records per flow, per flood, per packet
    payload: object = None

    def render(self) -> str:
        """Render as aligned human-readable text."""
        destination = (
            "*" if self.link_destination == -1 else str(self.link_destination)
        )
        rx = ",".join(str(r) for r in self.receivers) or "-"
        auth = " [signed]" if self.authenticated else ""
        return (
            f"{self.time:10.6f}  {self.sender:>3} -> {destination:>3}  "
            f"{self.kind:<5} {self.size_bytes:>5}B  rx={rx}{auth}"
        )


class PacketTracer:
    """Records every transmission on a radio medium."""

    def __init__(
        self,
        radio: RadioMedium,
        max_records: int = 100_000,
        event_sink: Optional[EventSink] = None,
    ):
        self.records: List[TraceRecord] = []
        self.max_records = max_records
        self.dropped_records = 0
        #: structured-event sink mirroring every observed transmission as a
        #: ``radio.tx`` event (no-op by default)
        self.event_sink = event_sink if event_sink is not None else NULL_EVENT_SINK
        radio.add_observer(self._observe)

    def _observe(self, now: float, frame: Frame, receivers: Tuple[int, ...]) -> None:
        payload = frame.payload
        if self.event_sink.enabled:
            self.event_sink.emit(
                "radio.tx",
                t=now,
                node=frame.sender,
                dst=frame.link_destination,
                kind=packet_kind(payload),
                bytes=frame.size_bytes,
                receivers=len(receivers),
            )
        if len(self.records) >= self.max_records:
            self.dropped_records += 1
            return
        authenticated = getattr(payload, "auth", None) is not None
        self.records.append(
            TraceRecord(
                time=now,
                sender=frame.sender,
                link_destination=frame.link_destination,
                kind=packet_kind(payload),
                size_bytes=frame.size_bytes,
                receivers=receivers,
                authenticated=authenticated,
                payload=payload,
            )
        )

    # -- queries --------------------------------------------------------------
    def filter(
        self,
        kind: Optional[str] = None,
        sender: Optional[int] = None,
        since: float = 0.0,
    ) -> List[TraceRecord]:
        """Records matching kind/sender/time criteria."""
        return [
            record
            for record in self.records
            if (kind is None or record.kind == kind)
            and (sender is None or record.sender == sender)
            and record.time >= since
        ]

    def counts_by_kind(self) -> Dict[str, int]:
        """Frame counts per packet kind."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

    def bytes_by_kind(self) -> Dict[str, int]:
        """Transmitted bytes per packet kind."""
        totals: Dict[str, int] = {}
        for record in self.records:
            totals[record.kind] = totals.get(record.kind, 0) + record.size_bytes
        return totals

    def summary_text(self) -> str:
        """Aligned per-kind frame/byte totals."""
        lines = ["packet trace summary:"]
        counts = self.counts_by_kind()
        sizes = self.bytes_by_kind()
        for kind in sorted(counts):
            lines.append(
                f"  {kind:<6} {counts[kind]:>6} frames  {sizes[kind]:>9} bytes"
            )
        lines.append(f"  total  {len(self.records):>6} frames")
        if self.dropped_records:
            lines.append(f"  ({self.dropped_records} records dropped at cap)")
        return "\n".join(lines)

    def render(self, records: Optional[Iterable[TraceRecord]] = None) -> str:
        """Render as aligned human-readable text.

        ``records=None`` renders everything recorded; an explicit (possibly
        empty) iterable renders exactly those records.
        """
        chosen = records if records is not None else self.records
        return "\n".join(r.render() for r in chosen)
