"""Packet formats for the MANET simulator.

Sizes follow RFC 3561's message formats plus a constant link/IP overhead,
so the transmission-delay model (size / bitrate) is honest.  The secure
variants carry a signature blob and the signer identity; their extra bytes
are charged by the radio exactly like payload bytes, which is one of the
two ways McCLS shows up in the end-to-end delay of Figure 3 (the other is
crypto processing time).

Routing messages are immutable dataclasses; per-hop mutation (hop counts,
TTL) happens via ``dataclasses.replace`` so a packet captured by one node
can never be aliased and silently edited by another - a classic simulator
bug class this design rules out.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

#: bytes of MAC + IP framing charged to every transmission
LINK_OVERHEAD_BYTES = 44
#: RFC 3561 fixed header sizes
RREQ_BYTES = 24
RREP_BYTES = 20
RERR_BASE_BYTES = 12
RERR_PER_DEST_BYTES = 8
HELLO_BYTES = RREP_BYTES
DATA_HEADER_BYTES = 12

BROADCAST = -1


@dataclass(frozen=True)
class AuthTag:
    """Authentication extension: signer identity + signature blob size.

    The simulator carries the *real* signature object when real crypto is
    enabled, or just its wire size when running with the timing model (the
    accept/reject decision is then taken by the attack/trust model).
    """

    signer: str
    size_bytes: int
    signature: object = field(default=None, compare=False)
    #: the tag can never verify: attackers that cannot actually sign,
    #: quarantined nodes lacking a partial key, and in-flight corruption
    forged: bool = False


@dataclass(frozen=True)
class RouteRequest:
    """AODV RREQ."""

    rreq_id: int
    originator: int
    originator_seq: int
    destination: int
    destination_seq: int  # last known; 0 = unknown
    hop_count: int
    ttl: int
    originated_at: float
    auth: Optional[AuthTag] = None  # end-to-end: the originator's signature
    hop_auth: Optional[AuthTag] = None  # per-hop: the last forwarder's signature

    @property
    def size_bytes(self) -> int:
        size = RREQ_BYTES
        if self.auth:
            size += self.auth.size_bytes
        if self.hop_auth:
            size += self.hop_auth.size_bytes
        return size

    def hop_forward(self) -> "RouteRequest":
        """A per-hop copy with hop count advanced (original untouched)."""
        return replace(self, hop_count=self.hop_count + 1, ttl=self.ttl - 1)

    def signed_fields(self) -> Tuple:
        """The immutable fields covered by the originator's signature.

        hop_count and ttl mutate per hop and are excluded, as in SAODV's
        single-signature mode.
        """
        return (
            "rreq",
            self.rreq_id,
            self.originator,
            self.originator_seq,
            self.destination,
        )


@dataclass(frozen=True)
class RouteReply:
    """AODV RREP (also used as HELLO when originator == destination)."""

    originator: int  # the node the reply travels back to
    destination: int  # the node the route leads to
    destination_seq: int
    hop_count: int
    lifetime: float
    responder: int  # who generated this RREP
    auth: Optional[AuthTag] = None  # end-to-end: the destination's signature
    hop_auth: Optional[AuthTag] = None  # per-hop: the last forwarder's signature

    @property
    def size_bytes(self) -> int:
        size = RREP_BYTES
        if self.auth:
            size += self.auth.size_bytes
        if self.hop_auth:
            size += self.hop_auth.size_bytes
        return size

    def hop_forward(self) -> "RouteReply":
        """A per-hop copy with hop count advanced (original untouched)."""
        return replace(self, hop_count=self.hop_count + 1)

    def signed_fields(self) -> Tuple:
        """The immutable fields covered by the end-to-end signature."""
        return (
            "rrep",
            self.originator,
            self.destination,
            self.destination_seq,
            self.responder,
        )


@dataclass(frozen=True)
class RouteError:
    """AODV RERR: unreachable (destination, seq) pairs."""

    unreachable: Tuple[Tuple[int, int], ...]

    @property
    def size_bytes(self) -> int:
        return RERR_BASE_BYTES + RERR_PER_DEST_BYTES * len(self.unreachable)


@dataclass(frozen=True)
class DataPacket:
    """Application (CBR) payload."""

    flow_id: int
    seq: int
    source: int
    destination: int
    payload_bytes: int
    created_at: float

    @property
    def size_bytes(self) -> int:
        return DATA_HEADER_BYTES + self.payload_bytes


@dataclass(frozen=True)
class Frame:
    """One link-layer transmission: routing message or data + addressing."""

    sender: int
    link_destination: int  # BROADCAST or a node id
    payload: object  # RouteRequest | RouteReply | RouteError | DataPacket

    @property
    def size_bytes(self) -> int:
        return LINK_OVERHEAD_BYTES + self.payload.size_bytes

    @property
    def is_broadcast(self) -> bool:
        return self.link_destination == BROADCAST
