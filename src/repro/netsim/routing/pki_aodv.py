"""PKI-AODV: the traditional-PKI alternative the paper's intro argues against.

Same authentication architecture as McCLS-AODV (end-to-end signature by
the originator/destination + per-hop forwarder signature), but implemented
with ECDSA and X.509-style certificates instead of certificateless
signatures.  The structural differences the paper's introduction claims -
and this node class makes measurable - are:

* **Bandwidth**: every signature must be accompanied by the signer's
  certificate (and, for multi-level CAs, the chain), because a MANET has
  no online directory.  A signed+certified tag costs
  ``ecdsa_sig + chain_len * certificate_bytes`` on the wire, vs. a bare
  226-byte McCLS signature whose "certificate" is the identity string
  itself.
* **Verification work**: checking one message costs one ECDSA verify for
  the message plus one per chain link, plus revocation-list consultation.
* **Revocation state**: verifiers must track CRLs; the scenario layer can
  revoke an attacker's certificate mid-run, which is PKI's advantage -
  certificateless has no built-in revocation story.

Modelled mode works exactly like the secure-AODV modelled mode: honest
nodes carry valid tags, attackers (no CA-issued certificate) carry
``forged=True`` tags, and CPU cost comes from the "ecdsa-pki" entry of the
crypto timing model.  Real mode signs/verifies with the actual
:mod:`repro.pki` machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.netsim.packets import AuthTag, Frame, RouteReply, RouteRequest
from repro.netsim.routing.aodv import AODVNode
from repro.netsim.routing.secure_aodv import identity_of
from repro.pki.ca import Certificate, CertificateAuthority, CertifiedIdentity
from repro.pki.ecdsa import ECDSA, signature_size_bytes

#: approximate wire size of one certificate: subject (~16) + issuer (~16)
#: + public key point (65) + validity (16) + serial (4) + signature (r, s).
def certificate_bytes(curve) -> int:
    """Approximate wire size of one certificate on this curve."""
    return 16 + 16 + 65 + 16 + 4 + signature_size_bytes(curve)


@dataclass
class PKIMaterial:
    """Per-node PKI state: key pair + certificate chain + trust anchors."""

    auth_tag_bytes: int  # signature + chain, charged per signed message
    chain_length: int = 1
    ecdsa: Optional[ECDSA] = None
    identity: Optional[CertifiedIdentity] = None
    authorities: Optional[Dict[str, CertificateAuthority]] = None
    resolve_certificate: Optional[Callable[[str], CertifiedIdentity]] = None

    @property
    def real(self) -> bool:
        return self.ecdsa is not None and self.identity is not None


class PKIAODVNode(AODVNode):
    """An honest node running certificate-based authenticated AODV."""

    role = "honest-pki"

    def __init__(self, *args, material: PKIMaterial, **kwargs):
        kwargs.setdefault("allow_intermediate_rrep", False)
        super().__init__(*args, **kwargs)
        self.material = material

    # -- signing ------------------------------------------------------------------
    def _make_auth(self, fields: tuple) -> AuthTag:
        material = self.material
        if material.real:
            signature = material.ecdsa.sign(
                repr(fields).encode(), material.identity.keys
            )
            return AuthTag(
                signer=identity_of(self.node_id),
                size_bytes=material.auth_tag_bytes,
                signature=signature,
            )
        return AuthTag(
            signer=identity_of(self.node_id),
            size_bytes=material.auth_tag_bytes,
        )

    def _make_rreq_auth(self, signed_fields: tuple) -> AuthTag:
        return self._make_auth(signed_fields)

    def _make_rrep_auth(self, signed_fields: tuple) -> AuthTag:
        return self._make_auth(signed_fields)

    def _make_hop_auth(self, signed_fields: tuple) -> AuthTag:
        return self._make_auth(("hop",) + signed_fields + (self.node_id,))

    # -- verification ---------------------------------------------------------------
    def _auth_valid(
        self, auth: Optional[AuthTag], expected_signer_id: int, fields: tuple
    ) -> bool:
        if auth is None or auth.forged:
            return False
        if auth.signer != identity_of(expected_signer_id):
            return False
        material = self.material
        if material.real:
            if auth.signature is None or material.resolve_certificate is None:
                return False
            certified = material.resolve_certificate(auth.signer)
            if certified is None:
                return False
            # Certificate-chain walk + CRL checks, then the signature.
            try:
                from repro.pki.ca import verify_chain

                verify_chain(
                    certified.chain, material.authorities or {}, now=0.0
                )
            except Exception:
                return False
            return material.ecdsa.verify(
                repr(fields).encode(),
                auth.signature,
                public_key=certified.keys.public_key,
            )
        return True

    def _hop_auth_valid(self, message, frame: Frame) -> bool:
        fields = ("hop",) + message.signed_fields() + (frame.sender,)
        return self._auth_valid(message.hop_auth, frame.sender, fields)

    def _rreq_accept(self, frame: Frame, rreq: RouteRequest) -> bool:
        if not self._auth_valid(rreq.auth, rreq.originator, rreq.signed_fields()):
            self.metrics.auth_rejected += 1
            return False
        if not self._hop_auth_valid(rreq, frame):
            self.metrics.auth_rejected += 1
            return False
        return True

    def _rrep_accept(self, frame: Frame, rrep: RouteReply) -> bool:
        if rrep.responder != rrep.destination:
            self.metrics.auth_rejected += 1
            return False
        if not self._auth_valid(rrep.auth, rrep.destination, rrep.signed_fields()):
            self.metrics.auth_rejected += 1
            return False
        if not self._hop_auth_valid(rrep, frame):
            self.metrics.auth_rejected += 1
            return False
        return True

    def _may_answer_from_cache(self, rreq: RouteRequest, route) -> bool:
        return False

    # -- per-hop re-signing -------------------------------------------------------
    def _before_forward_rreq(self, frame: Frame, rreq: RouteRequest):
        from dataclasses import replace

        return replace(rreq, hop_auth=self._make_hop_auth(rreq.signed_fields()))

    def _before_forward_rrep(self, rrep: RouteReply):
        from dataclasses import replace

        return replace(rrep, hop_auth=self._make_hop_auth(rrep.signed_fields()))

    def _verify_cost(self, message) -> float:
        verifications = (1 if message.auth else 0) + (
            1 if getattr(message, "hop_auth", None) else 0
        )
        return verifications * self.crypto.verify_delay()

    def _forward_sign_cost(self) -> float:
        return self.crypto.sign_delay()


def build_pki_material(
    curve,
    node_ids: List[int],
    real: bool = False,
    chain_length: int = 2,
    seed: int = 0,
) -> Dict[int, PKIMaterial]:
    """Provision PKI material for a set of nodes.

    ``chain_length`` models the CA hierarchy depth (root + regional CAs);
    every signed message carries that many certificates on the wire.
    """
    tag_bytes = signature_size_bytes(curve) + chain_length * certificate_bytes(curve)
    if not real:
        return {
            node_id: PKIMaterial(
                auth_tag_bytes=tag_bytes, chain_length=chain_length
            )
            for node_id in node_ids
        }

    from repro.pki.ca import enroll_identity

    root = CertificateAuthority("root-ca", curve, seed=seed)
    issuer = root
    authorities = {"root-ca": root}
    if chain_length >= 2:
        issuer = CertificateAuthority(
            "regional-ca", curve, parent=root, seed=seed + 1
        )
        authorities["regional-ca"] = issuer
    ecdsa = ECDSA(curve)
    directory: Dict[str, CertifiedIdentity] = {}
    materials = {}
    for node_id in node_ids:
        certified = enroll_identity(
            identity_of(node_id), issuer, seed=seed + 10 + node_id
        )
        directory[certified.name] = certified
        materials[node_id] = PKIMaterial(
            auth_tag_bytes=tag_bytes,
            chain_length=chain_length,
            ecdsa=ecdsa,
            identity=certified,
            authorities=authorities,
            resolve_certificate=directory.get,
        )
    return materials
