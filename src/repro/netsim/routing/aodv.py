"""Ad hoc On-Demand Distance Vector routing (RFC 3561 mechanisms).

Implements the mechanisms the paper says its QualNet setup retained:
"route discovery, reverse path setup, forwarding path setup, route
maintenance, and so on":

* on-demand route discovery by RREQ flooding with duplicate suppression,
  expanding-ring search and bounded retries,
* reverse-path setup while the RREQ travels, forward-path setup while the
  RREP travels back (destination-sequence-number freshness rules),
* data buffering during discovery,
* route maintenance: link-failure detection on unicast forwarding (the
  802.11 "no MAC ACK" signal, modelled as an in-range check at send time),
  RERR propagation to precursors, and re-discovery by sources.

Attackers and the McCLS authentication extension subclass this node; every
overridable decision point is a small method (``_rreq_accept``,
``_before_forward_rreq``, ...), so the variants stay honest about what an
attacker can and cannot touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.netsim.crypto_model import CryptoTimingModel
from repro.netsim.engine import EventHandle, Simulator
from repro.netsim.metrics import MetricsCollector
from repro.netsim.mobility import MobilityModel
from repro.netsim.node import NetworkNode
from repro.netsim.packets import (
    DataPacket,
    Frame,
    RouteError,
    RouteReply,
    RouteRequest,
)
from repro.netsim.radio import RadioMedium
from repro.netsim.routing.table import RoutingTable

# -- AODV constants (RFC 3561 Section 10, adapted to the paper's scale) -----
ACTIVE_ROUTE_TIMEOUT = 3.0
MY_ROUTE_TIMEOUT = 2 * ACTIVE_ROUTE_TIMEOUT
NODE_TRAVERSAL_TIME = 0.04
NET_DIAMETER = 12
NET_TRAVERSAL_TIME = 2 * NODE_TRAVERSAL_TIME * NET_DIAMETER
PATH_DISCOVERY_TIME = 2 * NET_TRAVERSAL_TIME
RREQ_RETRIES = 2
TTL_START = 4
TTL_INCREMENT = 3
TTL_THRESHOLD = 10
SEEN_CACHE_LIFETIME = PATH_DISCOVERY_TIME
MAX_BUFFERED_PACKETS = 64
#: binary exponential backoff after failed discoveries (RFC 3561 6.3):
#: without it, traffic to an unreachable destination floods the network
#: with RREQs forever (which is exactly what static disconnected scenarios
#: would otherwise show in the Figure 2 overhead metric).
DISCOVERY_BACKOFF_BASE = NET_TRAVERSAL_TIME * 2
DISCOVERY_BACKOFF_CAP = 10.0
#: HELLO-based neighbour monitoring (RFC 3561 6.9); enabled by passing a
#: positive hello_interval to the node.
ALLOWED_HELLO_LOSS = 2


@dataclass
class PendingDiscovery:
    """State of an in-progress route discovery at the originator."""

    destination: int
    ttl: int
    retries_left: int
    timer: Optional[EventHandle] = None
    buffer: List[DataPacket] = field(default_factory=list)


class AODVNode(NetworkNode):
    """One MANET node running AODV (and carrying application traffic)."""

    #: label used by scenario reports
    role = "honest"

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        radio: RadioMedium,
        mobility: MobilityModel,
        metrics: MetricsCollector,
        crypto: Optional[CryptoTimingModel] = None,
        allow_intermediate_rrep: bool = True,
        hello_interval: float = 0.0,
    ):
        super().__init__(node_id, sim, radio, mobility, metrics, crypto)
        self.table = RoutingTable()
        self.seq_no = 0
        self.rreq_id = 0
        self.allow_intermediate_rrep = allow_intermediate_rrep
        self._seen_rreqs: Dict[Tuple[int, int], float] = {}
        self._pending: Dict[int, PendingDiscovery] = {}
        # destination -> (earliest next discovery time, consecutive failures)
        self._discovery_backoff: Dict[int, Tuple[float, int]] = {}
        # HELLO-based neighbour monitoring (off unless hello_interval > 0).
        self.hello_interval = hello_interval
        self._last_hello_from: Dict[int, float] = {}
        self._hello_timer: Optional[EventHandle] = None
        if hello_interval > 0:
            offset = sim.rng("hello").uniform(0, hello_interval)
            self._hello_timer = sim.schedule(offset, self._hello_tick)

    # ------------------------------------------------------------------ data path
    def send_data(self, packet: DataPacket) -> None:
        """Entry point for application traffic originated at this node."""
        self.metrics.data_sent += 1
        route = self.table.lookup(packet.destination, self.sim.now)
        if route is not None:
            self._forward_data(packet, route.next_hop, originating=True)
        else:
            self._buffer_and_discover(packet)

    def _buffer_and_discover(self, packet: DataPacket) -> None:
        pending = self._pending.get(packet.destination)
        if pending is None:
            not_before, _ = self._discovery_backoff.get(
                packet.destination, (0.0, 0)
            )
            if self.sim.now < not_before:
                self.metrics.dropped_no_route += 1
                return
            pending = PendingDiscovery(
                destination=packet.destination,
                ttl=TTL_START,
                retries_left=RREQ_RETRIES,
            )
            self._pending[packet.destination] = pending
            pending.buffer.append(packet)
            self.emit_event("discovery.start", destination=packet.destination)
            self._send_rreq(pending, retry=False)
        else:
            if len(pending.buffer) >= MAX_BUFFERED_PACKETS:
                self.metrics.dropped_buffer_overflow += 1
                return
            pending.buffer.append(packet)

    def _forward_data(
        self, packet: DataPacket, next_hop: int, originating: bool = False
    ) -> None:
        if not originating:
            self.metrics.data_forwarded += 1
        if not self.radio.in_range(self.node_id, next_hop):
            # MAC-level delivery failure: route maintenance kicks in.
            self._handle_link_break(next_hop, packet)
            return
        self.table.refresh(packet.destination, ACTIVE_ROUTE_TIMEOUT, self.sim.now)
        self.unicast(next_hop, packet)

    def _handle_data(self, frame: Frame, packet: DataPacket) -> None:
        if packet.destination == self.node_id:
            self.metrics.record_delivery(
                packet.flow_id, self.sim.now - packet.created_at
            )
            return
        route = self.table.lookup(packet.destination, self.sim.now)
        if route is None:
            self.metrics.dropped_no_route += 1
            self._originate_rerr([packet.destination])
            return
        self._forward_data(packet, route.next_hop)

    # ------------------------------------------------------------------ discovery
    def _send_rreq(self, pending: PendingDiscovery, retry: bool) -> None:
        self.seq_no += 1
        self.rreq_id += 1
        known = self.table.entry(pending.destination)
        signed_fields = (
            "rreq",
            self.rreq_id,
            self.node_id,
            self.seq_no,
            pending.destination,
        )
        rreq = RouteRequest(
            rreq_id=self.rreq_id,
            originator=self.node_id,
            originator_seq=self.seq_no,
            destination=pending.destination,
            destination_seq=known.destination_seq if known is not None else 0,
            hop_count=0,
            ttl=pending.ttl,
            originated_at=self.sim.now,
            auth=self._make_rreq_auth(signed_fields),
            hop_auth=self._make_hop_auth(signed_fields),
        )
        self._seen_rreqs[(self.node_id, self.rreq_id)] = (
            self.sim.now + SEEN_CACHE_LIFETIME
        )
        if retry:
            self.metrics.rreq_retried += 1
            self.emit_event(
                "discovery.retry",
                destination=pending.destination,
                ttl=pending.ttl,
                retries_left=pending.retries_left,
            )
        else:
            self.metrics.rreq_initiated += 1
        self.cpu_process(
            self.crypto.sign_delay() if rreq.auth else 0.0,
            self.broadcast,
            rreq,
            op="sign",
        )
        timeout = NET_TRAVERSAL_TIME * (1 + (RREQ_RETRIES - pending.retries_left))
        pending.timer = self.sim.schedule(
            timeout, self._discovery_timeout, pending.destination
        )

    def _discovery_timeout(self, destination: int) -> None:
        pending = self._pending.get(destination)
        if pending is None:
            return
        if self.table.lookup(destination, self.sim.now) is not None:
            self._discovery_complete(destination)
            return
        if pending.retries_left > 0:
            pending.retries_left -= 1
            pending.ttl = min(pending.ttl + TTL_INCREMENT, TTL_THRESHOLD)
            self._send_rreq(pending, retry=True)
        else:
            self.metrics.discovery_failures += 1
            self.metrics.dropped_no_route += len(pending.buffer)
            self.emit_event(
                "discovery.failed",
                destination=destination,
                dropped=len(pending.buffer),
            )
            del self._pending[destination]
            _, failures = self._discovery_backoff.get(destination, (0.0, 0))
            failures += 1
            delay = min(
                DISCOVERY_BACKOFF_BASE * (2 ** failures), DISCOVERY_BACKOFF_CAP
            )
            self._discovery_backoff[destination] = (self.sim.now + delay, failures)

    def _discovery_complete(self, destination: int) -> None:
        self._discovery_backoff.pop(destination, None)
        pending = self._pending.pop(destination, None)
        if pending is None:
            return
        if pending.timer is not None:
            pending.timer.cancel()
        route = self.table.lookup(destination, self.sim.now)
        if route is None:  # pragma: no cover - raced with expiry
            self.metrics.dropped_no_route += len(pending.buffer)
            return
        self.emit_event(
            "discovery.complete",
            destination=destination,
            hop_count=route.hop_count,
            buffered=len(pending.buffer),
        )
        for packet in pending.buffer:
            self._forward_data(packet, route.next_hop, originating=True)

    # ------------------------------------------------------------------ RREQ handling
    def _handle_rreq(self, frame: Frame, rreq: RouteRequest) -> None:
        key = (rreq.originator, rreq.rreq_id)
        expiry = self._seen_rreqs.get(key)
        if expiry is not None and self.sim.now < expiry:
            return  # duplicate
        if not self._rreq_accept(frame, rreq):
            # Rejected copies must NOT enter the duplicate cache: otherwise
            # an attacker's unauthenticated copy would suppress the honest
            # copies arriving right behind it.
            return
        self._seen_rreqs[key] = self.sim.now + SEEN_CACHE_LIFETIME
        if len(self._seen_rreqs) > 4096:
            self._prune_seen_cache()

        self.cpu_process(
            self._verify_cost(rreq), self._process_rreq, frame, rreq, op="verify"
        )

    def _process_rreq(self, frame: Frame, rreq: RouteRequest) -> None:
        now = self.sim.now
        # Route to the previous hop (unknown seq -> 0).
        self.table.update(frame.sender, frame.sender, 1, 0, ACTIVE_ROUTE_TIMEOUT, now)
        # Reverse route to the originator.
        self.table.update(
            rreq.originator,
            frame.sender,
            rreq.hop_count + 1,
            rreq.originator_seq,
            PATH_DISCOVERY_TIME,
            now,
        )

        if rreq.destination == self.node_id:
            self.seq_no = max(self.seq_no, rreq.destination_seq)
            self._send_rrep_as_destination(frame, rreq)
            return

        if self.allow_intermediate_rrep:
            route = self.table.lookup(rreq.destination, now)
            if (
                route is not None
                and route.destination_seq >= rreq.destination_seq
                and route.destination_seq > 0
                and self._may_answer_from_cache(rreq, route)
            ):
                self._send_rrep_from_cache(frame, rreq, route)
                return

        if rreq.ttl > 1:
            self._forward_rreq(frame, rreq)
        else:
            self.metrics.dropped_ttl += 1

    def _forward_rreq(self, frame: Frame, rreq: RouteRequest) -> None:
        forwarded = self._before_forward_rreq(frame, rreq.hop_forward())
        if forwarded is None:
            return
        self.metrics.rreq_forwarded += 1
        self.cpu_process(
            self._forward_sign_cost(),
            self.broadcast,
            forwarded,
            self._rreq_forward_jitter(),
            op="sign",
        )

    def _send_rrep_as_destination(self, frame: Frame, rreq: RouteRequest) -> None:
        self.seq_no += 1
        signed_fields = (
            "rrep",
            rreq.originator,
            self.node_id,
            self.seq_no,
            self.node_id,
        )
        rrep = RouteReply(
            originator=rreq.originator,
            destination=self.node_id,
            destination_seq=self.seq_no,
            hop_count=0,
            lifetime=MY_ROUTE_TIMEOUT,
            responder=self.node_id,
            auth=self._make_rrep_auth(signed_fields),
            hop_auth=self._make_hop_auth(signed_fields),
        )
        self.metrics.rrep_sent += 1
        self.cpu_process(
            self.crypto.sign_delay() if rrep.auth else 0.0,
            self.unicast,
            frame.sender,
            rrep,
            op="sign",
        )

    def _send_rrep_from_cache(self, frame, rreq: RouteRequest, route) -> None:
        signed_fields = (
            "rrep",
            rreq.originator,
            rreq.destination,
            route.destination_seq,
            self.node_id,
        )
        rrep = RouteReply(
            originator=rreq.originator,
            destination=rreq.destination,
            destination_seq=route.destination_seq,
            hop_count=route.hop_count,
            lifetime=max(0.0, route.expiry - self.sim.now),
            responder=self.node_id,
            auth=self._make_rrep_auth(signed_fields),
        )
        self.table.add_precursor(rreq.destination, frame.sender)
        self.metrics.rrep_sent += 1
        self.cpu_process(
            self.crypto.sign_delay() if rrep.auth else 0.0,
            self.unicast,
            frame.sender,
            rrep,
            op="sign",
        )

    # ------------------------------------------------------------------ RREP handling
    def _handle_rrep(self, frame: Frame, rrep: RouteReply) -> None:
        if not self._rrep_accept(frame, rrep):
            return
        if rrep.originator == rrep.destination == rrep.responder:
            # HELLO beacon: consume, never forward.
            self.cpu_process(
                self._verify_cost(rrep), self._handle_hello, frame, rrep, op="verify"
            )
            return
        self.cpu_process(
            self._verify_cost(rrep), self._process_rrep, frame, rrep, op="verify"
        )

    def _process_rrep(self, frame: Frame, rrep: RouteReply) -> None:
        now = self.sim.now
        self.table.update(frame.sender, frame.sender, 1, 0, ACTIVE_ROUTE_TIMEOUT, now)
        self.table.update(
            rrep.destination,
            frame.sender,
            rrep.hop_count + 1,
            rrep.destination_seq,
            rrep.lifetime,
            now,
        )

        if rrep.originator == self.node_id:
            self._discovery_complete(rrep.destination)
            return

        next_hop = self._reverse_next_hop(rrep)
        if next_hop is None:
            return  # reverse path evaporated; RREP dies here
        forwarded = self._before_forward_rrep(rrep.hop_forward())
        if forwarded is None:
            return
        self.table.add_precursor(rrep.destination, next_hop)
        self.metrics.rrep_forwarded += 1
        self.cpu_process(
            self._forward_sign_cost(), self.unicast, next_hop, forwarded, op="sign"
        )

    def _reverse_next_hop(self, rrep: RouteReply) -> Optional[int]:
        """Pick the neighbour to forward an RREP towards its originator.

        Plain AODV uses the reverse route installed by the RREQ flood; the
        secure variant overrides this to randomise over all authenticated
        RREQ copies it heard (rushing defence).
        """
        reverse = self.table.lookup(rrep.originator, self.sim.now)
        return reverse.next_hop if reverse is not None else None

    # ------------------------------------------------------------------ RERR handling
    def _originate_rerr(self, destinations: List[int]) -> None:
        unreachable = []
        for destination in destinations:
            entry = self.table.invalidate(destination)
            seq = entry.destination_seq if entry is not None else 0
            unreachable.append((destination, seq))
        if unreachable:
            self.metrics.rerr_sent += 1
            self.broadcast(RouteError(unreachable=tuple(unreachable)))

    def _handle_link_break(self, next_hop: int, packet: DataPacket) -> None:
        broken = self.table.invalidate_via(next_hop)
        self.metrics.dropped_no_route += 1
        self.emit_event(
            "route.link_break", next_hop=next_hop, routes_lost=len(broken)
        )
        if broken:
            self.metrics.rerr_sent += 1
            self.broadcast(
                RouteError(
                    unreachable=tuple(
                        (entry.destination, entry.destination_seq)
                        for entry in broken
                    )
                )
            )

    def _handle_rerr(self, frame: Frame, rerr: RouteError) -> None:
        invalidated = []
        for destination, seq in rerr.unreachable:
            entry = self.table.entry(destination)
            if (
                entry is not None
                and entry.valid
                and entry.next_hop == frame.sender
            ):
                entry.valid = False
                entry.destination_seq = max(entry.destination_seq, seq)
                invalidated.append((destination, entry.destination_seq))
        if invalidated:
            self.metrics.rerr_sent += 1
            self.broadcast(RouteError(unreachable=tuple(invalidated)))
            # Sources with pending traffic re-discover on next send; nothing
            # else to do here (data currently buffered is per-discovery).

    # ------------------------------------------------------------------ hello
    def _hello_tick(self) -> None:
        """Broadcast a HELLO and expire silent neighbours (RFC 3561 6.9).

        A HELLO is an RREP with originator == destination == self and
        hop count 0, never forwarded (receivers recognise and consume it).
        """
        if not self.radio.is_attached(self.node_id):
            return  # node left the network (e.g. failed); stop beaconing
        signed_fields = ("rrep", self.node_id, self.node_id, self.seq_no, self.node_id)
        hello = RouteReply(
            originator=self.node_id,
            destination=self.node_id,
            destination_seq=self.seq_no,
            hop_count=0,
            lifetime=ALLOWED_HELLO_LOSS * self.hello_interval,
            responder=self.node_id,
            auth=self._make_rrep_auth(signed_fields),
            hop_auth=self._make_hop_auth(signed_fields),
        )
        self.cpu_process(
            self.crypto.sign_delay() if hello.auth else 0.0,
            self.broadcast,
            hello,
            op="sign",
        )
        self._expire_silent_neighbors()
        self._hello_timer = self.sim.schedule(self.hello_interval, self._hello_tick)

    def _expire_silent_neighbors(self) -> None:
        deadline = self.sim.now - ALLOWED_HELLO_LOSS * self.hello_interval
        silent = [
            neighbor
            for neighbor, heard in self._last_hello_from.items()
            if heard < deadline
        ]
        for neighbor in silent:
            del self._last_hello_from[neighbor]
            broken = self.table.invalidate_via(neighbor)
            if broken:
                self.metrics.rerr_sent += 1
                self.broadcast(
                    RouteError(
                        unreachable=tuple(
                            (entry.destination, entry.destination_seq)
                            for entry in broken
                        )
                    )
                )

    def _handle_hello(self, frame: Frame, hello: RouteReply) -> None:
        self._last_hello_from[frame.sender] = self.sim.now
        self.table.update(
            frame.sender,
            frame.sender,
            1,
            hello.destination_seq,
            hello.lifetime,
            self.sim.now,
        )

    # ------------------------------------------------------------------ reboot
    def _on_recover(self) -> None:
        """Reboot: routing state is volatile, so a recovered node starts cold.

        Packets buffered behind in-flight discoveries died with the RAM and
        count as routing drops; the fresh routing table forces the node to
        relearn its neighbourhood (via HELLO and/or the next flood).
        """
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
            self.metrics.dropped_no_route += len(pending.buffer)
        self._pending.clear()
        self.table = RoutingTable()
        self._seen_rreqs.clear()
        self._discovery_backoff.clear()
        self._last_hello_from.clear()
        if self.hello_interval > 0:
            if self._hello_timer is not None:
                self._hello_timer.cancel()
            offset = self.sim.rng("hello").uniform(0, self.hello_interval)
            self._hello_timer = self.sim.schedule(offset, self._hello_tick)

    # ------------------------------------------------------------------ dispatch
    def receive(self, frame: Frame) -> None:
        """Dispatch an incoming frame to the matching AODV handler."""
        payload = frame.payload
        if isinstance(payload, RouteRequest):
            self._handle_rreq(frame, payload)
        elif isinstance(payload, RouteReply):
            self._handle_rrep(frame, payload)
        elif isinstance(payload, RouteError):
            self._handle_rerr(frame, payload)
        elif isinstance(payload, DataPacket):
            self._handle_data(frame, payload)

    # ------------------------------------------------------------------ hooks
    # Subclasses (secure variant, attackers) override these narrow points.

    def _make_rreq_auth(self, signed_fields: tuple):
        return None

    def _make_rrep_auth(self, signed_fields: tuple):
        return None

    def _make_hop_auth(self, signed_fields: tuple):
        """Per-hop forwarder signature (secure variant only)."""
        return None

    def _rreq_accept(self, frame: Frame, rreq: RouteRequest) -> bool:
        return True

    def _rrep_accept(self, frame: Frame, rrep: RouteReply) -> bool:
        return True

    def _before_forward_rreq(
        self, frame: Frame, rreq: RouteRequest
    ) -> Optional[RouteRequest]:
        return rreq

    def _before_forward_rrep(self, rrep: RouteReply) -> Optional[RouteReply]:
        return rrep

    def _verify_cost(self, message) -> float:
        return self.crypto.verify_delay() if message.auth else 0.0

    def _forward_sign_cost(self) -> float:
        return 0.0

    def _may_answer_from_cache(self, rreq: RouteRequest, route) -> bool:
        return True

    def _rreq_forward_jitter(self) -> Optional[bool]:
        return None  # default MAC jitter

    def _prune_seen_cache(self) -> None:
        now = self.sim.now
        self._seen_rreqs = {
            key: expiry for key, expiry in self._seen_rreqs.items() if expiry > now
        }
