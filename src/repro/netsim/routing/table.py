"""The AODV routing table (RFC 3561 Section 6.1/6.2 semantics).

Entries carry destination sequence numbers and lifetimes; the update rule
("fresher sequence number wins; equal freshness, fewer hops wins") is the
heart of AODV *and* of the black hole attack, which works precisely by
advertising an artificially fresh sequence number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set


@dataclass
class RouteEntry:
    destination: int
    next_hop: int
    hop_count: int
    destination_seq: int
    expiry: float
    valid: bool = True
    precursors: Set[int] = field(default_factory=set)

    def is_usable(self, now: float) -> bool:
        """Valid and unexpired at time ``now``."""
        return self.valid and now < self.expiry


class RoutingTable:
    """Per-node route store with the AODV freshness-update rule."""

    def __init__(self):
        self._routes: Dict[int, RouteEntry] = {}

    def lookup(self, destination: int, now: float) -> Optional[RouteEntry]:
        """The usable route to ``destination``, or None."""
        entry = self._routes.get(destination)
        if entry is not None and entry.is_usable(now):
            return entry
        return None

    def entry(self, destination: int) -> Optional[RouteEntry]:
        """The raw entry regardless of validity (for seq-number reuse)."""
        return self._routes.get(destination)

    def update(
        self,
        destination: int,
        next_hop: int,
        hop_count: int,
        destination_seq: int,
        lifetime: float,
        now: float,
    ) -> bool:
        """Install/refresh a route if it is *better*; returns True if taken.

        Better means (RFC 3561 6.2): no current entry, or invalid entry, or
        higher destination sequence number, or equal sequence number with a
        smaller hop count.
        """
        current = self._routes.get(destination)
        accept = (
            current is None
            or not current.is_usable(now)
            or destination_seq > current.destination_seq
            or (
                destination_seq == current.destination_seq
                and hop_count < current.hop_count
            )
        )
        if not accept:
            # Still refresh the lifetime of the route we keep using.
            if current.next_hop == next_hop and current.is_usable(now):
                current.expiry = max(current.expiry, now + lifetime)
            return False
        precursors = current.precursors if current is not None else set()
        self._routes[destination] = RouteEntry(
            destination=destination,
            next_hop=next_hop,
            hop_count=hop_count,
            destination_seq=destination_seq,
            expiry=now + lifetime,
            valid=True,
            precursors=precursors,
        )
        return True

    def refresh(self, destination: int, lifetime: float, now: float) -> None:
        """Extend an active route's lifetime (route used again)."""
        entry = self._routes.get(destination)
        if entry is not None and entry.valid:
            entry.expiry = max(entry.expiry, now + lifetime)

    def invalidate(self, destination: int) -> Optional[RouteEntry]:
        """Mark a route broken; bumps the seq so stale copies lose."""
        entry = self._routes.get(destination)
        if entry is not None and entry.valid:
            entry.valid = False
            entry.destination_seq += 1
            return entry
        return None

    def invalidate_via(self, next_hop: int):
        """Invalidate every route through ``next_hop``; returns them."""
        broken = []
        for entry in self._routes.values():
            if entry.valid and entry.next_hop == next_hop:
                entry.valid = False
                entry.destination_seq += 1
                broken.append(entry)
        return broken

    def add_precursor(self, destination: int, node: int) -> None:
        """Record a neighbour that routes through this entry."""
        entry = self._routes.get(destination)
        if entry is not None:
            entry.precursors.add(node)

    def destinations(self):
        """All destinations with (possibly invalid) entries."""
        return list(self._routes)

    def __len__(self) -> int:
        return len(self._routes)
