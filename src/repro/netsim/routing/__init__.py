"""Routing protocols: AODV and its McCLS-authenticated extension."""

from repro.netsim.routing.aodv import AODVNode
from repro.netsim.routing.secure_aodv import CryptoMaterial, McCLSAODVNode
from repro.netsim.routing.table import RouteEntry, RoutingTable

__all__ = [
    "AODVNode",
    "McCLSAODVNode",
    "CryptoMaterial",
    "RouteEntry",
    "RoutingTable",
]
