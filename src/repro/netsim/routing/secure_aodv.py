"""McCLS-AODV: AODV with certificateless routing authentication.

The paper's protected protocol ("McCLS scheme based on the CLS with routing
authentication extension").  Differences from plain AODV:

* **Signed control messages.**  RREQs carry the originator's McCLS
  signature over the immutable fields (rreq id, originator, originator
  seq, destination); RREPs carry the *destination's* signature over
  (originator, destination, destination seq, responder).  Nodes verify
  before processing and drop failures (counted as ``auth_rejected``).
* **Destination-only replies.**  Intermediate nodes cannot vouch for a
  destination sequence number they did not sign, so cached-route RREPs are
  disabled.  This is what defeats the black hole: its "fresh route"
  RREP would need the destination's signature.
* **Randomized reverse-path selection** (rushing defence in the spirit of
  Hu et al. 2003, adapted to avoid per-hop forwarding delays): RREQs are
  still flooded promptly, but every node keeps listening to the
  authenticated duplicate copies of a flood and records each sender as a
  *reverse-hop candidate* together with the hop count its copy carried.
  When the RREP travels back - hundreds of milliseconds later, long after
  all copies have arrived, so there is no timing race for the attacker to
  win - each hop forwards it to a candidate chosen uniformly at random
  among those strictly closer to the originator, and the destination
  likewise waits a short window and replies to a random candidate.  The
  rushing attacker's first-mover advantage buys it nothing: being first
  only makes it one candidate among many.

Two execution modes share all of this logic:

* **real crypto**: auth tags carry actual
  :class:`~repro.core.mccls.McCLSSignature` objects verified with the real
  scheme (slow; used by integration tests on a toy curve);
* **modelled crypto** (default for the figure sweeps): tags carry the
  honest wire size and a ``forged`` bit.  Acceptance mirrors what real
  verification would decide - attackers hold no key material, so their
  tags are forged by construction - while CPU cost comes from the
  :class:`~repro.netsim.crypto_model.CryptoTimingModel`.  (Note the
  algebraic break documented in :mod:`repro.core.games` is *not* given to
  the modelled attackers: the paper's threat model is protocol-level, and
  the gap is explored separately by the cryptanalyst-attacker ablation.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.netsim.packets import AuthTag, Frame, RouteReply, RouteRequest
from repro.netsim.routing.aodv import MY_ROUTE_TIMEOUT, AODVNode
from repro.schemes.base import SchemeProtocol, UserKeyPair

#: seconds the destination waits after the first authenticated RREQ copy
#: before answering, so late (honest) copies become reply-target candidates
DESTINATION_REPLY_WINDOW = 0.06
#: lifetime of collected reverse-hop candidate pools
CANDIDATE_POOL_LIFETIME = 6.0


def identity_of(node_id: int) -> str:
    """The enrolled identity string of a node id."""
    return f"node-{node_id}"


@dataclass
class CryptoMaterial:
    """Key material + shared scheme handle given to every legitimate node.

    The scheme slot accepts any :class:`~repro.schemes.base.SchemeProtocol`
    object — the node only ever calls the unified sign/verify surface, so
    no concrete scheme type is special-cased here.
    """

    signature_bytes: int
    scheme: Optional[SchemeProtocol] = None  # None in modelled mode
    keys: Optional[UserKeyPair] = None
    resolve_public_key: Optional[Callable[[str], object]] = None
    #: the shared identity -> public-key directory behind
    #: ``resolve_public_key``, kept reachable so a KGC rekey can publish
    #: re-issued public keys to every verifier at once
    directory: Optional[Dict[str, object]] = None

    @property
    def real(self) -> bool:
        return self.scheme is not None and self.keys is not None


class McCLSAODVNode(AODVNode):
    """An honest node running the authenticated protocol."""

    role = "honest-mccls"

    def __init__(
        self,
        *args,
        material: CryptoMaterial,
        rushing_defense: bool = True,
        revocation=None,
        **kwargs,
    ):
        kwargs.setdefault("allow_intermediate_rrep", False)
        super().__init__(*args, **kwargs)
        self.material = material
        self.rushing_defense = rushing_defense
        #: optional shared RevocationChecker (repro.core.revocation)
        self.revocation = revocation
        #: set while the node lacks a partial key (rejoined during a KGC
        #: outage): it emits unverifiable tags, so authenticated peers
        #: reject everything it originates until the KGC re-issues its key
        self.quarantined = False
        # (originator, rreq_id) -> {sender: lowest hop count heard}
        self._candidates: Dict[Tuple[int, int], Dict[int, int]] = {}
        self._candidate_expiry: Dict[Tuple[int, int], float] = {}
        self._my_flood_hop: Dict[Tuple[int, int], int] = {}
        self._latest_flood: Dict[int, Tuple[int, int]] = {}

    # -- degraded modes -----------------------------------------------------------
    def enter_quarantine(self) -> None:
        """Run unauthenticated until the KGC re-issues a partial key."""
        self.quarantined = True
        self.emit_event("node.quarantine_enter")

    def exit_quarantine(self) -> None:
        """The KGC re-issued this node's partial key; resume signing."""
        self.quarantined = False
        self.emit_event("node.quarantine_exit")

    # -- signing ------------------------------------------------------------------
    def _make_auth(self, fields: tuple) -> AuthTag:
        material = self.material
        if self.quarantined:
            # No partial key: the tag still occupies its wire bytes but can
            # never verify, exactly like an unenrolled sender's.
            return AuthTag(
                signer=identity_of(self.node_id),
                size_bytes=material.signature_bytes,
                forged=True,
            )
        if material.real:
            signature = material.scheme.sign(repr(fields).encode(), material.keys)
            return AuthTag(
                signer=identity_of(self.node_id),
                size_bytes=material.signature_bytes,
                signature=signature,
            )
        return AuthTag(
            signer=identity_of(self.node_id), size_bytes=material.signature_bytes
        )

    def _make_rreq_auth(self, signed_fields: tuple) -> AuthTag:
        return self._make_auth(signed_fields)

    def _make_rrep_auth(self, signed_fields: tuple) -> AuthTag:
        return self._make_auth(signed_fields)

    def _make_hop_auth(self, signed_fields: tuple) -> AuthTag:
        """Per-hop forwarder signature over (message fields, forwarder)."""
        return self._make_auth(("hop",) + signed_fields + (self.node_id,))

    # -- verification ---------------------------------------------------------------
    def _auth_valid(
        self, auth: Optional[AuthTag], expected_signer_id: int, fields: tuple
    ) -> bool:
        if auth is None or auth.forged:
            return False
        if auth.signer != identity_of(expected_signer_id):
            return False
        if self.revocation is not None and self.revocation.is_revoked(auth.signer):
            return False  # valid signature, revoked signer
        material = self.material
        if material.real:
            if auth.signature is None or material.resolve_public_key is None:
                return False
            public_key = material.resolve_public_key(auth.signer)
            if public_key is None:
                return False
            return material.scheme.verify(
                repr(fields).encode(), auth.signature, auth.signer, public_key
            )
        return True

    def _hop_auth_valid(self, message, frame: Frame) -> bool:
        """The forwarder's (or originator's) per-hop signature must match
        the node the frame physically came from - this is what excludes
        unenrolled nodes (both attackers) from routing entirely."""
        fields = ("hop",) + message.signed_fields() + (frame.sender,)
        return self._auth_valid(message.hop_auth, frame.sender, fields)

    def _auth_reject(self, kind: str, frame: Frame, reason: str) -> None:
        """Count one rejected control message and trace why."""
        self.metrics.auth_rejected += 1
        self.emit_event(
            "auth.reject", kind=kind, sender=frame.sender, reason=reason
        )

    def _rreq_accept(self, frame: Frame, rreq: RouteRequest) -> bool:
        if not self._auth_valid(rreq.auth, rreq.originator, rreq.signed_fields()):
            self._auth_reject("RREQ", frame, "originator-signature")
            return False
        if not self._hop_auth_valid(rreq, frame):
            self._auth_reject("RREQ", frame, "hop-signature")
            return False
        self.emit_event("auth.accept", kind="RREQ", sender=frame.sender)
        return True

    def _rrep_accept(self, frame: Frame, rrep: RouteReply) -> bool:
        # Only the destination itself may vouch for its sequence number.
        if rrep.responder != rrep.destination:
            self._auth_reject("RREP", frame, "non-destination-responder")
            return False
        if not self._auth_valid(rrep.auth, rrep.destination, rrep.signed_fields()):
            self._auth_reject("RREP", frame, "destination-signature")
            return False
        if not self._hop_auth_valid(rrep, frame):
            self._auth_reject("RREP", frame, "hop-signature")
            return False
        self.emit_event("auth.accept", kind="RREP", sender=frame.sender)
        return True

    # -- per-hop re-signing -------------------------------------------------------
    def _before_forward_rreq(self, frame: Frame, rreq: RouteRequest):
        return replace(rreq, hop_auth=self._make_hop_auth(rreq.signed_fields()))

    def _before_forward_rrep(self, rrep: RouteReply):
        return replace(rrep, hop_auth=self._make_hop_auth(rrep.signed_fields()))

    def _verify_cost(self, message) -> float:
        verifications = (1 if message.auth else 0) + (
            1 if getattr(message, "hop_auth", None) else 0
        )
        return verifications * self.crypto.verify_delay()

    def _forward_sign_cost(self) -> float:
        return self.crypto.sign_delay()

    def _may_answer_from_cache(self, rreq: RouteRequest, route) -> bool:
        return False  # destination-only replies in the secure protocol

    # -- rushing defence ---------------------------------------------------------------
    def _handle_rreq(self, frame: Frame, rreq: RouteRequest) -> None:
        if not self.rushing_defense or rreq.originator == self.node_id:
            super()._handle_rreq(frame, rreq)
            return
        # Record every authenticated copy (duplicates included) as a
        # reverse-hop candidate, then let the normal first-copy flood
        # processing run.  Candidate recording is gated on both the
        # originator's and the forwarder's signatures, so an unenrolled
        # attacker cannot even become a candidate.
        if not self._auth_valid(
            rreq.auth, rreq.originator, rreq.signed_fields()
        ) or not self._hop_auth_valid(rreq, frame):
            self.metrics.auth_rejected += 1
            return
        key = (rreq.originator, rreq.rreq_id)
        pool = self._candidates.get(key)
        if pool is None:
            pool = {}
            self._candidates[key] = pool
            self._candidate_expiry[key] = self.sim.now + CANDIDATE_POOL_LIFETIME
            self._latest_flood[rreq.originator] = key
            if len(self._candidates) > 512:
                self._prune_candidates()
        known_hop = pool.get(frame.sender)
        if known_hop is None or rreq.hop_count < known_hop:
            pool[frame.sender] = rreq.hop_count
        super()._handle_rreq(frame, rreq)

    def _process_rreq(self, frame: Frame, rreq: RouteRequest) -> None:
        if self.rushing_defense:
            # Remember the hop count this node itself floods with, which
            # upper-bounds the candidates eligible at RREP time (strictly
            # closer to the originator => no forwarding loops).
            key = (rreq.originator, rreq.rreq_id)
            self._my_flood_hop[key] = rreq.hop_count + 1
        super()._process_rreq(frame, rreq)

    def _send_rrep_as_destination(self, frame: Frame, rreq: RouteRequest) -> None:
        if not self.rushing_defense:
            super()._send_rrep_as_destination(frame, rreq)
            return
        # Delay the reply so late (honest) RREQ copies become candidate
        # reply targets, then answer a random one.
        self.sim.schedule(
            DESTINATION_REPLY_WINDOW, self._reply_as_destination, rreq
        )

    def _reply_as_destination(self, rreq: RouteRequest) -> None:
        key = (rreq.originator, rreq.rreq_id)
        pool = self._candidates.get(key)
        if not pool:
            return  # candidates expired; the originator will retry
        target = self.sim.rng("rushing-defense").choice(sorted(pool))
        self.seq_no += 1
        signed_fields = (
            "rrep",
            rreq.originator,
            self.node_id,
            self.seq_no,
            self.node_id,
        )
        rrep = RouteReply(
            originator=rreq.originator,
            destination=self.node_id,
            destination_seq=self.seq_no,
            hop_count=0,
            lifetime=MY_ROUTE_TIMEOUT,
            responder=self.node_id,
            auth=self._make_rrep_auth(signed_fields),
            hop_auth=self._make_hop_auth(signed_fields),
        )
        self.metrics.rrep_sent += 1
        self.cpu_process(
            self.crypto.sign_delay(), self.unicast, target, rrep, op="sign"
        )

    def _reverse_next_hop(self, rrep) -> Optional[int]:
        if not self.rushing_defense:
            return super()._reverse_next_hop(rrep)
        key = self._latest_flood.get(rrep.originator)
        pool = self._candidates.get(key) if key is not None else None
        if pool:
            my_hop = self._my_flood_hop.get(key)
            bound = my_hop if my_hop is not None else min(pool.values()) + 1
            eligible = sorted(
                sender for sender, hop in pool.items() if hop < bound
            )
            if eligible:
                return self.sim.rng("rushing-defense").choice(eligible)
        return super()._reverse_next_hop(rrep)

    def _on_recover(self) -> None:
        super()._on_recover()
        self._candidates.clear()
        self._candidate_expiry.clear()
        self._my_flood_hop.clear()
        self._latest_flood.clear()

    def _prune_candidates(self) -> None:
        now = self.sim.now
        stale = [
            key
            for key, expiry in self._candidate_expiry.items()
            if expiry <= now
        ]
        for key in stale:
            self._candidates.pop(key, None)
            self._candidate_expiry.pop(key, None)
            self._my_flood_hop.pop(key, None)
