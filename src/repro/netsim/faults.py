"""Deterministic fault injection for the MANET simulator.

Real mobile wireless CPS deployments do not run on the perfectly healthy
network the paper evaluates: nodes reboot, radios fade, frames arrive
mangled, and the key-generation centre is occasionally unreachable.  This
module makes those regimes first-class and *reproducible*: a declarative
:class:`FaultPlan` (attachable to a
:class:`~repro.netsim.scenario.ScenarioConfig`) names every fault to
inject, and a :class:`FaultInjector` schedules them onto the simulator at
build time.  Every random draw comes from dedicated ``faults/...`` RNG
streams, so the same ``(seed, plan)`` pair reproduces byte-identical
metrics and an identical fault-event sequence - chaos you can bisect.

Fault classes:

* **Node churn** (:class:`CrashSpec`): a node powers off at ``at_s`` -
  detached from the radio, it receives and forwards nothing, which is what
  exercises link-break detection, RERR precursor propagation, HELLO
  expiry, and re-discovery.  An optional ``recover_at_s`` powers it back
  on with volatile protocol state wiped (a rebooted router starts cold).
* **Radio degradation windows** (:class:`RadioWindow`): time-bounded
  loss-rate spikes (up to total jamming at ``loss_rate=1.0``) and range
  shrink on the shared :class:`~repro.netsim.radio.RadioMedium`.
* **Frame corruption windows** (:class:`CorruptionWindow`): per-delivery
  bit mangling.  Authenticated control messages are delivered with a
  damaged signature - in real-crypto runs the actual wire bytes are
  bit-flipped and pushed through :mod:`repro.core.serialization`, so the
  defensive decode path is exercised for real - and must be *rejected,
  never crash*.  Unauthenticated frames fail the link-layer checksum and
  are dropped.
* **KGC outages** (:class:`KGCOutage`): windows during which partial-key
  issuance fails.  A node that recovers from a crash while the KGC is
  down lost its partial key with its volatile state and cannot re-enrol;
  it rejoins the radio in *unauthenticated quarantine* - its control
  messages carry no verifiable signature, so authenticated neighbours
  reject them - until the KGC comes back and re-issues its key.

Every injected fault is emitted through the simulator's structured event
sink (``fault.node_crash``, ``fault.frame_corrupt``, ...), counted in the
:mod:`repro.obs` registry when one is collecting, and appended to the
injector's in-memory :attr:`FaultInjector.log` for post-run auditing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.mccls import McCLSSignature
from repro.core.serialization import (
    decode_mccls_signature,
    encode_mccls_signature,
)
from repro.errors import SerializationError, SimulationError
from repro.netsim.engine import Simulator
from repro.netsim.packets import Frame
from repro.netsim.radio import RadioMedium
from repro.obs.registry import get_registry

#: RNG stream for victim selection (which nodes crash)
CHURN_STREAM = "faults/churn"
#: RNG stream for per-frame corruption draws and bit positions
CORRUPT_STREAM = "faults/corrupt"


# ---------------------------------------------------------------------------
# Declarative plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrashSpec:
    """Crash (and optionally recover) one named node or ``count`` random
    honest nodes."""

    at_s: float
    node: Optional[int] = None  # None -> draw `count` victims from churn RNG
    count: int = 1
    recover_at_s: Optional[float] = None

    def validate(self) -> None:
        """Raise SimulationError on inconsistent crash timing."""
        if self.at_s < 0:
            raise SimulationError("crash time must be >= 0")
        if self.node is None and self.count < 1:
            raise SimulationError("random crash needs count >= 1")
        if self.recover_at_s is not None and self.recover_at_s <= self.at_s:
            raise SimulationError("recovery must come after the crash")


@dataclass(frozen=True)
class RadioWindow:
    """A degraded-radio interval: loss-rate override and/or range shrink."""

    start_s: float
    stop_s: float
    loss_rate: Optional[float] = None  # None -> keep the base loss rate
    range_scale: float = 1.0

    def validate(self) -> None:
        """Raise SimulationError on inconsistent window bounds."""
        if not 0 <= self.start_s < self.stop_s:
            raise SimulationError("radio window needs 0 <= start < stop")
        if self.loss_rate is not None and not 0.0 <= self.loss_rate <= 1.0:
            raise SimulationError("window loss_rate must be in [0, 1]")
        if not 0.0 < self.range_scale <= 1.0:
            raise SimulationError("range_scale must be in (0, 1]")


@dataclass(frozen=True)
class CorruptionWindow:
    """An interval during which each delivered frame is independently
    bit-mangled with the given probability."""

    start_s: float
    stop_s: float
    probability: float

    def validate(self) -> None:
        """Raise SimulationError on inconsistent window bounds."""
        if not 0 <= self.start_s < self.stop_s:
            raise SimulationError("corruption window needs 0 <= start < stop")
        if not 0.0 <= self.probability <= 1.0:
            raise SimulationError("corruption probability must be in [0, 1]")


@dataclass(frozen=True)
class KGCOutage:
    """An interval during which the KGC issues no partial keys.

    ``rekey=True`` models the operational response to the outage (assume
    compromise): on recovery the KGC rotates its master secret and
    re-issues every honest node's key material.  In real-crypto runs the
    rotation also invalidates every cache the old P_pub fed - memoised
    e(P_pub, Q_ID) pairings, stale fixed-base comb tables, signer-side
    S-component caches - so post-rekey verifies run cold exactly once per
    identity instead of reading stale entries.
    """

    start_s: float
    stop_s: float
    rekey: bool = False

    def validate(self) -> None:
        """Raise SimulationError on inconsistent outage bounds."""
        if not 0 <= self.start_s < self.stop_s:
            raise SimulationError("KGC outage needs 0 <= start < stop")


@dataclass(frozen=True)
class FaultPlan:
    """Everything to inject into one run, declared up front."""

    crashes: Tuple[CrashSpec, ...] = ()
    radio_windows: Tuple[RadioWindow, ...] = ()
    corruption_windows: Tuple[CorruptionWindow, ...] = ()
    kgc_outages: Tuple[KGCOutage, ...] = ()

    @property
    def empty(self) -> bool:
        """Whether the plan injects nothing at all."""
        return not (
            self.crashes
            or self.radio_windows
            or self.corruption_windows
            or self.kgc_outages
        )

    def validate(self) -> None:
        """Raise SimulationError on any inconsistent fault entry."""
        for entry in (
            *self.crashes,
            *self.radio_windows,
            *self.corruption_windows,
            *self.kgc_outages,
        ):
            entry.validate()

    # -- spec (JSON-friendly) round trip ------------------------------------
    @classmethod
    def from_spec(cls, spec: Mapping) -> "FaultPlan":
        """Build a plan from a JSON-shaped mapping (the ``--faults`` format).

        Keys: ``crashes`` (``at``/``node``/``count``/``recover_at``),
        ``radio`` (``start``/``stop``/``loss_rate``/``range_scale``),
        ``corruption`` (``start``/``stop``/``probability``) and
        ``kgc_outages`` (``start``/``stop``).  Unknown keys are rejected so
        typos fail loudly instead of silently injecting nothing.
        """
        if not isinstance(spec, Mapping):
            raise SimulationError("fault spec must be a JSON object")
        known = {"crashes", "radio", "corruption", "kgc_outages"}
        unknown = set(spec) - known
        if unknown:
            raise SimulationError(
                f"unknown fault spec keys {sorted(unknown)}; expected {sorted(known)}"
            )

        def entries(key, allowed):
            rows = spec.get(key, ())
            if not isinstance(rows, (list, tuple)):
                raise SimulationError(f"fault spec {key!r} must be a list")
            for row in rows:
                if not isinstance(row, Mapping):
                    raise SimulationError(f"{key} entries must be objects")
                bad = set(row) - set(allowed)
                if bad:
                    raise SimulationError(
                        f"unknown {key} entry keys {sorted(bad)}"
                    )
                yield row

        plan = cls(
            crashes=tuple(
                CrashSpec(
                    at_s=float(row["at"]),
                    node=row.get("node"),
                    count=int(row.get("count", 1)),
                    recover_at_s=(
                        float(row["recover_at"])
                        if row.get("recover_at") is not None
                        else None
                    ),
                )
                for row in entries(
                    "crashes", ("at", "node", "count", "recover_at")
                )
            ),
            radio_windows=tuple(
                RadioWindow(
                    start_s=float(row["start"]),
                    stop_s=float(row["stop"]),
                    loss_rate=(
                        float(row["loss_rate"])
                        if row.get("loss_rate") is not None
                        else None
                    ),
                    range_scale=float(row.get("range_scale", 1.0)),
                )
                for row in entries(
                    "radio", ("start", "stop", "loss_rate", "range_scale")
                )
            ),
            corruption_windows=tuple(
                CorruptionWindow(
                    start_s=float(row["start"]),
                    stop_s=float(row["stop"]),
                    probability=float(row["probability"]),
                )
                for row in entries(
                    "corruption", ("start", "stop", "probability")
                )
            ),
            kgc_outages=tuple(
                KGCOutage(
                    start_s=float(row["start"]),
                    stop_s=float(row["stop"]),
                    rekey=bool(row.get("rekey", False)),
                )
                for row in entries("kgc_outages", ("start", "stop", "rekey"))
            ),
        )
        plan.validate()
        return plan

    def to_spec(self) -> Dict[str, list]:
        """The JSON-shaped mapping this plan round-trips through."""
        spec: Dict[str, list] = {}
        if self.crashes:
            spec["crashes"] = [
                {
                    "at": c.at_s,
                    "node": c.node,
                    "count": c.count,
                    "recover_at": c.recover_at_s,
                }
                for c in self.crashes
            ]
        if self.radio_windows:
            spec["radio"] = [
                {
                    "start": w.start_s,
                    "stop": w.stop_s,
                    "loss_rate": w.loss_rate,
                    "range_scale": w.range_scale,
                }
                for w in self.radio_windows
            ]
        if self.corruption_windows:
            spec["corruption"] = [
                {"start": w.start_s, "stop": w.stop_s, "probability": w.probability}
                for w in self.corruption_windows
            ]
        if self.kgc_outages:
            spec["kgc_outages"] = [
                {"start": o.start_s, "stop": o.stop_s, "rekey": o.rekey}
                for o in self.kgc_outages
            ]
        return spec


# ---------------------------------------------------------------------------
# Injection
# ---------------------------------------------------------------------------


class FaultInjector:
    """Schedules a :class:`FaultPlan` onto a built simulation.

    Owns the fault bookkeeping of the run: :attr:`counts` (injected-fault
    totals by event name, for campaign summaries) and :attr:`log` (the
    ordered fault-event sequence, for determinism assertions and audits).
    """

    def __init__(
        self,
        sim: Simulator,
        radio: RadioMedium,
        nodes: Dict[int, object],
        honest_ids: List[int],
        plan: FaultPlan,
        curve=None,
    ):
        plan.validate()
        self.sim = sim
        self.radio = radio
        self.nodes = nodes
        self.honest_ids = list(honest_ids)
        self.plan = plan
        #: BN curve for re-encoding real signatures during corruption
        #: (None in modelled-crypto runs: corruption damages the tag bit)
        self.curve = curve
        self.counts: Dict[str, int] = {}
        self.log: List[Dict[str, object]] = []
        self._base_loss = radio.loss_rate
        self._base_range = radio.range_m
        self._kgc_down = False
        self._awaiting_rekey: List[int] = []

    # -- bookkeeping --------------------------------------------------------
    def _record(self, event: str, **fields) -> None:
        self.counts[event] = self.counts.get(event, 0) + 1
        entry: Dict[str, object] = {"event": event, "t": self.sim.now}
        entry.update(fields)
        self.log.append(entry)
        if self.sim.events.enabled:
            self.sim.events.emit(event, t=self.sim.now, **fields)
        registry = get_registry()
        if registry.active:
            registry.counter(event).inc()

    def summary(self) -> Dict[str, int]:
        """Injected-fault totals by event name."""
        return dict(self.counts)

    # -- installation -------------------------------------------------------
    def install(self) -> None:
        """Schedule every planned fault (call once, at build time)."""
        churn_rng = self.sim.rng(CHURN_STREAM)
        for crash in self.plan.crashes:
            for victim in self._victims_of(crash, churn_rng):
                self.sim.schedule_at(crash.at_s, self._crash, victim)
                if crash.recover_at_s is not None:
                    self.sim.schedule_at(crash.recover_at_s, self._recover, victim)
        for window in self.plan.radio_windows:
            self.sim.schedule_at(window.start_s, self._degrade_radio, window)
            self.sim.schedule_at(window.stop_s, self._restore_radio, window)
        for outage in self.plan.kgc_outages:
            self.sim.schedule_at(outage.start_s, self._kgc_fail)
            self.sim.schedule_at(outage.stop_s, self._kgc_recover, outage)
        if self.plan.corruption_windows:
            self.radio.frame_filter = self._filter_frame

    def _victims_of(
        self, crash: CrashSpec, rng: random.Random
    ) -> List[int]:
        if crash.node is not None:
            if crash.node not in self.nodes:
                raise SimulationError(
                    f"fault plan names unknown node {crash.node}"
                )
            return [crash.node]
        pool = [nid for nid in self.honest_ids if nid in self.nodes]
        if not pool:
            return []
        return sorted(rng.sample(pool, min(crash.count, len(pool))))

    # -- node churn ---------------------------------------------------------
    def _crash(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if getattr(node, "crashed", False):
            return
        node.crash()
        self._record("fault.node_crash", node=node_id)

    def _recover(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if not getattr(node, "crashed", False):
            return
        node.recover()
        self._record("fault.node_recover", node=node_id)
        # Re-enrolment needs the KGC: a rebooted node lost its partial key
        # with its volatile state.  While the KGC is down the node runs in
        # unauthenticated quarantine (its signatures are unverifiable).
        if hasattr(node, "enter_quarantine"):
            if self._kgc_down:
                node.enter_quarantine()
                self._awaiting_rekey.append(node_id)
                self._record("fault.quarantine", node=node_id)

    # -- radio windows ------------------------------------------------------
    def _degrade_radio(self, window: RadioWindow) -> None:
        loss = window.loss_rate if window.loss_rate is not None else self._base_loss
        self.radio.set_conditions(
            loss_rate=loss, range_m=self._base_range * window.range_scale
        )
        self._record(
            "fault.radio_degrade",
            loss_rate=loss,
            range_m=self.radio.range_m,
        )

    def _restore_radio(self, window: RadioWindow) -> None:
        self.radio.set_conditions(
            loss_rate=self._base_loss, range_m=self._base_range
        )
        self._record(
            "fault.radio_restore",
            loss_rate=self._base_loss,
            range_m=self._base_range,
        )

    # -- KGC availability ---------------------------------------------------
    def _kgc_fail(self) -> None:
        if self._kgc_down:
            return
        self._kgc_down = True
        self._record("fault.kgc_down")

    def _kgc_recover(self, outage: Optional[KGCOutage] = None) -> None:
        if not self._kgc_down:
            return
        self._kgc_down = False
        self._record("fault.kgc_up")
        # A rekeying recovery rotates the master secret FIRST, so nodes
        # leaving quarantine below resume signing under the new key.
        if outage is not None and outage.rekey:
            self._master_rekey()
        # The recovered KGC re-issues partial keys to everyone queued up.
        for node_id in self._awaiting_rekey:
            node = self.nodes[node_id]
            if getattr(node, "quarantined", False):
                node.exit_quarantine()
                self._record("fault.rekey", node=node_id)
        self._awaiting_rekey.clear()

    def _master_rekey(self) -> None:
        """Rotate the KGC master secret and refresh every honest node.

        Real-crypto runs rotate the shared scheme exactly once (which
        drops the old P_pub's pairing-cache entries and comb tables) and
        re-issue each node's key material under the new secret, updating
        the shared public-key directory.  Modelled runs have no key
        material to rotate but still record the event so plans behave
        identically across crypto modes.
        """
        rotated = set()
        refreshed = 0
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            material = getattr(node, "material", None)
            if material is None or not getattr(material, "real", False):
                continue
            scheme = material.scheme
            if id(scheme) not in rotated:
                scheme.rotate_master_secret()
                rotated.add(id(scheme))
            new_keys = scheme.generate_user_keys(material.keys.identity)
            material.keys = new_keys
            if material.directory is not None:
                material.directory[new_keys.identity] = new_keys.public_key
            refreshed += 1
        self._record("fault.kgc_rekey", refreshed=refreshed)

    # -- frame corruption ---------------------------------------------------
    def _corruption_probability(self, now: float) -> float:
        for window in self.plan.corruption_windows:
            if window.start_s <= now < window.stop_s:
                return window.probability
        return 0.0

    def _filter_frame(self, receiver_id: int, frame: Frame) -> Optional[Frame]:
        """Radio delivery hook: maybe mangle this receiver's copy."""
        probability = self._corruption_probability(self.sim.now)
        if probability <= 0.0:
            return frame
        rng = self.sim.rng(CORRUPT_STREAM)
        if rng.random() >= probability:
            return frame
        mangled = self._corrupt_frame(frame, rng)
        self._record(
            "fault.frame_corrupt",
            sender=frame.sender,
            receiver=receiver_id,
            dropped=mangled is None,
        )
        return mangled

    def _corrupt_frame(
        self, frame: Frame, rng: random.Random
    ) -> Optional[Frame]:
        payload = frame.payload
        auth = getattr(payload, "auth", None)
        hop_auth = getattr(payload, "hop_auth", None)
        if auth is None and hop_auth is None:
            # Unauthenticated frame: the link-layer checksum catches the
            # damage and the frame never reaches the network layer.
            return None
        field_name, tag = ("auth", auth) if auth is not None else (
            "hop_auth",
            hop_auth,
        )
        mangled = self._corrupt_tag(tag, rng)
        return replace(frame, payload=replace(payload, **{field_name: mangled}))

    def _corrupt_tag(self, tag, rng: random.Random):
        signature = tag.signature
        if self.curve is not None and isinstance(signature, McCLSSignature):
            # Real crypto: flip one bit of the actual wire bytes and push
            # the result through the defensive decoder, exactly as a
            # receiver of a mangled frame would.
            blob = bytearray(encode_mccls_signature(self.curve, signature))
            bit = rng.randrange(len(blob) * 8)
            blob[bit // 8] ^= 1 << (bit % 8)
            try:
                mutated = decode_mccls_signature(self.curve, bytes(blob))
            except SerializationError:
                # Undecodable on the wire: the receiver sees no usable
                # signature at all.
                return replace(tag, signature=None, forged=True)
            return replace(tag, signature=mutated)
        # Modelled crypto: a damaged signature can never verify.
        return replace(tag, forged=True)
