"""Metric collection for the paper's four evaluation metrics (Section 6).

* **Packet Delivery Ratio**: packets received at destinations / packets
  sent by sources (Figures 1, 4).
* **RREQ Ratio**: RREQs initiated + forwarded + retried, over data packets
  sent as source + data packets forwarded (Figure 2).
* **End-to-End Delay**: mean source-to-destination latency of delivered
  packets (Figure 3).
* **Packet Drop Ratio**: packets discarded by attacker nodes / packets
  sent by all sources (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class MetricsCollector:
    """Shared counters, incremented by nodes/apps during a run."""

    data_sent: int = 0
    data_received: int = 0
    data_forwarded: int = 0
    dropped_by_attacker: int = 0
    dropped_no_route: int = 0
    dropped_buffer_overflow: int = 0
    dropped_ttl: int = 0
    rreq_initiated: int = 0
    rreq_forwarded: int = 0
    rreq_retried: int = 0
    rrep_sent: int = 0
    rrep_forwarded: int = 0
    rerr_sent: int = 0
    auth_rejected: int = 0
    fake_rreps_sent: int = 0
    discovery_failures: int = 0
    control_bytes_sent: int = 0
    data_bytes_sent: int = 0
    delays: List[float] = field(default_factory=list)
    per_flow_received: Dict[int, int] = field(default_factory=dict)

    # -- recording ----------------------------------------------------------------
    def record_delivery(self, flow_id: int, delay: float) -> None:
        """Count one delivered packet and its end-to-end delay."""
        self.data_received += 1
        self.delays.append(delay)
        self.per_flow_received[flow_id] = self.per_flow_received.get(flow_id, 0) + 1

    # -- derived metrics ------------------------------------------------------------
    @property
    def packet_delivery_ratio(self) -> float:
        return self.data_received / self.data_sent if self.data_sent else 0.0

    @property
    def rreq_ratio(self) -> float:
        rreqs = self.rreq_initiated + self.rreq_forwarded + self.rreq_retried
        transmissions = self.data_sent + self.data_forwarded
        return rreqs / transmissions if transmissions else 0.0

    @property
    def average_end_to_end_delay(self) -> float:
        return sum(self.delays) / len(self.delays) if self.delays else 0.0

    @property
    def packet_drop_ratio(self) -> float:
        return self.dropped_by_attacker / self.data_sent if self.data_sent else 0.0

    def report(self) -> Dict[str, float]:
        """The four paper metrics plus supporting counters."""
        return {
            "packet_delivery_ratio": self.packet_delivery_ratio,
            "rreq_ratio": self.rreq_ratio,
            "end_to_end_delay": self.average_end_to_end_delay,
            "packet_drop_ratio": self.packet_drop_ratio,
            "data_sent": float(self.data_sent),
            "data_received": float(self.data_received),
            "data_forwarded": float(self.data_forwarded),
            "dropped_by_attacker": float(self.dropped_by_attacker),
            "dropped_no_route": float(self.dropped_no_route),
            "dropped_buffer_overflow": float(self.dropped_buffer_overflow),
            "dropped_ttl": float(self.dropped_ttl),
            "rreq_initiated": float(self.rreq_initiated),
            "rreq_forwarded": float(self.rreq_forwarded),
            "rreq_retried": float(self.rreq_retried),
            "rrep_sent": float(self.rrep_sent),
            "rrep_forwarded": float(self.rrep_forwarded),
            "rerr_sent": float(self.rerr_sent),
            "discovery_failures": float(self.discovery_failures),
            "auth_rejected": float(self.auth_rejected),
            "fake_rreps_sent": float(self.fake_rreps_sent),
            "control_bytes_sent": float(self.control_bytes_sent),
            "data_bytes_sent": float(self.data_bytes_sent),
        }
