"""Shared broadcast radio medium (unit-disk + queueing + jitter + loss).

Model, in the spirit of QualNet's default 802.11b profile but reduced to
what the paper's results depend on:

* **Connectivity**: unit disk of radius ``range_m`` evaluated at
  transmission time from the mobility models.
* **Transmission delay**: frame_size / bitrate, serialised per node (one
  outstanding transmission per radio; later sends queue behind it).
* **MAC contention**: a small uniform random jitter added before each
  broadcast (this is also what AODV's RFC prescribes for RREQ forwarding);
  attackers can bypass it - that *is* the rushing attack.
* **Propagation delay**: distance / c, microseconds at these scales.
* **Random loss**: i.i.d. per-link drop probability to model fading and
  collisions without a full PHY.

Delivery callbacks go to every in-range node; link-layer filtering
(unicast frames addressed to someone else) happens at the node.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import SimulationError
from repro.netsim.engine import Simulator
from repro.netsim.mobility import MobilityModel, distance
from repro.netsim.packets import Frame

SPEED_OF_LIGHT = 299_792_458.0

DeliveryCallback = Callable[[int, Frame, float], None]


class RadioMedium:
    """The single shared channel all nodes transmit on."""

    def __init__(
        self,
        sim: Simulator,
        range_m: float = 250.0,
        bitrate_bps: float = 2_000_000.0,
        loss_rate: float = 0.0,
        broadcast_jitter_s: float = 0.002,
    ):
        if range_m <= 0 or bitrate_bps <= 0:
            raise SimulationError("radio range and bitrate must be positive")
        # loss_rate == 1.0 is a valid total-outage/jamming channel.
        if not 0.0 <= loss_rate <= 1.0:
            raise SimulationError("loss_rate must be in [0, 1]")
        self.sim = sim
        self.range_m = range_m
        self.bitrate_bps = bitrate_bps
        self.loss_rate = loss_rate
        self.broadcast_jitter_s = broadcast_jitter_s
        self._mobility: Dict[int, MobilityModel] = {}
        self._receivers: Dict[int, DeliveryCallback] = {}
        self._busy_until: Dict[int, float] = {}
        self._observers = []
        #: optional per-receiver delivery hook ``(receiver_id, frame) ->
        #: frame | None``; returning None drops the copy (counted as lost),
        #: returning a different frame delivers that instead.  The fault
        #: injector uses this for frame bit-corruption.
        self.frame_filter: Optional[Callable[[int, Frame], Optional[Frame]]] = None
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost = 0

    def set_conditions(
        self,
        loss_rate: Optional[float] = None,
        range_m: Optional[float] = None,
    ) -> None:
        """Change channel conditions mid-run (fading windows, jamming)."""
        if loss_rate is not None:
            if not 0.0 <= loss_rate <= 1.0:
                raise SimulationError("loss_rate must be in [0, 1]")
            self.loss_rate = loss_rate
        if range_m is not None:
            if range_m <= 0:
                raise SimulationError("radio range must be positive")
            self.range_m = range_m

    def add_observer(self, observer) -> None:
        """Register a callback(now, frame, receiver_ids) fired per
        completed transmission - the hook the packet tracer uses."""
        self._observers.append(observer)

    # -- registration -----------------------------------------------------------
    def attach(
        self, node_id: int, mobility: MobilityModel, receiver: DeliveryCallback
    ) -> None:
        """Register a node's mobility model and delivery callback."""
        if node_id in self._receivers:
            raise SimulationError(f"node {node_id} already attached")
        self._mobility[node_id] = mobility
        self._receivers[node_id] = receiver
        self._busy_until[node_id] = 0.0

    def is_attached(self, node_id: int) -> bool:
        """Whether the node is currently on the radio."""
        return node_id in self._receivers

    def detach(self, node_id: int) -> None:
        """Remove a node from the medium (models failure/departure)."""
        self._mobility.pop(node_id, None)
        self._receivers.pop(node_id, None)
        self._busy_until.pop(node_id, None)

    def position_of(self, node_id: int):
        """The node's current position from its mobility model."""
        return self._mobility[node_id].position(self.sim.now)

    def neighbors_of(self, node_id: int):
        """Node ids currently within radio range (excluding self)."""
        origin = self.position_of(node_id)
        result = []
        for other, mobility in self._mobility.items():
            if other == node_id:
                continue
            if distance(origin, mobility.position(self.sim.now)) <= self.range_m:
                result.append(other)
        return result

    # -- transmission --------------------------------------------------------------
    def transmit(self, frame: Frame, jitter: Optional[bool] = None) -> None:
        """Queue a frame for transmission by ``frame.sender``.

        ``jitter=None`` applies MAC jitter to broadcasts only (the normal
        behaviour); ``jitter=False`` bypasses it (the rushing attacker's
        move); ``jitter=True`` forces it.
        """
        sender = frame.sender
        if sender not in self._receivers:
            raise SimulationError(f"node {sender} is not attached to the radio")
        apply_jitter = frame.is_broadcast if jitter is None else jitter
        delay = 0.0
        if apply_jitter and self.broadcast_jitter_s > 0:
            delay += self.sim.rng("mac-jitter").uniform(0, self.broadcast_jitter_s)
        # Serialise transmissions per radio.
        start = max(self.sim.now + delay, self._busy_until[sender])
        tx_time = frame.size_bytes * 8 / self.bitrate_bps
        end = start + tx_time
        self._busy_until[sender] = end
        self.sim.schedule_at(end, self._complete_transmission, frame)

    def _complete_transmission(self, frame: Frame) -> None:
        self.frames_sent += 1
        sender_pos = self.position_of(frame.sender)
        loss_rng = self.sim.rng("radio-loss")
        receivers = []
        for node_id, mobility in list(self._mobility.items()):
            if node_id == frame.sender:
                continue
            span = distance(sender_pos, mobility.position(self.sim.now))
            if span > self.range_m:
                continue
            if self.loss_rate > 0 and loss_rng.random() < self.loss_rate:
                self.frames_lost += 1
                continue
            delivered = frame
            if self.frame_filter is not None:
                delivered = self.frame_filter(node_id, frame)
                if delivered is None:  # corrupted beyond the link checksum
                    self.frames_lost += 1
                    continue
            propagation = span / SPEED_OF_LIGHT
            self.frames_delivered += 1
            receivers.append(node_id)
            self.sim.schedule(
                propagation, self._deliver, node_id, delivered
            )
        for observer in self._observers:
            observer(self.sim.now, frame, tuple(receivers))

    def _deliver(self, node_id: int, frame: Frame) -> None:
        receiver = self._receivers.get(node_id)
        if receiver is not None:
            receiver(node_id, frame, self.sim.now)

    def in_range(self, a: int, b: int) -> bool:
        """Whether two attached nodes can currently hear each other.

        A detached node (failed/left) is in range of nothing - which is
        exactly how the MAC-feedback link-break detection learns about
        dead neighbours.
        """
        if a not in self._mobility or b not in self._mobility:
            return False
        return distance(self.position_of(a), self.position_of(b)) <= self.range_m
