"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``scenario`` - run one MANET simulation and print the paper's metrics.
* ``sweep``    - run the Figures 1-5 speed sweep and print the series.
* ``table1``   - print the Table 1 scheme comparison (measured).
* ``games``    - run the security-game battery (McCLS vs McCLS+).

Everything the CLI does is a thin layer over the public API, so scripts
and notebooks can do the same programmatically.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.netsim.scenario import ScenarioConfig, paper_speed_sweep, run_scenario


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--protocol", choices=("aodv", "mccls", "pki"), default="aodv"
    )
    parser.add_argument(
        "--attack",
        choices=("none", "blackhole", "rushing", "blackhole-cryptanalyst"),
        default="none",
    )
    parser.add_argument("--speed", type=float, default=10.0)
    parser.add_argument("--time", type=float, default=60.0)
    parser.add_argument("--nodes", type=int, default=20)
    parser.add_argument("--flows", type=int, default=6)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--hello", type=float, default=0.0)
    parser.add_argument("--real-crypto", action="store_true")


def _config_from(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig(
        protocol=args.protocol,
        attack=None if args.attack == "none" else args.attack,
        max_speed=args.speed,
        sim_time_s=args.time,
        n_nodes=args.nodes,
        n_flows=args.flows,
        seed=args.seed,
        hello_interval=args.hello,
        real_crypto=args.real_crypto,
    )


def cmd_scenario(args: argparse.Namespace) -> int:
    """Run one simulation and print the paper's metrics."""
    result = run_scenario(_config_from(args))
    report = result.report()
    print(
        f"protocol={args.protocol} attack={args.attack} speed={args.speed} "
        f"seed={args.seed} events={result.events_executed}"
    )
    if result.attacker_ids:
        print(f"attacker nodes: {result.attacker_ids}")
    for key in (
        "packet_delivery_ratio",
        "rreq_ratio",
        "end_to_end_delay",
        "packet_drop_ratio",
        "data_sent",
        "data_received",
        "auth_rejected",
    ):
        print(f"  {key:24s} {report[key]:.4f}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run the Figures 1-5 speed sweep for one metric."""
    attack = None if args.attack == "none" else args.attack
    metric = args.metric
    print(f"metric={metric} attack={attack or 'none'} time={args.time}s")
    print(f"{'speed':>6s} {'aodv':>10s} {'mccls':>10s}")
    for speed in paper_speed_sweep():
        row = [f"{speed:6.1f}"]
        for protocol in ("aodv", "mccls"):
            config = ScenarioConfig(
                protocol=protocol,
                attack=attack,
                max_speed=speed,
                sim_time_s=args.time,
                seed=args.seed,
            )
            row.append(f"{run_scenario(config).report()[metric]:10.4f}")
        print(" ".join(row))
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    """Print the measured Table 1 scheme comparison."""
    from repro.pairing.bn import toy_curve
    from repro.pairing.groups import PairingContext
    from repro.schemes.registry import scheme_class, scheme_names

    print(f"{'scheme':8s} {'sign':>12s} {'verify cold':>12s} {'verify warm':>12s}")
    for name in scheme_names():
        ctx = PairingContext(toy_curve(args.bits), random.Random(1))
        scheme = scheme_class(name)(ctx)
        keys = scheme.generate_user_keys("cli@manet")
        scheme.sign(b"warm", keys)
        sig, sign_ops = scheme.measure_sign(b"m", keys)
        _, cold = scheme.measure_verify(b"m", sig, keys)
        _, warm = scheme.measure_verify(b"m", sig, keys)
        print(
            f"{name:8s} {sign_ops.summary():>12s} {cold.summary():>12s} "
            f"{warm.summary():>12s}"
        )
    return 0


def cmd_games(args: argparse.Namespace) -> int:
    """Run the security-game battery (McCLS vs McCLS+)."""
    from repro.core.hardened import demo_hardening
    from repro.pairing.bn import toy_curve

    results = demo_hardening(toy_curve(args.bits))
    print(f"{'adversary':24s} {'vs McCLS':>10s} {'vs McCLS+':>10s}")
    for name, (against_mccls, against_plus) in results.items():
        print(f"{name:24s} {against_mccls:>10.0%} {against_plus:>10.0%}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro", description="McCLS reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scenario = sub.add_parser("scenario", help="run one simulation")
    _add_scenario_args(scenario)
    scenario.set_defaults(func=cmd_scenario)

    sweep = sub.add_parser("sweep", help="speed sweep for one metric")
    sweep.add_argument(
        "--metric",
        default="packet_delivery_ratio",
        choices=(
            "packet_delivery_ratio",
            "rreq_ratio",
            "end_to_end_delay",
            "packet_drop_ratio",
        ),
    )
    sweep.add_argument(
        "--attack",
        choices=("none", "blackhole", "rushing"),
        default="none",
    )
    sweep.add_argument("--time", type=float, default=60.0)
    sweep.add_argument("--seed", type=int, default=3)
    sweep.set_defaults(func=cmd_sweep)

    table1 = sub.add_parser("table1", help="scheme op-count comparison")
    table1.add_argument("--bits", type=int, default=48)
    table1.set_defaults(func=cmd_table1)

    games = sub.add_parser("games", help="security-game battery")
    games.add_argument("--bits", type=int, default=32)
    games.set_defaults(func=cmd_games)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
