"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``scenario`` - run one MANET simulation and print the paper's metrics.
* ``sweep``    - run the Figures 1-5 speed sweep and print the series.
* ``campaign`` - run one scenario across many seeds with statistics,
  run isolation (per-seed failures become records, not aborts) and an
  auditable campaign-end fault/failure summary.
* ``table1``   - print the Table 1 scheme comparison (measured).
* ``games``    - run the security-game battery (McCLS vs McCLS+).
* ``serve``    - run the verification gateway (``--trace-out`` streams
  server-side request spans as JSONL; ``--workers N`` moves the pairing
  CPU into a supervised worker-process pool; SIGTERM drains gracefully).
* ``loadgen``  - drive load at a gateway; ``--trace-out`` captures the
  full client->queue->batch->pairing span trace of the run, ``--chaos``
  injects wire-level faults through a deterministic proxy, and
  ``--kill-worker-after`` murders a crypto worker mid-run to prove the
  supervisor restarts it, and ``--sessions`` adds the CL-AKA handshake +
  MAC fast-path phase with its zero-pairing assertion and post-rekey
  session-invalidation probe.
* ``top``      - live terminal dashboard polling a gateway's STATS.
* ``benchdiff`` - compare two BENCH_*.json files; nonzero exit when a
  gated metric regresses past ``--fail-over`` percent.

Fault injection (scenario/sweep/campaign): ``--faults SPEC`` attaches a
deterministic :class:`~repro.netsim.faults.FaultPlan`; SPEC is inline JSON
(``'{"crashes": [{"at": 20, "count": 2, "recover_at": 40}]}'``) or the
path of a JSON file.  Injected faults are reported after the run and
stream through ``--trace-out`` as ``fault.*`` events.

Observability flags (scenario/sweep/table1):

* ``--json`` prints one machine-readable JSON document instead of the
  aligned text tables - metrics plus an ``ops`` section with the
  pairing/multiplication counts collected by :mod:`repro.obs`.
* ``--trace-out FILE`` (scenario/sweep) streams the structured simulator
  event trace (route discovery, auth accept/reject, attacker drops, queue
  samples, radio transmissions) to ``FILE`` as JSON Lines.

Everything the CLI does is a thin layer over the public API, so scripts
and notebooks can do the same programmatically.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import Dict, List, Optional

from repro import obs
from repro.errors import SimulationError
from repro.netsim.faults import FaultPlan
from repro.netsim.scenario import ScenarioConfig, paper_speed_sweep, run_scenario

#: attack choices shared by the scenario and sweep subcommands
ATTACK_CHOICES = ("none", "blackhole", "rushing", "blackhole-cryptanalyst")


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--protocol", choices=("aodv", "mccls", "pki"), default="aodv"
    )
    parser.add_argument("--attack", choices=ATTACK_CHOICES, default="none")
    parser.add_argument("--speed", type=float, default=10.0)
    parser.add_argument("--time", type=float, default=60.0)
    parser.add_argument("--nodes", type=int, default=20)
    parser.add_argument("--flows", type=int, default=6)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--hello", type=float, default=0.0)
    parser.add_argument("--real-crypto", action="store_true")
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="fault plan: inline JSON or the path of a JSON file",
    )


def _parse_fault_plan(spec: Optional[str]) -> Optional[FaultPlan]:
    """Parse the --faults argument (inline JSON or a JSON file path)."""
    if not spec:
        return None
    text = spec
    if not spec.lstrip().startswith("{"):
        try:
            with open(spec, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise SimulationError(f"cannot read fault spec file: {exc}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SimulationError(f"fault spec is not valid JSON: {exc}") from None
    return FaultPlan.from_spec(payload)


def _print_fault_summary(fault_counts: Dict[str, int]) -> None:
    if not fault_counts:
        return
    injected = " ".join(
        f"{name}={count}" for name, count in sorted(fault_counts.items())
    )
    print(f"faults injected: {injected}")


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help="field-arithmetic backend (reference, native, montgomery, "
        "gmpy2); default: $REPRO_FIELD_BACKEND or 'reference'",
    )


def _add_output_args(
    parser: argparse.ArgumentParser, trace: bool = True
) -> None:
    parser.add_argument(
        "--json",
        action="store_true",
        help="print one machine-readable JSON document instead of text",
    )
    if trace:
        parser.add_argument(
            "--trace-out",
            metavar="FILE",
            default=None,
            help="stream the structured simulator event trace to FILE (JSONL)",
        )


def _config_from(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig(
        protocol=args.protocol,
        attack=None if args.attack == "none" else args.attack,
        max_speed=args.speed,
        sim_time_s=args.time,
        n_nodes=args.nodes,
        n_flows=args.flows,
        seed=args.seed,
        hello_interval=args.hello,
        real_crypto=args.real_crypto,
        faults=_parse_fault_plan(args.faults),
    )


def _ops_section(registry: obs.Registry) -> Dict[str, int]:
    """The combined op-count report of one collection window.

    Merges the pairing stack's measured tally (nonzero only when real
    crypto executed) with the timing model's modelled primitive counts
    (nonzero in modelled-crypto simulations).
    """
    ops: Dict[str, int] = dict(registry.field_ops.snapshot())
    for counter in (
        "modelled_pairings",
        "modelled_scalar_mults",
        "modelled_gt_exps",
        "modelled_group_hashes",
    ):
        ops[counter] = registry.counter_total(f"crypto.{counter}")
    ops["modelled_signs"] = registry.counter_total("crypto.sign")
    ops["modelled_verifies"] = registry.counter_total("crypto.verify")
    return ops


def _print_ops_text(ops: Dict[str, int]) -> None:
    nonzero = {name: count for name, count in ops.items() if count}
    if not nonzero:
        return
    print("ops:")
    width = max(len(name) for name in nonzero)
    for name, count in nonzero.items():
        print(f"  {name:<{width}} {count:>12}")


def cmd_scenario(args: argparse.Namespace) -> int:
    """Run one simulation and print the paper's metrics."""
    config = _config_from(args)
    sink = obs.open_sink(args.trace_out)
    try:
        with obs.collecting() as registry:
            result = run_scenario(
                config, event_sink=sink if sink.enabled else None
            )
    finally:
        sink.close()
    report = result.report()
    ops = _ops_section(registry)
    if args.json:
        payload = {
            "command": "scenario",
            "protocol": args.protocol,
            "attack": args.attack,
            "speed": args.speed,
            "seed": args.seed,
            "events_executed": result.events_executed,
            "attacker_ids": result.attacker_ids,
            "metrics": report,
            "ops": ops,
            "faults": result.fault_summary,
        }
        print(obs.render_json(payload))
        return 0
    print(
        f"protocol={args.protocol} attack={args.attack} speed={args.speed} "
        f"seed={args.seed} events={result.events_executed}"
    )
    if result.attacker_ids:
        print(f"attacker nodes: {result.attacker_ids}")
    _print_fault_summary(result.fault_summary)
    for key in (
        "packet_delivery_ratio",
        "rreq_ratio",
        "end_to_end_delay",
        "packet_drop_ratio",
        "data_sent",
        "data_received",
        "auth_rejected",
    ):
        print(f"  {key:24s} {report[key]:.4f}")
    _print_ops_text(ops)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run the Figures 1-5 speed sweep for one metric."""
    attack = None if args.attack == "none" else args.attack
    metric = args.metric
    fault_plan = _parse_fault_plan(args.faults)
    sink = obs.open_sink(args.trace_out)
    rows: List[Dict[str, float]] = []
    fault_counts: Dict[str, int] = {}
    try:
        with obs.collecting() as registry:
            for speed in paper_speed_sweep():
                row: Dict[str, float] = {"speed": speed}
                for protocol in ("aodv", "mccls"):
                    if sink.enabled:
                        sink.emit(
                            "run.start",
                            protocol=protocol,
                            attack=attack or "none",
                            speed=speed,
                        )
                    config = ScenarioConfig(
                        protocol=protocol,
                        attack=attack,
                        max_speed=speed,
                        sim_time_s=args.time,
                        seed=args.seed,
                        faults=fault_plan,
                    )
                    result = run_scenario(
                        config, event_sink=sink if sink.enabled else None
                    )
                    row[protocol] = result.report()[metric]
                    for name, count in result.fault_summary.items():
                        fault_counts[name] = fault_counts.get(name, 0) + count
                rows.append(row)
    finally:
        sink.close()
    if args.json:
        payload = {
            "command": "sweep",
            "metric": metric,
            "attack": attack or "none",
            "time": args.time,
            "seed": args.seed,
            "rows": rows,
            "ops": _ops_section(registry),
            "faults": fault_counts,
        }
        print(obs.render_json(payload))
        return 0
    print(f"metric={metric} attack={attack or 'none'} time={args.time}s")
    print(f"{'speed':>6s} {'aodv':>10s} {'mccls':>10s}")
    for row in rows:
        print(
            f"{row['speed']:6.1f} {row['aodv']:10.4f} {row['mccls']:10.4f}"
        )
    _print_fault_summary(fault_counts)
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run one scenario across many seeds with statistics + run isolation."""
    from repro.netsim.campaign import run_campaign

    config = _config_from(args)
    seeds = list(range(args.seed, args.seed + args.seeds))
    result = run_campaign(
        config,
        seeds,
        failure_budget=args.failure_budget,
        workers=args.workers,
        calibrate=args.calibrate,
        backend=args.backend,
    )
    if args.json:
        payload = {
            "command": "campaign",
            "protocol": args.protocol,
            "attack": args.attack,
            "seeds": seeds,
            "completed_seeds": result.completed_seeds,
            "failure_budget": args.failure_budget,
            "metrics": {
                key: {
                    "mean": summary.mean,
                    "std": summary.std,
                    "ci_low": summary.ci_low,
                    "ci_high": summary.ci_high,
                    "samples": list(summary.samples),
                }
                for key, summary in result.metrics.items()
            },
            "failures": [
                {
                    "seed": failure.seed,
                    "error_type": failure.error_type,
                    "message": failure.message,
                }
                for failure in result.failures
            ],
            "faults": result.fault_counts,
        }
        print(obs.render_json(payload))
        return 0
    print(
        f"protocol={args.protocol} attack={args.attack} "
        f"seeds={seeds[0]}..{seeds[-1]} time={args.time}s"
    )
    print(result.table_text())
    print(result.summary_line())
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    """Print the measured Table 1 scheme comparison."""
    from repro.pairing.bn import toy_curve
    from repro.pairing.groups import PairingContext
    from repro.schemes.registry import scheme_class, scheme_names

    rows = []
    with obs.collecting() as registry:
        for name in scheme_names():
            ctx = PairingContext(toy_curve(args.bits), random.Random(1))
            scheme = scheme_class(name)(ctx)
            keys = scheme.generate_user_keys("cli@manet")
            scheme.sign(b"warm", keys)
            sig, sign_ops = scheme.measure_sign(b"m", keys)
            _, cold = scheme.measure_verify(b"m", sig, keys)
            _, warm = scheme.measure_verify(b"m", sig, keys)
            rows.append((name, sign_ops, cold, warm))
    if args.json:
        payload = {
            "command": "table1",
            "bits": args.bits,
            "rows": [
                {
                    "scheme": name,
                    "sign": vars(sign_ops),
                    "verify_cold": vars(cold),
                    "verify_warm": vars(warm),
                    # pairings the pairing stack actually executed inside
                    # each measured phase (verify spans cold + warm)
                    "executed_pairings": {
                        "sign": registry.counter_value(
                            "ops.pairings", phase=f"{name}.sign"
                        ),
                        "verify": registry.counter_value(
                            "ops.pairings", phase=f"{name}.verify"
                        ),
                    },
                }
                for name, sign_ops, cold, warm in rows
            ],
        }
        print(obs.render_json(payload))
        return 0
    print(f"{'scheme':8s} {'sign':>12s} {'verify cold':>12s} {'verify warm':>12s}")
    for name, sign_ops, cold, warm in rows:
        print(
            f"{name:8s} {sign_ops.summary():>12s} {cold.summary():>12s} "
            f"{warm.summary():>12s}"
        )
    return 0


def cmd_games(args: argparse.Namespace) -> int:
    """Run the security-game battery (McCLS vs McCLS+)."""
    from repro.core.hardened import demo_hardening
    from repro.pairing.bn import toy_curve

    results = demo_hardening(toy_curve(args.bits))
    print(f"{'adversary':24s} {'vs McCLS':>10s} {'vs McCLS+':>10s}")
    for name, (against_mccls, against_plus) in results.items():
        print(f"{name:24s} {against_mccls:>10.0%} {against_plus:>10.0%}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the verification gateway until interrupted.

    SIGTERM triggers a graceful drain: the listener closes, admitted
    requests are answered, then worker processes are reaped.  SIGINT
    (Ctrl-C) stops hard.
    """
    import asyncio
    import signal

    from repro.pairing.bn import toy_curve
    from repro.service.server import VerificationGateway

    sink = obs.open_sink(args.trace_out)
    gateway = VerificationGateway(
        curve=toy_curve(args.bits, backend=args.backend),
        backend=args.backend,
        seed=args.seed,
        cache_size=args.cache_size,
        host=args.host,
        port=args.port,
        queue_size=args.queue_size,
        max_batch=args.max_batch,
        sink=sink if sink.enabled else None,
        workers=args.workers,
    )

    async def _serve() -> None:
        await gateway.start()
        loop = asyncio.get_running_loop()
        drain_requested = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, drain_requested.set)
        except (NotImplementedError, RuntimeError):
            pass  # platform without signal-handler support
        workers_note = f", workers {args.workers}" if args.workers else ""
        print(
            f"gateway listening on {gateway.host}:{gateway.port} "
            f"(curve bn-toy{args.bits}, "
            f"backend {gateway.kgc.ctx.backend.name}, "
            f"cache {args.cache_size}, "
            f"queue {args.queue_size}, batch {args.max_batch}"
            f"{workers_note})"
        )
        server_gone = asyncio.ensure_future(gateway._server.serve_forever())
        drain_wait = asyncio.ensure_future(drain_requested.wait())
        try:
            await asyncio.wait(
                [server_gone, drain_wait],
                return_when=asyncio.FIRST_COMPLETED,
            )
        finally:
            for task in (server_gone, drain_wait):
                task.cancel()
            await asyncio.gather(server_gone, drain_wait, return_exceptions=True)
        if drain_requested.is_set():
            print("SIGTERM: draining admitted requests before shutdown")
            await gateway.stop(drain=True)
            print("gateway drained and stopped")
        else:
            await gateway.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("gateway stopped")
    finally:
        sink.close()
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a load run against the gateway; write BENCH_service.json."""
    from repro.service.loadgen import LoadgenConfig, run_loadgen, summary_lines

    chaos_spec = None
    if args.chaos:
        text = args.chaos
        if not text.lstrip().startswith("{"):
            with open(text, "r", encoding="utf-8") as handle:
                text = handle.read()
        chaos_spec = json.loads(text)
    config = LoadgenConfig(
        requests=args.requests,
        identities=args.identities,
        connections=args.connections,
        burst=args.burst,
        zipf=args.zipf,
        window=args.window,
        bits=args.bits,
        backend=args.backend,
        cache_size=args.cache_size,
        queue_size=args.queue_size,
        max_batch=args.max_batch,
        seed=args.seed,
        rekey_check=not args.no_rekey_check,
        out=args.out,
        host=args.host,
        port=args.port,
        trace_out=args.trace_out,
        workers=args.workers,
        deadline_ms=args.deadline_ms,
        kill_worker_after=args.kill_worker_after,
        chaos=chaos_spec,
        error_budget=args.error_budget,
        sessions=args.sessions,
        session_requests=args.session_requests,
    )
    result = run_loadgen(config)
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        for line in summary_lines(result):
            print(line)
        if config.out:
            print(f"wrote {config.out}")
    return 0 if result["ok"] else 1


def cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over a gateway's STATS endpoint."""
    from repro.service.top import run_top

    return run_top(
        host=args.host,
        port=args.port,
        interval_s=args.interval,
        iterations=args.iterations,
    )


def cmd_benchdiff(args: argparse.Namespace) -> int:
    """Compare two bench documents; gate on regressions."""
    from repro.benchdiff import run_benchdiff

    return run_benchdiff(
        args.old,
        args.new,
        fail_over=args.fail_over,
        allow_backend_mismatch=args.allow_backend_mismatch,
    )


def build_parser() -> argparse.ArgumentParser:
    """The complete argument parser (separate from main for testability)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="McCLS reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    scenario = sub.add_parser("scenario", help="run one simulation")
    _add_scenario_args(scenario)
    _add_output_args(scenario)
    scenario.set_defaults(func=cmd_scenario)

    sweep = sub.add_parser("sweep", help="speed sweep for one metric")
    sweep.add_argument(
        "--metric",
        default="packet_delivery_ratio",
        choices=(
            "packet_delivery_ratio",
            "rreq_ratio",
            "end_to_end_delay",
            "packet_drop_ratio",
        ),
    )
    sweep.add_argument("--attack", choices=ATTACK_CHOICES, default="none")
    sweep.add_argument("--time", type=float, default=60.0)
    sweep.add_argument("--seed", type=int, default=3)
    sweep.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="fault plan: inline JSON or the path of a JSON file",
    )
    _add_output_args(sweep)
    sweep.set_defaults(func=cmd_sweep)

    campaign = sub.add_parser(
        "campaign", help="multi-seed campaign with statistics"
    )
    _add_scenario_args(campaign)
    campaign.add_argument(
        "--seeds",
        type=int,
        default=5,
        help="number of consecutive seeds starting at --seed",
    )
    campaign.add_argument(
        "--failure-budget",
        type=float,
        default=0.5,
        help="tolerated failed fraction of per-seed runs before the "
        "campaign itself fails",
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for per-seed runs (1 = serial); results "
        "are identical regardless of worker count",
    )
    campaign.add_argument(
        "--calibrate",
        action="store_true",
        help="measure this machine's pairing/mult costs once (in the "
        "parent) and price all runs' modelled crypto with them",
    )
    _add_backend_arg(campaign)
    _add_output_args(campaign, trace=False)
    campaign.set_defaults(func=cmd_campaign)

    table1 = sub.add_parser("table1", help="scheme op-count comparison")
    table1.add_argument("--bits", type=int, default=48)
    _add_output_args(table1, trace=False)
    table1.set_defaults(func=cmd_table1)

    games = sub.add_parser("games", help="security-game battery")
    games.add_argument("--bits", type=int, default=32)
    games.set_defaults(func=cmd_games)

    serve = sub.add_parser(
        "serve", help="run the McCLS verification gateway"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7754)
    serve.add_argument("--bits", type=int, default=64)
    serve.add_argument("--seed", type=int, default=None)
    serve.add_argument(
        "--cache-size",
        type=int,
        default=4096,
        help="bound on each pairing/Miller/comb-table LRU cache",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=256,
        help="bounded request queue; overflow is answered BUSY",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="micro-batcher drain limit per consumer cycle",
    )
    serve.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="stream server-side request spans to FILE (JSONL)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="supervised crypto worker processes (0 = verify in-process)",
    )
    _add_backend_arg(serve)
    serve.set_defaults(func=cmd_serve)

    loadgen = sub.add_parser(
        "loadgen", help="drive load at a gateway, write BENCH_service.json"
    )
    loadgen.add_argument("--requests", type=int, default=10_000)
    loadgen.add_argument("--identities", type=int, default=1_000)
    loadgen.add_argument("--connections", type=int, default=8)
    loadgen.add_argument("--burst", type=int, default=16)
    loadgen.add_argument(
        "--zipf",
        type=float,
        default=None,
        metavar="S",
        help="skew signer choice by a Zipf(S) rank distribution instead of "
        "uniform round-robin (exercises the cross-signer fold)",
    )
    loadgen.add_argument("--window", type=int, default=64)
    loadgen.add_argument("--bits", type=int, default=32)
    loadgen.add_argument("--cache-size", type=int, default=512)
    loadgen.add_argument("--queue-size", type=int, default=4096)
    loadgen.add_argument("--max-batch", type=int, default=64)
    loadgen.add_argument("--seed", type=int, default=7)
    _add_backend_arg(loadgen)
    loadgen.add_argument(
        "--no-rekey-check",
        action="store_true",
        help="skip the post-rekey cache-invalidation probe",
    )
    loadgen.add_argument(
        "--out",
        default="benchmarks/results/BENCH_service.json",
        help="result file path ('' disables writing)",
    )
    loadgen.add_argument(
        "--host",
        default=None,
        help="target an external gateway (default: in-process)",
    )
    loadgen.add_argument("--port", type=int, default=7754)
    loadgen.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="stream the client+server span trace of the run to FILE (JSONL)",
    )
    loadgen.add_argument(
        "--workers",
        type=int,
        default=0,
        help="supervised crypto workers for the in-process gateway",
    )
    loadgen.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        help="stamp every verify request with this deadline budget",
    )
    loadgen.add_argument(
        "--kill-worker-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help="SIGKILL one worker this far into the main phase and assert "
        "the supervisor restarts it",
    )
    loadgen.add_argument(
        "--chaos",
        metavar="SPEC",
        default=None,
        help="drive load through the wire-level chaos proxy; SPEC is "
        "inline JSON or a JSON file (keys: reset, truncate, stall, "
        "stall_s, latency_s, jitter_s, seed)",
    )
    loadgen.add_argument(
        "--error-budget",
        type=float,
        default=0.01,
        help="max fraction of requests allowed to fail under chaos",
    )
    loadgen.add_argument(
        "--sessions",
        action="store_true",
        help="run the session phase: CL-AKA handshakes, the MAC-"
        "authenticated fast path (asserted pairing-free), and the "
        "post-rekey session-invalidation probe",
    )
    loadgen.add_argument(
        "--session-requests",
        type=int,
        default=4096,
        help="total fast-path requests the session phase drives",
    )
    loadgen.add_argument("--json", action="store_true")
    loadgen.set_defaults(func=cmd_loadgen)

    top = sub.add_parser(
        "top", help="live dashboard polling a gateway's STATS"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7754)
    top.add_argument(
        "--interval", type=float, default=2.0, help="poll interval seconds"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after N polls (default: run until interrupted)",
    )
    top.set_defaults(func=cmd_top)

    benchdiff = sub.add_parser(
        "benchdiff",
        help="compare two BENCH_*.json files and gate regressions",
    )
    benchdiff.add_argument("old", help="baseline bench JSON")
    benchdiff.add_argument("new", help="candidate bench JSON")
    benchdiff.add_argument(
        "--fail-over",
        type=float,
        default=10.0,
        metavar="PCT",
        help="fail when a gated metric regresses more than PCT%% (default 10)",
    )
    benchdiff.add_argument(
        "--allow-backend-mismatch",
        action="store_true",
        help="compare documents produced under different field backends "
        "(refused by default: the numbers measure different code)",
    )
    benchdiff.set_defaults(func=cmd_benchdiff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
