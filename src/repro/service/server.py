"""The verification gateway server.

One asyncio process plays the KGC and verification front-end for a fleet
of constrained clients:

* **Per-connection framing with FIFO replies.**  Each connection gets a
  reader loop and a writer task; every parsed frame claims a reply slot
  *in arrival order* before it enters the shared queue, so clients can
  pipeline requests without tagging and still match replies by position.
  ``writer.drain()`` propagates TCP backpressure to slow readers.

* **Bounded request queue with explicit load-shed.**  Requests are
  admitted with ``put_nowait`` against a bounded queue; when it is full
  the gateway answers ``BUSY`` immediately instead of buffering without
  limit - the client owns the retry policy, the server owns its memory.

* **Same-signer micro-batching.**  The consumer drains whatever is queued
  (up to ``max_batch``), groups the VERIFY requests by (identity, public
  key) and folds each group into
  :meth:`~repro.core.batch.McCLSBatchVerifier.verify_same_signer` - a
  warm same-signer burst of k signatures costs **one** pairing instead of
  k.  A drained window that spans *several* signers folds once through
  :meth:`~repro.core.batch.McCLSBatchVerifier.verify_cross_signer`
  instead of once per signer: every item gets an independent random
  weight, anchored signers settle pairing-free in G1, and a failed fold
  bisects down to exact per-item verdicts.  Either way a failed batch
  falls back to per-item verification so every request still gets an
  exact verdict.

* **Supervised worker pool** (``workers > 0``).  The pairing CPU moves
  into :class:`~repro.service.pool.VerifyWorkerPool` worker processes;
  the event loop only frames, routes (by identity affinity) and replies.
  A worker crash or hang mid-batch becomes a clean ``ERR worker-lost``
  reply for the jobs it owed - **never a hung future** - while the
  supervisor restarts the worker under jittered backoff.  REKEY
  broadcasts the new params to every worker before its reply is sent, so
  any verify pipelined after the rekey reply sees the new master key.

* **Deadline enforcement.**  A request whose opcode byte carries
  :data:`~repro.service.protocol.DEADLINE_FLAG` names its time budget;
  the gateway checks it at dequeue (expired work is answered ``ERR
  deadline`` without paying for a pairing) and again before replying (a
  verdict that arrives too late to matter is reported as the deadline
  miss it is).  Expirations count in ``deadline_expirations`` and the
  remaining margin feeds the ``deadline_slack`` stage histogram.

* **Graceful drain.**  ``stop(drain=True)`` refuses new work (``BUSY``)
  but answers everything already admitted before closing connections;
  ``stop()`` without drain still never strands a reply future - leftover
  queued work is failed with ``ERR`` so writer tasks always terminate.

* **Total error handling.**  Malformed payloads, unknown opcodes and
  verification-time arithmetic failures become clean ``ERR`` replies on a
  live connection.  The single unrecoverable case is an oversized length
  prefix: after refusing to read the declared body the stream cannot be
  re-synchronised, so the gateway sends ``ERR`` and closes that
  connection (others are unaffected).

* **Server-side stage accounting.**  Every request is timed through its
  stages - queue wait, batch fold, the pairing itself, reply serialize -
  into latency histograms on the gateway's own registry, reported by
  STATS (JSON summaries) and METRICS (Prometheus text exposition).  A
  request whose opcode byte carries :data:`~repro.service.protocol.TRACE_FLAG`
  additionally emits one span event per stage (all under the request's
  trace id) to the gateway's event sink, so a single slow verify can be
  attributed to queueing vs folding vs the Miller loop.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.batch import McCLSBatchVerifier
from repro.core.mccls import McCLS
from repro.core.params import KeyGenerationCenter
from repro.core.serialization import encode_g1
from repro.core.session import EstablishedSession, SessionAuthority
from repro.errors import ReproError, SerializationError, WorkerLostError
from repro.obs.events import EventSink, NULL_EVENT_SINK
from repro.obs.exposition import PrometheusRenderer
from repro.obs.registry import Registry, get_registry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.pairing.bn import BNCurve, toy_curve
from repro.schemes.base import normalize_identity
from repro.service import protocol
from repro.service.pool import VerifyWorkerPool, merge_cache_stats
from repro.service.protocol import Opcode, Status
from repro.service.supervisor import RestartBackoff

#: STATS reply document version (benchdiff and dashboards key on it);
#: v4 added the ``sessions`` section (fast-path session table accounting)
STATS_SCHEMA_VERSION = 4

#: (request body, reply future, perf_counter at enqueue) on the queue
_Work = Tuple[bytes, "asyncio.Future[bytes]", float]


@dataclass
class _PendingVerify:
    """One VERIFY awaiting its (possibly batched) verdict.

    ``request`` is populated on the in-process path (full decode),
    ``payload`` on the worker-pool path (the parent only splits the
    routing prefix; workers do the expensive curve-membership checks).
    """

    future: "asyncio.Future[bytes]"
    trace_id: Optional[int]
    enqueued: float
    #: absolute perf_counter second the client's budget runs out, or None
    deadline: Optional[float]
    request: Optional[protocol.VerifyRequest] = None
    payload: Optional[bytes] = None


@dataclass
class _SessionEntry:
    """One live fast-path session plus its replay/expiry state."""

    session: EstablishedSession
    identity: str
    #: highest sequence number accepted so far (monotonic per session)
    seq: int
    #: monotonic second the session stops being honoured
    expires_at: float


class SessionTable:
    """Bounded LRU of established fast-path sessions with a TTL.

    Keys are session ids (transcript digests).  ``get`` refreshes LRU
    order but never the TTL: a session lives at most ``ttl_s`` seconds
    from establishment, after which the client must re-handshake (and so
    re-prove possession of its enrolled McCLS key).  Eviction and expiry
    are counted so STATS can distinguish churn from rekey flushes.
    """

    def __init__(self, capacity: int = 1024, ttl_s: float = 600.0):
        if capacity < 1:
            raise ValueError("session table capacity must be >= 1")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self.evictions = 0
        self.expirations = 0
        self._entries: "OrderedDict[bytes, _SessionEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, session: EstablishedSession, now: float) -> None:
        """Admit a fresh session, evicting the LRU entry when full."""
        entry = _SessionEntry(
            session=session,
            identity=session.client_identity,
            seq=0,
            expires_at=now + self.ttl_s,
        )
        self._entries[session.session_id] = entry
        self._entries.move_to_end(session.session_id)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get(self, session_id: bytes, now: float) -> Optional[_SessionEntry]:
        """The live entry for ``session_id``, or None (expired entries
        are removed on access)."""
        entry = self._entries.get(session_id)
        if entry is None:
            return None
        if now >= entry.expires_at:
            del self._entries[session_id]
            self.expirations += 1
            return None
        self._entries.move_to_end(session_id)
        return entry

    def flush(self) -> int:
        """Drop every session (rekey invalidation); returns the count."""
        flushed = len(self._entries)
        self._entries.clear()
        return flushed


class VerificationGateway:
    """KGC + verification front-end over the binary frame protocol."""

    def __init__(
        self,
        kgc: Optional[KeyGenerationCenter] = None,
        *,
        curve: Optional[BNCurve] = None,
        seed: Optional[int] = None,
        cache_size: Optional[int] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_size: int = 256,
        max_batch: int = 64,
        sink: Optional[EventSink] = None,
        workers: int = 0,
        worker_job_timeout_s: float = 30.0,
        worker_heartbeat_timeout_s: float = 2.0,
        worker_backoff: Optional[RestartBackoff] = None,
        backend=None,
        session_capacity: int = 1024,
        session_ttl_s: float = 600.0,
    ):
        if kgc is None:
            kgc = KeyGenerationCenter(
                McCLS,
                curve=curve if curve is not None else toy_curve(64, backend=backend),
                seed=seed,
                cache_size=cache_size,
                backend=backend,
            )
        self.kgc = kgc
        self.seed = seed if seed is not None else 0
        self.batcher = McCLSBatchVerifier(kgc.scheme)
        self.host = host
        self.port = port
        self.queue_size = queue_size
        self.max_batch = max(1, max_batch)
        self.workers = max(0, workers)
        self.worker_cache_size = cache_size
        self.worker_job_timeout_s = worker_job_timeout_s
        self.worker_heartbeat_timeout_s = worker_heartbeat_timeout_s
        self.worker_backoff = worker_backoff
        self.counters: Dict[str, int] = {
            "connections": 0,
            "requests": 0,
            "verify_requests": 0,
            "verify_valid": 0,
            "verify_invalid": 0,
            "batches": 0,
            "batched_requests": 0,
            "batch_fallbacks": 0,
            "cross_signer_folds": 0,
            "cross_signer_requests": 0,
            "cross_bisections": 0,
            "enrollments": 0,
            "rekeys": 0,
            "busy_rejections": 0,
            "drain_rejections": 0,
            "protocol_errors": 0,
            "traced_requests": 0,
            "deadline_requests": 0,
            "deadline_expirations": 0,
            "worker_lost_replies": 0,
            "session_requests": 0,
            "sessions_established": 0,
            "sessions_rejected": 0,
            "sessions_killed_by_rekey": 0,
            "fast_verify_requests": 0,
            "fast_verify_valid": 0,
            "fast_verify_invalid": 0,
            "fast_verify_replays": 0,
            "fast_verify_unknown_session": 0,
        }
        #: established fast-path sessions (the authoritative table; with
        #: a worker pool each session is additionally installed in its
        #: identity shard's worker, which does the MAC checking there)
        self.sessions = SessionTable(
            capacity=session_capacity, ttl_s=session_ttl_s
        )
        #: the gateway's CL-AKA side; shares the KGC master secret so one
        #: REKEY invalidates both the pairing world and every session key
        self.authority = SessionAuthority(
            self.kgc.ctx, self.kgc.scheme.master_secret
        )
        #: the gateway's own instrument store for request-granularity
        #: stage histograms (always on; never the process-wide registry,
        #: so the pairing hot path stays untouched)
        self.registry = Registry()
        self.sink = sink if sink is not None else NULL_EVENT_SINK
        self.tracer = Tracer(self.sink) if self.sink.enabled else NULL_TRACER
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._consumer: Optional[asyncio.Task] = None
        self._connections: set = set()
        self._pool: Optional[VerifyWorkerPool] = None
        self._group_tasks: set = set()
        self._draining = False
        self._stopped = False

    @property
    def pool(self) -> Optional[VerifyWorkerPool]:
        """The live worker pool, or None when verifying in-process."""
        return self._pool

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "VerificationGateway":
        """Bind, start accepting connections and the batch consumer."""
        self._draining = False
        self._stopped = False
        if self.workers > 0 and self._pool is None:
            self._pool = VerifyWorkerPool(
                self._params(),
                self.workers,
                cache_size=self.worker_cache_size,
                job_timeout_s=self.worker_job_timeout_s,
                heartbeat_timeout_s=self.worker_heartbeat_timeout_s,
                backoff=self.worker_backoff,
                seed=self.seed,
            )
            try:
                await self._pool.start()
            except Exception:
                self._pool = None
                raise
        self._queue = asyncio.Queue(self.queue_size)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._consumer = asyncio.create_task(self._consume())
        return self

    async def stop(self, drain: bool = False, drain_timeout_s: float = 30.0) -> None:
        """Tear the gateway down; idempotent.

        With ``drain=True`` the listener closes first, frames still
        arriving on live connections are shed with ``BUSY``, and every
        request already admitted is answered (bounded by
        ``drain_timeout_s``) before connections close.  Without drain,
        queued and in-flight work is failed fast with ``ERR server
        shutting down`` - either way no reply future is ever stranded.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain:
            self._draining = True
            deadline = time.monotonic() + drain_timeout_s
            try:
                if self._queue is not None:
                    await asyncio.wait_for(
                        self._queue.join(), max(0.01, deadline - time.monotonic())
                    )
                if self._group_tasks:
                    await asyncio.wait_for(
                        asyncio.gather(
                            *list(self._group_tasks), return_exceptions=True
                        ),
                        max(0.01, deadline - time.monotonic()),
                    )
            except asyncio.TimeoutError:
                pass  # budget exhausted: fall through to the hard path
        if self._consumer is not None:
            self._consumer.cancel()
            try:
                await self._consumer
            except asyncio.CancelledError:
                pass
            self._consumer = None
        self._flush_queue("server shutting down")
        if self._group_tasks:
            for task in list(self._group_tasks):
                task.cancel()
            await asyncio.gather(*list(self._group_tasks), return_exceptions=True)
            self._group_tasks.clear()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()
        if self._pool is not None:
            await self._pool.stop()
            self._pool = None

    def _flush_queue(self, detail: str) -> None:
        """Answer (with ERR) anything still queued so writers terminate."""
        if self._queue is None:
            return
        reply = protocol.error_reply(detail)
        while True:
            try:
                _body, future, _enqueued = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if not future.done():
                future.set_result(reply)
            self._queue.task_done()

    async def serve_forever(self) -> None:
        """start() and block until cancelled (the ``serve`` CLI command)."""
        await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.stop()

    # -- per-connection I/O -------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # Shutdown cancelled this connection mid-teardown; end the
            # task cleanly (asyncio's stream done-callback would re-raise
            # a cancelled handler into the loop's exception handler).
            pass
        finally:
            self._connections.discard(task)

    async def _serve_connection(self, reader, writer) -> None:
        self.counters["connections"] += 1
        loop = asyncio.get_running_loop()
        pending: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_replies(pending, writer))
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # clean EOF or mid-header truncation: just close
                try:
                    length = protocol.frame_length(header)
                except SerializationError as exc:
                    # Oversized declaration: refuse the body; the stream
                    # cannot be re-synchronised, so reply ERR and close.
                    self.counters["protocol_errors"] += 1
                    future = loop.create_future()
                    future.set_result(protocol.error_reply(str(exc)))
                    await pending.put(future)
                    break
                try:
                    body = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # truncated frame: sender vanished mid-body
                future = loop.create_future()
                await pending.put(future)
                if self._draining:
                    self.counters["drain_rejections"] += 1
                    future.set_result(
                        protocol.encode_reply(Status.BUSY, b"server draining")
                    )
                    continue
                try:
                    self._queue.put_nowait((body, future, time.perf_counter()))
                except asyncio.QueueFull:
                    self.counters["busy_rejections"] += 1
                    future.set_result(
                        protocol.encode_reply(
                            Status.BUSY, b"request queue full"
                        )
                    )
        finally:
            await pending.put(None)  # writer drains the backlog, then stops
            await writer_task
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _write_replies(self, pending: asyncio.Queue, writer) -> None:
        """Send replies strictly in request order (FIFO per connection)."""
        while True:
            future = await pending.get()
            if future is None:
                return
            reply = await future
            try:
                writer.write(protocol.encode_frame(reply))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                # Peer is gone: keep consuming futures so the batch
                # consumer never blocks on an abandoned connection.
                continue

    # -- batch consumer -----------------------------------------------------
    async def _consume(self) -> None:
        """Drain the shared queue, micro-batching whatever has piled up."""
        while True:
            first = await self._queue.get()
            batch: List[_Work] = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                self._process(batch)
            finally:
                for _ in batch:
                    self._queue.task_done()
            # Yield so connection tasks can refill the queue while the
            # next batch accumulates.
            await asyncio.sleep(0)

    def _process(self, batch: List[_Work]) -> None:
        """Decode and answer one drained batch.

        In-process mode this does the CPU work synchronously; with a
        worker pool it only splits routing prefixes and spawns dispatch
        tasks, so the loop returns to framing immediately.
        """
        drained = time.perf_counter()
        registry = self.registry
        registry.histogram("service.batch_size").observe(len(batch))
        tracer = self.tracer
        verifies: List[_PendingVerify] = []
        fasts: List[Tuple[str, _PendingVerify]] = []
        for body, future, enqueued in batch:
            if future.done():  # connection already answered (cannot happen
                continue  # for queued work today, but stay defensive)
            self.counters["requests"] += 1
            wait_s = drained - enqueued
            registry.histogram("service.queue_wait_ms").observe(wait_s * 1e3)
            try:
                opcode, payload, trace_id, deadline_ms = protocol.decode_request(
                    body
                )
                if trace_id is not None:
                    self.counters["traced_requests"] += 1
                    if tracer.enabled:
                        tracer.record(
                            "server.queue_wait",
                            trace_id=trace_id,
                            span_id=f"{trace_id}/queue_wait",
                            parent_id=f"{trace_id}/request",
                            start_s=enqueued,
                            dur_s=wait_s,
                        )
                deadline: Optional[float] = None
                if deadline_ms is not None:
                    self.counters["deadline_requests"] += 1
                    deadline = enqueued + deadline_ms / 1e3
                    if drained > deadline:
                        # Expired while queued: answer without paying
                        # for a pairing the client no longer wants.
                        self.counters["deadline_expirations"] += 1
                        future.set_result(
                            protocol.error_reply(
                                "deadline exceeded: "
                                f"{wait_s * 1e3:.0f}ms in queue against a "
                                f"{deadline_ms}ms budget"
                            )
                        )
                        continue
                if opcode == Opcode.VERIFY:
                    verifies.append(
                        self._admit_verify(
                            future, payload, trace_id, enqueued, deadline
                        )
                    )
                    continue
                if opcode == Opcode.VERIFY_FAST:
                    self.counters["fast_verify_requests"] += 1
                    if self._pool is not None:
                        identity = protocol.split_verify_fast_payload(payload)
                        fasts.append(
                            (
                                identity,
                                _PendingVerify(
                                    future,
                                    trace_id,
                                    enqueued,
                                    deadline,
                                    payload=payload,
                                ),
                            )
                        )
                        continue
                    request = protocol.decode_verify_fast_payload(payload)
                    reply = self._answer_fast(request)
                    self._resolve_verify(
                        _PendingVerify(future, trace_id, enqueued, deadline),
                        reply,
                        time.perf_counter(),
                    )
                    registry.histogram("service.request_ms").observe(
                        (time.perf_counter() - enqueued) * 1e3
                    )
                    continue
                if opcode == Opcode.REKEY and self._pool is not None:
                    if payload:
                        raise SerializationError(
                            f"REKEY request carries {len(payload)} unexpected"
                            " payload bytes"
                        )
                    self._spawn_group_task(self._rekey_with_pool(future))
                    continue
                future.set_result(self._answer(opcode, payload))
            except SerializationError as exc:
                self.counters["protocol_errors"] += 1
                future.set_result(protocol.error_reply(str(exc)))
            except ReproError as exc:
                future.set_result(protocol.error_reply(str(exc)))
            except Exception as exc:  # total: a bug must not kill the loop
                future.set_result(
                    protocol.error_reply(f"internal error: {exc}")
                )
        if verifies:
            if self._pool is not None:
                self._dispatch_grouped(verifies)
            else:
                self._verify_grouped(verifies)
        if fasts:
            # Group by shard so each worker only validates sessions for
            # its own identity partition (the session was installed there
            # at handshake time).
            shards: Dict[int, List[Tuple[str, _PendingVerify]]] = {}
            for identity, pending in fasts:
                shards.setdefault(self._pool.shard_of(identity), []).append(
                    (identity, pending)
                )
            for members in shards.values():
                self._spawn_group_task(self._dispatch_fast(members))

    def _admit_verify(
        self,
        future: "asyncio.Future[bytes]",
        payload: bytes,
        trace_id: Optional[int],
        enqueued: float,
        deadline: Optional[float],
    ) -> _PendingVerify:
        """Parse a VERIFY payload just far enough for this serving mode."""
        if self._pool is not None:
            # Routing needs only the (identity, pk) prefix; the worker
            # does the expensive curve-membership decode.
            protocol.split_verify_payload(self.kgc.ctx.curve, payload)
            return _PendingVerify(
                future, trace_id, enqueued, deadline, payload=payload
            )
        request = protocol.decode_verify_payload(self.kgc.ctx.curve, payload)
        return _PendingVerify(
            future, trace_id, enqueued, deadline, request=request
        )

    def _spawn_group_task(self, coroutine) -> None:
        task = asyncio.ensure_future(coroutine)
        self._group_tasks.add(task)
        task.add_done_callback(self._group_tasks.discard)

    def _answer(self, opcode: Opcode, payload: bytes) -> bytes:
        """One non-verify request -> one reply body."""
        if payload and opcode not in (Opcode.ENROLL, Opcode.SESSION):
            # Payload-less opcodes must arrive bare: random bytes that
            # happen to start with a valid (possibly trace-flagged)
            # opcode byte stay protocol errors, not accidental requests.
            raise SerializationError(
                f"{opcode.name} request carries {len(payload)} unexpected"
                " payload bytes"
            )
        if opcode == Opcode.PING:
            return protocol.encode_reply(Status.OK)
        if opcode == Opcode.PARAMS:
            return protocol.encode_reply(
                Status.OK, protocol.encode_json_payload(self._params())
            )
        if opcode == Opcode.ENROLL:
            identity = protocol.decode_enroll_payload(payload)
            keys = self.kgc.enroll(identity)
            self.counters["enrollments"] += 1
            return protocol.encode_reply(
                Status.OK,
                protocol.encode_user_keys(self.kgc.ctx.curve, keys),
            )
        if opcode == Opcode.SESSION:
            return self._answer_session(payload)
        if opcode == Opcode.REKEY:
            self.kgc.rekey()
            self.counters["rekeys"] += 1
            self._flush_sessions_after_rekey()
            return protocol.encode_reply(
                Status.OK, protocol.encode_json_payload(self._params())
            )
        if opcode == Opcode.STATS:
            return protocol.encode_reply(
                Status.OK, protocol.encode_json_payload(self.stats())
            )
        if opcode == Opcode.METRICS:
            return protocol.encode_reply(
                Status.OK, self.metrics_text().encode("utf-8")
            )
        raise SerializationError(f"unhandled opcode {opcode}")

    async def _rekey_with_pool(self, future: "asyncio.Future[bytes]") -> None:
        """Rotate the master secret, then re-arm every worker *before*
        the reply goes out - a verify pipelined after the rekey reply is
        guaranteed to be judged under the new master public key."""
        try:
            self.kgc.rekey()
            self.counters["rekeys"] += 1
            self._flush_sessions_after_rekey()
            # broadcast_params also clears every worker's session shard
            await self._pool.broadcast_params(self._params())
            reply = protocol.encode_reply(
                Status.OK, protocol.encode_json_payload(self._params())
            )
        except Exception as exc:
            reply = protocol.error_reply(f"rekey failed: {exc}")
        if not future.done():
            future.set_result(reply)

    # -- the pairing-free session fast path ---------------------------------
    def _flush_sessions_after_rekey(self) -> None:
        """A new master secret kills every issued partial key, therefore
        every session key derived from one (the rekey invalidation
        chain's session link)."""
        self.counters["sessions_killed_by_rekey"] += self.sessions.flush()
        self.authority.rekey(self.kgc.scheme.master_secret)

    def _answer_session(self, payload: bytes) -> bytes:
        """One SESSION handshake: bootstrap trust rides on the client's
        *enrolled* McCLS key (one pairing verify), then everything the
        session touches is plain G1 arithmetic and HMACs."""
        curve = self.kgc.ctx.curve
        self.counters["session_requests"] += 1
        hello, signature = protocol.decode_session_payload(curve, payload)
        identity = normalize_identity(hello.identity)
        try:
            enrolled = self.kgc.keys_for(identity)
        except KeyError:
            self.counters["sessions_rejected"] += 1
            return protocol.error_reply(
                f"identity {identity!r} is not enrolled"
            )
        auth_bytes = protocol.session_hello_auth_bytes(curve, hello)
        if not self.kgc.scheme.verify(
            auth_bytes, signature, identity, enrolled.public_key
        ):
            self.counters["sessions_rejected"] += 1
            return protocol.error_reply("session hello signature rejected")
        accept, session = self.authority.respond(hello)
        self.sessions.put(session, time.monotonic())
        self.counters["sessions_established"] += 1
        if self._pool is not None:
            self._pool.install_session(session)
        return protocol.encode_reply(
            Status.OK, protocol.encode_session_accept(curve, accept)
        )

    def _answer_fast(self, request: protocol.FastVerifyRequest) -> bytes:
        """One in-process VERIFY_FAST verdict: session lookup, replay
        check, HMAC - no curve arithmetic at all."""
        entry = self.sessions.get(request.session_id, time.monotonic())
        if entry is None or entry.identity != request.identity:
            self.counters["fast_verify_unknown_session"] += 1
            return protocol.error_reply(protocol.UNKNOWN_SESSION)
        if request.seq <= entry.seq:
            # replayed or reordered-behind sequence number: a legitimate
            # client never reuses one, so this is an invalid verdict
            self.counters["fast_verify_replays"] += 1
            self.counters["fast_verify_invalid"] += 1
            return protocol.verify_reply(False)
        if entry.session.mac_ok(
            request.mac,
            *protocol.fast_verify_mac_bytes(
                request.session_id, request.seq, request.identity,
                request.message,
            ),
        ):
            entry.seq = request.seq
            self.counters["fast_verify_valid"] += 1
            return protocol.verify_reply(True)
        self.counters["fast_verify_invalid"] += 1
        return protocol.verify_reply(False)

    async def _dispatch_fast(
        self, members: List[Tuple[str, "_PendingVerify"]]
    ) -> None:
        """One shard's fast-verify window through the worker pool.

        The owning worker holds the shard's session state (installed at
        handshake time), so MAC checking and replay tracking happen
        there; a worker restart loses its sessions and the resulting
        ``unknown session`` errors drive clients to re-handshake.
        """
        pendings = [pending for _identity, pending in members]
        try:
            try:
                results, _crypto_s, _fallback = await self._pool.submit_fast(
                    members[0][0], [p.payload for p in pendings]
                )
            except (WorkerLostError, ReproError) as exc:
                if isinstance(exc, WorkerLostError):
                    self.counters["worker_lost_replies"] += len(pendings)
                    reply = protocol.error_reply(f"worker-lost: {exc}")
                else:
                    reply = protocol.error_reply(str(exc))
                now = time.perf_counter()
                for pending in pendings:
                    self._resolve_verify(pending, reply, now)
                return
            replies = []
            for kind, value in results:
                if kind == "ok":
                    valid = bool(value)
                    key = "fast_verify_valid" if valid else "fast_verify_invalid"
                    self.counters[key] += 1
                    replies.append(protocol.verify_reply(valid))
                else:
                    detail = str(value)
                    if detail == protocol.UNKNOWN_SESSION:
                        self.counters["fast_verify_unknown_session"] += 1
                    replies.append(protocol.error_reply(detail))
            done = time.perf_counter()
            for pending, reply in zip(pendings, replies):
                self._resolve_verify(pending, reply, done)
                self.registry.histogram("service.request_ms").observe(
                    (done - pending.enqueued) * 1e3
                )
        finally:
            shutdown_reply: Optional[bytes] = None
            for pending in pendings:
                if not pending.future.done():
                    if shutdown_reply is None:
                        shutdown_reply = protocol.error_reply(
                            "server shutting down"
                        )
                    pending.future.set_result(shutdown_reply)

    # -- verification -------------------------------------------------------
    def _group_key(self, pending: _PendingVerify) -> Tuple[str, bytes]:
        if pending.request is not None:
            return (
                pending.request.identity,
                encode_g1(self.kgc.ctx.curve, pending.request.public_key),
            )
        return protocol.split_verify_payload(
            self.kgc.ctx.curve, pending.payload
        )

    def _resolve_verify(
        self, pending: _PendingVerify, reply: bytes, now: float
    ) -> None:
        """Answer one verify, demoting late verdicts to deadline errors."""
        if pending.future.done():
            return
        if pending.deadline is not None:
            slack_s = pending.deadline - now
            self.registry.histogram("service.deadline_slack_ms").observe(
                slack_s * 1e3
            )
            if slack_s < 0:
                self.counters["deadline_expirations"] += 1
                reply = protocol.error_reply(
                    "deadline exceeded: verdict ready "
                    f"{-slack_s * 1e3:.0f}ms past the budget"
                )
        pending.future.set_result(reply)

    def _verify_grouped(self, verifies: List[_PendingVerify]) -> None:
        """Fold same-signer requests into one batch pairing each; a
        window spanning several signers folds once via the randomized
        cross-signer check instead of once per signer."""
        groups: Dict[Tuple[str, bytes], List[_PendingVerify]] = {}
        for pending in verifies:
            groups.setdefault(self._group_key(pending), []).append(pending)
        if len(groups) > 1:
            self._verify_cross(verifies)
            return
        for (identity, _pk_blob), members in groups.items():
            self.counters["verify_requests"] += len(members)
            fold_started = time.perf_counter()
            verdicts, pairing_s = self._verify_group(identity, members)
            fold_s = time.perf_counter() - fold_started
            serialize_started = time.perf_counter()
            replies = []
            for valid in verdicts:
                self.counters["verify_valid" if valid else "verify_invalid"] += 1
                replies.append(protocol.verify_reply(valid))
            done = time.perf_counter()
            for pending, reply in zip(members, replies):
                self._resolve_verify(pending, reply, done)
            self._account_group(
                members, fold_started, fold_s, pairing_s,
                serialize_started, done - serialize_started, done,
            )

    def _verify_cross(self, verifies: List[_PendingVerify]) -> None:
        """Fold one in-process mixed-signer window with random weights."""
        self.counters["verify_requests"] += len(verifies)
        self.counters["cross_signer_folds"] += 1
        self.counters["cross_signer_requests"] += len(verifies)
        self.registry.histogram("service.cross_fold_size").observe(
            len(verifies)
        )
        fold_started = time.perf_counter()
        items = [
            (
                p.request.message,
                p.request.signature,
                p.request.identity,
                p.request.public_key,
            )
            for p in verifies
        ]
        try:
            verdicts, fold_stats = self.batcher.verify_cross_signer(items)
            self.counters["cross_bisections"] += int(
                fold_stats.get("bisections", 0)
            )
        except (ReproError, ValueError, ZeroDivisionError, ArithmeticError):
            # content the fold cannot even weigh: settle exactly per item
            self.counters["batch_fallbacks"] += 1
            verdicts = [self._verify_one(p.request) for p in verifies]
        pairing_s = time.perf_counter() - fold_started
        fold_s = pairing_s
        serialize_started = time.perf_counter()
        replies = []
        for valid in verdicts:
            self.counters["verify_valid" if valid else "verify_invalid"] += 1
            replies.append(protocol.verify_reply(valid))
        done = time.perf_counter()
        for pending, reply in zip(verifies, replies):
            self._resolve_verify(pending, reply, done)
        self._account_group(
            verifies, fold_started, fold_s, pairing_s,
            serialize_started, done - serialize_started, done,
        )

    def _dispatch_grouped(self, verifies: List[_PendingVerify]) -> None:
        """Route verify windows to the worker pool (async verdicts).

        A single-signer window keeps the same-signer fast path; a window
        spanning several signers ships whole to one worker - affine to
        the dominant signer's identity, so that signer's caches stay hot
        - and folds there via the randomized cross-signer check.
        """
        groups: Dict[Tuple[str, bytes], List[_PendingVerify]] = {}
        for pending in verifies:
            groups.setdefault(self._group_key(pending), []).append(pending)
        if len(groups) > 1:
            # Split the mixed window along the pool's identity shards
            # before submitting: a sub-window only ever contains signers
            # the receiving worker owns, so that worker's anchor / Q_ID /
            # Miller caches cover its partition of the population rather
            # than every worker slowly admitting all identities.
            shards: Dict[
                int, Dict[Tuple[str, bytes], List[_PendingVerify]]
            ] = {}
            for key, members in groups.items():
                shard = self._pool.shard_of(key[0])
                shards.setdefault(shard, {})[key] = members
            for shard_groups in shards.values():
                if len(shard_groups) == 1:
                    ((identity, _pk), members) = next(
                        iter(shard_groups.items())
                    )
                    self._spawn_group_task(
                        self._dispatch_group(identity, members)
                    )
                    continue
                shard_members = [
                    p for ms in shard_groups.values() for p in ms
                ]
                dominant = max(
                    shard_groups.items(), key=lambda kv: len(kv[1])
                )
                self._spawn_group_task(
                    self._dispatch_group(
                        dominant[0][0], shard_members, cross=True
                    )
                )
            return
        for (identity, _pk_blob), members in groups.items():
            self._spawn_group_task(self._dispatch_group(identity, members))

    async def _dispatch_group(
        self,
        identity: str,
        members: List[_PendingVerify],
        *,
        cross: bool = False,
    ) -> None:
        """One verify window's round trip through the worker pool."""
        self.counters["verify_requests"] += len(members)
        if cross:
            self.counters["cross_signer_folds"] += 1
            self.counters["cross_signer_requests"] += len(members)
            self.registry.histogram("service.cross_fold_size").observe(
                len(members)
            )
        elif len(members) > 1:
            self.counters["batches"] += 1
            self.counters["batched_requests"] += len(members)
        fold_started = time.perf_counter()
        try:
            try:
                fold_stats: Optional[dict] = None
                if cross:
                    results, pairing_s, fallback, fold_stats = (
                        await self._pool.submit_cross(
                            identity, [p.payload for p in members]
                        )
                    )
                else:
                    results, pairing_s, fallback = await self._pool.submit(
                        identity, [p.payload for p in members]
                    )
            except WorkerLostError as exc:
                # The worker died or hung with this group in flight: the
                # client gets a definite error now, never a hung future.
                self.counters["worker_lost_replies"] += len(members)
                reply = protocol.error_reply(f"worker-lost: {exc}")
                now = time.perf_counter()
                for pending in members:
                    self._resolve_verify(pending, reply, now)
                return
            except ReproError as exc:
                reply = protocol.error_reply(str(exc))
                now = time.perf_counter()
                for pending in members:
                    self._resolve_verify(pending, reply, now)
                return
            if fallback:
                self.counters["batch_fallbacks"] += 1
            if fold_stats:
                self.counters["cross_bisections"] += int(
                    fold_stats.get("bisections", 0)
                )
            fold_s = time.perf_counter() - fold_started
            serialize_started = time.perf_counter()
            replies = []
            for kind, value in results:
                if kind == "ok":
                    valid = bool(value)
                    key = "verify_valid" if valid else "verify_invalid"
                    self.counters[key] += 1
                    replies.append(protocol.verify_reply(valid))
                else:
                    replies.append(protocol.error_reply(str(value)))
            done = time.perf_counter()
            for pending, reply in zip(members, replies):
                self._resolve_verify(pending, reply, done)
            self._account_group(
                members, fold_started, fold_s, pairing_s,
                serialize_started, done - serialize_started, done,
            )
        finally:
            # Cancellation (hard stop) must not strand a reply future.
            shutdown_reply: Optional[bytes] = None
            for pending in members:
                if not pending.future.done():
                    if shutdown_reply is None:
                        shutdown_reply = protocol.error_reply(
                            "server shutting down"
                        )
                    pending.future.set_result(shutdown_reply)

    def _account_group(
        self,
        members: List[_PendingVerify],
        fold_started: float,
        fold_s: float,
        pairing_s: float,
        serialize_started: float,
        serialize_s: float,
        done: float,
    ) -> None:
        """Stage histograms, trace spans and the process-registry counter
        for one answered same-signer group."""
        registry = self.registry
        tracer = self.tracer
        registry.histogram("service.verify_ms").observe(pairing_s * 1e3)
        registry.histogram("service.batch_fold_ms").observe(fold_s * 1e3)
        registry.histogram("service.serialize_ms").observe(serialize_s * 1e3)
        for pending in members:
            registry.histogram("service.request_ms").observe(
                (done - pending.enqueued) * 1e3
            )
            if pending.trace_id is None or not tracer.enabled:
                continue
            tid = pending.trace_id
            # One stage tree per traced verify, all under its trace
            # id; the fold/pairing durations are shared by the whole
            # same-signer group (that sharing IS the batching win).
            tracer.record(
                "server.request",
                trace_id=tid,
                span_id=f"{tid}/request",
                parent_id=f"t{tid}",
                start_s=pending.enqueued,
                dur_s=done - pending.enqueued,
            )
            tracer.record(
                "server.batch_fold",
                trace_id=tid,
                span_id=f"{tid}/batch_fold",
                parent_id=f"{tid}/request",
                start_s=fold_started,
                dur_s=fold_s,
                batch=len(members),
            )
            tracer.record(
                "server.pairing",
                trace_id=tid,
                span_id=f"{tid}/pairing",
                parent_id=f"{tid}/batch_fold",
                start_s=fold_started,
                dur_s=pairing_s,
            )
            tracer.record(
                "server.serialize",
                trace_id=tid,
                span_id=f"{tid}/serialize",
                parent_id=f"{tid}/request",
                start_s=serialize_started,
                dur_s=serialize_s,
            )
        process_registry = get_registry()
        if process_registry.active:
            process_registry.counter("service.verifies").inc(len(members))

    def _verify_group(
        self, identity: str, members: List[_PendingVerify]
    ) -> Tuple[List[bool], float]:
        """Verdicts for one (identity, public key) group, in order, plus
        the crypto (pairing) seconds the group cost."""
        public_key = members[0].request.public_key
        started = time.perf_counter()
        if len(members) == 1:
            verdicts = [self._verify_one(members[0].request)]
            return verdicts, time.perf_counter() - started
        self.counters["batches"] += 1
        self.counters["batched_requests"] += len(members)
        items = [(p.request.message, p.request.signature) for p in members]
        try:
            if self.batcher.verify_same_signer(items, identity, public_key):
                return [True] * len(members), time.perf_counter() - started
        except (ReproError, ValueError, ZeroDivisionError, ArithmeticError):
            pass  # hostile batch content: settle per item below
        # At least one member is bad (or the aggregate check could not
        # run): fall back to exact per-item verification.
        self.counters["batch_fallbacks"] += 1
        verdicts = [self._verify_one(p.request) for p in members]
        return verdicts, time.perf_counter() - started

    def _verify_one(self, request: protocol.VerifyRequest) -> bool:
        return self.kgc.scheme.verify(
            request.message,
            request.signature,
            request.identity,
            request.public_key,
        )

    # -- introspection ------------------------------------------------------
    def _params(self) -> dict:
        scheme = self.kgc.scheme
        return protocol.params_document(
            scheme.name,
            self.kgc.ctx.curve,
            scheme.p_pub_g1,
            scheme.p_pub_g2,
            backend=self.kgc.ctx.backend.name,
        )

    #: the stage histograms STATS/METRICS report (stable metric names)
    STAGE_HISTOGRAMS = (
        "queue_wait",
        "batch_fold",
        "verify",
        "serialize",
        "request",
        "deadline_slack",
    )

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Bounded-cache accounting: the KGC's own context merged with
        every worker's (workers do the verify-side pairing work)."""
        if self._pool is None:
            return self.kgc.ctx.cache_stats()
        return merge_cache_stats(
            self.kgc.ctx.cache_stats(), self._pool.worker_cache_stats()
        )

    def stats(self) -> dict:
        """Counters, bounded-cache accounting and server-side stage
        latency summaries (the STATS reply)."""
        registry = self.registry
        document = {
            "schema_version": STATS_SCHEMA_VERSION,
            "counters": dict(self.counters),
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "queue_size": self.queue_size,
            "max_batch": self.max_batch,
            "cache": self.cache_stats(),
            "enrolled": len(self.kgc.issued_identities()),
            "latency_ms": {
                stage: registry.histogram(f"service.{stage}_ms").summary()
                for stage in self.STAGE_HISTOGRAMS
            },
            "batch": {
                "size": registry.histogram("service.batch_size").summary(),
                "cross_signer_folds": self.counters["cross_signer_folds"],
                "bisections": self.counters["cross_bisections"],
                "fold_size": registry.histogram(
                    "service.cross_fold_size"
                ).summary(),
            },
            "sessions": {
                "active": len(self.sessions),
                "capacity": self.sessions.capacity,
                "ttl_s": self.sessions.ttl_s,
                "established": self.counters["sessions_established"],
                "evictions": self.sessions.evictions,
                "expirations": self.sessions.expirations,
                "killed_by_rekey": self.counters["sessions_killed_by_rekey"],
            },
        }
        if self._pool is not None:
            pool_stats = self._pool.stats()
            pool_stats["supervision_log"] = list(self._pool.supervisor.log)[-32:]
            document["pool"] = pool_stats
        return document

    def metrics_text(self) -> str:
        """Prometheus text exposition of everything STATS reports."""
        renderer = PrometheusRenderer("repro")
        for name, value in sorted(self.counters.items()):
            renderer.counter(f"service.{name}", value)
        for stage in self.STAGE_HISTOGRAMS:
            renderer.summary(
                "service.stage_ms",
                self.registry.histogram(f"service.{stage}_ms").summary(),
                {"stage": stage},
            )
        renderer.summary(
            "service.batch_size",
            self.registry.histogram("service.batch_size").summary(),
        )
        renderer.summary(
            "service.cross_fold_size",
            self.registry.histogram("service.cross_fold_size").summary(),
        )
        renderer.gauge(
            "service.queue_depth", self._queue.qsize() if self._queue else 0
        )
        renderer.gauge("service.queue_size", self.queue_size)
        renderer.gauge("service.enrolled", len(self.kgc.issued_identities()))
        renderer.gauge("service.sessions_active", len(self.sessions))
        renderer.counter(
            "service.session_evictions", self.sessions.evictions
        )
        renderer.counter(
            "service.session_expirations", self.sessions.expirations
        )
        if self._pool is not None:
            pool_stats = self._pool.stats()
            ready = sum(
                1 for w in pool_stats["workers"] if w["state"] == "ready"
            )
            renderer.gauge("service.workers", pool_stats["size"])
            renderer.gauge("service.workers_ready", ready)
            for name, value in sorted(pool_stats["supervisor"].items()):
                renderer.counter(f"service.worker_{name}", value)
        for cache_name, stats in sorted(self.cache_stats().items()):
            labels = {"cache": cache_name}
            for key in ("hits", "misses", "evictions"):
                renderer.counter(f"cache.{key}", stats.get(key, 0), labels)
            for key in ("size", "peak_size", "maxsize"):
                renderer.gauge(f"cache.{key}", stats.get(key, 0), labels)
        return renderer.render()
