"""Load harness for the verification gateway (``python -m repro loadgen``).

Starts an in-process gateway on a loopback port (or targets an external
one), enrolls K identities, and drives N verify requests across M
pipelined connections in same-signer bursts - the traffic shape the
server's micro-batcher exists for.  A fraction of requests carry a
tampered message (signature valid, message mismatched) so the invalid
path is exercised under load.  BUSY replies are retried, connection
errors are not tolerated.

After the main phase the harness rekeys the KGC, re-enrolls a probe
identity and checks - through the STATS endpoint's cache accounting -
that the first post-rekey verify misses the pairing cache exactly once
and the second hits it: the bounded caches were invalidated, not leaked.

Results (throughput, latency percentiles, server-side stage latency,
cache/eviction accounting) are written to
``benchmarks/results/BENCH_service.json``, stamped with a schema version
and run timestamp so ``python -m repro benchdiff`` can key on them.

With ``trace_out`` set, every request carries a wire trace id and the
run emits a JSONL span trace: the client's ``client.rtt`` root span plus
the gateway's ``server.request``/``queue_wait``/``batch_fold``/
``pairing``/``serialize`` stage spans, all nested under the request's
trace id.
"""

from __future__ import annotations

import asyncio
import datetime
import json
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.events import NULL_EVENT_SINK, open_sink
from repro.obs.trace import NULL_TRACER, Tracer
from repro.pairing.bn import toy_curve
from repro.service import protocol
from repro.service.client import ServiceClient
from repro.service.protocol import Opcode, Status
from repro.service.server import VerificationGateway

#: default output location, next to BENCH_pairing.json
DEFAULT_OUT = "benchmarks/results/BENCH_service.json"

#: BENCH_service.json document version (bumped on shape changes so
#: ``repro benchdiff`` can key its comparisons on it)
BENCH_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class LoadgenConfig:
    """One load run, fully specified."""

    requests: int = 10_000
    identities: int = 1_000
    connections: int = 8
    burst: int = 16  # consecutive same-signer requests (batcher feed)
    invalid_every: int = 53  # every k-th request carries a tampered message
    window: int = 64  # per-connection pipelining depth
    bits: int = 32  # toy-curve size for the in-process gateway
    cache_size: int = 512  # pairing-cache bound (< identities -> evictions)
    queue_size: int = 4096
    max_batch: int = 32
    message_bytes: int = 48
    seed: int = 7
    rekey_check: bool = True
    out: Optional[str] = DEFAULT_OUT
    #: target an already-running gateway instead of an in-process one
    host: Optional[str] = None
    port: int = 0
    #: JSONL span-trace output; enables wire trace ids on every request
    trace_out: Optional[str] = None


@dataclass
class _Job:
    """One pre-encoded verify request and its expectation."""

    frame: bytes
    expect_valid: bool
    trace_id: Optional[int] = None


@dataclass
class _WorkerStats:
    latencies: List[float] = field(default_factory=list)
    valid: int = 0
    invalid: int = 0
    busy: int = 0
    errors: List[str] = field(default_factory=list)
    mismatches: int = 0  # verdict != expectation


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


async def _drive_connection(
    host: str,
    port: int,
    jobs: deque,
    stats: _WorkerStats,
    window: int,
    tracer: Tracer = NULL_TRACER,
) -> None:
    """Pipeline one connection's share of the load, retrying BUSY sheds."""
    reader, writer = await asyncio.open_connection(host, port)
    outstanding: deque = deque()

    async def pump(count: int) -> None:
        for _ in range(count):
            header = await reader.readexactly(4)
            body = await reader.readexactly(protocol.frame_length(header))
            started, job = outstanding.popleft()
            elapsed = time.perf_counter() - started
            stats.latencies.append(elapsed)
            if job.trace_id is not None and tracer.enabled:
                tracer.record(
                    "client.rtt",
                    trace_id=job.trace_id,
                    span_id=f"t{job.trace_id}",
                    start_s=started,
                    dur_s=elapsed,
                )
            status, payload = protocol.decode_reply(body)
            if status == Status.BUSY:
                stats.busy += 1
                jobs.append(job)  # shed cleanly: retry later
            elif status == Status.ERR:
                stats.errors.append(payload.decode("utf-8", "replace"))
            else:
                valid = protocol.decode_verify_verdict(payload)
                if valid:
                    stats.valid += 1
                else:
                    stats.invalid += 1
                if valid != job.expect_valid:
                    stats.mismatches += 1

    try:
        while jobs or outstanding:
            while jobs and len(outstanding) < window:
                job = jobs.popleft()
                outstanding.append((time.perf_counter(), job))
                writer.write(job.frame)
            await writer.drain()
            await pump(min(len(outstanding), max(1, window // 2)))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def _run(config: LoadgenConfig) -> Dict:
    sink = open_sink(config.trace_out)
    tracer = Tracer(sink) if sink.enabled else NULL_TRACER
    gateway = None
    if config.host is None:
        gateway = VerificationGateway(
            curve=toy_curve(config.bits),
            seed=config.seed,
            cache_size=config.cache_size,
            queue_size=config.queue_size,
            max_batch=config.max_batch,
            sink=sink if sink.enabled else None,
        )
        await gateway.start()
        host, port = gateway.host, gateway.port
    else:
        host, port = config.host, config.port

    client = ServiceClient(host, port)
    await client.connect()
    try:
        await client.params()

        # -- enrollment phase ---------------------------------------------
        enroll_started = time.perf_counter()
        identities = [f"node-{i:05d}" for i in range(config.identities)]
        keys = {}
        for identity in identities:
            keys[identity] = await client.enroll(identity)
        enroll_seconds = time.perf_counter() - enroll_started

        # -- pre-sign and pre-encode the request stream -------------------
        curve = client.curve
        message = b"M" * config.message_bytes
        tampered = b"X" * config.message_bytes
        signatures = {
            identity: client.sign(message, keys[identity])
            for identity in identities
        }
        jobs: List[_Job] = []
        index = 0
        # Cap the burst length so the request budget still cycles through
        # every identity at least once (the cache-bounding demo needs all
        # K distinct (P_pub, Q_ID) pairs to hit the verifier).
        burst = max(1, min(config.burst, config.requests // config.identities))
        while len(jobs) < config.requests:
            identity = identities[index % len(identities)]
            index += 1
            for _ in range(min(burst, config.requests - len(jobs))):
                bad = (len(jobs) + 1) % config.invalid_every == 0
                payload = protocol.encode_verify_payload(
                    curve,
                    identity,
                    keys[identity].public_key,
                    tampered if bad else message,
                    signatures[identity],
                )
                trace_id = len(jobs) + 1 if tracer.enabled else None
                frame = protocol.encode_frame(
                    protocol.encode_request(Opcode.VERIFY, payload, trace_id)
                )
                jobs.append(
                    _Job(
                        frame=frame,
                        expect_valid=not bad,
                        trace_id=trace_id,
                    )
                )

        # -- main phase: M pipelined connections --------------------------
        shares = [deque() for _ in range(config.connections)]
        chunk = (len(jobs) + config.connections - 1) // config.connections
        for i, job in enumerate(jobs):
            shares[i // chunk].append(job)
        workers = [_WorkerStats() for _ in shares]
        main_started = time.perf_counter()
        await asyncio.gather(
            *(
                _drive_connection(
                    host, port, share, stats, config.window, tracer
                )
                for share, stats in zip(shares, workers)
            )
        )
        main_seconds = time.perf_counter() - main_started

        latencies = sorted(
            lat for stats in workers for lat in stats.latencies
        )
        errors = [err for stats in workers for err in stats.errors]
        mismatches = sum(stats.mismatches for stats in workers)
        busy = sum(stats.busy for stats in workers)
        valid = sum(stats.valid for stats in workers)
        invalid = sum(stats.invalid for stats in workers)

        # -- rekey invalidation check -------------------------------------
        rekey_report = None
        if config.rekey_check:
            rekey_report = await _rekey_check(client)

        stats_doc = await client.stats()
        cache = stats_doc["cache"]
        result = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "generated_at": datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            "config": asdict(config),
            "enroll": {
                "identities": config.identities,
                "seconds": round(enroll_seconds, 3),
                "per_second": round(config.identities / enroll_seconds, 1),
            },
            "verify": {
                "requests": config.requests,
                "seconds": round(main_seconds, 3),
                "throughput_rps": round(config.requests / main_seconds, 1),
                "valid": valid,
                "invalid": invalid,
                "busy_retries": busy,
                "verdict_mismatches": mismatches,
                "connection_errors": len(errors),
                "error_samples": errors[:5],
                "latency_ms": {
                    "p50": round(_percentile(latencies, 0.50) * 1e3, 3),
                    "p90": round(_percentile(latencies, 0.90) * 1e3, 3),
                    "p95": round(_percentile(latencies, 0.95) * 1e3, 3),
                    "p99": round(_percentile(latencies, 0.99) * 1e3, 3),
                    "max": round(latencies[-1] * 1e3, 3) if latencies else 0.0,
                },
            },
            "cache": cache,
            "server_counters": stats_doc["counters"],
            "server_latency_ms": stats_doc.get("latency_ms"),
            "trace": (
                {"path": config.trace_out, "spans": sink.emitted}
                if sink.enabled
                else None
            ),
            "rekey": rekey_report,
            "ok": (
                not errors
                and mismatches == 0
                and valid + invalid == config.requests
                and cache["pairing"]["peak_size"] <= config.cache_size
                and cache["miller"]["peak_size"] <= config.cache_size
                and (
                    config.identities <= config.cache_size
                    or cache["miller"]["evictions"] > 0
                )
                and (rekey_report is None or rekey_report["ok"])
            ),
        }
        return result
    finally:
        await client.close()
        if gateway is not None:
            await gateway.stop()
        if sink is not NULL_EVENT_SINK:
            sink.close()


async def _rekey_check(client: ServiceClient) -> Dict:
    """Post-rekey, a fresh verify must miss the cache once, then hit."""
    await client.rekey()
    probe_keys = await client.enroll("rekey-probe")
    message = b"post-rekey probe"
    signature = client.sign(message, probe_keys)

    def misses(doc):
        return doc["cache"]["miller"]["misses"] + doc["cache"]["pairing"]["misses"]

    def hits(doc):
        return doc["cache"]["miller"]["hits"] + doc["cache"]["pairing"]["hits"]

    before = await client.stats()
    first_ok = await client.verify(
        "rekey-probe", probe_keys.public_key, message, signature
    )
    after_first = await client.stats()
    second_ok = await client.verify(
        "rekey-probe", probe_keys.public_key, message, signature
    )
    after_second = await client.stats()

    first_misses = misses(after_first) - misses(before)
    first_hits = hits(after_first) - hits(before)
    second_misses = misses(after_second) - misses(after_first)
    second_hits = hits(after_second) - hits(after_first)
    return {
        "post_rekey_verify_ok": bool(first_ok and second_ok),
        "first_verify": {"misses": first_misses, "hits": first_hits},
        "second_verify": {"misses": second_misses, "hits": second_hits},
        "ok": bool(
            first_ok
            and second_ok
            and first_misses == 1
            and first_hits == 0
            and second_misses == 0
            and second_hits == 1
        ),
    }


def run_loadgen(config: LoadgenConfig) -> Dict:
    """Execute one load run and (optionally) write the BENCH file."""
    result = asyncio.run(_run(config))
    if config.out:
        path = Path(config.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
    return result


def summary_lines(result: Dict) -> List[str]:
    """Human-readable digest of one load run."""
    verify = result["verify"]
    cache = result["cache"]
    lines = [
        f"verify: {verify['requests']} requests in {verify['seconds']}s "
        f"({verify['throughput_rps']} req/s)",
        f"latency ms: p50={verify['latency_ms']['p50']} "
        f"p90={verify['latency_ms']['p90']} "
        f"p95={verify['latency_ms'].get('p95', 0.0)} "
        f"p99={verify['latency_ms']['p99']}",
        f"verdicts: {verify['valid']} valid, {verify['invalid']} invalid, "
        f"{verify['busy_retries']} busy retries, "
        f"{verify['connection_errors']} connection errors",
        f"miller cache: peak {cache['miller']['peak_size']}/"
        f"{result['config']['cache_size']}, "
        f"{cache['miller']['evictions']} evictions",
    ]
    if result.get("trace"):
        lines.append(
            f"trace: {result['trace']['spans']} spans -> "
            f"{result['trace']['path']}"
        )
    if result.get("rekey"):
        rekey = result["rekey"]
        lines.append(
            "rekey: first verify "
            f"misses={rekey['first_verify']['misses']} "
            f"hits={rekey['first_verify']['hits']}; second verify "
            f"misses={rekey['second_verify']['misses']} "
            f"hits={rekey['second_verify']['hits']}"
        )
    lines.append(f"result: {'OK' if result['ok'] else 'FAILED'}")
    return lines
