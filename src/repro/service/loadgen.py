"""Load harness for the verification gateway (``python -m repro loadgen``).

Starts an in-process gateway on a loopback port (or targets an external
one), enrolls K identities, and drives N verify requests across M
pipelined connections in same-signer bursts - the traffic shape the
server's micro-batcher exists for.  A fraction of requests carry a
tampered message (signature valid, message mismatched) so the invalid
path is exercised under load.  BUSY sheds are retried after a jittered
exponential backoff (never a hot-loop re-queue), reads are bounded by a
timeout, and a dropped connection is re-dialled with the unanswered
window replayed - verify is idempotent, so replay can only cost work,
never correctness.

With ``workers > 0`` the in-process gateway runs its supervised crypto
worker pool; ``kill_worker_after`` then murders one worker mid-load
(``SIGKILL``, no goodbye) and the run asserts the supervisor restarted
it.  With a ``chaos`` plan the load connections are driven through the
wire-level :class:`~repro.service.chaosproxy.ChaosProxy` (resets,
stalls, latency, mid-frame truncation) while the control plane (enroll,
rekey, stats) keeps a direct connection.  Chaos runs enforce the hard
invariant of this service: **zero incorrect verdicts** - a request may
fail, it may never lie - plus a bounded error rate.

After the main phase the harness rekeys the KGC, re-enrolls a probe
identity and checks - through the STATS endpoint's cache accounting -
that the first post-rekey verify misses the pairing cache exactly once
and the second hits it: the bounded caches were invalidated, not leaked
(with a worker pool the accounting is the merged worker view, so this
also proves rekey propagation reached the workers).

Results (throughput, latency percentiles, server-side stage latency,
cache/eviction accounting, chaos and supervision reports) are written to
``benchmarks/results/BENCH_service.json``, stamped with a schema version
and run timestamp so ``python -m repro benchdiff`` can key on them.

With ``trace_out`` set, every request carries a wire trace id and the
run emits a JSONL span trace: the client's ``client.rtt`` root span plus
the gateway's ``server.request``/``queue_wait``/``batch_fold``/
``pairing``/``serialize`` stage spans, all nested under the request's
trace id.
"""

from __future__ import annotations

import asyncio
import datetime
import heapq
import itertools
import json
import random
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.events import NULL_EVENT_SINK, open_sink
from repro.obs.trace import NULL_TRACER, Tracer
from repro.pairing.bn import toy_curve
from repro.service import protocol
from repro.service.chaosproxy import ChaosPlan, ChaosProxy
from repro.service.client import RetryPolicy, ServiceClient
from repro.service.protocol import Opcode, Status
from repro.service.server import VerificationGateway

#: default output location, next to BENCH_pairing.json
DEFAULT_OUT = "benchmarks/results/BENCH_service.json"

#: BENCH_service.json document version (bumped on shape changes so
#: ``repro benchdiff`` can key its comparisons on it); v3 added the
#: top-level ``backend`` field naming the gateway's field backend; v4
#: added the top-level ``p50_ms`` headline, the ``batch`` section
#: (cross-signer folds, bisections, fold-size histogram) and the
#: ``zipf`` identity-skew knob in the recorded config; v5 added the
#: ``session`` section (CL-AKA handshakes + MAC fast-path throughput,
#: its zero-pairing accounting and the post-rekey re-handshake probe)
BENCH_SCHEMA_VERSION = 5

#: a job is retried (BUSY, replay, retryable ERR) at most this often
#: before it is recorded as a hard error against the run's budget
MAX_JOB_ATTEMPTS = 6

#: consecutive re-dial failures before a connection driver gives up
MAX_REDIAL_FAILURES = 8


@dataclass(frozen=True)
class LoadgenConfig:
    """One load run, fully specified."""

    requests: int = 10_000
    identities: int = 1_000
    connections: int = 8
    burst: int = 16  # consecutive same-signer requests (batcher feed)
    #: Zipf exponent for identity skew (None -> uniform round-robin).
    #: With ``--zipf s`` each burst's signer is drawn with probability
    #: proportional to 1/rank**s, the traffic shape of a real fleet where
    #: a few chatty gateways dominate - mixed windows then exercise the
    #: cross-signer fold instead of the same-signer fast path.
    zipf: Optional[float] = None
    invalid_every: int = 53  # every k-th request carries a tampered message
    window: int = 64  # per-connection pipelining depth
    bits: int = 32  # toy-curve size for the in-process gateway
    #: field-arithmetic backend for the in-process gateway (None -> env/default)
    backend: Optional[str] = None
    cache_size: int = 512  # pairing-cache bound (< identities -> evictions)
    queue_size: int = 4096
    max_batch: int = 64
    message_bytes: int = 48
    seed: int = 7
    rekey_check: bool = True
    out: Optional[str] = DEFAULT_OUT
    #: target an already-running gateway instead of an in-process one
    host: Optional[str] = None
    port: int = 0
    #: JSONL span-trace output; enables wire trace ids on every request
    trace_out: Optional[str] = None
    #: supervised crypto worker processes for the in-process gateway
    workers: int = 0
    #: per-request deadline budget stamped on every verify frame
    deadline_ms: Optional[int] = None
    #: SIGKILL one ready worker this many seconds into the main phase
    kill_worker_after: Optional[float] = None
    #: chaos-plan spec (see ChaosPlan.from_spec) for the load connections
    chaos: Optional[dict] = None
    #: max fraction of requests allowed to end in a hard error (chaos runs)
    error_budget: float = 0.01
    #: read timeout per pipelined reply batch (None -> 5s under chaos)
    call_timeout_s: Optional[float] = None
    #: run the session phase: CL-AKA handshakes, then MAC-authenticated
    #: VERIFY_FAST traffic (zero pairings warm) plus the post-rekey
    #: session-invalidation probe
    sessions: bool = False
    #: total fast-path requests the session phase drives
    session_requests: int = 4096


@dataclass
class _Job:
    """One pre-encoded verify request and its expectation."""

    frame: bytes
    expect_valid: bool
    trace_id: Optional[int] = None
    attempts: int = 0  # BUSY retries + replays consumed so far


@dataclass
class _WorkerStats:
    latencies: List[float] = field(default_factory=list)
    valid: int = 0
    invalid: int = 0
    busy: int = 0
    reconnects: int = 0
    deadline_errors: int = 0
    worker_lost: int = 0
    errors: List[str] = field(default_factory=list)
    mismatches: int = 0  # verdict != expectation


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


class _ConnectionDropped(Exception):
    """Internal: the driver's connection died; replay the window."""


async def _drive_connection(
    host: str,
    port: int,
    jobs: deque,
    stats: _WorkerStats,
    window: int,
    tracer: Tracer = NULL_TRACER,
    retry: Optional[RetryPolicy] = None,
    read_timeout_s: Optional[float] = None,
    rng_seed: str = "loadgen/conn",
) -> None:
    """Pipeline one connection's share of the load.

    BUSY sheds re-enter the stream after a jittered exponential backoff
    (a deferred heap, so the connection keeps pumping other work instead
    of hot-looping on a shed request).  A read timeout or connection
    loss re-dials and replays every unanswered request - verify is
    idempotent - until a job exhausts :data:`MAX_JOB_ATTEMPTS` and is
    recorded as a hard error.
    """
    retry = retry if retry is not None else RetryPolicy()
    rng = random.Random(rng_seed)
    deferred: List = []  # (ready_at, tiebreak, job) min-heap
    tiebreak = 0

    def defer(job: _Job, reason: str) -> None:
        nonlocal tiebreak
        job.attempts += 1
        if job.attempts >= MAX_JOB_ATTEMPTS:
            stats.errors.append(
                f"gave up after {job.attempts} attempts: {reason}"
            )
            return
        ready_at = time.perf_counter() + retry.delay_s(job.attempts - 1, rng)
        tiebreak += 1
        heapq.heappush(deferred, (ready_at, tiebreak, job))

    def pending() -> bool:
        return bool(jobs or deferred)

    redial_failures = 0
    while pending():
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            redial_failures += 1
            if redial_failures >= MAX_REDIAL_FAILURES:
                while jobs:
                    stats.errors.append(f"connect failed: {exc}")
                    jobs.popleft()
                while deferred:
                    stats.errors.append(f"connect failed: {exc}")
                    heapq.heappop(deferred)
                return
            await asyncio.sleep(retry.delay_s(redial_failures - 1, rng))
            continue
        redial_failures = 0
        outstanding: deque = deque()

        async def read_exactly(n: int) -> bytes:
            if read_timeout_s is None:
                return await reader.readexactly(n)
            return await asyncio.wait_for(reader.readexactly(n), read_timeout_s)

        async def pump(count: int) -> None:
            for _ in range(count):
                header = await read_exactly(4)
                body = await read_exactly(protocol.frame_length(header))
                started, job = outstanding.popleft()
                elapsed = time.perf_counter() - started
                stats.latencies.append(elapsed)
                if job.trace_id is not None and tracer.enabled:
                    tracer.record(
                        "client.rtt",
                        trace_id=job.trace_id,
                        span_id=f"t{job.trace_id}",
                        start_s=started,
                        dur_s=elapsed,
                    )
                status, payload = protocol.decode_reply(body)
                if status == Status.BUSY:
                    stats.busy += 1
                    defer(job, "BUSY")
                elif status == Status.ERR:
                    detail = payload.decode("utf-8", "replace")
                    if detail.startswith("deadline exceeded"):
                        stats.deadline_errors += 1
                        defer(job, detail)
                    elif detail.startswith("worker-lost"):
                        stats.worker_lost += 1
                        defer(job, detail)
                    else:
                        stats.errors.append(detail)
                else:
                    valid = protocol.decode_verify_verdict(payload)
                    if valid:
                        stats.valid += 1
                    else:
                        stats.invalid += 1
                    if valid != job.expect_valid:
                        stats.mismatches += 1

        try:
            try:
                while pending() or outstanding:
                    now = time.perf_counter()
                    while deferred and deferred[0][0] <= now:
                        jobs.append(heapq.heappop(deferred)[2])
                    while jobs and len(outstanding) < window:
                        job = jobs.popleft()
                        outstanding.append((time.perf_counter(), job))
                        writer.write(job.frame)
                    if not outstanding:
                        # Nothing in flight: everything left is deferred
                        # into the future; sleep until the head matures.
                        if deferred:
                            await asyncio.sleep(
                                max(0.0, deferred[0][0] - time.perf_counter())
                            )
                        continue
                    await writer.drain()
                    await pump(min(len(outstanding), max(1, window // 2)))
            except (
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
                ConnectionError,
                OSError,
            ) as exc:
                raise _ConnectionDropped(
                    f"{type(exc).__name__}: {exc}"
                ) from exc
        except _ConnectionDropped as drop:
            # The reply stream is gone; every unanswered request in the
            # window is replayed on a fresh connection (idempotent).
            stats.reconnects += 1
            while outstanding:
                _started, job = outstanding.popleft()
                defer(job, str(drop))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def _drive_fast_connection(
    host: str,
    port: int,
    frames: List[bytes],
    window: int,
    stats: _WorkerStats,
) -> None:
    """Pipeline one session's pre-encoded VERIFY_FAST frames.

    Fast-path requests are deliberately NOT replayed on failure: their
    sequence numbers are consumed server-side, so a replay would be
    rejected as such and lie about validity.  A dropped connection fails
    the unanswered tail into ``stats.errors`` instead.
    """
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as exc:
        stats.errors.extend(f"connect failed: {exc}" for _ in frames)
        return
    sent = 0
    answered = 0
    outstanding: deque = deque()
    try:
        while answered < len(frames):
            while sent < len(frames) and sent - answered < window:
                outstanding.append(time.perf_counter())
                writer.write(frames[sent])
                sent += 1
            await writer.drain()
            header = await reader.readexactly(4)
            body = await reader.readexactly(protocol.frame_length(header))
            answered += 1
            stats.latencies.append(time.perf_counter() - outstanding.popleft())
            status, payload = protocol.decode_reply(body)
            if status == Status.OK:
                if protocol.decode_verify_verdict(payload):
                    stats.valid += 1
                else:
                    stats.invalid += 1
            else:
                stats.errors.append(payload.decode("utf-8", "replace"))
    except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
        stats.errors.extend(
            f"connection lost: {exc}" for _ in range(len(frames) - answered)
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _session_phase(
    host: str,
    port: int,
    control: ServiceClient,
    identities: List[str],
    keys: Dict,
    config: LoadgenConfig,
) -> Dict:
    """Handshakes, the MAC fast path under pairing accounting, and the
    post-rekey invalidation probe.

    The fast-path window runs with a live obs registry installed, so the
    report can state - not estimate - how many Miller loops / final
    exponentiations the steady state cost (zero, or the run fails its
    ``session_zero_pairings`` check).
    """
    from repro.obs.registry import Registry, set_registry

    n_conns = max(1, min(config.connections, len(identities)))
    chosen = identities[:n_conns]
    clients: List[ServiceClient] = []
    handshake_started = time.perf_counter()
    for identity in chosen:
        session_client = ServiceClient(host, port)
        await session_client.connect()
        await session_client.params()
        await session_client.start_session(keys[identity])
        clients.append(session_client)
    handshake_seconds = time.perf_counter() - handshake_started

    # pre-encode every frame (MACs included) outside the timed window,
    # mirroring the verify phase's pre-signed request stream
    message = b"S" * config.message_bytes
    per_conn = max(1, config.session_requests // n_conns)
    shares: List[List[bytes]] = []
    for session_client in clients:
        session = session_client.session
        frames = []
        for seq in range(1, per_conn + 1):
            mac = session.mac(
                *protocol.fast_verify_mac_bytes(
                    session.session_id, seq, session.client_identity, message
                )
            )
            payload = protocol.encode_verify_fast_payload(
                session.client_identity,
                session.session_id,
                seq,
                message,
                mac,
            )
            frames.append(
                protocol.encode_frame(
                    protocol.encode_request(Opcode.VERIFY_FAST, payload)
                )
            )
        shares.append(frames)
    workers = [_WorkerStats() for _ in shares]

    registry = Registry()
    previous = set_registry(registry)
    try:
        before = registry.field_ops.snapshot()
        fast_started = time.perf_counter()
        await asyncio.gather(
            *(
                _drive_fast_connection(host, port, frames, config.window, stats)
                for frames, stats in zip(shares, workers)
            )
        )
        fast_seconds = time.perf_counter() - fast_started
        pairing_delta = registry.field_ops.diff(before)
    finally:
        set_registry(previous)

    # -- rekey kills every session: the probe's first fast request must
    # be rejected (unknown session) and transparently re-handshaken
    stats_before = await control.stats()
    await control.rekey()
    probe = clients[0]
    try:
        rekey_verify_ok = bool(await probe.verify_fast(b"post-rekey probe"))
    except Exception as exc:  # recorded, judged by the checks below
        rekey_verify_ok = False
        workers[0].errors.append(f"post-rekey fast verify failed: {exc}")
    stats_after = await control.stats()
    for session_client in clients:
        await session_client.close()

    counters_before = stats_before["counters"]
    counters_after = stats_after["counters"]
    latencies = sorted(lat for stats in workers for lat in stats.latencies)
    errors = [err for stats in workers for err in stats.errors]
    requests = sum(len(frames) for frames in shares)
    valid = sum(stats.valid for stats in workers)
    invalid = sum(stats.invalid for stats in workers)
    return {
        "connections": n_conns,
        "handshakes": n_conns,
        "handshake_seconds": round(handshake_seconds, 3),
        "handshakes_per_second": round(n_conns / handshake_seconds, 1),
        "requests": requests,
        "seconds": round(fast_seconds, 3),
        "throughput_rps": round(requests / fast_seconds, 1),
        "valid": valid,
        "invalid": invalid,
        "errors": len(errors),
        "error_samples": errors[:5],
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p99": round(_percentile(latencies, 0.99) * 1e3, 3),
        },
        "fast_path_pairings": {
            "miller_loops": pairing_delta.get("miller_loops", 0),
            "final_exps": pairing_delta.get("final_exps", 0),
        },
        "rekey": {
            "first_rejected": (
                counters_after.get("fast_verify_unknown_session", 0)
                > counters_before.get("fast_verify_unknown_session", 0)
            ),
            "rehandshake_verify_ok": rekey_verify_ok,
            "sessions_killed": (
                counters_after.get("sessions_killed_by_rekey", 0)
                - counters_before.get("sessions_killed_by_rekey", 0)
            ),
        },
    }


async def _run(config: LoadgenConfig) -> Dict:
    sink = open_sink(config.trace_out)
    tracer = Tracer(sink) if sink.enabled else NULL_TRACER
    chaos_plan = (
        ChaosPlan.from_spec(config.chaos) if config.chaos is not None else None
    )
    gateway = None
    proxy = None
    if config.host is None:
        gateway = VerificationGateway(
            curve=toy_curve(config.bits, backend=config.backend),
            backend=config.backend,
            seed=config.seed,
            cache_size=config.cache_size,
            queue_size=config.queue_size,
            max_batch=config.max_batch,
            sink=sink if sink.enabled else None,
            workers=config.workers,
        )
        await gateway.start()
        host, port = gateway.host, gateway.port
    else:
        host, port = config.host, config.port

    # The load connections go through the chaos proxy (when planned);
    # the control plane below keeps a direct, calm connection.
    load_host, load_port = host, port
    if chaos_plan is not None and not chaos_plan.empty:
        proxy = ChaosProxy(host, port, chaos_plan)
        await proxy.start()
        load_host, load_port = proxy.host, proxy.port
    read_timeout_s = config.call_timeout_s
    if read_timeout_s is None and proxy is not None:
        read_timeout_s = max(5.0, 2 * chaos_plan.stall_s + 1.0)

    client = ServiceClient(host, port)
    await client.connect()
    try:
        params_doc = await client.params()
        # The PARAMS document names the gateway's field backend; a remote
        # gateway from before the backend field reports "unspecified".
        backend_name = params_doc.get("backend") or "unspecified"

        # -- enrollment phase ---------------------------------------------
        enroll_started = time.perf_counter()
        identities = [f"node-{i:05d}" for i in range(config.identities)]
        keys = {}
        for identity in identities:
            keys[identity] = await client.enroll(identity)
        enroll_seconds = time.perf_counter() - enroll_started

        # -- pre-sign and pre-encode the request stream -------------------
        curve = client.curve
        message = b"M" * config.message_bytes
        tampered = b"X" * config.message_bytes
        signatures = {
            identity: client.sign(message, keys[identity])
            for identity in identities
        }
        jobs: List[_Job] = []
        index = 0
        # Cap the burst length so the request budget still cycles through
        # every identity at least once (the cache-bounding demo needs all
        # K distinct (P_pub, Q_ID) pairs to hit the verifier).
        burst = max(1, min(config.burst, config.requests // config.identities))
        zipf_rng = None
        zipf_cum_weights = None
        if config.zipf is not None:
            zipf_rng = random.Random(f"loadgen/{config.seed}/zipf")
            weights = [
                1.0 / (rank ** config.zipf)
                for rank in range(1, len(identities) + 1)
            ]
            zipf_cum_weights = list(itertools.accumulate(weights))
        while len(jobs) < config.requests:
            if zipf_rng is not None:
                identity = zipf_rng.choices(
                    identities, cum_weights=zipf_cum_weights
                )[0]
            else:
                identity = identities[index % len(identities)]
            index += 1
            for _ in range(min(burst, config.requests - len(jobs))):
                bad = (len(jobs) + 1) % config.invalid_every == 0
                payload = protocol.encode_verify_payload(
                    curve,
                    identity,
                    keys[identity].public_key,
                    tampered if bad else message,
                    signatures[identity],
                )
                trace_id = len(jobs) + 1 if tracer.enabled else None
                frame = protocol.encode_frame(
                    protocol.encode_request(
                        Opcode.VERIFY,
                        payload,
                        trace_id,
                        deadline_ms=config.deadline_ms,
                    )
                )
                jobs.append(
                    _Job(
                        frame=frame,
                        expect_valid=not bad,
                        trace_id=trace_id,
                    )
                )

        # -- main phase: M pipelined connections --------------------------
        shares = [deque() for _ in range(config.connections)]
        chunk = (len(jobs) + config.connections - 1) // config.connections
        for i, job in enumerate(jobs):
            shares[i // chunk].append(job)
        workers = [_WorkerStats() for _ in shares]
        assassin = None
        if (
            config.kill_worker_after is not None
            and gateway is not None
            and gateway.pool is not None
        ):
            assassin = asyncio.ensure_future(
                _kill_one_worker(gateway, config.kill_worker_after)
            )
        main_started = time.perf_counter()
        await asyncio.gather(
            *(
                _drive_connection(
                    load_host,
                    load_port,
                    share,
                    stats,
                    config.window,
                    tracer,
                    retry=RetryPolicy(attempts=MAX_JOB_ATTEMPTS),
                    read_timeout_s=read_timeout_s,
                    rng_seed=f"loadgen/{config.seed}/conn/{i}",
                )
                for i, (share, stats) in enumerate(zip(shares, workers))
            )
        )
        main_seconds = time.perf_counter() - main_started
        kill_report = None
        if assassin is not None:
            kill_report = await assassin
            if kill_report is not None:
                await _await_restart(client)

        latencies = sorted(
            lat for stats in workers for lat in stats.latencies
        )
        errors = [err for stats in workers for err in stats.errors]
        mismatches = sum(stats.mismatches for stats in workers)
        busy = sum(stats.busy for stats in workers)
        valid = sum(stats.valid for stats in workers)
        invalid = sum(stats.invalid for stats in workers)
        reconnects = sum(stats.reconnects for stats in workers)
        deadline_errors = sum(stats.deadline_errors for stats in workers)
        worker_lost = sum(stats.worker_lost for stats in workers)

        # -- session phase: CL-AKA handshakes + MAC fast path -------------
        # Runs before the rekey check: handshake hellos are signed with
        # the enrollment-phase keys, which any rekey would invalidate.
        session_report = None
        if config.sessions:
            session_report = await _session_phase(
                host, port, client, identities, keys, config
            )

        # -- rekey invalidation check -------------------------------------
        rekey_report = None
        if config.rekey_check:
            rekey_report = await _rekey_check(client)

        stats_doc = await client.stats()
        cache = stats_doc["cache"]
        pool_doc = stats_doc.get("pool")
        chaotic = proxy is not None
        answered = valid + invalid
        error_rate = len(errors) / max(1, config.requests)
        checks = {
            # a request may fail; it may never lie
            "verdicts_exact": mismatches == 0,
            "all_accounted": answered + len(errors) == config.requests,
            "error_budget": (
                error_rate <= config.error_budget if chaotic else not errors
            ),
            "cache_bounded": (
                cache["pairing"]["peak_size"] <= config.cache_size
                and cache["miller"]["peak_size"] <= config.cache_size
            ),
            "evictions_seen": (
                # A zipf-skewed run concentrates on few identities by
                # design, and a run whose windows folded cross-signer
                # batches skips the per-identity pairing cache for every
                # anchored verify; the cache-pressure demo only binds on
                # uniform per-item sweeps that visit every identity.
                config.zipf is not None
                or stats_doc["counters"].get("cross_signer_folds", 0) > 0
                or config.identities
                <= config.cache_size * max(1, config.workers)
                or cache["miller"]["evictions"] > 0
            ),
            "rekey": rekey_report is None or rekey_report["ok"],
            "worker_restarted": (
                kill_report is None
                or (
                    pool_doc is not None
                    and pool_doc["supervisor"]["restarts"] >= 1
                )
            ),
        }
        if session_report is not None:
            pairings = session_report["fast_path_pairings"]
            checks["session_zero_pairings"] = (
                pairings["miller_loops"] == 0 and pairings["final_exps"] == 0
            )
            checks["session_fast_path_clean"] = (
                session_report["invalid"] == 0
                and session_report["errors"] == 0
                and session_report["valid"] == session_report["requests"]
            )
            # the whole point of the MAC fast path: it must beat the
            # pairing-based verify phase by a wide margin
            checks["session_speedup"] = session_report[
                "throughput_rps"
            ] >= 3.0 * (config.requests / main_seconds)
            checks["session_rekey_rehandshake"] = (
                session_report["rekey"]["first_rejected"]
                and session_report["rekey"]["rehandshake_verify_ok"]
                and session_report["rekey"]["sessions_killed"] >= 1
            )
        result = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "generated_at": datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            "backend": backend_name,
            #: headline number dashboards key on without digging into
            #: the verify section
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "config": asdict(config),
            "enroll": {
                "identities": config.identities,
                "seconds": round(enroll_seconds, 3),
                "per_second": round(config.identities / enroll_seconds, 1),
            },
            "verify": {
                "requests": config.requests,
                "seconds": round(main_seconds, 3),
                "throughput_rps": round(config.requests / main_seconds, 1),
                "valid": valid,
                "invalid": invalid,
                "busy_retries": busy,
                "verdict_mismatches": mismatches,
                "connection_errors": len(errors),
                "reconnects": reconnects,
                "deadline_errors": deadline_errors,
                "worker_lost_errors": worker_lost,
                "deadline_expirations": stats_doc["counters"].get(
                    "deadline_expirations", 0
                ),
                "error_samples": errors[:5],
                "latency_ms": {
                    "p50": round(_percentile(latencies, 0.50) * 1e3, 3),
                    "p90": round(_percentile(latencies, 0.90) * 1e3, 3),
                    "p95": round(_percentile(latencies, 0.95) * 1e3, 3),
                    "p99": round(_percentile(latencies, 0.99) * 1e3, 3),
                    "max": round(latencies[-1] * 1e3, 3) if latencies else 0.0,
                },
            },
            "batch": {
                "cross_signer_folds": stats_doc["counters"].get(
                    "cross_signer_folds", 0
                ),
                "cross_signer_requests": stats_doc["counters"].get(
                    "cross_signer_requests", 0
                ),
                "bisections": stats_doc["counters"].get("cross_bisections", 0),
                "fold_size": stats_doc.get("batch", {}).get("fold_size"),
            },
            "cache": cache,
            "server_counters": stats_doc["counters"],
            "server_latency_ms": stats_doc.get("latency_ms"),
            "pool": pool_doc,
            "chaos": (
                {
                    "plan": chaos_plan.to_spec(),
                    "injected": proxy.summary(),
                    "error_rate": round(error_rate, 5),
                }
                if chaotic
                else None
            ),
            "worker_kill": kill_report,
            "trace": (
                {"path": config.trace_out, "spans": sink.emitted}
                if sink.enabled
                else None
            ),
            "rekey": rekey_report,
            "session": session_report,
            "checks": checks,
            "ok": all(checks.values()),
        }
        return result
    finally:
        await client.close()
        if proxy is not None:
            await proxy.stop()
        if gateway is not None:
            await gateway.stop()
        if sink is not NULL_EVENT_SINK:
            sink.close()


async def _kill_one_worker(
    gateway: VerificationGateway, after_s: float
) -> Optional[Dict]:
    """SIGKILL the first ready worker ``after_s`` into the main phase."""
    await asyncio.sleep(after_s)
    pool = gateway.pool
    if pool is None:
        return None
    for handle in pool.handles():
        if handle.state == "ready" and handle.process is not None:
            pid = handle.pid
            handle.process.kill()
            return {"worker": handle.index, "pid": pid, "after_s": after_s}
    return None


async def _await_restart(client: ServiceClient, timeout_s: float = 5.0) -> None:
    """Give the supervisor a moment to restart the murdered worker."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        stats_doc = await client.stats()
        pool_doc = stats_doc.get("pool")
        if pool_doc is not None and pool_doc["supervisor"]["restarts"] >= 1:
            return
        await asyncio.sleep(0.1)


async def _rekey_check(client: ServiceClient) -> Dict:
    """Post-rekey, a fresh verify must miss the cache once, then hit."""
    await client.rekey()
    probe_keys = await client.enroll("rekey-probe")
    message = b"post-rekey probe"
    signature = client.sign(message, probe_keys)

    def misses(doc):
        return doc["cache"]["miller"]["misses"] + doc["cache"]["pairing"]["misses"]

    def hits(doc):
        return doc["cache"]["miller"]["hits"] + doc["cache"]["pairing"]["hits"]

    before = await client.stats()
    first_ok = await client.verify(
        "rekey-probe", probe_keys.public_key, message, signature
    )
    after_first = await client.stats()
    second_ok = await client.verify(
        "rekey-probe", probe_keys.public_key, message, signature
    )
    after_second = await client.stats()

    first_misses = misses(after_first) - misses(before)
    first_hits = hits(after_first) - hits(before)
    second_misses = misses(after_second) - misses(after_first)
    second_hits = hits(after_second) - hits(after_first)
    return {
        "post_rekey_verify_ok": bool(first_ok and second_ok),
        "first_verify": {"misses": first_misses, "hits": first_hits},
        "second_verify": {"misses": second_misses, "hits": second_hits},
        "ok": bool(
            first_ok
            and second_ok
            and first_misses == 1
            and first_hits == 0
            and second_misses == 0
            and second_hits == 1
        ),
    }


def run_loadgen(config: LoadgenConfig) -> Dict:
    """Execute one load run and (optionally) write the BENCH file."""
    result = asyncio.run(_run(config))
    if config.out:
        path = Path(config.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2) + "\n")
    return result


def summary_lines(result: Dict) -> List[str]:
    """Human-readable digest of one load run."""
    verify = result["verify"]
    cache = result["cache"]
    lines = [
        f"backend: {result.get('backend', 'unspecified')}",
        f"verify: {verify['requests']} requests in {verify['seconds']}s "
        f"({verify['throughput_rps']} req/s)",
        f"latency ms: p50={verify['latency_ms']['p50']} "
        f"p90={verify['latency_ms']['p90']} "
        f"p95={verify['latency_ms'].get('p95', 0.0)} "
        f"p99={verify['latency_ms']['p99']}",
        f"verdicts: {verify['valid']} valid, {verify['invalid']} invalid, "
        f"{verify['busy_retries']} busy retries, "
        f"{verify['connection_errors']} connection errors",
        f"miller cache: peak {cache['miller']['peak_size']}/"
        f"{result['config']['cache_size']}, "
        f"{cache['miller']['evictions']} evictions",
    ]
    batch = result.get("batch")
    if batch and batch.get("cross_signer_folds"):
        lines.append(
            f"cross-signer: {batch['cross_signer_folds']} folds over "
            f"{batch['cross_signer_requests']} requests, "
            f"{batch['bisections']} bisections"
        )
    pool = result.get("pool")
    if pool:
        supervisor = pool["supervisor"]
        ready = sum(1 for w in pool["workers"] if w["state"] == "ready")
        lines.append(
            f"workers: {ready}/{pool['size']} ready, "
            f"{supervisor['restarts']} restarts "
            f"({supervisor['crashes']} crashes, {supervisor['hangs']} hangs, "
            f"{supervisor['job_timeouts']} job timeouts)"
        )
    chaos = result.get("chaos")
    if chaos:
        injected = chaos["injected"]
        lines.append(
            f"chaos: {injected['resets']} resets, "
            f"{injected['truncations']} truncations, "
            f"{injected['stalls']} stalls over "
            f"{injected['forwarded_frames']} forwarded frames; "
            f"error rate {chaos['error_rate']:.4f} "
            f"(budget {result['config']['error_budget']})"
        )
    if result.get("worker_kill"):
        kill = result["worker_kill"]
        lines.append(
            f"worker kill: worker {kill['worker']} (pid {kill['pid']}) "
            f"SIGKILLed {kill['after_s']}s into the run"
        )
    if result.get("session"):
        session = result["session"]
        pairings = session["fast_path_pairings"]
        lines.append(
            f"session: {session['handshakes']} handshakes in "
            f"{session['handshake_seconds']}s, then {session['requests']} "
            f"fast verifies in {session['seconds']}s "
            f"({session['throughput_rps']} req/s, "
            f"{pairings['miller_loops']} miller loops, "
            f"{pairings['final_exps']} final exps)"
        )
        lines.append(
            f"session rekey: first_rejected={session['rekey']['first_rejected']} "
            f"rehandshake_ok={session['rekey']['rehandshake_verify_ok']} "
            f"killed={session['rekey']['sessions_killed']}"
        )
    if result.get("trace"):
        lines.append(
            f"trace: {result['trace']['spans']} spans -> "
            f"{result['trace']['path']}"
        )
    if result.get("rekey"):
        rekey = result["rekey"]
        lines.append(
            "rekey: first verify "
            f"misses={rekey['first_verify']['misses']} "
            f"hits={rekey['first_verify']['hits']}; second verify "
            f"misses={rekey['second_verify']['misses']} "
            f"hits={rekey['second_verify']['hits']}"
        )
    if not result["ok"]:
        failed = [name for name, passed in result["checks"].items() if not passed]
        lines.append(f"failed checks: {', '.join(failed)}")
    lines.append(f"result: {'OK' if result['ok'] else 'FAILED'}")
    return lines
