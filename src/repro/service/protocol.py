"""Wire protocol of the verification gateway.

Framing: every message (request or reply) is one frame -

    [4-byte big-endian body length][body]

capped at :data:`MAX_FRAME`.  A request body is ``[opcode][payload]``, a
reply body is ``[status][payload]``.  Requests on one connection are
answered strictly in order, so clients may pipeline without tagging.

Payloads reuse :mod:`repro.core.serialization` wherever key material
crosses the wire (identities, points, scalars, signatures); the
parameter-shaped replies (PARAMS/REKEY/STATS) are UTF-8 JSON, mirroring
the keystore's curve document so a client can reconstruct the exact
curve.  Every decoder in this module is *total* over hostile bytes:
malformed input raises :class:`~repro.errors.SerializationError`, never
an unhandled decoder error - the server turns those into clean ERR
replies and keeps the connection alive.
"""

from __future__ import annotations

import enum
import json
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.mccls import McCLSSignature
from repro.core.session import (
    KEY_BYTES,
    MAC_BYTES,
    SESSION_ID_BYTES,
    SessionAccept,
    SessionHello,
)
from repro.core.serialization import (
    decode_g1,
    decode_g2,
    decode_identity,
    decode_mccls_signature,
    decode_scalar,
    encode_g1,
    encode_g2,
    encode_identity,
    encode_mccls_signature,
    encode_scalar,
)
from repro.errors import SerializationError
from repro.pairing.bn import BNCurve, bn254, derive_bn_curve
from repro.pairing.curve import CurvePoint
from repro.schemes.base import PartialPrivateKey, UserKeyPair

#: hard cap on one frame's body (requests and replies alike)
MAX_FRAME = 1 << 20

#: opcode-byte flag marking a request that carries a trace id header
TRACE_FLAG = 0x80

#: opcode-byte flag marking a request that carries a deadline header
DEADLINE_FLAG = 0x40

#: upper bound on one request's deadline budget (u32 milliseconds)
MAX_DEADLINE_MS = 0xFFFFFFFF

_LEN = struct.Struct("!I")
_MSGLEN = struct.Struct("!H")
_TRACE = struct.Struct("!Q")
_DEADLINE = struct.Struct("!I")


class Opcode(enum.IntEnum):
    """Request kinds the gateway serves."""

    PING = 1
    PARAMS = 2
    ENROLL = 3
    VERIFY = 4
    REKEY = 5
    STATS = 6
    METRICS = 7
    SESSION = 8
    VERIFY_FAST = 9


class Status(enum.IntEnum):
    """First byte of every reply body."""

    OK = 0
    ERR = 1
    BUSY = 2


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(body: bytes) -> bytes:
    """Length-prefix one message body."""
    if len(body) > MAX_FRAME:
        raise SerializationError(
            f"frame body of {len(body)} bytes exceeds the {MAX_FRAME} cap"
        )
    return _LEN.pack(len(body)) + body


def frame_length(header: bytes) -> int:
    """Parse the 4-byte length prefix; rejects oversized declarations."""
    if len(header) != _LEN.size:
        raise SerializationError("truncated frame header")
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise SerializationError(
            f"declared frame of {length} bytes exceeds the {MAX_FRAME} cap"
        )
    return length


# ---------------------------------------------------------------------------
# Request / reply envelopes
# ---------------------------------------------------------------------------


def encode_request(
    opcode: Opcode,
    payload: bytes = b"",
    trace_id: Optional[int] = None,
    deadline_ms: Optional[int] = None,
) -> bytes:
    """``[opcode][headers][payload]`` request body.

    With a ``trace_id``, the opcode byte carries :data:`TRACE_FLAG` and an
    8-byte big-endian trace id header precedes the payload, so one verify
    can be followed client -> queue -> batch -> pairing in span traces.
    With a ``deadline_ms``, the opcode byte carries :data:`DEADLINE_FLAG`
    and a 4-byte big-endian millisecond budget follows the trace header
    (if any): the server sheds the request with ``ERR deadline`` once the
    budget has elapsed instead of burning a pairing on a reply nobody is
    waiting for.  Requests without either flag are unchanged - old
    clients keep working.
    """
    first = int(opcode)
    headers = b""
    if trace_id is not None:
        if not 0 < trace_id < 1 << 64:
            raise SerializationError(f"trace id {trace_id} does not fit u64")
        first |= TRACE_FLAG
        headers += _TRACE.pack(trace_id)
    if deadline_ms is not None:
        if not 0 < deadline_ms <= MAX_DEADLINE_MS:
            raise SerializationError(
                f"deadline of {deadline_ms} ms does not fit u32 (or is 0)"
            )
        first |= DEADLINE_FLAG
        headers += _DEADLINE.pack(deadline_ms)
    return bytes([first]) + headers + payload


def decode_request(
    body: bytes,
) -> Tuple[Opcode, bytes, Optional[int], Optional[int]]:
    """Split a request body into (opcode, payload, trace id, deadline ms).

    Both headers are tolerated-absent: bodies from clients that never set
    :data:`TRACE_FLAG` / :data:`DEADLINE_FLAG` decode exactly as before
    (the last two tuple slots are ``None``).  Unknown opcodes and
    truncated headers are decode errors.
    """
    if not body:
        raise SerializationError("empty request body")
    first, rest, trace_id, deadline_ms = body[0], body[1:], None, None
    if first & TRACE_FLAG:
        first ^= TRACE_FLAG
        if len(rest) < _TRACE.size:
            raise SerializationError("truncated trace id header")
        (trace_id,) = _TRACE.unpack(rest[: _TRACE.size])
        rest = rest[_TRACE.size :]
        if trace_id == 0:
            raise SerializationError("trace id 0 is reserved")
    if first & DEADLINE_FLAG:
        first ^= DEADLINE_FLAG
        if len(rest) < _DEADLINE.size:
            raise SerializationError("truncated deadline header")
        (deadline_ms,) = _DEADLINE.unpack(rest[: _DEADLINE.size])
        rest = rest[_DEADLINE.size :]
        if deadline_ms == 0:
            raise SerializationError("deadline 0 is reserved")
    try:
        opcode = Opcode(first)
    except ValueError:
        raise SerializationError(f"unknown opcode {first}") from None
    return opcode, rest, trace_id, deadline_ms


def encode_reply(status: Status, payload: bytes = b"") -> bytes:
    """``[status][payload]`` reply body."""
    return bytes([status]) + payload


def decode_reply(body: bytes) -> Tuple[Status, bytes]:
    """Split a reply body; unknown statuses are a decode error."""
    if not body:
        raise SerializationError("empty reply body")
    try:
        status = Status(body[0])
    except ValueError:
        raise SerializationError(f"unknown reply status {body[0]}") from None
    return status, body[1:]


def error_reply(message: str) -> bytes:
    """An ERR reply carrying a UTF-8 diagnostic."""
    return encode_reply(Status.ERR, message.encode("utf-8"))


# ---------------------------------------------------------------------------
# VERIFY
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VerifyRequest:
    """One decoded verification request."""

    identity: str
    public_key: CurvePoint
    message: bytes
    signature: McCLSSignature


def encode_verify_payload(
    curve: BNCurve,
    identity: str,
    public_key: CurvePoint,
    message: bytes,
    signature: McCLSSignature,
) -> bytes:
    """identity || P_ID || len(message) || message || sigma."""
    if len(message) > 0xFFFF:
        raise SerializationError("message too long for one verify request")
    return (
        encode_identity(identity)
        + encode_g1(curve, public_key)
        + _MSGLEN.pack(len(message))
        + message
        + encode_mccls_signature(curve, signature)
    )


def decode_verify_payload(curve: BNCurve, payload: bytes) -> VerifyRequest:
    """Decode (and curve-validate) one verify request payload."""
    identity, rest = decode_identity(payload)
    public_key, rest = decode_g1(curve, rest)
    if len(rest) < _MSGLEN.size:
        raise SerializationError("truncated message length")
    (msg_len,) = _MSGLEN.unpack(rest[: _MSGLEN.size])
    rest = rest[_MSGLEN.size :]
    if len(rest) < msg_len:
        raise SerializationError("truncated message")
    message, rest = rest[:msg_len], rest[msg_len:]
    signature = decode_mccls_signature(curve, rest)  # rejects trailing bytes
    return VerifyRequest(
        identity=identity,
        public_key=public_key,
        message=message,
        signature=signature,
    )


def split_verify_payload(curve: BNCurve, payload: bytes) -> Tuple[str, bytes]:
    """Cheap structural split of a verify payload: (identity, P_ID blob).

    Used by the worker pool to pick a routing key (identity affinity keeps
    each worker's pairing caches hot) without paying the full decode - no
    curve membership checks run here; workers re-decode with validation
    before any arithmetic touches the bytes.  Truncation is still a
    decode error so hostile frames cannot reach the pool.
    """
    identity, rest = decode_identity(payload)
    pk_size = 1 + 2 * ((curve.p.bit_length() + 7) // 8)  # tag + x + y
    if len(rest) < pk_size:
        raise SerializationError("truncated public key")
    return identity, rest[:pk_size]


def verify_reply(valid: bool) -> bytes:
    """OK reply carrying the boolean verdict."""
    return encode_reply(Status.OK, b"\x01" if valid else b"\x00")


def decode_verify_verdict(payload: bytes) -> bool:
    """Parse an OK verify reply's verdict byte."""
    if payload not in (b"\x00", b"\x01"):
        raise SerializationError("malformed verify verdict")
    return payload == b"\x01"


# ---------------------------------------------------------------------------
# ENROLL
# ---------------------------------------------------------------------------


def encode_enroll_payload(identity: str) -> bytes:
    """The enroll request payload is just the identity."""
    return encode_identity(identity)


def decode_enroll_payload(payload: bytes) -> str:
    """Decode an enroll payload; trailing bytes are a decode error."""
    identity, rest = decode_identity(payload)
    if rest:
        raise SerializationError(
            f"{len(rest)} trailing bytes after enroll identity"
        )
    return identity


def encode_user_keys(curve: BNCurve, keys: UserKeyPair) -> bytes:
    """Full issued key material: identity || x || P_ID || Q_ID || D_ID.

    This is the KGC handing a client its private material - the paper
    assumes out-of-band provisioning; a production gateway would wrap
    this frame in an authenticated transport.
    """
    return (
        encode_identity(keys.identity)
        + encode_scalar(curve, keys.secret_value)
        + encode_g1(curve, keys.public_key)
        + encode_g2(curve, keys.partial.q_id)
        + encode_g2(curve, keys.partial.d_id)
    )


def decode_user_keys(curve: BNCurve, payload: bytes) -> UserKeyPair:
    """Decode an enroll reply back into a usable key pair."""
    identity, rest = decode_identity(payload)
    secret_value, rest = decode_scalar(curve, rest)
    public_key, rest = decode_g1(curve, rest)
    q_id, rest = decode_g2(curve, rest)
    d_id, rest = decode_g2(curve, rest)
    if rest:
        raise SerializationError(
            f"{len(rest)} trailing bytes after enrolled keys"
        )
    return UserKeyPair(
        identity=identity,
        secret_value=secret_value,
        public_key=public_key,
        partial=PartialPrivateKey(identity=identity, q_id=q_id, d_id=d_id),
    )


# ---------------------------------------------------------------------------
# SESSION / VERIFY_FAST (the pairing-free fast path)
# ---------------------------------------------------------------------------

_SEQ = struct.Struct("!Q")


@dataclass(frozen=True)
class FastVerifyRequest:
    """One decoded MAC-authenticated fast-path request."""

    identity: str
    session_id: bytes
    seq: int
    message: bytes
    mac: bytes


def session_hello_auth_bytes(curve: BNCurve, hello: SessionHello) -> bytes:
    """The transcript the client's McCLS signature covers.

    Binding identity, static key and ephemeral into the bootstrap
    signature stops an attacker from splicing its own ephemeral into an
    honest client's handshake.
    """
    return (
        b"session-hello:"
        + encode_identity(hello.identity)
        + encode_g1(curve, hello.client_pub)
        + encode_g1(curve, hello.ephemeral)
    )


def encode_session_payload(
    curve: BNCurve, hello: SessionHello, signature: McCLSSignature
) -> bytes:
    """identity || P_C || T_C || McCLS signature over the hello transcript."""
    return (
        encode_identity(hello.identity)
        + encode_g1(curve, hello.client_pub)
        + encode_g1(curve, hello.ephemeral)
        + encode_mccls_signature(curve, signature)
    )


def decode_session_payload(
    curve: BNCurve, payload: bytes
) -> Tuple[SessionHello, McCLSSignature]:
    """Decode (and curve-validate) one SESSION request payload."""
    identity, rest = decode_identity(payload)
    client_pub, rest = decode_g1(curve, rest)
    ephemeral, rest = decode_g1(curve, rest)
    signature = decode_mccls_signature(curve, rest)  # rejects trailing bytes
    return (
        SessionHello(
            identity=identity, client_pub=client_pub, ephemeral=ephemeral
        ),
        signature,
    )


def encode_session_accept(curve: BNCurve, accept: SessionAccept) -> bytes:
    """The OK SESSION reply payload (message 2 of the handshake)."""
    if len(accept.confirm) != KEY_BYTES:
        raise SerializationError("confirmation tag must be 32 bytes")
    return (
        encode_identity(accept.gateway_identity)
        + encode_g1(curve, accept.gateway_pub)
        + encode_g1(curve, accept.gateway_r_pub)
        + encode_g1(curve, accept.ephemeral)
        + encode_g1(curve, accept.client_r_pub)
        + encode_scalar(curve, accept.client_d)
        + accept.confirm
    )


def decode_session_accept(curve: BNCurve, payload: bytes) -> SessionAccept:
    """Decode a SESSION reply back into the handshake's second message."""
    gateway_identity, rest = decode_identity(payload)
    gateway_pub, rest = decode_g1(curve, rest)
    gateway_r_pub, rest = decode_g1(curve, rest)
    ephemeral, rest = decode_g1(curve, rest)
    client_r_pub, rest = decode_g1(curve, rest)
    client_d, rest = decode_scalar(curve, rest)
    if len(rest) != KEY_BYTES:
        raise SerializationError("malformed session confirmation tag")
    return SessionAccept(
        gateway_identity=gateway_identity,
        gateway_pub=gateway_pub,
        gateway_r_pub=gateway_r_pub,
        ephemeral=ephemeral,
        client_r_pub=client_r_pub,
        client_d=client_d,
        confirm=rest,
    )


def fast_verify_mac_bytes(
    session_id: bytes, seq: int, identity: str, message: bytes
) -> Tuple[bytes, ...]:
    """The chunks a fast-path MAC covers, in canonical order."""
    return (session_id, _SEQ.pack(seq), identity.encode("utf-8"), message)


def encode_verify_fast_payload(
    identity: str, session_id: bytes, seq: int, message: bytes, mac: bytes
) -> bytes:
    """identity || session_id || seq || len(message) || message || mac."""
    if len(session_id) != SESSION_ID_BYTES:
        raise SerializationError("session id must be 16 bytes")
    if len(mac) != MAC_BYTES:
        raise SerializationError("fast-path MAC must be 32 bytes")
    if len(message) > 0xFFFF:
        raise SerializationError("message too long for one fast verify")
    return (
        encode_identity(identity)
        + session_id
        + _SEQ.pack(seq)
        + _MSGLEN.pack(len(message))
        + message
        + mac
    )


def decode_verify_fast_payload(payload: bytes) -> FastVerifyRequest:
    """Total decode of one VERIFY_FAST request payload."""
    identity, rest = decode_identity(payload)
    if len(rest) < SESSION_ID_BYTES + _SEQ.size + _MSGLEN.size:
        raise SerializationError("truncated fast-verify payload")
    session_id, rest = rest[:SESSION_ID_BYTES], rest[SESSION_ID_BYTES:]
    (seq,) = _SEQ.unpack(rest[: _SEQ.size])
    rest = rest[_SEQ.size :]
    (msg_len,) = _MSGLEN.unpack(rest[: _MSGLEN.size])
    rest = rest[_MSGLEN.size :]
    if len(rest) != msg_len + MAC_BYTES:
        raise SerializationError("malformed fast-verify payload")
    message, mac = rest[:msg_len], rest[msg_len:]
    return FastVerifyRequest(
        identity=identity,
        session_id=session_id,
        seq=seq,
        message=message,
        mac=mac,
    )


def split_verify_fast_payload(payload: bytes) -> str:
    """Cheap routing split: the identity prefix of a fast-verify payload."""
    identity, rest = decode_identity(payload)
    if len(rest) < SESSION_ID_BYTES + _SEQ.size + _MSGLEN.size + MAC_BYTES:
        raise SerializationError("truncated fast-verify payload")
    return identity


#: the ERR diagnostic a gateway sends when a fast-path session is not in
#: its table (expired, evicted, or killed by REKEY) - clients match on
#: this to re-handshake instead of failing the request
UNKNOWN_SESSION = "unknown session"


# ---------------------------------------------------------------------------
# PARAMS / STATS (JSON payloads)
# ---------------------------------------------------------------------------


def encode_json_payload(document: dict) -> bytes:
    """Compact UTF-8 JSON payload."""
    return json.dumps(document, sort_keys=True).encode("utf-8")


def decode_json_payload(payload: bytes) -> dict:
    """Total JSON decode: malformed bytes raise SerializationError."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SerializationError(f"malformed JSON payload: {exc}") from None
    if not isinstance(document, dict):
        raise SerializationError("JSON payload must be an object")
    return document


def decode_metrics_payload(payload: bytes) -> str:
    """The METRICS reply body: UTF-8 Prometheus text exposition."""
    try:
        return payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SerializationError(f"malformed METRICS payload: {exc}") from None


def params_document(
    scheme_name: str, curve: BNCurve, p_pub_g1, p_pub_g2, backend: str = ""
) -> dict:
    """The PARAMS/REKEY reply: everything a verifier-view client needs.

    ``backend`` advertises the gateway's field backend so clients and
    spawned workers can match it; empty means unspecified (pre-backend
    peers), which clients treat as the default precedence.
    """
    document = {
        "scheme": scheme_name,
        "curve": {"name": curve.name, "t": str(curve.t)},
        "order": hex(curve.n),
        "p_pub_g1": encode_g1(curve, p_pub_g1).hex(),
        "p_pub_g2": encode_g2(curve, p_pub_g2).hex(),
    }
    if backend:
        document["backend"] = backend
    return document


def curve_from_params(document: dict, backend=None) -> BNCurve:
    """Reconstruct the gateway's curve from a PARAMS reply.

    Mirrors the keystore's curve document: BN254 by name, generated test
    curves by their BN parameter ``t``.  The field backend is taken from
    ``backend`` when given, else from the document's advertised backend,
    else the usual env/default precedence.
    """
    try:
        spec = document["curve"]
        name = spec.get("name", "")
        if backend is None:
            backend = document.get("backend") or None
        if name == "bn254":
            return bn254(backend=backend)
        return derive_bn_curve(int(spec["t"]), name=name, backend=backend)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed curve document: {exc}") from None


def p_pub_from_params(curve: BNCurve, document: dict):
    """Decode (P_pub in G1, P_pub in G2) from a PARAMS reply."""
    try:
        g1_blob = bytes.fromhex(document["p_pub_g1"])
        g2_blob = bytes.fromhex(document["p_pub_g2"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed P_pub encoding: {exc}") from None
    p_pub_g1, rest1 = decode_g1(curve, g1_blob)
    p_pub_g2, rest2 = decode_g2(curve, g2_blob)
    if rest1 or rest2:
        raise SerializationError("trailing bytes after P_pub point")
    return p_pub_g1, p_pub_g2
