"""Supervised crypto worker pool for the verification gateway.

The gateway's pairings are pure CPU; on the event loop they serialise
every connection behind one slow verify.  This module moves them into a
pool of **worker processes**, each holding a verifier view of the scheme
(public params only - the KGC master secret never crosses the process
boundary) plus its own bounded pairing caches:

* **Identity-affinity routing.**  A same-signer group is routed by
  ``crc32(identity) % size``, so one worker's Miller/GT/comb caches stay
  hot for its identity partition instead of every worker thrashing over
  the whole key population.  When the affine worker is dead or
  restarting, the group falls over to another live worker (correctness
  never depends on affinity).

* **Crash/hang containment.**  Each worker is watched by the
  :class:`~repro.service.supervisor.WorkerSupervisor`: process exits and
  pipe EOFs surface immediately, heartbeats catch silent hangs, and a
  per-job deadline bounds poisoned requests.  A lost worker fails its
  in-flight jobs with :class:`~repro.errors.WorkerLostError` - the
  gateway turns those into clean ``ERR`` replies, **never a hung
  future** - and is respawned under jittered backoff.

* **Rekey propagation.**  :meth:`VerifyWorkerPool.broadcast_params`
  ships the post-rekey params document to every live worker; the pipe's
  FIFO ordering guarantees any job submitted afterwards verifies under
  the new master public key.  Workers report *cumulative* cache stats
  across param generations, so invalidation probes (miss-once-then-hit)
  keep working through the pool.

Wire format parent -> worker (pickled tuples over a duplex pipe):
``("job", id, [payload, ...])`` (same-signer group),
``("job", id, [payload, ...], "cross")`` (a mixed-signer window folded
by :meth:`~repro.core.batch.McCLSBatchVerifier.verify_cross_signer`) or
``("job", id, [payload, ...], "fast")`` (MAC-authenticated fast-path
requests validated against the worker's session shard),
``("session", session_id, key, identity)`` (install one established
fast-path session; the gateway sends it to the identity's shard owner),
``("params", doc)`` (which also clears the worker's session shard - a
rekey kills every session key), ``("ping", seq)``, ``("sleep",
seconds)`` (a chaos/test hook simulating a hard hang) and ``("stop",)``.
Worker -> parent: ``("ready", pid)``, ``("pong", seq)``,
``("done", id, results, pairing_s, fallback, cache_stats, fold_stats)``
(``fold_stats`` is ``None`` for same-signer and fast jobs) and
``("failed", id, detail)``.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import time
import zlib
from typing import Dict, List, Optional, Tuple

from repro.core.batch import McCLSBatchVerifier
from repro.core.session import EstablishedSession
from repro.errors import ReproError, ServiceError, WorkerLostError
from repro.service import protocol
from repro.service.supervisor import RestartBackoff, WorkerSupervisor

#: one item's verdict from a worker: ("ok", bool) or ("err", detail)
ItemResult = Tuple[str, object]


def merge_cache_stats(*stats: Dict[str, Dict[str, int]]) -> Dict[str, Dict[str, int]]:
    """Merge per-context cache accounting documents.

    Monotonic counters (hits/misses/evictions) add; ``peak_size`` takes
    the max (every context respected its own bound, so the max is the
    honest "worst cache pressure seen anywhere"); ``size``/``maxsize``
    come from the last document naming them.  The ``fixed_bases`` entry's
    ``pinned``/``evictable`` populations add: each context pins its own
    copy of the system bases, so the merged document reports the total
    number of tables held across the deployment.
    """
    merged: Dict[str, Dict[str, int]] = {}
    for document in stats:
        for name, entry in document.items():
            into = merged.setdefault(name, {})
            for key in ("hits", "misses", "evictions", "pinned", "evictable"):
                if key in entry or key in into:
                    into[key] = into.get(key, 0) + entry.get(key, 0)
            into["peak_size"] = max(
                into.get("peak_size", 0), entry.get("peak_size", 0)
            )
            for key in ("size", "maxsize"):
                if key in entry:
                    into[key] = entry[key]
    return merged


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _verify_items(curve, view, batcher, payloads: List[bytes]):
    """Verdicts for one same-signer group of raw verify payloads.

    Returns (results, pairing_s, fallback): per-item ``("ok", bool)`` /
    ``("err", detail)`` results in order, the crypto seconds the group
    cost, and whether the aggregate check fell back to per-item work.
    """
    requests: List = []
    results: List[Optional[ItemResult]] = []
    for payload in payloads:
        try:
            request = protocol.decode_verify_payload(curve, payload)
        except ReproError as exc:
            results.append(("err", str(exc)))
            requests.append(None)
            continue
        results.append(None)
        requests.append(request)
    live = [r for r in requests if r is not None]
    started = time.perf_counter()
    fallback = False

    def verify_one(request) -> ItemResult:
        try:
            return (
                "ok",
                bool(
                    view.verify(
                        request.message,
                        request.signature,
                        request.identity,
                        request.public_key,
                    )
                ),
            )
        except (ReproError, ValueError, ZeroDivisionError, ArithmeticError) as exc:
            return ("err", f"verification failed: {exc}")

    verdicts: Dict[int, ItemResult] = {}
    if len(live) > 1:
        # The anchored cross-signer fold subsumes the same-signer batch:
        # once this signer's anchor W = x*P is admitted, a warm group
        # settles with zero pairings (one fixed-base mult plus one MSM),
        # and a tampered item bisects down in pure G1 instead of forcing
        # a per-item pairing re-verification of the whole group.
        items = [
            (r.message, r.signature, r.identity, r.public_key)
            for r in live
        ]
        try:
            flags, _fold_stats = batcher.verify_cross_signer(items)
            for request, ok in zip(live, flags):
                verdicts[id(request)] = ("ok", bool(ok))
        except (ReproError, ValueError, ZeroDivisionError, ArithmeticError):
            fallback = True
    if not verdicts:
        for request in live:
            verdicts[id(request)] = verify_one(request)
    for index, request in enumerate(requests):
        if request is not None:
            results[index] = verdicts[id(request)]
    return results, time.perf_counter() - started, fallback


def _verify_items_cross(curve, view, batcher, payloads: List[bytes]):
    """Verdicts for one mixed-signer window of raw verify payloads.

    Returns (results, pairing_s, fallback, fold_stats): per-item results
    in payload order, the crypto seconds, whether the randomized fold had
    to be abandoned for exact per-item work, and the
    :meth:`~repro.core.batch.McCLSBatchVerifier.verify_cross_signer`
    accounting document (``folds``/``bisections``/...).
    """
    requests: List = []
    results: List[Optional[ItemResult]] = []
    for payload in payloads:
        try:
            request = protocol.decode_verify_payload(curve, payload)
        except ReproError as exc:
            results.append(("err", str(exc)))
            requests.append(None)
            continue
        results.append(None)
        requests.append(request)
    live = [r for r in requests if r is not None]
    started = time.perf_counter()
    fallback = False
    fold_stats: Dict[str, object] = {}
    verdicts: List[bool] = []
    if live:
        items = [
            (r.message, r.signature, r.identity, r.public_key) for r in live
        ]
        try:
            verdicts, fold_stats = batcher.verify_cross_signer(items)
        except (ReproError, ValueError, ZeroDivisionError, ArithmeticError):
            fallback = True
            verdicts = []
            for request in live:
                try:
                    verdicts.append(
                        bool(
                            view.verify(
                                request.message,
                                request.signature,
                                request.identity,
                                request.public_key,
                            )
                        )
                    )
                except (
                    ReproError, ValueError, ZeroDivisionError, ArithmeticError
                ):
                    verdicts.append(False)
    by_id = {id(r): ("ok", bool(v)) for r, v in zip(live, verdicts)}
    for index, request in enumerate(requests):
        if request is not None:
            results[index] = by_id[id(request)]
    return results, time.perf_counter() - started, fallback, fold_stats


def _verify_items_fast(sessions: Dict[bytes, List], payloads: List[bytes]):
    """Verdicts for one window of MAC-authenticated fast-path payloads.

    ``sessions`` maps session id -> ``[EstablishedSession, last_seq]``
    for the worker's identity shard.  No curve arithmetic runs here -
    session lookup, replay check, HMAC - so a warm fast path performs
    zero pairings anywhere in the deployment.
    """
    results: List[ItemResult] = []
    started = time.perf_counter()
    for payload in payloads:
        try:
            request = protocol.decode_verify_fast_payload(payload)
        except ReproError as exc:
            results.append(("err", str(exc)))
            continue
        entry = sessions.get(request.session_id)
        if entry is None or entry[0].client_identity != request.identity:
            results.append(("err", protocol.UNKNOWN_SESSION))
            continue
        session, last_seq = entry
        if request.seq <= last_seq:
            results.append(("ok", False))  # replayed sequence number
            continue
        if session.mac_ok(
            request.mac,
            *protocol.fast_verify_mac_bytes(
                request.session_id, request.seq, request.identity,
                request.message,
            ),
        ):
            entry[1] = request.seq
            results.append(("ok", True))
        else:
            results.append(("ok", False))
    return results, time.perf_counter() - started


def _worker_main(conn, params_doc: dict, cache_size: Optional[int]) -> None:
    """Worker process entry: build a verifier view, answer jobs forever.

    The params document carries the gateway's field-backend name
    (``backend`` key), so a spawn-started worker - which inherits no
    parent interpreter state - reconstructs its verifier view on the SAME
    backend the gateway selected, kernel compilation and all, rather than
    silently falling back to the env/default precedence.
    """
    # imported here so the docstring-level import graph stays acyclic
    from repro.service.client import build_verifier_view

    try:
        curve, view = build_verifier_view(params_doc, cache_size=cache_size)
        batcher = McCLSBatchVerifier(view)
        # this worker's session shard: session id -> [session, last_seq]
        sessions: Dict[bytes, List] = {}
        # cache accounting accumulated across params generations, so a
        # rekey (which rebuilds the context) does not reset the totals
        # the gateway's STATS report
        stats_base: Dict[str, Dict[str, int]] = {}
        conn.send(("ready", multiprocessing.current_process().pid))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "ping":
                conn.send(("pong", message[1]))
            elif kind == "params":
                stats_base = merge_cache_stats(
                    stats_base, view.ctx.cache_stats()
                )
                curve, view = build_verifier_view(
                    message[1], cache_size=cache_size
                )
                batcher = McCLSBatchVerifier(view)
                # a rekey invalidated every issued partial key, so every
                # session key derived from one dies with it
                sessions.clear()
                conn.send(("ready", multiprocessing.current_process().pid))
            elif kind == "session":
                _, session_id, key, identity = message
                sessions[session_id] = [
                    EstablishedSession(
                        session_id=session_id,
                        key=key,
                        client_identity=identity,
                        gateway_identity="",
                    ),
                    0,
                ]
            elif kind == "sleep":
                # chaos/test hook: a hard synchronous hang
                time.sleep(message[1])
            elif kind == "job":
                job_id, payloads = message[1], message[2]
                mode = message[3] if len(message) > 3 else "same"
                try:
                    fold_stats = None
                    if mode == "fast":
                        results, pairing_s = _verify_items_fast(
                            sessions, payloads
                        )
                        fallback = False
                    elif mode == "cross":
                        results, pairing_s, fallback, fold_stats = (
                            _verify_items_cross(curve, view, batcher, payloads)
                        )
                    else:
                        results, pairing_s, fallback = _verify_items(
                            curve, view, batcher, payloads
                        )
                    conn.send(
                        (
                            "done",
                            job_id,
                            results,
                            pairing_s,
                            fallback,
                            merge_cache_stats(
                                stats_base, view.ctx.cache_stats()
                            ),
                            fold_stats,
                        )
                    )
                except Exception as exc:  # total: one bad job != one worker
                    conn.send(
                        ("failed", job_id, f"{type(exc).__name__}: {exc}")
                    )
    except (EOFError, OSError, KeyboardInterrupt):
        return  # parent went away (or killed us): just exit


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """Parent-side view of one worker slot (survives restarts)."""

    def __init__(self, index: int):
        self.index = index
        self.generation = 0
        self.state = "dead"  # dead -> starting -> ready
        self.process = None
        self.conn = None
        self.pending: Dict[int, Tuple[asyncio.Future, float]] = {}
        self.started_at = 0.0
        self.last_pong = 0.0
        self.restarts = 0  # lifetime respawns (stats)
        self.crash_streak = 0  # consecutive losses (backoff level)
        self.restart_at: Optional[float] = None
        self.cache_stats: Dict[str, Dict[str, int]] = {}
        self.jobs_done = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def oldest_job_age(self, now: float) -> Optional[float]:
        """Age of the oldest in-flight job, or None when idle."""
        if not self.pending:
            return None
        return now - min(started for _fut, started in self.pending.values())


class VerifyWorkerPool:
    """A supervised pool of verifier-view worker processes."""

    def __init__(
        self,
        params_doc: dict,
        size: int,
        *,
        cache_size: Optional[int] = None,
        job_timeout_s: float = 30.0,
        heartbeat_interval_s: float = 0.25,
        heartbeat_timeout_s: float = 2.0,
        backoff: Optional[RestartBackoff] = None,
        start_timeout_s: float = 60.0,
        submit_wait_s: float = 2.0,
        seed: int = 0,
        mp_start_method: str = "spawn",
    ):
        if size < 1:
            raise ServiceError("worker pool needs size >= 1")
        self.params_doc = params_doc
        self.size = size
        self.cache_size = cache_size
        self.start_timeout_s = start_timeout_s
        self.submit_wait_s = submit_wait_s
        self.supervisor = WorkerSupervisor(
            self,
            heartbeat_interval_s=heartbeat_interval_s,
            heartbeat_timeout_s=heartbeat_timeout_s,
            job_timeout_s=job_timeout_s,
            backoff=backoff,
            seed=seed,
        )
        self.counters: Dict[str, int] = {
            "jobs_done": 0,
            "jobs_failed": 0,
            "worker_lost_jobs": 0,
        }
        self._ctx = multiprocessing.get_context(mp_start_method)
        self._handles = [_WorkerHandle(i) for i in range(size)]
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._supervise_task: Optional[asyncio.Task] = None
        self._ready_event: Optional[asyncio.Event] = None
        self._ping_seq = 0
        self._next_job_id = 0
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "VerifyWorkerPool":
        """Spawn every worker and wait until the pool can serve."""
        self._loop = asyncio.get_running_loop()
        self._ready_event = asyncio.Event()
        for handle in self._handles:
            self._spawn(handle)
        deadline = time.monotonic() + self.start_timeout_s
        while any(h.state != "ready" for h in self._handles):
            if time.monotonic() >= deadline:
                ready = sum(1 for h in self._handles if h.state == "ready")
                if ready == 0:
                    await self.stop()
                    raise ServiceError(
                        "worker pool failed to start: no worker became ready"
                    )
                break  # serve degraded; the supervisor keeps trying
            await asyncio.sleep(0.01)
        self._supervise_task = asyncio.create_task(self._supervise())
        return self

    async def stop(self) -> None:
        """Stop supervision, fail in-flight jobs, reap every worker."""
        if self._closed:
            return
        self._closed = True
        if self._supervise_task is not None:
            self._supervise_task.cancel()
            try:
                await self._supervise_task
            except asyncio.CancelledError:
                pass
            self._supervise_task = None
        for handle in self._handles:
            self._fail_pending(handle, "worker pool stopped")
            if handle.conn is not None:
                try:
                    handle.conn.send(("stop",))
                except (OSError, ValueError):
                    pass
            if handle.process is not None:
                handle.process.join(timeout=1.0)
                if handle.process.exitcode is None:
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
            if handle.conn is not None:
                handle.conn.close()
                handle.conn = None
            handle.state = "dead"

    # -- submission ---------------------------------------------------------
    async def submit(
        self, affinity_key: str, payloads: List[bytes]
    ) -> Tuple[List[ItemResult], float, bool]:
        """Verify one same-signer group on a worker.

        Returns (per-item results, pairing seconds, fallback flag);
        raises :class:`~repro.errors.WorkerLostError` when the owning
        worker dies or overruns its job deadline with this group in
        flight, and when no worker is live within ``submit_wait_s``.
        """
        results, pairing_s, fallback, _stats = await self._submit(
            affinity_key, payloads, "same"
        )
        return results, pairing_s, fallback

    async def submit_cross(
        self, affinity_key: str, payloads: List[bytes]
    ) -> Tuple[List[ItemResult], float, bool, Optional[dict]]:
        """Verify one mixed-signer window on a worker via the randomized
        cross-signer fold.

        ``affinity_key`` should be the dominant signer's identity so the
        worker holding that signer's hot caches does the fold.  Returns
        (per-item results, pairing seconds, fallback flag, fold stats);
        failure modes match :meth:`submit`.
        """
        return await self._submit(affinity_key, payloads, "cross")

    async def submit_fast(
        self, affinity_key: str, payloads: List[bytes]
    ) -> Tuple[List[ItemResult], float, bool]:
        """Validate one window of MAC-authenticated fast-path requests on
        the worker owning ``affinity_key``'s session shard.

        Returns (per-item results, crypto seconds, fallback flag); an
        item whose session the worker does not hold (restart, eviction,
        rekey) comes back as ``("err", UNKNOWN_SESSION)`` so the gateway
        tells that client to re-handshake.
        """
        results, crypto_s, fallback, _stats = await self._submit(
            affinity_key, payloads, "fast"
        )
        return results, crypto_s, fallback

    def install_session(self, session: EstablishedSession) -> None:
        """Hand one established session to its identity shard's worker.

        Best-effort: if the shard owner is dead the session is simply not
        installed anywhere, and the client's first fast request earns an
        ``unknown session`` error that drives a re-handshake (by which
        time a worker is back, or the same miss repeats harmlessly).
        """
        handle = self._route(session.client_identity)
        if handle is None or handle.conn is None:
            return
        try:
            handle.conn.send(
                (
                    "session",
                    session.session_id,
                    session.key,
                    session.client_identity,
                )
            )
        except (OSError, ValueError) as exc:
            self.declare_lost(handle, f"session send failed: {exc}")

    async def _submit(
        self, affinity_key: str, payloads: List[bytes], mode: str
    ) -> Tuple[List[ItemResult], float, bool, Optional[dict]]:
        if self._closed:
            raise WorkerLostError("worker pool is stopped")
        handle = await self._acquire(affinity_key)
        job_id = self._next_job_id
        self._next_job_id += 1
        future = self._loop.create_future()
        handle.pending[job_id] = (future, time.monotonic())
        try:
            handle.conn.send(("job", job_id, payloads, mode))
        except (OSError, ValueError) as exc:
            self.declare_lost(handle, f"pipe send failed: {exc}")
        return await future

    async def _acquire(self, affinity_key: str) -> _WorkerHandle:
        """The affine worker if it is ready, else any ready worker; waits
        up to ``submit_wait_s`` through a full-pool restart storm."""
        deadline = time.monotonic() + self.submit_wait_s
        while True:
            handle = self._route(affinity_key)
            if handle is not None:
                return handle
            if self._closed:
                raise WorkerLostError("worker pool is stopped")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerLostError(
                    "no live worker available (all crashed or restarting)"
                )
            self._ready_event.clear()
            try:
                await asyncio.wait_for(self._ready_event.wait(), remaining)
            except asyncio.TimeoutError:
                pass

    def shard_of(self, affinity_key: str) -> int:
        """Stable shard index an identity prefers (ignores liveness).

        The gateway uses this to split a mixed-signer window along worker
        ownership lines before submitting: every worker then only admits
        and anchors its own identity partition instead of each worker
        slowly learning the entire population.  Dead-worker fallback still
        happens per submit in :meth:`_route`.
        """
        return zlib.crc32(affinity_key.encode("utf-8")) % self.size

    def _route(self, affinity_key: str) -> Optional[_WorkerHandle]:
        digest = zlib.crc32(affinity_key.encode("utf-8"))
        preferred = self._handles[digest % self.size]
        if preferred.state == "ready":
            return preferred
        ready = [h for h in self._handles if h.state == "ready"]
        if not ready:
            return None
        return ready[digest % len(ready)]

    # -- worker plumbing ----------------------------------------------------
    def _spawn(self, handle: _WorkerHandle) -> None:
        """(Re)start one worker slot."""
        handle.generation += 1
        generation = handle.generation
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.params_doc, self.cache_size),
            daemon=True,
            name=f"repro-verify-worker-{handle.index}",
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.state = "starting"
        now = time.monotonic()
        handle.started_at = now
        handle.last_pong = now
        handle.restart_at = None
        handle.pending = {}
        threading.Thread(
            target=self._reader_loop,
            args=(handle, parent_conn, generation),
            daemon=True,
            name=f"repro-worker-reader-{handle.index}",
        ).start()

    def respawn(self, handle: _WorkerHandle) -> None:
        """Supervisor callback: bring a dead slot back."""
        if self._closed:
            return
        if handle.process is not None:
            handle.process.join(timeout=0.1)
        handle.restarts += 1
        self._spawn(handle)

    def _reader_loop(self, handle: _WorkerHandle, conn, generation: int) -> None:
        """Reader thread: one blocking recv loop per live worker pipe."""
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not self._post(self._on_message, handle, generation, message):
                return
        self._post(self._on_reader_eof, handle, generation)

    def _post(self, callback, *args) -> bool:
        """Schedule a callback on the loop thread (False once it is gone)."""
        try:
            self._loop.call_soon_threadsafe(callback, *args)
            return True
        except RuntimeError:
            return False  # event loop already closed (teardown)

    def _on_message(
        self, handle: _WorkerHandle, generation: int, message
    ) -> None:
        if generation != handle.generation or self._closed:
            return  # a previous incarnation's straggler
        kind = message[0]
        now = time.monotonic()
        if kind == "ready":
            handle.state = "ready"
            handle.last_pong = now
            handle.crash_streak = 0
            if self._ready_event is not None:
                self._ready_event.set()
        elif kind == "pong":
            handle.last_pong = now
        elif kind == "done":
            _, job_id, results, pairing_s, fallback, cache_stats, fold_stats = (
                message
            )
            handle.last_pong = now
            handle.cache_stats = cache_stats
            entry = handle.pending.pop(job_id, None)
            if entry is not None:
                future, _started = entry
                if not future.done():
                    handle.jobs_done += 1
                    self.counters["jobs_done"] += 1
                    future.set_result((results, pairing_s, fallback, fold_stats))
        elif kind == "failed":
            _, job_id, detail = message
            handle.last_pong = now
            entry = handle.pending.pop(job_id, None)
            if entry is not None:
                future, _started = entry
                if not future.done():
                    self.counters["jobs_failed"] += 1
                    future.set_exception(
                        ServiceError(f"worker job failed: {detail}")
                    )

    def _on_reader_eof(self, handle: _WorkerHandle, generation: int) -> None:
        if generation != handle.generation or self._closed:
            return
        self.declare_lost(handle, "worker pipe closed")

    def declare_lost(self, handle: _WorkerHandle, reason: str) -> None:
        """Mark a worker dead: fail its jobs, kill it, schedule respawn."""
        if handle.state == "dead" or self._closed:
            return
        handle.state = "dead"
        self.supervisor.note("lost", handle.index, reason=reason)
        self._fail_pending(handle, reason)
        if handle.process is not None and handle.process.exitcode is None:
            handle.process.terminate()
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None
        handle.crash_streak += 1
        handle.restart_at = time.monotonic() + self.supervisor.restart_delay_s(
            handle.crash_streak - 1
        )

    def _fail_pending(self, handle: _WorkerHandle, reason: str) -> None:
        pending, handle.pending = handle.pending, {}
        for future, _started in pending.values():
            if not future.done():
                self.counters["worker_lost_jobs"] += 1
                future.set_exception(WorkerLostError(f"worker lost: {reason}"))

    def ping(self, handle: _WorkerHandle) -> None:
        """Supervisor callback: heartbeat one ready worker."""
        self._ping_seq += 1
        try:
            handle.conn.send(("ping", self._ping_seq))
        except (OSError, ValueError) as exc:
            self.declare_lost(handle, f"heartbeat send failed: {exc}")

    async def _supervise(self) -> None:
        while True:
            await asyncio.sleep(self.supervisor.heartbeat_interval_s)
            self.supervisor.sweep(time.monotonic())

    # -- rekey / introspection ----------------------------------------------
    async def broadcast_params(self, params_doc: dict) -> None:
        """Ship a fresh params document to every live worker.

        Pipe FIFO ordering guarantees any job submitted after this call
        verifies under the new parameters; dead workers pick the new
        document up at respawn.
        """
        self.params_doc = params_doc
        for handle in self._handles:
            if handle.state == "dead" or handle.conn is None:
                continue
            try:
                handle.conn.send(("params", params_doc))
            except (OSError, ValueError) as exc:
                self.declare_lost(handle, f"params send failed: {exc}")

    def handles(self) -> List[_WorkerHandle]:
        """The worker slots (supervisor's sweep surface)."""
        return self._handles

    def worker_cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Latest known cache accounting merged across workers."""
        return merge_cache_stats(
            *(h.cache_stats for h in self._handles if h.cache_stats)
        )

    def stats(self) -> dict:
        """Pool counters, supervision tallies and per-worker state."""
        return {
            "size": self.size,
            "counters": dict(self.counters),
            "supervisor": dict(self.supervisor.counters),
            "workers": [
                {
                    "index": h.index,
                    "pid": h.pid,
                    "state": h.state,
                    "restarts": h.restarts,
                    "pending": len(h.pending),
                    "jobs_done": h.jobs_done,
                }
                for h in self._handles
            ],
        }
