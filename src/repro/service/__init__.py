"""The McCLS verification gateway: an asyncio signing/verify service.

A deployment-shaped front-end over the library: one process owns the KGC
role (partial-key issuance, master rekey) and verifies signatures on
behalf of constrained clients, over a length-prefixed binary protocol
that reuses :mod:`repro.core.serialization` for every point, scalar and
identity on the wire.

* :mod:`repro.service.protocol` - framing and request/reply codec.
* :mod:`repro.service.server`   - the gateway: bounded request queue with
  explicit BUSY load-shed, and a micro-batcher that folds same-signer
  verify bursts into one batch pairing.
* :mod:`repro.service.client`   - client library (pipelining, local
  signing through a verifier-view scheme).
* :mod:`repro.service.loadgen`  - load harness behind ``python -m repro
  loadgen``; writes BENCH_service.json.
"""

from repro.service.client import ServiceClient
from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.service.protocol import (
    MAX_FRAME,
    Opcode,
    Status,
    decode_reply,
    decode_request,
    encode_frame,
    encode_reply,
    encode_request,
)
from repro.service.server import VerificationGateway

__all__ = [
    "MAX_FRAME",
    "Opcode",
    "Status",
    "ServiceClient",
    "VerificationGateway",
    "LoadgenConfig",
    "run_loadgen",
    "decode_reply",
    "decode_request",
    "encode_frame",
    "encode_reply",
    "encode_request",
]
