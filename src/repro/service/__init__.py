"""The McCLS verification gateway: an asyncio signing/verify service.

A deployment-shaped front-end over the library: one process owns the KGC
role (partial-key issuance, master rekey) and verifies signatures on
behalf of constrained clients, over a length-prefixed binary protocol
that reuses :mod:`repro.core.serialization` for every point, scalar and
identity on the wire.

* :mod:`repro.service.protocol` - framing and request/reply codec
  (opcode-byte flags carry per-request trace ids and deadline budgets).
* :mod:`repro.service.server`   - the gateway: bounded request queue with
  explicit BUSY load-shed, a micro-batcher that folds same-signer verify
  bursts into one batch pairing, deadline enforcement and graceful drain.
* :mod:`repro.service.pool`     - supervised crypto worker-process pool
  (identity-affinity routing, crash/hang containment).
* :mod:`repro.service.supervisor` - heartbeat / job-deadline / jittered
  restart-backoff policy over the pool's workers.
* :mod:`repro.service.client`   - resilient client library (pipelining,
  retry policy, per-call timeouts, reconnect-and-replay, circuit
  breaker, local signing through a verifier-view scheme).
* :mod:`repro.service.chaosproxy` - deterministic wire-level fault
  injection (resets, stalls, latency, mid-frame truncation).
* :mod:`repro.service.loadgen`  - load + chaos harness behind ``python
  -m repro loadgen``; writes BENCH_service.json.
"""

from repro.service.chaosproxy import ChaosPlan, ChaosProxy
from repro.service.client import CircuitBreaker, RetryPolicy, ServiceClient
from repro.service.loadgen import LoadgenConfig, run_loadgen
from repro.service.pool import VerifyWorkerPool
from repro.service.protocol import (
    DEADLINE_FLAG,
    MAX_FRAME,
    TRACE_FLAG,
    Opcode,
    Status,
    decode_reply,
    decode_request,
    encode_frame,
    encode_reply,
    encode_request,
)
from repro.service.server import VerificationGateway
from repro.service.supervisor import RestartBackoff, WorkerSupervisor

__all__ = [
    "DEADLINE_FLAG",
    "MAX_FRAME",
    "TRACE_FLAG",
    "Opcode",
    "Status",
    "ChaosPlan",
    "ChaosProxy",
    "CircuitBreaker",
    "RetryPolicy",
    "RestartBackoff",
    "ServiceClient",
    "VerificationGateway",
    "VerifyWorkerPool",
    "WorkerSupervisor",
    "LoadgenConfig",
    "run_loadgen",
    "decode_reply",
    "decode_request",
    "encode_frame",
    "encode_reply",
    "encode_request",
]
