"""A deterministic wire-level chaos proxy for the verification gateway.

The netsim fault injector (:mod:`repro.netsim.faults`) breaks the
*modelled* radio; this module breaks the *real* TCP byte stream between a
:class:`~repro.service.client.ServiceClient` and the gateway.  The proxy
sits on its own listening socket, speaks the same length-prefixed frame
protocol in both directions, and injects four fault classes per
forwarded frame:

* **reset** - both sides are aborted mid-conversation (the client sees a
  connection reset exactly where a flaky link would produce one);
* **truncate** - the frame's header plus a strict prefix of its body is
  forwarded, then the stream is cut: the victim is left holding a
  half-frame it can never complete (this is the case that forces
  read-side timeouts; a naive client blocks forever);
* **stall** - forwarding pauses for ``stall_s`` with the connection left
  perfectly healthy-looking (silence, not failure);
* **latency** - a fixed + jittered per-frame delay, the background decay
  of a congested path.

Every draw comes from dedicated string-seeded RNG streams (one per
connection and direction, the :data:`repro.netsim.faults` convention),
so the same ``(plan, connection order)`` reproduces the identical fault
sequence - chaos you can bisect.  Faults are recorded in :attr:`counters`
and a bounded :attr:`log` so a harness can assert "the run actually
injected N resets" instead of hoping.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.errors import ServiceError
from repro.service import protocol

#: cap on retained fault-log entries (oldest dropped)
LOG_LIMIT = 1024


@dataclass(frozen=True)
class ChaosPlan:
    """Per-frame fault rates for one proxy (all drawn independently)."""

    reset_rate: float = 0.0
    truncate_rate: float = 0.0
    stall_rate: float = 0.0
    stall_s: float = 0.5
    latency_s: float = 0.0
    jitter_s: float = 0.0
    seed: int = 0

    @property
    def empty(self) -> bool:
        """Whether this plan never touches a frame."""
        return (
            self.reset_rate <= 0
            and self.truncate_rate <= 0
            and self.stall_rate <= 0
            and self.latency_s <= 0
            and self.jitter_s <= 0
        )

    def validate(self) -> None:
        """Raise ServiceError on out-of-range rates or delays."""
        for name in ("reset_rate", "truncate_rate", "stall_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ServiceError(f"chaos {name} must be in [0, 1]")
        if self.reset_rate + self.truncate_rate + self.stall_rate > 1.0:
            raise ServiceError(
                "chaos reset+truncate+stall rates must sum to <= 1"
            )
        for name in ("stall_s", "latency_s", "jitter_s"):
            if getattr(self, name) < 0:
                raise ServiceError(f"chaos {name} must be >= 0")

    @classmethod
    def from_spec(cls, spec: Mapping) -> "ChaosPlan":
        """Build a plan from a JSON-shaped mapping (the ``--chaos`` format).

        Keys: ``reset``, ``truncate``, ``stall`` (per-frame rates),
        ``stall_s``, ``latency_s``, ``jitter_s`` (seconds) and ``seed``.
        Unknown keys are rejected so typos fail loudly.
        """
        if not isinstance(spec, Mapping):
            raise ServiceError("chaos spec must be a JSON object")
        known = {
            "reset", "truncate", "stall",
            "stall_s", "latency_s", "jitter_s", "seed",
        }
        unknown = set(spec) - known
        if unknown:
            raise ServiceError(
                f"unknown chaos spec keys {sorted(unknown)}; "
                f"expected {sorted(known)}"
            )
        plan = cls(
            reset_rate=float(spec.get("reset", 0.0)),
            truncate_rate=float(spec.get("truncate", 0.0)),
            stall_rate=float(spec.get("stall", 0.0)),
            stall_s=float(spec.get("stall_s", 0.5)),
            latency_s=float(spec.get("latency_s", 0.0)),
            jitter_s=float(spec.get("jitter_s", 0.0)),
            seed=int(spec.get("seed", 0)),
        )
        plan.validate()
        return plan

    def to_spec(self) -> Dict[str, float]:
        """The JSON-shaped mapping this plan round-trips through."""
        return {
            "reset": self.reset_rate,
            "truncate": self.truncate_rate,
            "stall": self.stall_rate,
            "stall_s": self.stall_s,
            "latency_s": self.latency_s,
            "jitter_s": self.jitter_s,
            "seed": self.seed,
        }


class ChaosProxy:
    """A frame-aware TCP proxy injecting a :class:`ChaosPlan`."""

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: ChaosPlan,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        plan.validate()
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.plan = plan
        self.host = host
        self.port = port
        self.counters: Dict[str, int] = {
            "connections": 0,
            "forwarded_frames": 0,
            "resets": 0,
            "truncations": 0,
            "stalls": 0,
            "delayed_frames": 0,
            "upstream_failures": 0,
        }
        self.log: List[Dict[str, object]] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: set = set()
        self._next_connection = 0

    # -- bookkeeping --------------------------------------------------------
    def _record(self, event: str, connection: int, direction: str, **fields):
        entry: Dict[str, object] = {
            "event": event,
            "connection": connection,
            "direction": direction,
            **fields,
        }
        self.log.append(entry)
        if len(self.log) > LOG_LIMIT:
            del self.log[: len(self.log) - LOG_LIMIT]

    def summary(self) -> Dict[str, int]:
        """Injected-fault totals (stable keys for harness assertions)."""
        return dict(self.counters)

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "ChaosProxy":
        """Bind the chaos listener (upstream is dialled per connection)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Close the listener and abort every live proxied session."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._sessions):
            task.cancel()
        if self._sessions:
            await asyncio.gather(*self._sessions, return_exceptions=True)
            self._sessions.clear()

    # -- one proxied connection ---------------------------------------------
    async def _handle_connection(self, client_reader, client_writer) -> None:
        task = asyncio.current_task()
        self._sessions.add(task)
        connection = self._next_connection
        self._next_connection += 1
        self.counters["connections"] += 1
        try:
            try:
                upstream_reader, upstream_writer = await asyncio.open_connection(
                    self.upstream_host, self.upstream_port
                )
            except OSError:
                self.counters["upstream_failures"] += 1
                self._abort(client_writer)
                return
            writers = (client_writer, upstream_writer)
            pumps = [
                asyncio.ensure_future(
                    self._pump(
                        connection, "c2s", client_reader, upstream_writer, writers
                    )
                ),
                asyncio.ensure_future(
                    self._pump(
                        connection, "s2c", upstream_reader, client_writer, writers
                    )
                ),
            ]
            try:
                await asyncio.wait(pumps, return_when=asyncio.FIRST_COMPLETED)
            finally:
                for pump in pumps:
                    pump.cancel()
                await asyncio.gather(*pumps, return_exceptions=True)
                for writer in writers:
                    self._abort(writer)
        except asyncio.CancelledError:
            pass
        finally:
            self._sessions.discard(task)

    def _rng(self, connection: int, direction: str) -> random.Random:
        return random.Random(
            f"chaos/{self.plan.seed}/conn/{connection}/{direction}"
        )

    async def _pump(
        self, connection: int, direction: str, reader, writer, writers
    ) -> None:
        """Forward one direction frame by frame, injecting the plan."""
        plan = self.plan
        rng = self._rng(connection, direction)
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                    length = protocol.frame_length(header)
                    body = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    return  # clean EOF or a fault we injected upstream
                except Exception:
                    return  # unframeable garbage: drop the session
                draw = rng.random()
                if draw < plan.reset_rate:
                    self.counters["resets"] += 1
                    self._record("chaos.reset", connection, direction)
                    self._abort_all(writers)
                    return
                draw -= plan.reset_rate
                if draw < plan.truncate_rate and length > 0:
                    # Forward the header and a strict prefix of the body,
                    # then cut the stream: the victim holds a half-frame.
                    keep = rng.randrange(length)
                    self.counters["truncations"] += 1
                    self._record(
                        "chaos.truncate", connection, direction,
                        kept=keep, of=length,
                    )
                    try:
                        writer.write(header + body[:keep])
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    self._abort_all(writers)
                    return
                draw -= plan.truncate_rate
                if draw < plan.stall_rate:
                    self.counters["stalls"] += 1
                    self._record(
                        "chaos.stall", connection, direction, s=plan.stall_s
                    )
                    await asyncio.sleep(plan.stall_s)
                delay = plan.latency_s
                if plan.jitter_s > 0:
                    delay += rng.random() * plan.jitter_s
                if delay > 0:
                    self.counters["delayed_frames"] += 1
                    await asyncio.sleep(delay)
                try:
                    writer.write(header + body)
                    await writer.drain()
                except (ConnectionError, OSError):
                    return
                self.counters["forwarded_frames"] += 1
        except asyncio.CancelledError:
            raise

    def _abort_all(self, writers) -> None:
        for writer in writers:
            self._abort(writer)

    @staticmethod
    def _abort(writer) -> None:
        """Drop a stream as abruptly as the transport allows."""
        transport = writer.transport
        try:
            if transport is not None:
                transport.abort()
            else:
                writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass
