"""Supervision for the crypto worker pool.

The pool (:mod:`repro.service.pool`) owns the worker processes; this
module owns the *policy* that keeps them alive:

* **Liveness detection.**  The supervisor loop pings every ready worker
  each interval and watches two signals: the process exit code (a crash
  is visible immediately through the reader thread's EOF, and at the
  latest on the next sweep) and heartbeat staleness.  A worker that is
  silent past ``heartbeat_timeout_s`` *while owing no job* is hung in
  its idle loop; a worker owing a job is only declared hung once that
  job has also exceeded ``job_timeout_s`` (a big same-signer batch on a
  slow curve legitimately blocks the worker's reply loop, so silence
  alone is not guilt).

* **Job deadlines.**  Any in-flight job older than ``job_timeout_s``
  kills its worker: a poisoned request must cost one worker restart, not
  a stuck slot forever.  The pool converts the orphaned futures into
  ``worker lost`` errors, so the gateway answers ``ERR`` instead of
  leaving a client's reply slot hanging.

* **Jittered restart backoff** (:class:`RestartBackoff`).  A dead worker
  is respawned after ``base_s * multiplier**restarts`` (capped, ±jitter)
  so a crash-looping worker (bad params, OOM kills) does not turn the
  supervisor into a fork bomb.  The backoff resets once a worker comes
  back ready.

Every state transition is appended to :attr:`WorkerSupervisor.log` - a
bounded in-memory list of dicts - and mirrored to the gateway's event
sink when tracing is on, so a chaos run can assert "the worker was
restarted" from the outside.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, List, Optional


@dataclass(frozen=True)
class RestartBackoff:
    """Jittered exponential backoff between worker restarts."""

    base_s: float = 0.05
    max_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def delay_s(self, restarts: int, rng: random.Random) -> float:
        """Delay before restart number ``restarts`` (0-based)."""
        delay = min(self.max_s, self.base_s * self.multiplier ** restarts)
        if self.jitter:
            span = delay * self.jitter
            delay = max(0.0, delay + rng.uniform(-span, span))
        return delay


class WorkerSupervisor:
    """Heartbeat / deadline / restart policy over a pool's workers.

    Deliberately knows nothing about pipes or processes: it reads worker
    state through the small surface the pool's handles expose
    (``state``, ``process``, ``pending age``, ``last_pong``) and acts
    through two pool callbacks - ``declare_lost`` and ``respawn``.
    """

    #: keep at most this many log entries (oldest dropped)
    LOG_LIMIT = 256

    def __init__(
        self,
        pool,
        *,
        heartbeat_interval_s: float = 0.25,
        heartbeat_timeout_s: float = 2.0,
        job_timeout_s: float = 30.0,
        backoff: Optional[RestartBackoff] = None,
        seed: int = 0,
    ):
        self.pool = pool
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.job_timeout_s = job_timeout_s
        self.backoff = backoff if backoff is not None else RestartBackoff()
        self.rng = random.Random(f"service/supervisor/{seed}")
        self.log: List[Dict] = []
        self.counters: Dict[str, int] = {
            "restarts": 0,
            "crashes": 0,
            "hangs": 0,
            "job_timeouts": 0,
        }

    # -- bookkeeping --------------------------------------------------------
    def note(self, event: str, worker_index: int, **details) -> None:
        """Append one supervision event to the bounded log.

        ``at`` is ``time.monotonic()`` — the same clock every other
        service timer (deadlines, backoff, heartbeats) runs on, so log
        ordering and age arithmetic survive NTP steps and suspend/resume.
        ``wall`` is an ISO-8601 UTC timestamp for humans reading the log;
        nothing may compute with it.
        """
        entry = {
            "at": time.monotonic(),
            "wall": datetime.now(timezone.utc).isoformat(timespec="milliseconds"),
            "event": event,
            "worker": worker_index,
            **details,
        }
        self.log.append(entry)
        if len(self.log) > self.LOG_LIMIT:
            del self.log[: len(self.log) - self.LOG_LIMIT]

    def restart_delay_s(self, restarts: int) -> float:
        """Backoff before a worker's next respawn."""
        return self.backoff.delay_s(restarts, self.rng)

    # -- one supervision sweep ----------------------------------------------
    def sweep(self, now: float) -> None:
        """Inspect every worker once; kill/restart/ping as policy says."""
        for handle in self.pool.handles():
            if handle.state == "dead":
                if handle.restart_at is not None and now >= handle.restart_at:
                    self.counters["restarts"] += 1
                    self.note("restart", handle.index, restarts=handle.restarts)
                    self.pool.respawn(handle)
                continue
            process = handle.process
            if process is not None and process.exitcode is not None:
                self.counters["crashes"] += 1
                self.pool.declare_lost(
                    handle, f"worker exited with code {process.exitcode}"
                )
                continue
            if handle.state != "ready":
                # still starting: give it until the heartbeat timeout
                if now - handle.started_at > max(
                    self.heartbeat_timeout_s, self.job_timeout_s
                ):
                    self.counters["hangs"] += 1
                    self.pool.declare_lost(handle, "worker never became ready")
                continue
            oldest_job_age = handle.oldest_job_age(now)
            if oldest_job_age is not None and oldest_job_age > self.job_timeout_s:
                self.counters["job_timeouts"] += 1
                self.pool.declare_lost(
                    handle,
                    f"job exceeded {self.job_timeout_s}s deadline "
                    f"(in flight {oldest_job_age:.2f}s)",
                )
                continue
            pong_age = now - handle.last_pong
            if pong_age > self.heartbeat_timeout_s and oldest_job_age is None:
                # silent while idle: the worker loop itself is stuck
                self.counters["hangs"] += 1
                self.pool.declare_lost(
                    handle, f"no heartbeat for {pong_age:.2f}s while idle"
                )
                continue
            self.pool.ping(handle)
