"""``python -m repro top`` - a live terminal dashboard for the gateway.

Polls the STATS opcode on an interval and renders throughput (derived
from counter deltas between polls), server-side latency percentiles,
cache hit rates and queue depth.  Pure functions do the math and the
rendering so tests can drive them from canned STATS documents; the
async poller is a thin loop over :class:`~repro.service.client.ServiceClient`.
"""

from __future__ import annotations

import asyncio
import sys
from typing import Callable, Dict, List, Optional

from repro.errors import ServiceError
from repro.service.client import ServiceClient

#: ANSI "clear screen, cursor home" for the interactive refresh
_CLEAR = "\x1b[2J\x1b[H"


def poll_rates(
    previous: Optional[Dict], current: Dict, interval_s: float
) -> Dict[str, float]:
    """Per-second rates from two consecutive STATS documents."""
    if previous is None or interval_s <= 0:
        return {"requests": 0.0, "verifies": 0.0}
    prev_c, curr_c = previous["counters"], current["counters"]

    def rate(name: str) -> float:
        return (curr_c.get(name, 0) - prev_c.get(name, 0)) / interval_s

    return {"requests": rate("requests"), "verifies": rate("verify_requests")}


def _hit_rate(stats: Dict) -> str:
    hits = stats.get("hits", 0)
    misses = stats.get("misses", 0)
    total = hits + misses
    if not total:
        return "    -"
    return f"{100.0 * hits / total:4.1f}%"


def render_dashboard(
    current: Dict,
    rates: Dict[str, float],
    *,
    target: str = "",
    interval_s: float = 2.0,
) -> List[str]:
    """The dashboard as a list of lines (one STATS document + rates)."""
    counters = current["counters"]
    lines = [
        f"repro top - gateway {target}  (refresh {interval_s:g}s)",
        "",
        f"requests  {counters.get('requests', 0):>9} total"
        f"   {rates['requests']:8.1f} req/s"
        f"   queue {current.get('queue_depth', 0)}/{current.get('queue_size', 0)}"
        f"   busy {counters.get('busy_rejections', 0)}",
        f"verify    {counters.get('verify_requests', 0):>9} total"
        f"   {rates['verifies']:8.1f} verify/s"
        f"   ok {counters.get('verify_valid', 0)}"
        f"   bad {counters.get('verify_invalid', 0)}"
        f"   batches {counters.get('batches', 0)}"
        f" (fallbacks {counters.get('batch_fallbacks', 0)})",
    ]
    latency = current.get("latency_ms") or {}
    for stage in ("request", "queue_wait", "verify", "serialize"):
        summary = latency.get(stage)
        if not summary or not summary.get("count"):
            continue
        lines.append(
            f"{stage:<9} ms"
            f"  p50 {summary['p50']:8.2f}"
            f"  p90 {summary.get('p90', 0.0):8.2f}"
            f"  p99 {summary.get('p99', 0.0):8.2f}"
            f"  max {summary['max']:8.2f}"
            f"  (n={summary['count']})"
        )
    batch = (current.get("batch") or {}).get("size")
    if batch and batch.get("count"):
        lines.append(
            f"batch     size mean {batch['mean']:.1f}"
            f"  p50 {batch['p50']:g}  max {batch['max']:g}"
        )
    cache = current.get("cache") or {}
    if cache:
        parts = [
            f"{name} {_hit_rate(stats)} hit"
            f" ({stats.get('size', 0)}/{stats.get('maxsize', 0)},"
            f" {stats.get('evictions', 0)} evicted)"
            for name, stats in sorted(cache.items())
        ]
        lines.append("cache     " + "   ".join(parts))
    lines.append(
        f"enrolled  {current.get('enrolled', 0)}"
        f"   rekeys {counters.get('rekeys', 0)}"
        f"   traced {counters.get('traced_requests', 0)}"
        f"   protocol errors {counters.get('protocol_errors', 0)}"
    )
    return lines


async def _poll_loop(
    host: str,
    port: int,
    interval_s: float,
    iterations: Optional[int],
    clear: bool,
    out: Callable[[str], None],
) -> int:
    client = ServiceClient(host, port)
    await client.connect()
    target = f"{host}:{port}"
    previous: Optional[Dict] = None
    polled = 0
    try:
        while iterations is None or polled < iterations:
            current = await client.stats()
            rates = poll_rates(previous, current, interval_s)
            body = "\n".join(
                render_dashboard(
                    current, rates, target=target, interval_s=interval_s
                )
            )
            out((_CLEAR if clear else "") + body)
            previous = current
            polled += 1
            if iterations is not None and polled >= iterations:
                break
            await asyncio.sleep(interval_s)
    finally:
        await client.close()
    return 0


def run_top(
    host: str = "127.0.0.1",
    port: int = 7754,
    interval_s: float = 2.0,
    iterations: Optional[int] = None,
    clear: Optional[bool] = None,
    out: Callable[[str], None] = print,
) -> int:
    """Run the dashboard until interrupted (or for N polls).

    ``clear`` defaults to "only when stdout is a terminal", so piping the
    output captures plain text.
    """
    if clear is None:
        clear = sys.stdout.isatty()
    try:
        return asyncio.run(
            _poll_loop(host, port, interval_s, iterations, clear, out)
        )
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, OSError, ServiceError) as exc:
        out(f"repro top: cannot reach gateway at {host}:{port}: {exc}")
        return 1
