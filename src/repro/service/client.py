"""Client library for the verification gateway.

:class:`ServiceClient` speaks the frame protocol over one TCP connection.
Replies arrive strictly in request order, so :meth:`verify_many`
pipelines a whole burst (write all frames, then read all replies) - the
path the server's same-signer micro-batcher is built for.

Signing stays **client-side**: after :meth:`params` the client holds a
*verifier view* of the scheme - the public parameters grafted onto a
local :class:`~repro.core.mccls.McCLS` instance whose own master secret
is never used.  ``CL-Sign`` touches only the client's key material and
the group generator, so signatures minted locally verify at the gateway
under the real master public key.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.mccls import McCLS, McCLSSignature
from repro.errors import ServiceError
from repro.obs import trace as obs_trace
from repro.pairing.curve import CurvePoint
from repro.pairing.groups import PairingContext
from repro.schemes.base import UserKeyPair
from repro.service import protocol
from repro.service.protocol import Opcode, Status

#: one verify to pipeline: (identity, public_key, message, signature)
VerifyItem = Tuple[str, CurvePoint, bytes, McCLSSignature]


@dataclass(frozen=True)
class VerifyOutcome:
    """One pipelined verify's result: OK verdict, BUSY, or ERR detail."""

    status: Status
    valid: Optional[bool] = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == Status.OK


class ServiceClient:
    """One connection to a :class:`~repro.service.server.VerificationGateway`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self.curve = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._view: Optional[McCLS] = None

    # -- lifecycle ----------------------------------------------------------
    async def connect(self) -> "ServiceClient":
        """Open the TCP connection to the gateway."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = self._writer = None

    # -- plumbing -----------------------------------------------------------
    async def _send(
        self,
        opcode: Opcode,
        payload: bytes = b"",
        trace_id: Optional[int] = None,
    ) -> None:
        if self._writer is None:
            raise ServiceError("client is not connected")
        self._writer.write(
            protocol.encode_frame(
                protocol.encode_request(opcode, payload, trace_id)
            )
        )
        await self._writer.drain()

    async def _read_reply(self) -> Tuple[Status, bytes]:
        try:
            header = await self._reader.readexactly(4)
            body = await self._reader.readexactly(
                protocol.frame_length(header)
            )
        except (asyncio.IncompleteReadError, ConnectionError) as exc:
            raise ServiceError(f"connection lost: {exc}") from None
        return protocol.decode_reply(body)

    async def _call(
        self,
        opcode: Opcode,
        payload: bytes = b"",
        trace_id: Optional[int] = None,
    ) -> bytes:
        """One request/reply round trip; ERR and BUSY raise ServiceError."""
        await self._send(opcode, payload, trace_id)
        status, reply = await self._read_reply()
        if status == Status.BUSY:
            raise ServiceError("gateway is busy (bounded queue full)")
        if status == Status.ERR:
            raise ServiceError(reply.decode("utf-8", "replace"))
        return reply

    # -- the protocol surface ----------------------------------------------
    async def ping(self) -> bool:
        """Liveness round trip; True unless the call raised."""
        await self._call(Opcode.PING)
        return True

    async def params(self) -> dict:
        """Fetch public params and (re)build the local verifier view."""
        document = protocol.decode_json_payload(
            await self._call(Opcode.PARAMS)
        )
        self._install_params(document)
        return document

    async def enroll(self, identity: str) -> UserKeyPair:
        """Have the KGC issue full key material for ``identity``."""
        await self._ensure_params()
        payload = await self._call(
            Opcode.ENROLL, protocol.encode_enroll_payload(identity)
        )
        return protocol.decode_user_keys(self.curve, payload)

    async def verify(
        self,
        identity: str,
        public_key: CurvePoint,
        message: bytes,
        signature: McCLSSignature,
        trace_id: Optional[int] = None,
    ) -> bool:
        """One verification round trip; raises ServiceError on ERR/BUSY.

        With a ``trace_id`` the request carries it over the wire (the
        gateway emits server-side stage spans under it) and the client
        records the matching ``client.rtt`` root span when a tracer is
        active.
        """
        await self._ensure_params()
        payload = protocol.encode_verify_payload(
            self.curve, identity, public_key, message, signature
        )
        tracer = obs_trace.get_tracer()
        if trace_id is not None and tracer.enabled:
            started = time.perf_counter()
            reply = await self._call(Opcode.VERIFY, payload, trace_id)
            tracer.record(
                "client.rtt",
                trace_id=trace_id,
                span_id=f"t{trace_id}",
                start_s=started,
                dur_s=time.perf_counter() - started,
            )
        else:
            reply = await self._call(Opcode.VERIFY, payload, trace_id)
        return protocol.decode_verify_verdict(reply)

    async def verify_many(
        self, items: Sequence[VerifyItem]
    ) -> List[VerifyOutcome]:
        """Pipeline a burst of verifies; outcomes in request order.

        Unlike :meth:`verify`, BUSY and ERR become per-item outcomes
        instead of exceptions, so one shed request does not discard the
        rest of the burst.
        """
        await self._ensure_params()
        for identity, public_key, message, signature in items:
            self._writer.write(
                protocol.encode_frame(
                    protocol.encode_request(
                        Opcode.VERIFY,
                        protocol.encode_verify_payload(
                            self.curve, identity, public_key, message, signature
                        ),
                    )
                )
            )
        await self._writer.drain()
        outcomes: List[VerifyOutcome] = []
        for _ in items:
            status, payload = await self._read_reply()
            if status == Status.OK:
                outcomes.append(
                    VerifyOutcome(
                        status, valid=protocol.decode_verify_verdict(payload)
                    )
                )
            else:
                outcomes.append(
                    VerifyOutcome(
                        status, detail=payload.decode("utf-8", "replace")
                    )
                )
        return outcomes

    async def rekey(self) -> dict:
        """Ask the KGC to rotate its master secret; refreshes the view.

        Every previously issued key pair is invalid afterwards - re-enrol.
        """
        document = protocol.decode_json_payload(await self._call(Opcode.REKEY))
        self._install_params(document)
        return document

    async def stats(self) -> dict:
        """Fetch the gateway's counters, cache accounting and stage
        latency summaries."""
        return protocol.decode_json_payload(await self._call(Opcode.STATS))

    async def metrics(self) -> str:
        """Fetch the gateway's Prometheus text exposition (METRICS)."""
        return protocol.decode_metrics_payload(
            await self._call(Opcode.METRICS)
        )

    # -- local signing ------------------------------------------------------
    def sign(self, message: bytes, keys: UserKeyPair) -> McCLSSignature:
        """CL-Sign locally under the gateway's public parameters."""
        if self._view is None:
            raise ServiceError("fetch params before signing")
        return self._view.sign(message, keys)

    def scheme_view(self) -> McCLS:
        """The local verifier-view scheme (for client-side verification)."""
        if self._view is None:
            raise ServiceError("fetch params before using the scheme view")
        return self._view

    # -- internals ----------------------------------------------------------
    async def _ensure_params(self) -> None:
        if self._view is None:
            await self.params()

    def _install_params(self, document: dict) -> None:
        curve = protocol.curve_from_params(document)
        p_pub_g1, p_pub_g2 = protocol.p_pub_from_params(curve, document)
        ctx = PairingContext(curve, random.Random(0))
        # A verifier view: the placeholder master secret below is never
        # exercised - P_pub is overridden with the gateway's real one, and
        # CL-Sign/CL-Verify only ever read P_pub, never the secret.
        view = McCLS(ctx, master_secret=1)
        view.p_pub_g1 = p_pub_g1
        view.p_pub_g2 = p_pub_g2
        ctx.fixed_base(p_pub_g1)
        ctx.fixed_base(p_pub_g2)
        self.curve = curve
        self._view = view
