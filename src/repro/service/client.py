"""Client library for the verification gateway.

:class:`ServiceClient` speaks the frame protocol over one TCP connection.
Replies arrive strictly in request order, so :meth:`verify_many`
pipelines a whole burst (write all frames, then read all replies) - the
path the server's same-signer micro-batcher is built for.

Signing stays **client-side**: after :meth:`params` the client holds a
*verifier view* of the scheme - the public parameters grafted onto a
local :class:`~repro.core.mccls.McCLS` instance whose own master secret
is never used.  ``CL-Sign`` touches only the client's key material and
the group generator, so signatures minted locally verify at the gateway
under the real master public key.

The client is built for a gateway that fails like a real server:

* **Per-call timeouts** - a stalled server surfaces as
  :class:`~repro.errors.ServiceTimeout` instead of blocking forever; the
  stream cannot be re-synchronised after an abandoned read, so the
  connection is dropped before any retry.
* **Jittered retry** (:class:`RetryPolicy`) - BUSY sheds, timeouts and
  lost connections back off exponentially with jitter instead of
  hammering a saturated gateway; non-idempotent requests (ENROLL, REKEY)
  are never replayed after a timeout or disconnect, because the server
  may have applied them.
* **Automatic reconnect with replay-or-fail pipelining** -
  :meth:`verify_many` re-sends only the requests whose replies were
  never read; once attempts are exhausted the remainder fails as ERR
  outcomes, never silently.
* **A consecutive-failure circuit breaker** (:class:`CircuitBreaker`) -
  after enough failures in a row the client fails fast for a cooldown
  instead of queueing doomed work behind a dead gateway.
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mccls import McCLS, McCLSSignature
from repro.core.session import EstablishedSession, SessionInitiator
from repro.errors import (
    ServiceBusy,
    ServiceConnectionLost,
    ServiceError,
    ServiceTimeout,
)
from repro.obs import trace as obs_trace
from repro.pairing.bn import BNCurve
from repro.pairing.curve import CurvePoint
from repro.pairing.groups import PairingContext
from repro.schemes.base import UserKeyPair
from repro.service import protocol
from repro.service.protocol import Opcode, Status

#: one verify to pipeline: (identity, public_key, message, signature)
VerifyItem = Tuple[str, CurvePoint, bytes, McCLSSignature]

#: opcodes that are safe to replay after a timeout or lost connection
#: (a verify is a pure question; ENROLL and REKEY mutate KGC state).
#: SESSION is replay-safe - each attempt simply establishes a fresh
#: session in the gateway's bounded table and the client adopts the last
#: one.  VERIFY_FAST is NOT: its sequence number is consumed server-side,
#: so a blind replay would be rejected as a replay and *lie* about the
#: message's validity.
IDEMPOTENT_OPCODES = frozenset(
    {
        Opcode.PING,
        Opcode.PARAMS,
        Opcode.VERIFY,
        Opcode.STATS,
        Opcode.METRICS,
        Opcode.SESSION,
    }
)


def build_verifier_view(
    document: dict, *, cache_size: Optional[int] = None, backend=None
) -> Tuple[BNCurve, McCLS]:
    """Reconstruct a verifier-view scheme from a PARAMS document.

    The placeholder master secret below is never exercised - P_pub is
    overridden with the gateway's real one, and CL-Sign/CL-Verify only
    ever read P_pub, never the secret.  Shared by the client and the
    crypto worker processes (which verify on the KGC's behalf but never
    hold its master secret either).  The field backend follows
    ``backend`` when given, else the document's advertised backend, else
    the env/default precedence.
    """
    if backend is None:
        backend = document.get("backend") or None
    curve = protocol.curve_from_params(document, backend=backend)
    kwargs = {"backend": curve.spec.backend}
    if cache_size is not None:
        kwargs["cache_size"] = cache_size
    p_pub_g1, p_pub_g2 = protocol.p_pub_from_params(curve, document)
    ctx = PairingContext(curve, random.Random(0), **kwargs)
    view = McCLS(ctx, master_secret=1)
    view.p_pub_g1 = p_pub_g1
    view.p_pub_g2 = p_pub_g2
    ctx.fixed_base(p_pub_g1)
    ctx.fixed_base(p_pub_g2)
    return curve, view


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for retriable gateway failures.

    ``attempts`` counts total tries (1 = never retry).  The delay before
    retry k is ``base_delay_s * multiplier**(k-1)`` capped at
    ``max_delay_s``, then jittered by ±``jitter`` (a fraction) so a fleet
    of clients shedding together does not retry in lockstep.
    """

    attempts: int = 4
    base_delay_s: float = 0.02
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def delay_s(self, retry_number: int, rng: random.Random) -> float:
        """Backoff before retry ``retry_number`` (1-based)."""
        delay = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** max(0, retry_number - 1),
        )
        if self.jitter:
            span = delay * self.jitter
            delay = max(0.0, delay + rng.uniform(-span, span))
        return delay


#: a policy that never retries (the pre-resilience client behaviour)
NO_RETRY = RetryPolicy(attempts=1)


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed -> open -> half-open).

    After ``threshold`` consecutive failures the circuit opens and calls
    fail fast with ``circuit open`` for ``cooldown_s``; the first call
    after the cooldown goes through as a probe (half-open) and its
    outcome decides whether the circuit closes again or re-opens.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 1.0,
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.rejections = 0
        self.opens = 0

    def allow(self) -> bool:
        """May a call proceed right now?"""
        if self.state == "closed":
            return True
        if self._clock() - self.opened_at >= self.cooldown_s:
            self.state = "half-open"
            return True
        self.rejections += 1
        return False

    def record_success(self) -> None:
        """A call completed (any server reply counts: the wire works)."""
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self) -> None:
        """A call failed without a server reply."""
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.threshold:
            if self.state != "open":
                self.opens += 1
            self.state = "open"
            self.opened_at = self._clock()


@dataclass(frozen=True)
class VerifyOutcome:
    """One pipelined verify's result: OK verdict, BUSY, or ERR detail."""

    status: Status
    valid: Optional[bool] = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == Status.OK


class ServiceClient:
    """One connection to a :class:`~repro.service.server.VerificationGateway`.

    With the defaults (``timeout_s=None``, ``retry=NO_RETRY``, no
    breaker) the client behaves exactly like the pre-resilience one:
    blocking reads, no replays, every failure an exception.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        rng: Optional[random.Random] = None,
    ):
        self.host = host
        self.port = port
        self.curve = None
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else NO_RETRY
        self.breaker = breaker
        self.counters: Dict[str, int] = {
            "retries": 0,
            "reconnects": 0,
            "timeouts": 0,
            "busy_replies": 0,
            "connection_losses": 0,
            "breaker_rejections": 0,
        }
        self._rng = rng if rng is not None else random.Random(0x5EED)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._view: Optional[McCLS] = None
        self._ever_connected = False
        self._session: Optional[EstablishedSession] = None
        self._session_keys: Optional[UserKeyPair] = None
        self._session_seq = 0

    # -- lifecycle ----------------------------------------------------------
    async def connect(self) -> "ServiceClient":
        """Open the TCP connection to the gateway."""
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except OSError as exc:
            raise ServiceConnectionLost(f"connect failed: {exc}") from None
        self._ever_connected = True
        return self

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def _reconnect(self) -> None:
        """Drop whatever is left of the connection and dial again."""
        await self.close()
        if self._ever_connected:
            self.counters["reconnects"] += 1
        await self.connect()

    # -- plumbing -----------------------------------------------------------
    async def _send(
        self,
        opcode: Opcode,
        payload: bytes = b"",
        trace_id: Optional[int] = None,
        deadline_ms: Optional[int] = None,
    ) -> None:
        if self._writer is None:
            raise ServiceError("client is not connected")
        try:
            self._writer.write(
                protocol.encode_frame(
                    protocol.encode_request(
                        opcode, payload, trace_id, deadline_ms
                    )
                )
            )
            await self._writer.drain()
        except (ConnectionError, OSError) as exc:
            self.counters["connection_losses"] += 1
            await self.close()
            raise ServiceConnectionLost(f"connection lost: {exc}") from None

    async def _read_reply(
        self, timeout_s: Optional[float] = None
    ) -> Tuple[Status, bytes]:
        """Read one reply frame; applies the per-call timeout.

        A timed-out read abandons the stream mid-frame, so the connection
        is dropped before :class:`~repro.errors.ServiceTimeout` is
        raised - the next call reconnects instead of reading a stale
        half-frame.
        """
        if self._reader is None:
            raise ServiceError("client is not connected")
        timeout_s = timeout_s if timeout_s is not None else self.timeout_s
        try:
            if timeout_s is None:
                header = await self._reader.readexactly(4)
                body = await self._reader.readexactly(
                    protocol.frame_length(header)
                )
            else:
                deadline = time.perf_counter() + timeout_s
                header = await asyncio.wait_for(
                    self._reader.readexactly(4), timeout_s
                )
                remaining = max(0.001, deadline - time.perf_counter())
                body = await asyncio.wait_for(
                    self._reader.readexactly(protocol.frame_length(header)),
                    remaining,
                )
        except asyncio.TimeoutError:
            self.counters["timeouts"] += 1
            await self.close()
            raise ServiceTimeout(
                f"timeout: no complete reply within {timeout_s}s"
            ) from None
        except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
            self.counters["connection_losses"] += 1
            await self.close()
            raise ServiceConnectionLost(f"connection lost: {exc}") from None
        return protocol.decode_reply(body)

    def _breaker_gate(self) -> None:
        if self.breaker is not None and not self.breaker.allow():
            self.counters["breaker_rejections"] += 1
            raise ServiceError(
                "circuit open: too many consecutive gateway failures"
            )

    def _note_failure(self) -> None:
        if self.breaker is not None:
            self.breaker.record_failure()

    def _note_success(self) -> None:
        if self.breaker is not None:
            self.breaker.record_success()

    async def _backoff(self, retry_number: int) -> None:
        self.counters["retries"] += 1
        await asyncio.sleep(self.retry.delay_s(retry_number, self._rng))

    async def _call(
        self,
        opcode: Opcode,
        payload: bytes = b"",
        trace_id: Optional[int] = None,
        deadline_ms: Optional[int] = None,
    ) -> bytes:
        """One request/reply round trip; ERR and BUSY raise ServiceError.

        BUSY sheds, timeouts and lost connections are retried under the
        client's :class:`RetryPolicy`; timeout/disconnect retries are
        limited to idempotent opcodes (the server may have applied a
        non-idempotent request whose reply was lost).
        """
        attempt = 1
        while True:
            self._breaker_gate()
            try:
                if self._writer is None:
                    await self._reconnect()
                await self._send(opcode, payload, trace_id, deadline_ms)
                status, reply = await self._read_reply()
            except (ServiceTimeout, ServiceConnectionLost):
                self._note_failure()
                if (
                    opcode not in IDEMPOTENT_OPCODES
                    or attempt >= self.retry.attempts
                ):
                    raise
                await self._backoff(attempt)
                attempt += 1
                continue
            if status == Status.BUSY:
                self.counters["busy_replies"] += 1
                self._note_failure()
                if attempt >= self.retry.attempts:
                    raise ServiceBusy(
                        "gateway is busy: "
                        + (reply.decode("utf-8", "replace") or "queue full")
                    )
                await self._backoff(attempt)
                attempt += 1
                continue
            self._note_success()
            if status == Status.ERR:
                raise ServiceError(reply.decode("utf-8", "replace"))
            return reply

    # -- the protocol surface ----------------------------------------------
    async def ping(self) -> bool:
        """Liveness round trip; True unless the call raised."""
        await self._call(Opcode.PING)
        return True

    async def params(self) -> dict:
        """Fetch public params and (re)build the local verifier view."""
        document = protocol.decode_json_payload(
            await self._call(Opcode.PARAMS)
        )
        self._install_params(document)
        return document

    async def enroll(self, identity: str) -> UserKeyPair:
        """Have the KGC issue full key material for ``identity``."""
        await self._ensure_params()
        payload = await self._call(
            Opcode.ENROLL, protocol.encode_enroll_payload(identity)
        )
        return protocol.decode_user_keys(self.curve, payload)

    async def verify(
        self,
        identity: str,
        public_key: CurvePoint,
        message: bytes,
        signature: McCLSSignature,
        trace_id: Optional[int] = None,
        deadline_ms: Optional[int] = None,
    ) -> bool:
        """One verification round trip; raises ServiceError on ERR/BUSY.

        With a ``trace_id`` the request carries it over the wire (the
        gateway emits server-side stage spans under it) and the client
        records the matching ``client.rtt`` root span when a tracer is
        active.  With a ``deadline_ms`` the gateway sheds the request
        with ``ERR deadline`` once the budget has elapsed.
        """
        await self._ensure_params()
        payload = protocol.encode_verify_payload(
            self.curve, identity, public_key, message, signature
        )
        tracer = obs_trace.get_tracer()
        if trace_id is not None and tracer.enabled:
            started = time.perf_counter()
            reply = await self._call(
                Opcode.VERIFY, payload, trace_id, deadline_ms
            )
            tracer.record(
                "client.rtt",
                trace_id=trace_id,
                span_id=f"t{trace_id}",
                start_s=started,
                dur_s=time.perf_counter() - started,
            )
        else:
            reply = await self._call(
                Opcode.VERIFY, payload, trace_id, deadline_ms
            )
        return protocol.decode_verify_verdict(reply)

    async def verify_many(
        self,
        items: Sequence[VerifyItem],
        *,
        deadline_ms: Optional[int] = None,
    ) -> List[VerifyOutcome]:
        """Pipeline a burst of verifies; outcomes in request order.

        Unlike :meth:`verify`, BUSY and ERR become per-item outcomes
        instead of exceptions, so one shed request does not discard the
        rest of the burst.  When the connection stalls or drops mid-burst
        the client reconnects and **replays only the unanswered tail**
        (verifies are idempotent); once retry attempts are exhausted the
        remaining items fail as ERR outcomes carrying the transport
        error - the result list always matches ``items`` one for one.
        """
        await self._ensure_params()
        encoded = [
            protocol.encode_verify_payload(
                self.curve, identity, public_key, message, signature
            )
            for identity, public_key, message, signature in items
        ]
        outcomes: List[Optional[VerifyOutcome]] = [None] * len(items)
        pending: deque = deque(range(len(items)))
        attempt = 1
        while pending:
            self._breaker_gate()
            unanswered = deque(pending)
            try:
                if self._writer is None:
                    await self._reconnect()
                for index in pending:
                    self._writer.write(
                        protocol.encode_frame(
                            protocol.encode_request(
                                Opcode.VERIFY,
                                encoded[index],
                                None,
                                deadline_ms,
                            )
                        )
                    )
                await self._writer.drain()
                while unanswered:
                    status, payload = await self._read_reply()
                    index = unanswered.popleft()
                    if status == Status.OK:
                        outcomes[index] = VerifyOutcome(
                            status,
                            valid=protocol.decode_verify_verdict(payload),
                        )
                    else:
                        if status == Status.BUSY:
                            self.counters["busy_replies"] += 1
                        outcomes[index] = VerifyOutcome(
                            status,
                            detail=payload.decode("utf-8", "replace"),
                        )
                self._note_success()
                pending.clear()
            except (ConnectionError, OSError) as exc:
                # write-side failure: normalise to the lost-connection path
                self.counters["connection_losses"] += 1
                await self.close()
                exc = ServiceConnectionLost(f"connection lost: {exc}")
                self._note_failure()
                pending = unanswered
                if attempt >= self.retry.attempts:
                    for index in pending:
                        outcomes[index] = VerifyOutcome(
                            Status.ERR, detail=str(exc)
                        )
                    break
                await self._backoff(attempt)
                attempt += 1
            except (ServiceTimeout, ServiceConnectionLost) as exc:
                self._note_failure()
                pending = unanswered
                if attempt >= self.retry.attempts:
                    for index in pending:
                        outcomes[index] = VerifyOutcome(
                            Status.ERR, detail=str(exc)
                        )
                    break
                await self._backoff(attempt)
                attempt += 1
        return outcomes  # type: ignore[return-value]

    async def rekey(self) -> dict:
        """Ask the KGC to rotate its master secret; refreshes the view.

        Every previously issued key pair is invalid afterwards - re-enrol.
        """
        document = protocol.decode_json_payload(await self._call(Opcode.REKEY))
        self._install_params(document)
        return document

    # -- the pairing-free session fast path ---------------------------------
    @property
    def session(self) -> Optional[EstablishedSession]:
        """The currently established fast-path session, if any."""
        return self._session

    async def start_session(
        self,
        keys: UserKeyPair,
        *,
        rng: Optional[random.Random] = None,
    ) -> EstablishedSession:
        """Run the CL-AKA handshake; afterwards :meth:`verify_fast`
        authenticates requests with an HMAC instead of a pairing.

        The Hello is bootstrapped with a McCLS signature under ``keys``
        (the identity's *enrolled* key material), so only a party the KGC
        has issued keys to can open a session.  ``rng`` seeds the
        ephemeral scalars for deterministic tests; production callers
        leave it None (``SystemRandom``).
        """
        await self._ensure_params()
        initiator = SessionInitiator(
            self._view.ctx, self._view.p_pub_g1, keys.identity, rng=rng
        )
        hello = initiator.hello()
        signature = self._view.sign(
            protocol.session_hello_auth_bytes(self.curve, hello), keys
        )
        reply = await self._call(
            Opcode.SESSION,
            protocol.encode_session_payload(self.curve, hello, signature),
        )
        accept = protocol.decode_session_accept(self.curve, reply)
        session = initiator.finish(accept)
        self._session = session
        self._session_keys = keys
        self._session_seq = 0
        return session

    async def verify_fast(
        self, message: bytes, *, _rehandshake: bool = True
    ) -> bool:
        """One MAC-authenticated fast-path round trip (no pairings).

        When the gateway no longer knows the session (TTL expiry, LRU
        eviction, worker restart, or a REKEY that killed every session
        key) the client transparently refreshes params, re-enrolls its
        identity and re-handshakes once before giving up - the REKEY
        case re-issues the enrolled McCLS keys, so a plain re-handshake
        under the stale keys could never succeed.
        """
        if self._session is None:
            raise ServiceError("no session: call start_session first")
        self._session_seq += 1
        session = self._session
        mac = session.mac(
            *protocol.fast_verify_mac_bytes(
                session.session_id,
                self._session_seq,
                session.client_identity,
                message,
            )
        )
        payload = protocol.encode_verify_fast_payload(
            session.client_identity,
            session.session_id,
            self._session_seq,
            message,
            mac,
        )
        try:
            reply = await self._call(Opcode.VERIFY_FAST, payload)
        except ServiceError as exc:
            if (
                _rehandshake
                and str(exc) == protocol.UNKNOWN_SESSION
                and self._session_keys is not None
            ):
                await self.params()
                keys = await self.enroll(self._session_keys.identity)
                await self.start_session(keys)
                return await self.verify_fast(message, _rehandshake=False)
            raise
        return protocol.decode_verify_verdict(reply)

    async def stats(self) -> dict:
        """Fetch the gateway's counters, cache accounting and stage
        latency summaries."""
        return protocol.decode_json_payload(await self._call(Opcode.STATS))

    async def metrics(self) -> str:
        """Fetch the gateway's Prometheus text exposition (METRICS)."""
        return protocol.decode_metrics_payload(
            await self._call(Opcode.METRICS)
        )

    # -- local signing ------------------------------------------------------
    def sign(self, message: bytes, keys: UserKeyPair) -> McCLSSignature:
        """CL-Sign locally under the gateway's public parameters."""
        if self._view is None:
            raise ServiceError("fetch params before signing")
        return self._view.sign(message, keys)

    def scheme_view(self) -> McCLS:
        """The local verifier-view scheme (for client-side verification)."""
        if self._view is None:
            raise ServiceError("fetch params before using the scheme view")
        return self._view

    # -- internals ----------------------------------------------------------
    async def _ensure_params(self) -> None:
        if self._view is None:
            await self.params()

    def _install_params(self, document: dict) -> None:
        self.curve, self._view = build_verifier_view(document)
