"""``python -m repro benchdiff old.json new.json`` - bench regression gate.

Schema-aware comparator over the committed ``benchmarks/results/
BENCH_*.json`` documents.  It flattens both files into named metrics,
prints a delta table, and exits nonzero when any **gated** metric moves
in its bad direction by more than ``--fail-over`` percent (default 10).

Gating policy:

* service bench (``verify`` block): ``throughput_rps`` is higher-better
  and gated; client/server latency percentiles are lower-better and
  gated; ``connection_errors`` and ``deadline_expirations`` are
  lower-better and gated (a zero baseline makes any nonzero candidate an
  infinite-percent regression); verdict counts and cache accounting are
  informational.
* pairing bench (``results`` list): deterministic ``fp_mul`` operation
  counts are lower-better and gated (they cannot flake with machine
  speed); wall-clock ``seconds`` are informational only.  Schema v3 rows
  add ``scalar_mult`` (GLV vs ladder: the fp_mul counts and the GLV
  advantage ratio are gated) and ``batch_verify`` (cross-signer fold:
  the fp_mul counts are gated lower-better and the batch/individual
  ratio must not grow).

Informational metrics always print but never gate, so the CI job stays
deterministic on shared runners.

Documents that name the field backend they were produced under are
refused when the names differ (exit 2) unless ``--allow-backend-mismatch``
is passed: a reference-backend baseline against a native-backend candidate
measures different arithmetic code, not a regression or an improvement of
the same code.  Documents from before the backend field compare freely.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

#: gating direction per metric
HIGHER_BETTER = "higher"
LOWER_BETTER = "lower"
INFO = "info"


class BenchDiffError(ReproError):
    """A bench document could not be read or understood."""


@dataclass(frozen=True)
class Metric:
    """One comparable number extracted from a bench document."""

    name: str
    value: float
    direction: str  # HIGHER_BETTER / LOWER_BETTER / INFO


@dataclass(frozen=True)
class Delta:
    """One metric compared across the two documents."""

    name: str
    old: float
    new: float
    direction: str

    @property
    def pct(self) -> float:
        """Signed percent change (new vs old)."""
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return 100.0 * (self.new - self.old) / abs(self.old)

    def regression_pct(self) -> float:
        """How far the metric moved in its *bad* direction, in percent."""
        if self.direction == HIGHER_BETTER:
            return max(0.0, -self.pct)
        if self.direction == LOWER_BETTER:
            return max(0.0, self.pct)
        return 0.0


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def load_document(path: str) -> dict:
    """Read one bench JSON document (total: errors become BenchDiffError)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise BenchDiffError(f"cannot read {path}: {exc}") from None
    except ValueError as exc:
        raise BenchDiffError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(document, dict):
        raise BenchDiffError(f"{path} must hold a JSON object")
    return document


def detect_kind(document: dict) -> str:
    """Which bench family a document belongs to."""
    if "results" in document and isinstance(document["results"], list):
        return "pairing"
    if "verify" in document:
        return "service"
    raise BenchDiffError(
        "unrecognised bench document (expected a service bench with a"
        " 'verify' block or a pairing bench with a 'results' list)"
    )


def _number(value) -> Optional[float]:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def document_backends(document: dict) -> Optional[Tuple[str, ...]]:
    """The field-backend name(s) a bench document was produced under.

    Service benches (schema v3+) carry a top-level ``backend`` string;
    pairing benches (schema v2+) carry a ``backends`` list naming every
    backend measured in the run.  Documents from before the backend field
    return ``None`` (= unspecified, never refused).
    """
    names = document.get("backends")
    if isinstance(names, list) and all(isinstance(n, str) for n in names):
        return tuple(sorted(names))
    name = document.get("backend")
    if isinstance(name, str) and name and name != "unspecified":
        return (name,)
    return None


def extract_service_metrics(document: dict) -> List[Metric]:
    """Flatten a service (loadgen) bench document into named metrics."""
    metrics: List[Metric] = []
    verify = document.get("verify") or {}
    throughput = _number(verify.get("throughput_rps"))
    if throughput is not None:
        metrics.append(
            Metric("verify.throughput_rps", throughput, HIGHER_BETTER)
        )
    # schema v4 headline latency
    p50 = _number(document.get("p50_ms"))
    if p50 is not None:
        metrics.append(Metric("p50_ms", p50, LOWER_BETTER))
    # schema v4 cross-signer batching report (fold counts depend on how
    # requests interleave across connections: informational)
    batch = document.get("batch")
    if isinstance(batch, dict):
        for key in ("cross_signer_folds", "cross_signer_requests",
                    "bisections"):
            value = _number(batch.get(key))
            if value is not None:
                metrics.append(Metric(f"batch.{key}", value, INFO))
        fold_size = batch.get("fold_size")
        if isinstance(fold_size, dict):
            for key in sorted(fold_size):
                value = _number(fold_size[key])
                if value is not None:
                    metrics.append(
                        Metric(f"batch.fold_size.{key}", value, INFO)
                    )
    for block, label, direction in (
        (verify.get("latency_ms"), "verify.latency_ms", LOWER_BETTER),
        (document.get("enroll"), "enroll", INFO),
    ):
        if not isinstance(block, dict):
            continue
        for key in sorted(block):
            value = _number(block[key])
            if value is not None:
                metrics.append(Metric(f"{label}.{key}", value, direction))
    # Server-side stage summaries (schema v2): gate the request percentiles,
    # report the rest.
    server = document.get("server_latency_ms")
    if isinstance(server, dict):
        for stage in sorted(server):
            summary = server[stage]
            if not isinstance(summary, dict):
                continue
            gated = stage == "request"
            for key in sorted(summary):
                value = _number(summary[key])
                if value is None:
                    continue
                direction = (
                    LOWER_BETTER
                    if gated and key in ("p50", "p90", "p99")
                    else INFO
                )
                metrics.append(
                    Metric(f"server.{stage}_ms.{key}", value, direction)
                )
    for name, stats in sorted((document.get("cache") or {}).items()):
        if isinstance(stats, dict):
            for key in ("hits", "misses", "evictions"):
                value = _number(stats.get(key))
                if value is not None:
                    metrics.append(Metric(f"cache.{name}.{key}", value, INFO))
    for key in ("valid", "invalid", "busy_retries"):
        value = _number(verify.get(key))
        if value is not None:
            metrics.append(Metric(f"verify.{key}", value, INFO))
    # Reliability gates: a healthy bench run has ZERO of these, so any
    # nonzero candidate against a zero baseline is an infinite-percent
    # regression and fails the gate outright.
    for key in ("connection_errors", "deadline_expirations"):
        value = _number(verify.get(key))
        if value is not None:
            metrics.append(Metric(f"verify.{key}", value, LOWER_BETTER))
    # schema v5 session fast path: gate the MAC-path throughput and its
    # latency; the pairing counters must stay at zero (any nonzero
    # candidate against a zero baseline fails outright)
    session = document.get("session")
    if isinstance(session, dict):
        value = _number(session.get("throughput_rps"))
        if value is not None:
            metrics.append(
                Metric("session.throughput_rps", value, HIGHER_BETTER)
            )
        latency = session.get("latency_ms")
        if isinstance(latency, dict):
            for key in sorted(latency):
                value = _number(latency[key])
                if value is not None:
                    metrics.append(
                        Metric(f"session.latency_ms.{key}", value, LOWER_BETTER)
                    )
        pairings = session.get("fast_path_pairings")
        if isinstance(pairings, dict):
            for key in ("miller_loops", "final_exps"):
                value = _number(pairings.get(key))
                if value is not None:
                    metrics.append(
                        Metric(f"session.{key}", value, LOWER_BETTER)
                    )
        for key in ("handshakes_per_second",):
            value = _number(session.get(key))
            if value is not None:
                metrics.append(Metric(f"session.{key}", value, INFO))
    return metrics


def extract_pairing_metrics(document: dict) -> List[Metric]:
    """Flatten a pairing bench document into named metrics."""
    metrics: List[Metric] = []
    for row in document.get("results", []):
        if not isinstance(row, dict):
            continue
        curve = row.get("curve", f"bits{row.get('bits', '?')}")
        # schema v2 rows are per-(curve, backend); namespace the metrics
        # so a reference row never pairs up against a native row
        row_backend = row.get("backend")
        if isinstance(row_backend, str) and row_backend:
            curve = f"{curve}[{row_backend}]"
        for block_name in ("mccls_cold_verify", "zwxf_warm_multi_pairing_verify"):
            block = row.get(block_name)
            if not isinstance(block, dict):
                continue
            for key in sorted(block):
                value = _number(block[key])
                if value is None:
                    continue
                direction = LOWER_BETTER if key == "fp_mul" else INFO
                metrics.append(
                    Metric(f"{curve}.{block_name}.{key}", value, direction)
                )
        single = row.get("single_pairing")
        if isinstance(single, dict):
            optimized = single.get("optimized")
            if isinstance(optimized, dict):
                value = _number(optimized.get("fp_mul"))
                if value is not None:
                    metrics.append(
                        Metric(
                            f"{curve}.single_pairing.optimized.fp_mul",
                            value,
                            LOWER_BETTER,
                        )
                    )
                seconds = _number(optimized.get("seconds"))
                if seconds is not None:
                    metrics.append(
                        Metric(
                            f"{curve}.single_pairing.optimized.seconds",
                            seconds,
                            INFO,
                        )
                    )
            speedup = _number(single.get("speedup"))
            if speedup is not None:
                metrics.append(
                    Metric(f"{curve}.single_pairing.speedup", speedup, INFO)
                )
        # schema v3: GLV scalar multiplication (deterministic counts gate;
        # wall-clock speedups inform)
        mul = row.get("scalar_mult")
        if isinstance(mul, dict):
            for inner in ("ladder", "wnaf", "glv"):
                block = mul.get(inner)
                if not isinstance(block, dict):
                    continue
                value = _number(block.get("fp_mul"))
                if value is not None:
                    metrics.append(
                        Metric(
                            f"{curve}.scalar_mult.{inner}.fp_mul",
                            value,
                            LOWER_BETTER,
                        )
                    )
                seconds = _number(block.get("seconds"))
                if seconds is not None:
                    metrics.append(
                        Metric(
                            f"{curve}.scalar_mult.{inner}.seconds",
                            seconds,
                            INFO,
                        )
                    )
            ratio = _number(mul.get("fp_mul_ratio"))
            if ratio is not None:
                metrics.append(
                    Metric(
                        f"{curve}.scalar_mult.fp_mul_ratio",
                        ratio,
                        HIGHER_BETTER,
                    )
                )
            speedup = _number(mul.get("speedup"))
            if speedup is not None:
                metrics.append(
                    Metric(f"{curve}.scalar_mult.speedup", speedup, INFO)
                )
        # schema v3: cross-signer batch fold
        batch = row.get("batch_verify")
        if isinstance(batch, dict):
            for inner in ("batch", "individual"):
                block = batch.get(inner)
                if not isinstance(block, dict):
                    continue
                value = _number(block.get("fp_mul"))
                if value is not None:
                    metrics.append(
                        Metric(
                            f"{curve}.batch_verify.{inner}.fp_mul",
                            value,
                            LOWER_BETTER,
                        )
                    )
            ratio = _number(batch.get("fp_mul_ratio"))
            if ratio is not None:
                metrics.append(
                    Metric(
                        f"{curve}.batch_verify.fp_mul_ratio",
                        ratio,
                        LOWER_BETTER,
                    )
                )
            for key in ("folds", "bisections", "pairings"):
                value = _number(batch.get(key))
                if value is not None:
                    metrics.append(
                        Metric(f"{curve}.batch_verify.{key}", value, INFO)
                    )
    return metrics


def extract_metrics(document: dict) -> Tuple[str, List[Metric]]:
    """Detect the bench family and extract its metrics."""
    kind = detect_kind(document)
    if kind == "service":
        return kind, extract_service_metrics(document)
    return kind, extract_pairing_metrics(document)


# ---------------------------------------------------------------------------
# Comparison + rendering
# ---------------------------------------------------------------------------


def compare(
    old: dict, new: dict, *, allow_backend_mismatch: bool = False
) -> Tuple[str, List[Delta]]:
    """Pair up metrics present in both documents."""
    old_kind, old_metrics = extract_metrics(old)
    new_kind, new_metrics = extract_metrics(new)
    if old_kind != new_kind:
        raise BenchDiffError(
            f"cannot compare a {old_kind} bench against a {new_kind} bench"
        )
    old_backends = document_backends(old)
    new_backends = document_backends(new)
    if (
        not allow_backend_mismatch
        and old_backends is not None
        and new_backends is not None
        and old_backends != new_backends
    ):
        raise BenchDiffError(
            "documents were produced under different field backends"
            f" ({', '.join(old_backends)} vs {', '.join(new_backends)});"
            " the numbers measure different arithmetic code - pass"
            " --allow-backend-mismatch to compare anyway"
        )
    new_by_name: Dict[str, Metric] = {m.name: m for m in new_metrics}
    deltas = [
        Delta(m.name, m.value, new_by_name[m.name].value, m.direction)
        for m in old_metrics
        if m.name in new_by_name
    ]
    if not deltas:
        raise BenchDiffError("the two documents share no comparable metrics")
    return old_kind, deltas


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_table(
    kind: str, deltas: List[Delta], fail_over: float
) -> Tuple[List[str], List[Delta]]:
    """The delta table plus the regressions past the threshold."""
    width = max(len(d.name) for d in deltas)
    lines = [
        f"benchdiff ({kind} bench, fail threshold {fail_over:g}% on gated"
        " metrics)",
        f"{'metric':<{width}}  {'old':>12}  {'new':>12}  {'delta':>9}  gate",
    ]
    regressions: List[Delta] = []
    for delta in deltas:
        over = delta.regression_pct() > fail_over
        if delta.direction == INFO:
            gate = "info"
        elif over:
            gate = "FAIL"
        else:
            gate = "ok"
        if over and delta.direction != INFO:
            regressions.append(delta)
        pct = delta.pct
        pct_text = "   inf%" if pct == float("inf") else f"{pct:+8.1f}%"
        lines.append(
            f"{delta.name:<{width}}  {_fmt(delta.old):>12}"
            f"  {_fmt(delta.new):>12}  {pct_text:>9}  {gate}"
        )
    if regressions:
        lines.append("")
        lines.append(
            f"REGRESSION: {len(regressions)} gated metric(s) moved more than"
            f" {fail_over:g}% the wrong way:"
        )
        for delta in regressions:
            lines.append(
                f"  {delta.name}: {_fmt(delta.old)} -> {_fmt(delta.new)}"
                f" ({delta.regression_pct():.1f}% worse,"
                f" {delta.direction}-is-better)"
            )
    else:
        lines.append("")
        lines.append("no gated regressions")
    return lines, regressions


def run_benchdiff(
    old_path: str,
    new_path: str,
    fail_over: float = 10.0,
    out=print,
    allow_backend_mismatch: bool = False,
) -> int:
    """Compare two bench documents; nonzero exit on gated regression."""
    try:
        kind, deltas = compare(
            load_document(old_path),
            load_document(new_path),
            allow_backend_mismatch=allow_backend_mismatch,
        )
    except BenchDiffError as exc:
        out(f"benchdiff: {exc}")
        return 2
    lines, regressions = render_table(kind, deltas, fail_over)
    out("\n".join(lines))
    return 1 if regressions else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.benchdiff``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro benchdiff",
        description="compare two BENCH_*.json documents and gate regressions",
    )
    parser.add_argument("old", help="baseline bench JSON")
    parser.add_argument("new", help="candidate bench JSON")
    parser.add_argument(
        "--fail-over",
        type=float,
        default=10.0,
        metavar="PCT",
        help="fail when a gated metric regresses more than PCT%% (default 10)",
    )
    parser.add_argument(
        "--allow-backend-mismatch",
        action="store_true",
        help="compare documents produced under different field backends",
    )
    args = parser.parse_args(argv)
    return run_benchdiff(
        args.old,
        args.new,
        args.fail_over,
        allow_backend_mismatch=args.allow_backend_mismatch,
    )


if __name__ == "__main__":
    raise SystemExit(main())
