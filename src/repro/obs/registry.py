"""Process-wide instrumentation registry: counters, timers, histograms.

One :class:`Registry` holds every instrument created while it is active,
keyed by ``(name, labels)``.  A process has exactly one *active* registry
at a time; the default is the :data:`NULL_REGISTRY`, whose instruments are
shared no-ops, so uninstrumented runs pay nothing beyond an attribute
check (see :mod:`repro.obs.runtime` for the hot-path contract).

Typical use::

    from repro import obs

    with obs.collecting() as registry:
        with registry.phase("mccls.verify"):
            scheme.verify(...)
    registry.counter_value("ops.pairings", phase="mccls.verify")  # -> 1

Phases attribute the pairing stack's low-level operation tally (Fp/Fp2/
Fp12 multiplications, point operations, pairings) to labelled counters and
time the enclosed block; nested phases each receive the full delta of
their own span, so an outer ``mccls.verify`` phase includes the ops of an
inner ``pairing.miller_loop`` phase.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Dict, List, Optional, Tuple

from repro.obs import runtime as _rt

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _label_key(name: str, labels: Dict[str, object]) -> LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(key: LabelKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _parse_rendered_key(rendered: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`_render_key`: ``name{k=v,...}`` -> (name, labels)."""
    name, brace, rest = rendered.partition("{")
    if not brace:
        return rendered, {}
    labels: Dict[str, str] = {}
    for pair in rest.rstrip("}").split(","):
        key, _, value = pair.partition("=")
        labels[key] = value
    return name, labels


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Timer:
    """Accumulates wall-clock durations: call count and total seconds."""

    __slots__ = ("count", "total_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0

    def observe(self, seconds: float) -> None:
        """Record one duration measured externally."""
        self.count += 1
        self.total_s += seconds

    def time(self) -> "_TimerSpan":
        """Context manager timing the with-block into this timer."""
        return _TimerSpan(self)

    @property
    def mean_s(self) -> float:
        """Mean seconds per recorded duration (0 when empty)."""
        return self.total_s / self.count if self.count else 0.0


class _TimerSpan:
    """Context manager recording a wall-clock span into a Timer."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer):
        self._timer = timer

    def __enter__(self) -> "_TimerSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.observe(time.perf_counter() - self._start)


class Histogram:
    """Summary statistics over observed values (count/sum/min/max/mean).

    Keeps a bounded reservoir of raw values (the first ``max_samples``)
    so snapshots can report percentiles of short runs exactly without
    unbounded memory on long ones.
    """

    __slots__ = ("count", "total", "min", "max", "max_samples", "_samples")

    def __init__(self, max_samples: int = 4096):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.max_samples = max_samples
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100) of the stored sample reservoir."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(
            len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1)))
        )
        return ordered[index]

    def quantiles(self) -> Dict[str, float]:
        """The standard latency quantiles (p50/p90/p95/p99) in one dict."""
        return {
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def summary(self) -> Dict[str, float]:
        """count/sum/min/max/mean plus p50/p90/p95/p99, JSON-ready."""
        summary: Dict[str, float] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }
        summary.update(self.quantiles())
        return summary

    def state(self) -> Dict[str, object]:
        """The summary plus the raw sample reservoir - the mergeable form
        snapshots carry, so cross-process merges keep percentile data."""
        state: Dict[str, object] = self.summary()
        state["samples"] = list(self._samples)
        return state

    def absorb(self, state: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`state` (or summary) into this
        one: counts and sums add, min/max widen, and any carried samples
        refill this reservoir up to ``max_samples``."""
        count = int(state.get("count", 0))
        if not count:
            return
        self.count += count
        self.total += float(state.get("sum", 0.0))
        low = float(state.get("min", 0.0))
        high = float(state.get("max", 0.0))
        if self.min is None or low < self.min:
            self.min = low
        if self.max is None or high > self.max:
            self.max = high
        samples = state.get("samples")
        if samples:
            room = self.max_samples - len(self._samples)
            if room > 0:
                self._samples.extend(float(v) for v in samples[:room])


class Registry:
    """A live instrument store: every (name, labels) pair maps to one
    counter, timer or histogram, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[LabelKey, Counter] = {}
        self._timers: Dict[LabelKey, Timer] = {}
        self._histograms: Dict[LabelKey, Histogram] = {}
        #: cumulative pairing-stack tally; live (hot-path mutated) while
        #: this registry is active
        self.field_ops = _rt.FieldOpTally()

    #: whether instruments actually record (False only on NullRegistry)
    active = True

    # -- instruments -----------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        """The counter registered under (name, labels), created on demand."""
        key = _label_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def timer(self, name: str, **labels: object) -> Timer:
        """The timer registered under (name, labels), created on demand."""
        key = _label_key(name, labels)
        instrument = self._timers.get(key)
        if instrument is None:
            instrument = self._timers[key] = Timer()
        return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The histogram registered under (name, labels), created on demand."""
        key = _label_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # -- phases ----------------------------------------------------------------
    def phase(self, label: str) -> "_Phase":
        """Context manager attributing pairing-stack op deltas and wall
        time of the with-block to counters labelled ``phase=label``."""
        return _Phase(self, label)

    # -- queries ---------------------------------------------------------------
    def counter_value(self, name: str, **labels: object) -> int:
        """Current value of one counter (0 if never incremented)."""
        instrument = self._counters.get(_label_key(name, labels))
        return instrument.value if instrument is not None else 0

    def counter_total(self, name: str) -> int:
        """Sum of a counter across every label combination."""
        return sum(
            counter.value
            for (key_name, _), counter in self._counters.items()
            if key_name == name
        )

    def snapshot(self) -> Dict[str, object]:
        """The whole registry as a JSON-serialisable dict.

        Keys render labels Prometheus-style (``name{k=v}``); the ``ops``
        section is the cumulative pairing-stack tally.
        """
        return {
            "counters": {
                _render_key(key): counter.value
                for key, counter in sorted(self._counters.items())
            },
            "timers": {
                _render_key(key): {
                    "count": timer.count,
                    "total_s": timer.total_s,
                    "mean_s": timer.mean_s,
                }
                for key, timer in sorted(self._timers.items())
            },
            "histograms": {
                _render_key(key): histogram.state()
                for key, histogram in sorted(self._histograms.items())
            },
            "ops": self.field_ops.snapshot(),
        }

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used by parallel campaign runs: each worker process collects into
        its own registry and ships the snapshot back; the parent merges
        them in a deterministic (seed) order.  Counters add, timers add
        count/total; histograms add count/sum, widen min/max and absorb
        the shipped sample reservoir (bounded by ``max_samples``), so
        merged percentiles reflect the workers' observations too.
        """
        for rendered, value in snapshot.get("counters", {}).items():
            name, labels = _parse_rendered_key(rendered)
            self.counter(name, **labels).inc(int(value))
        for rendered, data in snapshot.get("timers", {}).items():
            name, labels = _parse_rendered_key(rendered)
            timer = self.timer(name, **labels)
            timer.count += int(data.get("count", 0))
            timer.total_s += float(data.get("total_s", 0.0))
        for rendered, data in snapshot.get("histograms", {}).items():
            if not int(data.get("count", 0)):
                continue
            name, labels = _parse_rendered_key(rendered)
            self.histogram(name, **labels).absorb(data)
        for op_name, count in snapshot.get("ops", {}).items():
            if op_name in _rt.OP_NAMES and count:
                setattr(
                    self.field_ops,
                    op_name,
                    getattr(self.field_ops, op_name) + int(count),
                )


class _Phase:
    """Implementation of :meth:`Registry.phase`."""

    __slots__ = ("_registry", "_label", "_before", "_start")

    def __init__(self, registry: Registry, label: str):
        self._registry = registry
        self._label = label

    def __enter__(self) -> "_Phase":
        self._before = self._registry.field_ops.snapshot()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        registry = self._registry
        delta = registry.field_ops.diff(self._before)
        for op_name, count in delta.items():
            if count:
                registry.counter(f"ops.{op_name}", phase=self._label).inc(
                    count
                )
        registry.timer("phase", phase=self._label).observe(elapsed)


class _NullCounter(Counter):
    """Counter that discards increments (shared by NullRegistry)."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        """Discard the increment."""


class _NullTimer(Timer):
    """Timer that discards observations (shared by NullRegistry)."""

    __slots__ = ()

    def observe(self, seconds: float) -> None:
        """Discard the observation."""

    def time(self) -> nullcontext:
        """A reusable no-op context manager."""
        return _NULL_CONTEXT


class _NullHistogram(Histogram):
    """Histogram that discards observations (shared by NullRegistry)."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """Discard the observation."""


_NULL_CONTEXT = nullcontext()
_NULL_COUNTER = _NullCounter()
_NULL_TIMER = _NullTimer()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(Registry):
    """The disabled default: every instrument is a shared no-op.

    All accessor methods stay allocation-free so instrumented call sites
    cost one method call when observability is off; the pairing hot path
    avoids even that via :mod:`repro.obs.runtime`.
    """

    active = False

    def counter(self, name: str, **labels: object) -> Counter:
        """The shared no-op counter."""
        return _NULL_COUNTER

    def timer(self, name: str, **labels: object) -> Timer:
        """The shared no-op timer."""
        return _NULL_TIMER

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The shared no-op histogram."""
        return _NULL_HISTOGRAM

    def phase(self, label: str) -> nullcontext:
        """A reusable no-op context manager."""
        return _NULL_CONTEXT

    def counter_value(self, name: str, **labels: object) -> int:
        """Always 0."""
        return 0

    def counter_total(self, name: str) -> int:
        """Always 0."""
        return 0

    def snapshot(self) -> Dict[str, object]:
        """An empty snapshot (all sections present, nothing recorded)."""
        return {
            "counters": {},
            "timers": {},
            "histograms": {},
            "ops": self.field_ops.snapshot(),
        }

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Discard the snapshot (instrumentation is off)."""


#: the process-wide disabled registry (the default active registry)
NULL_REGISTRY = NullRegistry()

_active: Registry = NULL_REGISTRY


def get_registry() -> Registry:
    """The currently active registry (the no-op NULL_REGISTRY by default)."""
    return _active


def set_registry(registry: Optional[Registry]) -> Registry:
    """Install ``registry`` (None means NULL_REGISTRY) as the active one.

    Also points the pairing stack's hot-path tally hook at the new
    registry (or back to ``None`` when disabling).  Returns the previously
    active registry so callers can restore it.
    """
    global _active
    previous = _active
    _active = registry if registry is not None else NULL_REGISTRY
    _rt.tally = _active.field_ops if _active.active else None
    return previous


def enable() -> Registry:
    """Install and return a fresh live registry."""
    registry = Registry()
    set_registry(registry)
    return registry


def disable() -> None:
    """Restore the no-op default registry."""
    set_registry(NULL_REGISTRY)


class collecting:
    """Context manager installing a fresh registry for the with-block.

    Yields the registry; the previously active registry (usually the
    no-op default) is restored on exit, so nesting and test isolation
    work::

        with collecting() as registry:
            ...instrumented code...
        snapshot = registry.snapshot()
    """

    def __init__(self) -> None:
        self.registry = Registry()

    def __enter__(self) -> Registry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, exc_type, exc, tb) -> None:
        set_registry(self._previous)


def phase(label: str):
    """Shorthand for ``get_registry().phase(label)``."""
    return _active.phase(label)
