"""repro.obs - unified instrumentation: op-profiling, tracing, reporting.

Three pieces, designed to be zero-cost when disabled (the default):

* :mod:`repro.obs.registry` - a process-wide registry of counters, timers
  and histograms with label support.  The pairing stack reports Fp/Fp2/
  Fp12 multiplications, inversions, point operations and full pairings
  into it; ``phase("...")`` blocks attribute those ops to labelled
  counters (Miller loop vs final exponentiation, per-scheme sign/verify).
* :mod:`repro.obs.events` - pluggable :class:`~repro.obs.events.EventSink`
  for structured JSONL event traces from the network simulator (route
  discovery, signature accept/reject, attacker drops, queue samples).
* :mod:`repro.obs.report` - renders any registry snapshot as aligned text
  or machine-readable JSON (the ``--json`` CLI output).
* :mod:`repro.obs.trace` - request-scoped spans (``span("verify",
  trace_id=...)``) that time stages, nest under one trace id and emit to
  an event sink; the service threads trace ids over the wire so one
  verify is followable client -> queue -> batch -> pairing -> reply.
* :mod:`repro.obs.exposition` - Prometheus text exposition of registry
  snapshots (the gateway's METRICS opcode).

Quick profile::

    from repro import obs

    with obs.collecting() as registry:
        with obs.phase("mccls.verify"):
            scheme.verify(message, sig, identity, public_key)
    print(obs.render_text(registry.snapshot()))
"""

from repro.obs.events import (
    EventSink,
    JsonlEventSink,
    ListEventSink,
    NULL_EVENT_SINK,
    NullEventSink,
    open_sink,
)
from repro.obs.exposition import PrometheusRenderer, render_prometheus
from repro.obs.registry import (
    Counter,
    Histogram,
    NULL_REGISTRY,
    NullRegistry,
    Registry,
    Timer,
    collecting,
    disable,
    enable,
    get_registry,
    phase,
    set_registry,
)
from repro.obs.report import parse_json, render_json, render_text
from repro.obs.runtime import OP_NAMES, FieldOpTally
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    current_trace_id,
    get_tracer,
    next_trace_id,
    set_tracer,
    span,
    tracing,
)

__all__ = [
    "Counter",
    "EventSink",
    "FieldOpTally",
    "Histogram",
    "JsonlEventSink",
    "ListEventSink",
    "NULL_EVENT_SINK",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullEventSink",
    "NullRegistry",
    "NullTracer",
    "OP_NAMES",
    "PrometheusRenderer",
    "Registry",
    "Timer",
    "Tracer",
    "collecting",
    "current_trace_id",
    "disable",
    "enable",
    "get_registry",
    "get_tracer",
    "next_trace_id",
    "open_sink",
    "parse_json",
    "phase",
    "render_json",
    "render_prometheus",
    "render_text",
    "set_registry",
    "set_tracer",
    "span",
    "tracing",
]
