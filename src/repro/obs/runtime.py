"""The hot-path hook the pairing stack increments (nanosecond budget).

The field and curve layers execute millions of multiplications per
pairing, so they cannot afford a registry lookup - or even a method call -
per operation.  Instead they do::

    from repro.obs import runtime as _rt
    ...
    tally = _rt.tally
    if tally is not None:
        tally.fp_mul += 1

``tally`` is ``None`` by default (instrumentation disabled: one attribute
load and an identity check per operation) and is swapped for a
:class:`FieldOpTally` while a :class:`~repro.obs.registry.Registry` is
active.  The registry reads the cumulative tally at phase boundaries and
attributes deltas to labelled counters; nothing in this module ever
allocates on the hot path.
"""

from __future__ import annotations

from typing import Dict

#: names of the low-level operations the pairing stack reports, in the
#: order they appear in snapshots
OP_NAMES = (
    "fp_mul",
    "fp_inv",
    "fp2_mul",
    "fp2_sq",
    "fp2_inv",
    "fp12_mul",
    "fp12_sq",
    "fp12_sparse_mul",
    "fp12_cyclo_sq",
    "fp12_inv",
    "point_add",
    "point_double",
    "point_mul",
    "pairings",
    "miller_loops",
    "final_exps",
)


class FieldOpTally:
    """Cumulative plain-integer counters for pairing-stack operations.

    Deliberately *not* a dict and *not* label-aware: incrementing a slot
    attribute is the cheapest mutation Python offers, which is what the
    Fp/Fp2/Fp12 hot loops need.  Label attribution happens at phase
    boundaries by diffing snapshots (see ``Registry.phase``).
    """

    __slots__ = OP_NAMES

    def __init__(self) -> None:
        for name in OP_NAMES:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        """The current cumulative counts as a plain dict."""
        return {name: getattr(self, name) for name in OP_NAMES}

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Counts accumulated since an earlier :meth:`snapshot`."""
        return {
            name: getattr(self, name) - earlier[name] for name in OP_NAMES
        }


#: the active tally, or None while instrumentation is disabled.  Only
#: :func:`repro.obs.registry.set_registry` assigns this.
tally = None
