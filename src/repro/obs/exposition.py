"""Prometheus text exposition of registry snapshots (the METRICS reply).

Renders the version-0.0.4 text format scrapers understand: ``# TYPE``
headers, ``name{label="value"} number`` samples, counters suffixed
``_total``, histograms as summaries with ``quantile`` labels plus
``_sum``/``_count``.  Metric names are sanitised to the Prometheus
charset (dots become underscores) and label values are escaped, so any
registry content renders parseably.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.registry import _parse_rendered_key

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.95", "p95"), ("0.99", "p99"))


def sanitize_metric_name(name: str, prefix: str = "") -> str:
    """A legal Prometheus metric name for an instrument name."""
    full = f"{prefix}_{name}" if prefix else name
    full = _NAME_BAD.sub("_", full)
    if not full or full[0].isdigit():
        full = f"_{full}"
    return full


def escape_label_value(value: str) -> str:
    """Backslash-escape a label value per the text exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_NAME_BAD.sub("_", key)}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_number(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


class _Family:
    """One metric family: a TYPE header plus its sample lines, rendered
    once per name no matter how many label combinations feed it."""

    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind
        self.lines: List[str] = []

    def sample(
        self,
        value: float,
        labels: Optional[Dict[str, str]] = None,
        suffix: str = "",
    ) -> None:
        self.lines.append(
            f"{self.name}{suffix}{_render_labels(labels or {})} "
            f"{_format_number(value)}"
        )

    def render(self) -> List[str]:
        return [f"# TYPE {self.name} {self.kind}"] + self.lines


class PrometheusRenderer:
    """Accumulates metric families and renders one exposition document."""

    def __init__(self, prefix: str = "repro"):
        self.prefix = prefix
        self._families: Dict[str, _Family] = {}

    def _family(self, name: str, kind: str) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(name, kind)
        return family

    def counter(
        self, name: str, value: float, labels: Optional[Dict[str, str]] = None
    ) -> None:
        """One counter sample; ``_total`` is appended when missing."""
        metric = sanitize_metric_name(name, self.prefix)
        if not metric.endswith("_total"):
            metric += "_total"
        self._family(metric, "counter").sample(value, labels)

    def gauge(
        self, name: str, value: float, labels: Optional[Dict[str, str]] = None
    ) -> None:
        """One gauge sample (queue depths, cache sizes, ...)."""
        metric = sanitize_metric_name(name, self.prefix)
        self._family(metric, "gauge").sample(value, labels)

    def summary(
        self,
        name: str,
        stats: Dict[str, float],
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """One histogram summary (the dict :meth:`Histogram.summary` makes):
        quantile samples plus ``_sum`` and ``_count``."""
        metric = sanitize_metric_name(name, self.prefix)
        family = self._family(metric, "summary")
        for quantile, key in _QUANTILES:
            if key in stats:
                merged = dict(labels or {})
                merged["quantile"] = quantile
                family.sample(stats[key], merged)
        family.sample(stats.get("sum", 0.0), labels, suffix="_sum")
        family.sample(int(stats.get("count", 0)), labels, suffix="_count")

    def timer(
        self,
        name: str,
        stats: Dict[str, float],
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """One timer as ``_seconds_sum``/``_seconds_count``."""
        metric = sanitize_metric_name(name, self.prefix) + "_seconds"
        family = self._family(metric, "summary")
        family.sample(stats.get("total_s", 0.0), labels, suffix="_sum")
        family.sample(int(stats.get("count", 0)), labels, suffix="_count")

    def add_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold a whole :meth:`Registry.snapshot` into the document."""
        for rendered, value in snapshot.get("counters", {}).items():
            name, labels = _parse_rendered_key(rendered)
            self.counter(name, value, labels)
        for rendered, stats in snapshot.get("timers", {}).items():
            name, labels = _parse_rendered_key(rendered)
            self.timer(name, stats, labels)
        for rendered, stats in snapshot.get("histograms", {}).items():
            name, labels = _parse_rendered_key(rendered)
            self.summary(name, stats, labels)
        for op_name, count in snapshot.get("ops", {}).items():
            if count:
                self.counter(f"ops.{op_name}", count)

    def render(self) -> str:
        """The exposition document (families in name order, newline-final)."""
        lines: List[str] = []
        for name in sorted(self._families):
            lines.extend(self._families[name].render())
        return "\n".join(lines) + "\n" if lines else ""


def render_prometheus(
    snapshot: Optional[Dict[str, object]] = None,
    *,
    counters: Optional[Iterable[Tuple[str, Dict[str, str], float]]] = None,
    gauges: Optional[Iterable[Tuple[str, Dict[str, str], float]]] = None,
    prefix: str = "repro",
) -> str:
    """One-call rendering: a registry snapshot plus extra counter/gauge
    samples given as ``(name, labels, value)`` triples."""
    renderer = PrometheusRenderer(prefix)
    if snapshot:
        renderer.add_snapshot(snapshot)
    for name, labels, value in counters or ():
        renderer.counter(name, value, labels)
    for name, labels, value in gauges or ():
        renderer.gauge(name, value, labels)
    return renderer.render()
